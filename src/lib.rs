//! # archer2-repro
//!
//! Facade crate for the ARCHER2 energy & emissions reproduction workspace.
//! Re-exports every member crate and provides a prelude for the examples and
//! integration tests.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every table and figure.
//!
//! ## Thirty-second tour
//!
//! Reproduce the paper's Table 4 row for LAMMPS (the most compute-bound
//! benchmark: 0.74 performance, 0.92 energy at 2.0 GHz) straight from the
//! calibrated model:
//!
//! ```
//! use archer2_repro::core::facility::Archer2Facility;
//! use archer2_repro::workload::OperatingPoint;
//!
//! let facility = Archer2Facility::new(2022);
//! let lammps = &facility.catalog().find("LAMMPS").unwrap().app;
//! let (nm, lot) = (facility.node_model(), facility.lottery());
//!
//! let perf = lammps.perf_ratio(OperatingPoint::AFTER_FREQ, nm, lot);
//! let energy = lammps.energy_ratio(OperatingPoint::AFTER_FREQ, nm, lot);
//! assert!((perf - 0.74).abs() < 0.01);
//! assert!((energy - 0.92).abs() < 0.01);
//! ```
//!
//! Or run the whole reproduction contract:
//!
//! ```no_run
//! let report = archer2_repro::core::verify::run(2022, 10);
//! assert!(report.all_pass());
//! println!("{}", report.render());
//! ```

pub use archer2_core as core;
pub use hpc_emissions as emissions;
pub use hpc_faults as faults;
pub use hpc_grid as grid;
pub use hpc_kernels as kernels;
pub use hpc_power as power;
pub use hpc_sched as sched;
pub use hpc_serve as serve;
pub use hpc_telemetry as telemetry;
pub use hpc_topo as topo;
pub use hpc_tsdb as tsdb;
pub use hpc_workload as workload;
pub use sim_core as sim;

/// Convenience imports for examples and integration tests.
pub mod prelude {
    pub use sim_core::{SimDuration, SimTime};
}
