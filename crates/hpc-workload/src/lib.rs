//! # hpc-workload
//!
//! Application and workload models.
//!
//! The heart of the crate is [`app::AppModel`]: the standard DVFS
//! performance model `t(f) = t_ref · (β·f_ref/f + (1-β))` combined with the
//! `hpc-power` node model. β (the compute-bound fraction) is derived
//! analytically from each benchmark's measured performance ratio; the CPU
//! activity factor is fitted so the modelled energy ratio lands on the
//! paper's measurement; a small documented residual absorbs what the
//! first-order model misses (clock-gating efficiency, per-app power
//! management, communication wait).
//!
//! [`catalog`] carries the eight ARCHER2 application benchmarks of Tables
//! 3–4, [`mix`] the research-area workload composition from §1.1, and
//! [`generator`] a job stream that drives the scheduler at ARCHER2-like
//! >90 % utilisation.

#![warn(missing_docs)]

pub mod app;
pub mod catalog;
pub mod generator;
pub mod job;
pub mod mix;
pub mod trace;

pub use app::{AppModel, OperatingPoint};
pub use catalog::{BenchmarkRecord, Catalog, PaperRatios};
pub use generator::{GeneratorConfig, JobGenerator};
pub use job::{Job, JobId, JobState};
pub use mix::{ResearchArea, WorkloadMix};
pub use trace::{JobTrace, TraceEntry};
