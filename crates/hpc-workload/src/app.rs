//! The application model: DVFS performance scaling plus node power.
//!
//! ## Performance model
//!
//! The classic frequency-scaling decomposition: a fraction β of the
//! reference runtime scales inversely with core frequency (instruction
//! throughput bound), the rest is frequency-invariant (DRAM and network
//! bound):
//!
//! ```text
//! t(f) = t_ref · ( β · f_ref / f  +  (1 − β) )
//! ```
//!
//! `f_ref` is the *effective* frequency at the reference operating point
//! (2.25 GHz + turbo ≈ 2.8 GHz sustained — §4.2 of the paper), which is why
//! capping at 2.0 GHz costs some codes 26 % rather than the naive 11 %.
//!
//! ## Power model
//!
//! Node power comes from [`hpc_power::NodePowerModel`] with this app's CPU
//! activity and memory intensity. Two small *calibration residuals* absorb
//! per-application effects outside the first-order model (clock-gating
//! efficiency, communication wait, library differences); they are fitted in
//! [`crate::catalog`] and recorded in `EXPERIMENTS.md`.

use crate::mix::ResearchArea;
use hpc_power::{
    DeterminismMode, FreqSetting, NodeActivity, NodePowerModel, SiliconLottery, SiliconSample,
};
use serde::{Deserialize, Serialize};

/// A facility-wide operating point: frequency setting plus BIOS mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// CPU frequency setting.
    pub setting: FreqSetting,
    /// BIOS determinism mode.
    pub mode: DeterminismMode,
}

impl OperatingPoint {
    /// ARCHER2's original configuration (to Apr 2022): power determinism,
    /// 2.25 GHz + turbo.
    pub const ORIGINAL: OperatingPoint = OperatingPoint {
        setting: FreqSetting::TurboBoost2250,
        mode: DeterminismMode::Power,
    };

    /// After the §4.1 BIOS change (May 2022): performance determinism,
    /// 2.25 GHz + turbo. This is the model's *reference* point.
    pub const AFTER_BIOS: OperatingPoint = OperatingPoint {
        setting: FreqSetting::TurboBoost2250,
        mode: DeterminismMode::Performance,
    };

    /// After the §4.2 frequency change (Dec 2022): performance determinism,
    /// 2.0 GHz default.
    pub const AFTER_FREQ: OperatingPoint = OperatingPoint {
        setting: FreqSetting::Mid2000,
        mode: DeterminismMode::Performance,
    };
}

impl std::fmt::Display for OperatingPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} / {}", self.setting, self.mode)
    }
}

/// One application's performance/power profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppModel {
    /// Application name, e.g. `"LAMMPS"`.
    pub name: String,
    /// Research area the app belongs to.
    pub area: ResearchArea,
    /// Compute-bound runtime fraction β ∈ [0, 1].
    pub beta: f64,
    /// CPU pipeline activity factor ∈ [0, 1.2].
    pub cpu_activity: f64,
    /// Memory-subsystem intensity ∈ [0, 1].
    pub mem_intensity: f64,
    /// Multiplicative power residual applied at non-boost frequency
    /// settings (calibration; 1.0 = pure model).
    pub power_residual_offref: f64,
    /// Multiplicative power residual applied in power-determinism mode
    /// (calibration; 1.0 = pure model).
    pub power_residual_powerdet: f64,
    /// Multiplicative runtime residual applied in power-determinism mode
    /// (calibration; 1.0 = pure model).
    pub perf_residual_powerdet: f64,
}

impl AppModel {
    /// A plain, uncalibrated profile (residuals at 1.0).
    pub fn raw(
        name: impl Into<String>,
        area: ResearchArea,
        beta: f64,
        cpu_activity: f64,
        mem_intensity: f64,
    ) -> Self {
        assert!((0.0..=1.0).contains(&beta), "beta {beta} out of [0,1]");
        assert!((0.0..=1.2).contains(&cpu_activity), "activity {cpu_activity} out of range");
        assert!((0.0..=1.0).contains(&mem_intensity), "mem intensity {mem_intensity} out of range");
        AppModel {
            name: name.into(),
            area,
            beta,
            cpu_activity,
            mem_intensity,
            power_residual_offref: 1.0,
            power_residual_powerdet: 1.0,
            perf_residual_powerdet: 1.0,
        }
    }

    /// A generic area-typical workload used as filler in the facility
    /// simulation for research areas whose codes are not in the paper's
    /// benchmark suite. β values follow the character of each area's
    /// dominant codes: spectral/grid climate and seismology codes are
    /// memory-bandwidth bound; classical-MD-heavy areas are compute-bound
    /// (cf. GROMACS/LAMMPS in Table 4); PIC plasma codes sit in between.
    pub fn generic(area: ResearchArea) -> Self {
        let (beta, cpu, mem) = match area {
            ResearchArea::MaterialsScience => (0.20, 0.75, 0.60),
            ResearchArea::ClimateOcean => (0.22, 0.60, 0.70),
            ResearchArea::Biomolecular => (0.60, 0.90, 0.30),
            ResearchArea::Engineering => (0.25, 0.65, 0.65),
            ResearchArea::MineralPhysics => (0.20, 0.70, 0.60),
            ResearchArea::Seismology => (0.24, 0.60, 0.70),
            ResearchArea::PlasmaPhysics => (0.28, 0.80, 0.50),
            ResearchArea::Other => (0.25, 0.70, 0.50),
        };
        AppModel::raw(format!("generic-{area}"), area, beta, cpu, mem)
    }

    /// Effective sustained frequency (GHz) at an operating point, using the
    /// typical part of the lottery.
    pub fn effective_freq(
        &self,
        op: OperatingPoint,
        node_model: &NodePowerModel,
        lottery: &SiliconLottery,
    ) -> f64 {
        let part = SiliconSample::typical(lottery);
        node_model
            .socket_model()
            .effective_freq(op.setting, op.mode, self.cpu_activity, &part, lottery)
    }

    /// Runtime at `op` relative to the reference point
    /// ([`OperatingPoint::AFTER_BIOS`]): 1.0 at reference, > 1.0 when slower.
    pub fn runtime_ratio(
        &self,
        op: OperatingPoint,
        node_model: &NodePowerModel,
        lottery: &SiliconLottery,
    ) -> f64 {
        let f_ref = self.effective_freq(OperatingPoint::AFTER_BIOS, node_model, lottery);
        let f = self.effective_freq(op, node_model, lottery);
        let mut ratio = self.beta * f_ref / f + (1.0 - self.beta);
        if op.mode == DeterminismMode::Power {
            ratio *= self.perf_residual_powerdet;
        }
        ratio
    }

    /// Performance at `op` relative to reference (inverse runtime ratio).
    pub fn perf_ratio(
        &self,
        op: OperatingPoint,
        node_model: &NodePowerModel,
        lottery: &SiliconLottery,
    ) -> f64 {
        1.0 / self.runtime_ratio(op, node_model, lottery)
    }

    /// Node power (W) while this app runs at `op`, for the typical part.
    pub fn node_power_w(
        &self,
        op: OperatingPoint,
        node_model: &NodePowerModel,
        lottery: &SiliconLottery,
    ) -> f64 {
        let part = SiliconSample::typical(lottery);
        self.node_power_w_for_part(op, node_model, lottery, &[part, part])
    }

    /// Node power (W) for specific silicon parts (used by the per-node
    /// facility simulation where every node drew its own lottery ticket).
    pub fn node_power_w_for_part(
        &self,
        op: OperatingPoint,
        node_model: &NodePowerModel,
        lottery: &SiliconLottery,
        parts: &[SiliconSample; 2],
    ) -> f64 {
        let throughput = self
            .perf_ratio(op, node_model, lottery)
            .min(1.2);
        let activity = NodeActivity {
            cpu: self.cpu_activity,
            mem: self.mem_intensity,
            throughput,
        };
        let mut p = node_model.power(op.setting, op.mode, activity, parts, lottery).total_w();
        if !op.setting.boost_enabled() {
            p *= self.power_residual_offref;
        }
        if op.mode == DeterminismMode::Power {
            p *= self.power_residual_powerdet;
        }
        p
    }

    /// Energy-to-solution at `op` relative to reference: `P(op)·t(op) /
    /// (P(ref)·t(ref))`.
    pub fn energy_ratio(
        &self,
        op: OperatingPoint,
        node_model: &NodePowerModel,
        lottery: &SiliconLottery,
    ) -> f64 {
        let p_ref = self.node_power_w(OperatingPoint::AFTER_BIOS, node_model, lottery);
        let p = self.node_power_w(op, node_model, lottery);
        (p * self.runtime_ratio(op, node_model, lottery)) / p_ref
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpc_power::NodeSpec;

    fn env() -> (NodePowerModel, SiliconLottery) {
        (NodePowerModel::new(NodeSpec::default()), SiliconLottery::default())
    }

    #[test]
    fn reference_point_is_identity() {
        let (nm, lot) = env();
        let app = AppModel::generic(ResearchArea::MaterialsScience);
        assert!((app.runtime_ratio(OperatingPoint::AFTER_BIOS, &nm, &lot) - 1.0).abs() < 1e-12);
        assert!((app.energy_ratio(OperatingPoint::AFTER_BIOS, &nm, &lot) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lower_frequency_is_slower_but_cheaper() {
        let (nm, lot) = env();
        let app = AppModel::generic(ResearchArea::Engineering);
        let rt = app.runtime_ratio(OperatingPoint::AFTER_FREQ, &nm, &lot);
        assert!(rt > 1.0, "2.0 GHz must be slower than reference, got {rt}");
        let e = app.energy_ratio(OperatingPoint::AFTER_FREQ, &nm, &lot);
        assert!(e < 1.0, "2.0 GHz must cost less energy, got {e}");
    }

    #[test]
    fn memory_bound_app_barely_slows() {
        let (nm, lot) = env();
        let mem_bound = AppModel::raw("stream-like", ResearchArea::Other, 0.05, 0.4, 0.95);
        let perf = mem_bound.perf_ratio(OperatingPoint::AFTER_FREQ, &nm, &lot);
        assert!(perf > 0.97, "memory-bound perf ratio {perf}");
    }

    #[test]
    fn compute_bound_app_slows_proportionally() {
        let (nm, lot) = env();
        let compute = AppModel::raw("dgemm-like", ResearchArea::Other, 1.0, 1.0, 0.1);
        let f_ref = compute.effective_freq(OperatingPoint::AFTER_BIOS, &nm, &lot);
        let perf = compute.perf_ratio(OperatingPoint::AFTER_FREQ, &nm, &lot);
        let expected = 2.0 / f_ref;
        assert!((perf - expected).abs() < 1e-9, "pure compute perf {perf} vs f ratio {expected}");
    }

    #[test]
    fn power_determinism_draws_more_power() {
        let (nm, lot) = env();
        let app = AppModel::generic(ResearchArea::MaterialsScience);
        let p_pd = app.node_power_w(OperatingPoint::ORIGINAL, &nm, &lot);
        let p_ref = app.node_power_w(OperatingPoint::AFTER_BIOS, &nm, &lot);
        assert!(p_pd > p_ref, "power determinism should draw more: {p_pd} vs {p_ref}");
    }

    #[test]
    fn original_mode_is_slightly_faster() {
        let (nm, lot) = env();
        let app = AppModel::generic(ResearchArea::MaterialsScience);
        let rt = app.runtime_ratio(OperatingPoint::ORIGINAL, &nm, &lot);
        assert!(rt <= 1.0, "power determinism should not be slower, got {rt}");
        assert!(rt > 0.96, "the speedup should be small, got {rt}");
    }

    #[test]
    fn off_reference_residual_scales_power() {
        let (nm, lot) = env();
        let mut app = AppModel::generic(ResearchArea::Other);
        let base = app.node_power_w(OperatingPoint::AFTER_FREQ, &nm, &lot);
        app.power_residual_offref = 0.9;
        let scaled = app.node_power_w(OperatingPoint::AFTER_FREQ, &nm, &lot);
        assert!((scaled / base - 0.9).abs() < 1e-9);
        // Reference point is untouched by the off-reference residual.
        let ref_before = app.node_power_w(OperatingPoint::AFTER_BIOS, &nm, &lot);
        app.power_residual_offref = 1.0;
        assert_eq!(ref_before, app.node_power_w(OperatingPoint::AFTER_BIOS, &nm, &lot));
    }

    #[test]
    fn energy_ratio_consistency() {
        // energy_ratio == power_ratio × runtime_ratio by construction.
        let (nm, lot) = env();
        let app = AppModel::raw("x", ResearchArea::Other, 0.5, 0.8, 0.4);
        let op = OperatingPoint::AFTER_FREQ;
        let e = app.energy_ratio(op, &nm, &lot);
        let p = app.node_power_w(op, &nm, &lot) / app.node_power_w(OperatingPoint::AFTER_BIOS, &nm, &lot);
        let t = app.runtime_ratio(op, &nm, &lot);
        assert!((e - p * t).abs() < 1e-12);
    }

    #[test]
    fn low_1500_even_slower_and_cheaper_power() {
        let (nm, lot) = env();
        let app = AppModel::generic(ResearchArea::Engineering);
        let op15 = OperatingPoint {
            setting: FreqSetting::Low1500,
            mode: DeterminismMode::Performance,
        };
        let rt20 = app.runtime_ratio(OperatingPoint::AFTER_FREQ, &nm, &lot);
        let rt15 = app.runtime_ratio(op15, &nm, &lot);
        assert!(rt15 > rt20);
        let p20 = app.node_power_w(OperatingPoint::AFTER_FREQ, &nm, &lot);
        let p15 = app.node_power_w(op15, &nm, &lot);
        assert!(p15 < p20);
    }

    #[test]
    #[should_panic(expected = "beta")]
    fn invalid_beta_rejected() {
        let _ = AppModel::raw("bad", ResearchArea::Other, 1.5, 0.5, 0.5);
    }
}
