//! Synthetic job-stream generation.
//!
//! ARCHER2 runs at >90 % utilisation in every period the paper considers —
//! i.e. there is effectively always a backlog. The generator therefore
//! produces jobs *on demand*: the campaign keeps the scheduler's queue
//! topped up, and utilisation is limited by scheduling fragmentation alone,
//! exactly as on the real system.
//!
//! Job shapes follow the usual national-service statistics: log-normal node
//! counts (median a few nodes, a long tail of capability jobs) and Weibull
//! runtimes (median a couple of hours, shape < 1 tail).

use crate::app::AppModel;
use crate::catalog::Catalog;
use crate::job::{Job, JobId};
use crate::mix::WorkloadMix;
use serde::{Deserialize, Serialize};
use sim_core::dist::{Distribution, LogNormal, Uniform, Weibull};
use sim_core::rng::{Rng, Xoshiro256StarStar};
use sim_core::time::{SimDuration, SimTime};

/// Shape parameters for the synthetic job stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Median job size in nodes.
    pub median_nodes: f64,
    /// Sigma of the log-normal node-count distribution.
    pub nodes_sigma: f64,
    /// Largest job the generator will emit (cap for the capability tail).
    pub max_nodes: u32,
    /// Weibull shape for reference runtimes (< 1 ⇒ heavy tail).
    pub runtime_shape: f64,
    /// Weibull scale for reference runtimes (seconds).
    pub runtime_scale_s: f64,
    /// Shortest job emitted (seconds).
    pub min_runtime_s: u64,
    /// Longest job emitted (seconds); ARCHER2's standard QOS caps at 24 h.
    pub max_runtime_s: u64,
    /// Walltime request padding factor range (users over-request).
    pub walltime_padding: (f64, f64),
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            median_nodes: 4.0,
            nodes_sigma: 1.3,
            max_nodes: 1024,
            runtime_shape: 0.9,
            runtime_scale_s: 3.0 * 3600.0,
            min_runtime_s: 600,
            max_runtime_s: 24 * 3600,
            walltime_padding: (1.1, 2.0),
        }
    }
}

/// Deterministic job-stream generator.
#[derive(Debug, Clone)]
pub struct JobGenerator {
    config: GeneratorConfig,
    mix: WorkloadMix,
    area_apps: Vec<Vec<AppModel>>,
    rng: Xoshiro256StarStar,
    next_id: u64,
    nodes_dist: LogNormal,
    runtime_dist: Weibull,
    padding_dist: Uniform,
}

impl JobGenerator {
    /// Build a generator drawing apps from `catalog` with the given mix.
    pub fn new(config: GeneratorConfig, mix: WorkloadMix, catalog: &Catalog, seed: u64) -> Self {
        let area_apps = crate::mix::ResearchArea::ALL
            .iter()
            .map(|&a| catalog.apps_for_area(a))
            .collect();
        JobGenerator {
            config,
            mix,
            area_apps,
            rng: Xoshiro256StarStar::seeded(seed),
            next_id: 0,
            nodes_dist: LogNormal::new(config.median_nodes.ln(), config.nodes_sigma),
            runtime_dist: Weibull::new(config.runtime_shape, config.runtime_scale_s),
            padding_dist: Uniform::new(config.walltime_padding.0, config.walltime_padding.1),
        }
    }

    /// Shape parameters.
    pub fn config(&self) -> &GeneratorConfig {
        &self.config
    }

    /// Number of jobs generated so far.
    pub fn generated(&self) -> u64 {
        self.next_id
    }

    /// Generate the next job, submitted at `now`.
    pub fn next_job(&mut self, now: SimTime) -> Job {
        let area = self.mix.sample(&mut self.rng);
        let area_idx = crate::mix::ResearchArea::ALL
            .iter()
            .position(|&a| a == area)
            .expect("sampled area is known");
        let apps = &self.area_apps[area_idx];
        let app = apps[self.rng.index(apps.len())].clone();

        let nodes = (self.nodes_dist.sample(&mut self.rng).round() as u32)
            .clamp(1, self.config.max_nodes);
        let runtime_s = (self.runtime_dist.sample(&mut self.rng) as u64)
            .clamp(self.config.min_runtime_s, self.config.max_runtime_s);
        let padding = self.padding_dist.sample(&mut self.rng);
        let walltime_s = ((runtime_s as f64 * padding) as u64).min(self.config.max_runtime_s.max(runtime_s));

        let id = JobId(self.next_id);
        self.next_id += 1;
        Job::new(
            id,
            app,
            nodes,
            SimDuration::from_secs(runtime_s),
            SimDuration::from_secs(walltime_s),
            now,
        )
    }

    /// Generate a batch of jobs all submitted at `now`.
    pub fn batch(&mut self, now: SimTime, n: usize) -> Vec<Job> {
        (0..n).map(|_| self.next_job(now)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpc_power::{NodePowerModel, NodeSpec, SiliconLottery};
    use sim_core::stats::OnlineStats;

    fn generator(seed: u64) -> JobGenerator {
        let nm = NodePowerModel::new(NodeSpec::default());
        let lot = SiliconLottery::default();
        let cat = Catalog::calibrated(&nm, &lot);
        JobGenerator::new(GeneratorConfig::default(), WorkloadMix::archer2(), &cat, seed)
    }

    #[test]
    fn jobs_have_unique_increasing_ids() {
        let mut g = generator(1);
        let jobs = g.batch(SimTime::EPOCH, 100);
        for (i, j) in jobs.iter().enumerate() {
            assert_eq!(j.id.0, i as u64);
        }
        assert_eq!(g.generated(), 100);
    }

    #[test]
    fn job_shapes_respect_bounds() {
        let mut g = generator(2);
        for _ in 0..5_000 {
            let j = g.next_job(SimTime::EPOCH);
            assert!(j.nodes >= 1 && j.nodes <= 1024);
            assert!(j.reference_runtime.as_secs() >= 600);
            assert!(j.reference_runtime.as_secs() <= 24 * 3600);
            assert!(j.requested_walltime.as_secs() >= j.reference_runtime.as_secs());
        }
    }

    #[test]
    fn median_job_size_near_config() {
        let mut g = generator(3);
        let mut sizes: Vec<u32> = (0..20_000).map(|_| g.next_job(SimTime::EPOCH).nodes).collect();
        sizes.sort_unstable();
        let median = sizes[sizes.len() / 2];
        assert!((3..=6).contains(&median), "median nodes {median}");
    }

    #[test]
    fn runtime_mean_plausible() {
        let mut g = generator(4);
        let mut st = OnlineStats::new();
        for _ in 0..20_000 {
            st.push(g.next_job(SimTime::EPOCH).reference_runtime.as_hours_f64());
        }
        // Weibull(0.9, 3 h) truncated to [10 min, 24 h] ⇒ mean near 3 h.
        assert!((2.0..=4.5).contains(&st.mean()), "mean runtime {} h", st.mean());
    }

    #[test]
    fn area_mix_shows_in_app_names() {
        let mut g = generator(5);
        let mut materials = 0;
        let n = 20_000;
        for _ in 0..n {
            let j = g.next_job(SimTime::EPOCH);
            if j.app.area == crate::mix::ResearchArea::MaterialsScience {
                materials += 1;
            }
        }
        let frac = materials as f64 / n as f64;
        assert!((frac - 0.40).abs() < 0.02, "materials fraction {frac}");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = generator(42);
        let mut b = generator(42);
        for _ in 0..200 {
            let ja = a.next_job(SimTime::EPOCH);
            let jb = b.next_job(SimTime::EPOCH);
            assert_eq!(ja, jb);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = generator(1);
        let mut b = generator(2);
        let ja: Vec<u32> = (0..50).map(|_| a.next_job(SimTime::EPOCH).nodes).collect();
        let jb: Vec<u32> = (0..50).map(|_| b.next_job(SimTime::EPOCH).nodes).collect();
        assert_ne!(ja, jb);
    }
}
