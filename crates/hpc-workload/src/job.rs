//! Batch jobs: the unit of work the scheduler places on nodes.

use crate::app::AppModel;
use hpc_power::FreqSetting;
use serde::{Deserialize, Serialize};
use sim_core::time::{SimDuration, SimTime};

/// Unique job identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job{}", self.0)
    }
}

/// Lifecycle state of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobState {
    /// Waiting in the queue.
    Pending,
    /// Running on allocated nodes.
    Running,
    /// Finished.
    Completed,
}

/// A batch job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Job {
    /// Identifier.
    pub id: JobId,
    /// The application profile the job runs.
    pub app: AppModel,
    /// Number of whole nodes requested (ARCHER2 allocates whole nodes).
    pub nodes: u32,
    /// Runtime the job would take at the reference operating point
    /// (2.25 GHz+turbo, performance determinism).
    pub reference_runtime: SimDuration,
    /// Walltime the user requested (affects backfill, not execution).
    pub requested_walltime: SimDuration,
    /// Submission instant.
    pub submitted_at: SimTime,
    /// Per-job frequency override (the paper: users and the module system
    /// could reset the CPU frequency per job). `None` = facility default.
    pub freq_override: Option<FreqSetting>,
    /// Current state.
    pub state: JobState,
}

impl Job {
    /// Create a pending job.
    ///
    /// # Panics
    /// Panics if `nodes == 0` or the reference runtime is zero.
    pub fn new(
        id: JobId,
        app: AppModel,
        nodes: u32,
        reference_runtime: SimDuration,
        requested_walltime: SimDuration,
        submitted_at: SimTime,
    ) -> Self {
        assert!(nodes > 0, "jobs need at least one node");
        assert!(!reference_runtime.is_zero(), "jobs need a positive runtime");
        Job {
            id,
            app,
            nodes,
            reference_runtime,
            requested_walltime: if requested_walltime.as_secs() >= reference_runtime.as_secs() {
                requested_walltime
            } else {
                reference_runtime
            },
            submitted_at,
            freq_override: None,
            state: JobState::Pending,
        }
    }

    /// Node-hours at the reference operating point.
    pub fn reference_node_hours(&self) -> f64 {
        self.nodes as f64 * self.reference_runtime.as_hours_f64()
    }

    /// Actual runtime when executed with a runtime ratio `rt_ratio`
    /// (relative to reference; from [`AppModel::runtime_ratio`]).
    pub fn actual_runtime(&self, rt_ratio: f64) -> SimDuration {
        debug_assert!(rt_ratio > 0.0, "runtime ratio must be positive");
        SimDuration::from_secs((self.reference_runtime.as_secs() as f64 * rt_ratio).round().max(1.0) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mix::ResearchArea;

    fn job() -> Job {
        Job::new(
            JobId(1),
            AppModel::generic(ResearchArea::Engineering),
            4,
            SimDuration::from_hours(2),
            SimDuration::from_hours(3),
            SimTime::from_unix(100),
        )
    }

    #[test]
    fn node_hours() {
        assert!((job().reference_node_hours() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn actual_runtime_scales() {
        let j = job();
        assert_eq!(j.actual_runtime(1.0), SimDuration::from_hours(2));
        assert_eq!(j.actual_runtime(1.25), SimDuration::from_secs(9000));
        // Never rounds to zero.
        assert_eq!(j.actual_runtime(1e-9).as_secs(), 1);
    }

    #[test]
    fn walltime_clamped_to_runtime() {
        let j = Job::new(
            JobId(2),
            AppModel::generic(ResearchArea::Other),
            1,
            SimDuration::from_hours(4),
            SimDuration::from_hours(1), // shorter than the runtime
            SimTime::EPOCH,
        );
        assert_eq!(j.requested_walltime, SimDuration::from_hours(4));
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        let _ = Job::new(
            JobId(3),
            AppModel::generic(ResearchArea::Other),
            0,
            SimDuration::from_hours(1),
            SimDuration::from_hours(1),
            SimTime::EPOCH,
        );
    }

    #[test]
    fn display_and_state() {
        let j = job();
        assert_eq!(j.id.to_string(), "job1");
        assert_eq!(j.state, JobState::Pending);
        assert_eq!(j.freq_override, None);
    }
}
