//! The research-area composition of the ARCHER2 workload.
//!
//! §1.1 of the paper: "the major research areas being materials science,
//! climate/ocean modelling, biomolecular modelling, engineering, mineral
//! physics, seismology and plasma physics". The weights below follow the
//! published ARCHER2 usage reports (materials science codes VASP/CASTEP/CP2K
//! dominate, followed by climate/ocean and biomolecular work) and determine
//! which application profile each generated job runs.

use serde::{Deserialize, Serialize};
use sim_core::dist::{Categorical, Distribution};
use sim_core::rng::Rng;

/// Research areas active on ARCHER2 (§1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResearchArea {
    /// Materials science (VASP, CASTEP, CP2K, ONETEP) — the largest share.
    MaterialsScience,
    /// Climate and ocean modelling.
    ClimateOcean,
    /// Biomolecular modelling (GROMACS, NAMD).
    Biomolecular,
    /// Engineering / CFD (Nektar++, OpenSBLI).
    Engineering,
    /// Mineral physics.
    MineralPhysics,
    /// Seismology.
    Seismology,
    /// Plasma physics.
    PlasmaPhysics,
    /// Everything else (chemistry, astro, data science).
    Other,
}

impl ResearchArea {
    /// All areas in declaration order.
    pub const ALL: [ResearchArea; 8] = [
        ResearchArea::MaterialsScience,
        ResearchArea::ClimateOcean,
        ResearchArea::Biomolecular,
        ResearchArea::Engineering,
        ResearchArea::MineralPhysics,
        ResearchArea::Seismology,
        ResearchArea::PlasmaPhysics,
        ResearchArea::Other,
    ];
}

impl std::fmt::Display for ResearchArea {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ResearchArea::MaterialsScience => "materials science",
            ResearchArea::ClimateOcean => "climate/ocean modelling",
            ResearchArea::Biomolecular => "biomolecular modelling",
            ResearchArea::Engineering => "engineering",
            ResearchArea::MineralPhysics => "mineral physics",
            ResearchArea::Seismology => "seismology",
            ResearchArea::PlasmaPhysics => "plasma physics",
            ResearchArea::Other => "other",
        };
        f.write_str(s)
    }
}

/// Node-hour weights per research area.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadMix {
    weights: Vec<f64>,
    #[serde(skip)]
    sampler: Option<Categorical>,
}

impl PartialEq for WorkloadMix {
    fn eq(&self, other: &Self) -> bool {
        // The sampler is a pure function of the weights.
        self.weights == other.weights
    }
}

impl WorkloadMix {
    /// The ARCHER2-like default mix (node-hour shares).
    pub fn archer2() -> Self {
        // Shares follow the HPC-JEEP usage reports (paper ref [3]):
        // materials science ≈ 40 %, climate/ocean ≈ 20 %, bio ≈ 10 %, …
        WorkloadMix::new(vec![0.40, 0.20, 0.10, 0.10, 0.06, 0.05, 0.05, 0.04])
    }

    /// Build from explicit weights (one per [`ResearchArea::ALL`] entry).
    ///
    /// # Panics
    /// Panics if the weight count differs from the area count or the
    /// weights are invalid for a categorical distribution.
    pub fn new(weights: Vec<f64>) -> Self {
        assert_eq!(weights.len(), ResearchArea::ALL.len(), "one weight per research area");
        let sampler = Categorical::new(&weights);
        WorkloadMix {
            weights,
            sampler: Some(sampler),
        }
    }

    /// Normalised share of an area.
    pub fn share(&self, area: ResearchArea) -> f64 {
        let total: f64 = self.weights.iter().sum();
        let idx = ResearchArea::ALL.iter().position(|a| *a == area).expect("known area");
        self.weights[idx] / total
    }

    /// Draw a research area according to the mix.
    ///
    /// A mix that arrived over serde has no cached sampler (the sampler is
    /// `#[serde(skip)]` — it is a pure function of the weights); in that
    /// case one is rebuilt on the fly, so a deserialised mix samples the
    /// identical sequence a constructed one does.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> ResearchArea {
        match self.sampler.as_ref() {
            Some(sampler) => ResearchArea::ALL[sampler.sample(rng)],
            None => ResearchArea::ALL[Categorical::new(&self.weights).sample(rng)],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::rng::Xoshiro256StarStar;

    #[test]
    fn archer2_mix_sums_to_one() {
        let mix = WorkloadMix::archer2();
        let total: f64 = ResearchArea::ALL.iter().map(|&a| mix.share(a)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn materials_science_dominates() {
        // §1.1 lists materials science first among the major areas.
        let mix = WorkloadMix::archer2();
        let ms = mix.share(ResearchArea::MaterialsScience);
        for &a in &ResearchArea::ALL[1..] {
            assert!(ms > mix.share(a), "materials science should be the largest share");
        }
    }

    #[test]
    fn sampling_matches_shares() {
        let mix = WorkloadMix::archer2();
        let mut rng = Xoshiro256StarStar::seeded(5);
        let n = 100_000;
        let mut count = 0u32;
        for _ in 0..n {
            if mix.sample(&mut rng) == ResearchArea::MaterialsScience {
                count += 1;
            }
        }
        let frac = count as f64 / n as f64;
        assert!((frac - 0.40).abs() < 0.01, "materials share {frac}");
    }

    #[test]
    #[should_panic(expected = "one weight per research area")]
    fn wrong_weight_count_rejected() {
        let _ = WorkloadMix::new(vec![1.0, 2.0]);
    }

    #[test]
    fn display_names() {
        assert_eq!(ResearchArea::ClimateOcean.to_string(), "climate/ocean modelling");
    }
}
