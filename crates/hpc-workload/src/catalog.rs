//! The calibrated ARCHER2 application-benchmark catalog.
//!
//! One record per benchmark row of the paper's Tables 3 and 4. Calibration
//! works in three steps, all pure functions of the power model:
//!
//! 1. **β from the measured performance ratio** (Table 4): the DVFS runtime
//!    model inverts analytically — `β = (1/r − 1) / (f_ref/2.0 − 1)` —
//!    reproducing the paper's own observation that the large performance
//!    swings (down to 0.74 for LAMMPS) are consistent with an effective
//!    reference frequency near 2.8 GHz, not 2.25 GHz.
//! 2. **CPU activity from the measured energy ratio**: a dense scan plus
//!    local refinement finds the activity factor whose modelled node-power
//!    ratio best explains the measured energy ratio.
//! 3. **Residuals**: whatever gap remains (typically a few per cent — e.g.
//!    Nektar++'s unusually steep 0.80/0.80 row) is recorded as an explicit
//!    multiplicative residual so the forward model reproduces the paper's
//!    numbers exactly while staying physical everywhere else.
//!
//! The same procedure calibrates the Table 3 (determinism mode) residuals
//! for the three benchmarks measured there.

use crate::app::{AppModel, OperatingPoint};
use crate::mix::ResearchArea;
use hpc_power::{NodePowerModel, SiliconLottery};
use serde::{Deserialize, Serialize};

/// A (performance ratio, energy ratio) pair as printed in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PaperRatios {
    /// Performance ratio (new / old configuration), ≤ 1 means slower.
    pub perf: f64,
    /// Energy ratio (new / old configuration), ≤ 1 means less energy.
    pub energy: f64,
}

impl PaperRatios {
    /// Construct a pair.
    pub const fn new(perf: f64, energy: f64) -> Self {
        PaperRatios { perf, energy }
    }

    /// The implied node-power ratio `energy × perf` (since `E = P·t` and
    /// `perf = t_old/t_new`).
    pub fn power_ratio(&self) -> f64 {
        self.energy * self.perf
    }
}

/// One benchmark row: the paper's data plus the calibrated model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkRecord {
    /// Benchmark label as printed in the paper, e.g. `"CASTEP Al Slab"`.
    pub benchmark: String,
    /// Node count used in the paper's measurement.
    pub nodes: u32,
    /// Table 4 ratios (2.0 GHz vs 2.25 GHz+turbo), if measured.
    pub table4: Option<PaperRatios>,
    /// Table 3 ratios (performance vs power determinism), if measured.
    pub table3: Option<PaperRatios>,
    /// Node count of the Table 3 measurement (differs from `nodes` for the
    /// codes measured in both tables).
    pub table3_nodes: Option<u32>,
    /// Benchmark label of the Table 3 measurement (the paper pairs some
    /// codes with a different workload there, e.g. VASP TiO2 vs VASP CdTe).
    pub table3_label: Option<String>,
    /// The calibrated application model.
    pub app: AppModel,
}

/// The full calibrated catalog.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Catalog {
    records: Vec<BenchmarkRecord>,
}

/// The paper's Table 4 rows: (benchmark, area, nodes, perf, energy).
const TABLE4_ROWS: &[(&str, ResearchArea, u32, f64, f64)] = &[
    ("CASTEP Al Slab", ResearchArea::MaterialsScience, 4, 0.93, 0.88),
    ("CP2K H2O 2048", ResearchArea::MaterialsScience, 4, 0.91, 0.93),
    ("GROMACS 1400k", ResearchArea::Biomolecular, 3, 0.83, 0.92),
    ("LAMMPS Ethanol", ResearchArea::Biomolecular, 4, 0.74, 0.92),
    ("Nektar++ TGV 128 DoF", ResearchArea::Engineering, 2, 0.80, 0.80),
    ("ONETEP hBN-BP-hBN", ResearchArea::MaterialsScience, 4, 0.92, 0.82),
    ("VASP CdTe", ResearchArea::MaterialsScience, 8, 0.95, 0.88),
];

/// The paper's Table 3 rows: (benchmark, nodes, perf, energy). CASTEP and
/// VASP reuse the Table 4 profiles (different workloads/node counts but the
/// same codes); OpenSBLI appears only here.
const TABLE3_ROWS: &[(&str, u32, f64, f64)] = &[
    ("CASTEP Al Slab", 16, 0.99, 0.94),
    ("OpenSBLI TGV 1024^3", 32, 1.00, 0.90),
    ("VASP TiO2", 32, 0.99, 0.93),
];

impl Catalog {
    /// Build the catalog, running the calibration against the supplied
    /// power model.
    pub fn calibrated(node_model: &NodePowerModel, lottery: &SiliconLottery) -> Self {
        let mut records: Vec<BenchmarkRecord> = TABLE4_ROWS
            .iter()
            .map(|&(name, area, nodes, perf, energy)| {
                let paper = PaperRatios::new(perf, energy);
                let app = fit_table4(name, area, paper, node_model, lottery);
                BenchmarkRecord {
                    benchmark: name.to_string(),
                    nodes,
                    table4: Some(paper),
                    table3: None,
                    table3_nodes: None,
                    table3_label: None,
                    app,
                }
            })
            .collect();

        // Table 3 calibration: attach to the matching code, or create the
        // OpenSBLI-only record.
        for &(name, nodes, perf, energy) in TABLE3_ROWS {
            let paper3 = PaperRatios::new(perf, energy);
            let code = name.split_whitespace().next().expect("non-empty name");
            if let Some(rec) = records.iter_mut().find(|r| r.benchmark.starts_with(code)) {
                fit_table3(&mut rec.app, paper3, node_model, lottery);
                rec.table3 = Some(paper3);
                rec.table3_nodes = Some(nodes);
                rec.table3_label = Some(name.to_string());
            } else {
                // OpenSBLI: a structured-grid compressible CFD code; largely
                // memory-bandwidth bound, moderate pipeline activity.
                let mut app = AppModel::raw(name, ResearchArea::Engineering, 0.25, 0.6, 0.75);
                fit_table3(&mut app, paper3, node_model, lottery);
                records.push(BenchmarkRecord {
                    benchmark: name.to_string(),
                    nodes,
                    table4: None,
                    table3: Some(paper3),
                    table3_nodes: Some(nodes),
                    table3_label: Some(name.to_string()),
                    app,
                });
            }
        }
        Catalog { records }
    }

    /// All benchmark records.
    pub fn records(&self) -> &[BenchmarkRecord] {
        &self.records
    }

    /// Records carrying Table 4 data, in paper order.
    pub fn table4_records(&self) -> impl Iterator<Item = &BenchmarkRecord> {
        self.records.iter().filter(|r| r.table4.is_some())
    }

    /// Records carrying Table 3 data, in paper order.
    pub fn table3_records(&self) -> impl Iterator<Item = &BenchmarkRecord> {
        self.records.iter().filter(|r| r.table3.is_some())
    }

    /// Find a record by benchmark name prefix (e.g. `"LAMMPS"`).
    pub fn find(&self, prefix: &str) -> Option<&BenchmarkRecord> {
        self.records.iter().find(|r| r.benchmark.starts_with(prefix))
    }

    /// Applications representative of a research area, used by the job
    /// generator. Falls back to a generic area profile when the paper's
    /// benchmark suite has no code for the area.
    pub fn apps_for_area(&self, area: ResearchArea) -> Vec<AppModel> {
        let mut apps: Vec<AppModel> = self
            .records
            .iter()
            .filter(|r| r.app.area == area)
            .map(|r| r.app.clone())
            .collect();
        if apps.is_empty() {
            apps.push(AppModel::generic(area));
        }
        apps
    }
}

/// Analytic β from a measured Table 4 performance ratio, given the
/// effective reference frequency.
fn beta_from_perf(perf_ratio: f64, f_ref: f64) -> f64 {
    debug_assert!(perf_ratio > 0.0 && perf_ratio <= 1.0);
    let slowdown = 1.0 / perf_ratio;
    ((slowdown - 1.0) / (f_ref / 2.0 - 1.0)).clamp(0.0, 1.0)
}

/// Build a candidate app for activity `a`, deriving β from the measured
/// perf ratio at that activity's reference frequency.
fn candidate(
    name: &str,
    area: ResearchArea,
    paper: PaperRatios,
    a: f64,
    node_model: &NodePowerModel,
    lottery: &SiliconLottery,
) -> AppModel {
    // f_ref depends on activity (heavier loads boost slightly lower), so β
    // and a are coupled; this closes the loop.
    let probe = AppModel::raw("probe", area, 0.5, a, 0.5);
    let f_ref = probe.effective_freq(OperatingPoint::AFTER_BIOS, node_model, lottery);
    let beta = beta_from_perf(paper.perf, f_ref);
    // Memory intensity anti-correlates with compute-boundness.
    let mem = ((1.0 - beta) * 0.85).clamp(0.05, 0.95);
    AppModel::raw(name, area, beta, a, mem)
}

/// Fit CPU activity and the off-reference power residual so the forward
/// model reproduces the Table 4 row exactly.
fn fit_table4(
    name: &str,
    area: ResearchArea,
    paper: PaperRatios,
    node_model: &NodePowerModel,
    lottery: &SiliconLottery,
) -> AppModel {
    // Dense scan over activity for the best unresidualed energy-ratio match.
    let mut best_a = 0.6;
    let mut best_err = f64::INFINITY;
    for i in 0..=160 {
        let a = 0.25 + 0.75 * i as f64 / 160.0; // [0.25, 1.0]
        let app = candidate(name, area, paper, a, node_model, lottery);
        let e = app.energy_ratio(OperatingPoint::AFTER_FREQ, node_model, lottery);
        let err = (e - paper.energy).abs();
        if err < best_err {
            best_err = err;
            best_a = a;
        }
    }
    let mut app = candidate(name, area, paper, best_a, node_model, lottery);

    // Close the residual gap exactly: the measured power ratio divided by
    // the modelled one becomes the off-reference power residual.
    let p_ref = app.node_power_w(OperatingPoint::AFTER_BIOS, node_model, lottery);
    let p_20 = app.node_power_w(OperatingPoint::AFTER_FREQ, node_model, lottery);
    let model_power_ratio = p_20 / p_ref;
    app.power_residual_offref = paper.power_ratio() / model_power_ratio;
    app
}

/// Fit the determinism-mode residuals so the forward model reproduces a
/// Table 3 row exactly.
fn fit_table3(
    app: &mut AppModel,
    paper: PaperRatios,
    node_model: &NodePowerModel,
    lottery: &SiliconLottery,
) {
    // Table 3's perf ratio is perf(PerfDet)/perf(PowerDet) = t_pd / t_ref,
    // i.e. exactly the model's runtime_ratio at the ORIGINAL point.
    app.perf_residual_powerdet = 1.0;
    let model_rt_pd = app.runtime_ratio(OperatingPoint::ORIGINAL, node_model, lottery);
    app.perf_residual_powerdet = paper.perf / model_rt_pd;

    // Energy ratio: E_ref/E_pd = P_ref / (P_pd · rt_pd) = paper.energy.
    app.power_residual_powerdet = 1.0;
    let p_ref = app.node_power_w(OperatingPoint::AFTER_BIOS, node_model, lottery);
    let p_pd_model = app.node_power_w(OperatingPoint::ORIGINAL, node_model, lottery);
    let rt_pd = app.runtime_ratio(OperatingPoint::ORIGINAL, node_model, lottery);
    let p_pd_required = p_ref / (paper.energy * rt_pd);
    app.power_residual_powerdet = p_pd_required / p_pd_model;
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpc_power::NodeSpec;

    fn env() -> (NodePowerModel, SiliconLottery) {
        (NodePowerModel::new(NodeSpec::default()), SiliconLottery::default())
    }

    #[test]
    fn catalog_has_all_paper_benchmarks() {
        let (nm, lot) = env();
        let cat = Catalog::calibrated(&nm, &lot);
        assert_eq!(cat.table4_records().count(), 7, "Table 4 has 7 rows");
        assert_eq!(cat.table3_records().count(), 3, "Table 3 has 3 rows");
        assert_eq!(cat.records().len(), 8, "7 Table-4 codes + OpenSBLI");
        for name in ["CASTEP", "CP2K", "GROMACS", "LAMMPS", "Nektar++", "ONETEP", "VASP", "OpenSBLI"] {
            assert!(cat.find(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn forward_model_reproduces_table4_exactly() {
        let (nm, lot) = env();
        let cat = Catalog::calibrated(&nm, &lot);
        for rec in cat.table4_records() {
            let paper = rec.table4.unwrap();
            let perf = rec.app.perf_ratio(OperatingPoint::AFTER_FREQ, &nm, &lot);
            let energy = rec.app.energy_ratio(OperatingPoint::AFTER_FREQ, &nm, &lot);
            assert!(
                (perf - paper.perf).abs() < 0.005,
                "{}: perf {perf:.3} vs paper {:.2}",
                rec.benchmark,
                paper.perf
            );
            assert!(
                (energy - paper.energy).abs() < 0.005,
                "{}: energy {energy:.3} vs paper {:.2}",
                rec.benchmark,
                paper.energy
            );
        }
    }

    #[test]
    fn forward_model_reproduces_table3_exactly() {
        let (nm, lot) = env();
        let cat = Catalog::calibrated(&nm, &lot);
        for rec in cat.table3_records() {
            let paper = rec.table3.unwrap();
            // perf(PerfDet)/perf(PowerDet) = runtime_ratio(ORIGINAL).
            let perf = rec.app.runtime_ratio(OperatingPoint::ORIGINAL, &nm, &lot);
            let e_ref = rec.app.energy_ratio(OperatingPoint::AFTER_BIOS, &nm, &lot);
            let e_pd = rec.app.energy_ratio(OperatingPoint::ORIGINAL, &nm, &lot);
            let energy = e_ref / e_pd;
            assert!(
                (perf - paper.perf).abs() < 0.005,
                "{}: T3 perf {perf:.3} vs paper {:.2}",
                rec.benchmark,
                paper.perf
            );
            assert!(
                (energy - paper.energy).abs() < 0.005,
                "{}: T3 energy {energy:.3} vs paper {:.2}",
                rec.benchmark,
                paper.energy
            );
        }
    }

    #[test]
    fn residuals_are_modest() {
        // The physical model should do most of the work; residuals stay
        // within ±15 %. (Nektar++'s 0.80/0.80 row is the stress case.)
        let (nm, lot) = env();
        let cat = Catalog::calibrated(&nm, &lot);
        for rec in cat.records() {
            let r = &rec.app;
            assert!(
                (0.85..=1.15).contains(&r.power_residual_offref),
                "{}: off-ref residual {}",
                rec.benchmark,
                r.power_residual_offref
            );
            assert!(
                (0.85..=1.15).contains(&r.power_residual_powerdet),
                "{}: det residual {}",
                rec.benchmark,
                r.power_residual_powerdet
            );
        }
    }

    #[test]
    fn lammps_is_most_compute_bound() {
        // LAMMPS Ethanol has the deepest perf drop (0.74) and must come out
        // with the highest β.
        let (nm, lot) = env();
        let cat = Catalog::calibrated(&nm, &lot);
        let lammps = &cat.find("LAMMPS").unwrap().app;
        for rec in cat.table4_records() {
            assert!(lammps.beta >= rec.app.beta, "{} beta {} > LAMMPS {}", rec.benchmark, rec.app.beta, lammps.beta);
        }
        assert!(lammps.beta > 0.8, "LAMMPS beta {}", lammps.beta);
    }

    #[test]
    fn vasp_is_least_compute_bound_in_table4() {
        let (nm, lot) = env();
        let cat = Catalog::calibrated(&nm, &lot);
        let vasp = &cat.find("VASP").unwrap().app;
        assert!(vasp.beta < 0.25, "VASP beta {}", vasp.beta);
    }

    #[test]
    fn apps_for_each_area_nonempty() {
        let (nm, lot) = env();
        let cat = Catalog::calibrated(&nm, &lot);
        for &area in &ResearchArea::ALL {
            let apps = cat.apps_for_area(area);
            assert!(!apps.is_empty());
            for a in &apps {
                assert_eq!(a.area, area);
            }
        }
    }

    #[test]
    fn materials_area_has_paper_codes() {
        let (nm, lot) = env();
        let cat = Catalog::calibrated(&nm, &lot);
        let apps = cat.apps_for_area(ResearchArea::MaterialsScience);
        assert!(apps.len() >= 4, "CASTEP, CP2K, ONETEP, VASP");
    }

    #[test]
    fn power_ratio_identity() {
        let p = PaperRatios::new(0.8, 0.9);
        assert!((p.power_ratio() - 0.72).abs() < 1e-12);
    }

    #[test]
    fn calibration_is_deterministic() {
        let (nm, lot) = env();
        let a = Catalog::calibrated(&nm, &lot);
        let b = Catalog::calibrated(&nm, &lot);
        assert_eq!(a, b);
    }
}
