//! Job-trace recording and JSON serialisation.
//!
//! The HPC-JEEP work the paper builds on (ref \[3\]) reports per-application
//! energy use from job accounting records; this module produces the same
//! kind of record from the simulation — one entry per completed job with
//! its shape, timing, operating point and energy — and round-trips it
//! through JSON so traces can be archived, diffed and replayed.

use crate::app::OperatingPoint;
use crate::job::JobId;
use crate::mix::ResearchArea;
use serde::{Deserialize, Serialize};
use sim_core::time::{SimDuration, SimTime};

/// One completed-job accounting record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// Job identifier.
    pub job: JobId,
    /// Application name.
    pub app: String,
    /// Research area.
    pub area: ResearchArea,
    /// Whole nodes used.
    pub nodes: u32,
    /// Submission instant.
    pub submitted: SimTime,
    /// Start instant.
    pub started: SimTime,
    /// End instant.
    pub ended: SimTime,
    /// Operating point the job ran at.
    pub op: OperatingPoint,
    /// Mean node power while running (W).
    pub node_power_w: f64,
}

impl TraceEntry {
    /// Queue wait before starting.
    pub fn wait(&self) -> SimDuration {
        self.started.saturating_since(self.submitted)
    }

    /// Execution time.
    pub fn runtime(&self) -> SimDuration {
        self.ended.saturating_since(self.started)
    }

    /// Node-hours consumed.
    pub fn node_hours(&self) -> f64 {
        self.nodes as f64 * self.runtime().as_hours_f64()
    }

    /// Energy consumed on compute nodes (kWh) — the HPC-JEEP metric.
    pub fn energy_kwh(&self) -> f64 {
        self.node_power_w * self.nodes as f64 * self.runtime().as_hours_f64() / 1000.0
    }
}

/// A whole trace: entries ordered by end time.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct JobTrace {
    entries: Vec<TraceEntry>,
}

impl JobTrace {
    /// Empty trace.
    pub fn new() -> Self {
        JobTrace::default()
    }

    /// Append a completed job (entries must arrive in end-time order, as
    /// they do from a simulation).
    ///
    /// # Panics
    /// Panics if the entry ends before the previous one (out-of-order
    /// accounting corrupts downstream windowed statistics).
    pub fn push(&mut self, entry: TraceEntry) {
        if let Some(last) = self.entries.last() {
            assert!(entry.ended >= last.ended, "trace entries must be end-ordered");
        }
        self.entries.push(entry);
    }

    /// All entries.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the trace empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total node-hours in the trace.
    pub fn total_node_hours(&self) -> f64 {
        self.entries.iter().map(TraceEntry::node_hours).sum()
    }

    /// Total compute-node energy (kWh).
    pub fn total_energy_kwh(&self) -> f64 {
        self.entries.iter().map(TraceEntry::energy_kwh).sum()
    }

    /// Node-hour share per application name, descending — the HPC-JEEP
    /// "who uses the machine" table.
    pub fn node_hours_by_app(&self) -> Vec<(String, f64)> {
        let mut map: std::collections::HashMap<&str, f64> = std::collections::HashMap::new();
        for e in &self.entries {
            *map.entry(e.app.as_str()).or_default() += e.node_hours();
        }
        let mut v: Vec<(String, f64)> = map.into_iter().map(|(k, v)| (k.to_string(), v)).collect();
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite node-hours"));
        v
    }

    /// Mean energy per node-hour (kWh) — the fleet efficiency figure.
    pub fn mean_kwh_per_node_hour(&self) -> f64 {
        let nh = self.total_node_hours();
        if nh == 0.0 {
            0.0
        } else {
            self.total_energy_kwh() / nh
        }
    }

    /// Serialise to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("trace serialises")
    }

    /// Parse from JSON.
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpc_power::{DeterminismMode, FreqSetting};

    fn entry(id: u64, end_h: u64) -> TraceEntry {
        TraceEntry {
            job: JobId(id),
            app: if id.is_multiple_of(2) { "VASP CdTe" } else { "LAMMPS Ethanol" }.to_string(),
            area: ResearchArea::MaterialsScience,
            nodes: 4,
            submitted: SimTime::from_unix(0),
            started: SimTime::from_unix(3600),
            ended: SimTime::from_unix(3600 + end_h * 3600),
            op: OperatingPoint {
                setting: FreqSetting::Mid2000,
                mode: DeterminismMode::Performance,
            },
            node_power_w: 400.0,
        }
    }

    #[test]
    fn entry_derived_quantities() {
        let e = entry(1, 2);
        assert_eq!(e.wait().as_secs(), 3600);
        assert_eq!(e.runtime().as_secs(), 7200);
        assert!((e.node_hours() - 8.0).abs() < 1e-12);
        // 400 W × 4 nodes × 2 h = 3.2 kWh.
        assert!((e.energy_kwh() - 3.2).abs() < 1e-12);
    }

    #[test]
    fn trace_aggregates() {
        let mut t = JobTrace::new();
        t.push(entry(0, 1));
        t.push(entry(1, 2));
        t.push(entry(2, 3));
        assert_eq!(t.len(), 3);
        assert!((t.total_node_hours() - 24.0).abs() < 1e-12);
        assert!((t.total_energy_kwh() - 9.6).abs() < 1e-9);
        assert!((t.mean_kwh_per_node_hour() - 0.4).abs() < 1e-12);

        let by_app = t.node_hours_by_app();
        assert_eq!(by_app[0].0, "VASP CdTe"); // jobs 0 and 2: 4 + 12 h
        assert!((by_app[0].1 - 16.0).abs() < 1e-12);
        assert!((by_app[1].1 - 8.0).abs() < 1e-12);
    }

    #[test]
    fn json_roundtrip() {
        let mut t = JobTrace::new();
        t.push(entry(0, 1));
        t.push(entry(1, 5));
        let json = t.to_json();
        let back = JobTrace::from_json(&json).unwrap();
        assert_eq!(t, back);
        assert!(json.contains("VASP CdTe"));
    }

    #[test]
    fn empty_trace_is_sane() {
        let t = JobTrace::new();
        assert!(t.is_empty());
        assert_eq!(t.mean_kwh_per_node_hour(), 0.0);
        assert!(JobTrace::from_json(&t.to_json()).unwrap().is_empty());
    }

    #[test]
    #[should_panic(expected = "end-ordered")]
    fn out_of_order_rejected() {
        let mut t = JobTrace::new();
        t.push(entry(0, 5));
        t.push(entry(1, 1));
    }
}
