//! Per-domain availability accounting for degraded-mode campaigns.
//!
//! A campaign running under fault injection needs to *measure* how
//! degraded it was: per-domain availability (fraction of unit-time in
//! service), observed MTBF/MTTR, and the instantaneous down-unit count.
//! [`HealthMonitor`] tracks one [`AvailabilityTracker`] per domain class
//! and is updated from the same fault events the facility applies, so the
//! accounting is exact, not sampled.

use crate::domains::{FaultDomain, FaultKind};

/// The four fault-domain classes a facility decomposes into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DomainClass {
    /// Compute nodes.
    Node,
    /// Compute cabinets (PSU domain).
    Cabinet,
    /// CDU cooling loops.
    Cdu,
    /// Dragonfly switches.
    Switch,
}

impl DomainClass {
    /// The class of a domain.
    pub fn of(domain: FaultDomain) -> DomainClass {
        match domain {
            FaultDomain::Node(_) => DomainClass::Node,
            FaultDomain::Cabinet(_) => DomainClass::Cabinet,
            FaultDomain::CduLoop(_) => DomainClass::Cdu,
            FaultDomain::Switch(_) => DomainClass::Switch,
        }
    }
}

/// Time-weighted availability accounting for one domain class.
///
/// `record_down`/`record_up` must be called with non-decreasing times.
/// Nested failures of one instance (a cabinet tripped by its PSU *and* by
/// its CDU loop) are reference-counted: the instance counts as down until
/// every overlapping failure is repaired.
#[derive(Debug, Clone)]
pub struct AvailabilityTracker {
    instances: u32,
    /// Down-refcount per instance index.
    down: Vec<u32>,
    /// Instances currently down (refcount > 0).
    down_now: u32,
    /// Accumulated instance-seconds of downtime.
    down_unit_s: f64,
    /// Last event time seen.
    last_s: u64,
    /// Failure transitions (refcount 0 → 1).
    failures: u64,
    /// Repair transitions (refcount 1 → 0).
    repairs: u64,
}

impl AvailabilityTracker {
    /// A tracker over `instances` units, all up, clock at 0.
    pub fn new(instances: u32) -> Self {
        AvailabilityTracker {
            instances,
            down: vec![0; instances as usize],
            down_now: 0,
            down_unit_s: 0.0,
            last_s: 0,
            failures: 0,
            repairs: 0,
        }
    }

    fn advance(&mut self, at_s: u64) {
        let dt = at_s.saturating_sub(self.last_s);
        self.down_unit_s += dt as f64 * f64::from(self.down_now);
        self.last_s = self.last_s.max(at_s);
    }

    /// An instance goes down at `at_s` (idempotent via refcount).
    pub fn record_down(&mut self, index: usize, at_s: u64) {
        self.advance(at_s);
        if self.down[index] == 0 {
            self.down_now += 1;
            self.failures += 1;
        }
        self.down[index] += 1;
    }

    /// An instance comes back at `at_s`. Unmatched ups are ignored.
    pub fn record_up(&mut self, index: usize, at_s: u64) {
        self.advance(at_s);
        if self.down[index] == 0 {
            return; // spurious repair; nothing was down
        }
        self.down[index] -= 1;
        if self.down[index] == 0 {
            self.down_now -= 1;
            self.repairs += 1;
        }
    }

    /// Instances currently down.
    pub fn down_now(&self) -> u32 {
        self.down_now
    }

    /// Failure transitions observed.
    pub fn failures(&self) -> u64 {
        self.failures
    }

    /// Completed repairs observed.
    pub fn repairs(&self) -> u64 {
        self.repairs
    }

    /// Time-weighted availability over `[0, at_s]`: 1 minus the fraction
    /// of instance-time spent down. 1.0 for an empty class or zero span.
    pub fn availability(&self, at_s: u64) -> f64 {
        if self.instances == 0 || at_s == 0 {
            return 1.0;
        }
        let residual = at_s.saturating_sub(self.last_s) as f64 * f64::from(self.down_now);
        let down = self.down_unit_s + residual;
        (1.0 - down / (at_s as f64 * f64::from(self.instances))).clamp(0.0, 1.0)
    }

    /// Observed mean time between failures over `[0, at_s]`, in hours
    /// (`instance-hours elapsed / failures`); infinite with no failures.
    pub fn mtbf_hours(&self, at_s: u64) -> f64 {
        if self.failures == 0 {
            return f64::INFINITY;
        }
        at_s as f64 * f64::from(self.instances) / 3600.0 / self.failures as f64
    }

    /// Observed mean time to repair over `[0, at_s]`, in hours (downtime /
    /// completed repairs); NaN with no completed repairs.
    pub fn mttr_hours(&self, at_s: u64) -> f64 {
        if self.repairs == 0 {
            return f64::NAN;
        }
        let residual = at_s.saturating_sub(self.last_s) as f64 * f64::from(self.down_now);
        (self.down_unit_s + residual) / 3600.0 / self.repairs as f64
    }
}

/// Availability accounting across every domain class of one facility.
#[derive(Debug, Clone)]
pub struct HealthMonitor {
    nodes: AvailabilityTracker,
    cabinets: AvailabilityTracker,
    cdus: AvailabilityTracker,
    switches: AvailabilityTracker,
}

impl HealthMonitor {
    /// A monitor for a facility of the given shape, everything up.
    pub fn new(nodes: u32, cabinets: u32, cdus: u32, switches: u32) -> Self {
        HealthMonitor {
            nodes: AvailabilityTracker::new(nodes),
            cabinets: AvailabilityTracker::new(cabinets),
            cdus: AvailabilityTracker::new(cdus),
            switches: AvailabilityTracker::new(switches),
        }
    }

    /// Apply one fault transition at `at_s` seconds from the start.
    pub fn record(&mut self, kind: FaultKind, at_s: u64) {
        let (domain, down) = match kind {
            FaultKind::Down(d) => (d, true),
            FaultKind::Up(d) => (d, false),
        };
        let (tracker, index) = match domain {
            FaultDomain::Node(n) => (&mut self.nodes, n.index()),
            FaultDomain::Cabinet(c) => (&mut self.cabinets, c.index()),
            FaultDomain::CduLoop(d) => (&mut self.cdus, d.index()),
            FaultDomain::Switch(s) => (&mut self.switches, s.index()),
        };
        if down {
            tracker.record_down(index, at_s);
        } else {
            tracker.record_up(index, at_s);
        }
    }

    /// The tracker for one class.
    pub fn class(&self, class: DomainClass) -> &AvailabilityTracker {
        match class {
            DomainClass::Node => &self.nodes,
            DomainClass::Cabinet => &self.cabinets,
            DomainClass::Cdu => &self.cdus,
            DomainClass::Switch => &self.switches,
        }
    }

    /// Total failure transitions across every class.
    pub fn total_failures(&self) -> u64 {
        self.nodes.failures()
            + self.cabinets.failures()
            + self.cdus.failures()
            + self.switches.failures()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpc_topo::{CabinetId, NodeId};

    #[test]
    fn availability_integrates_downtime() {
        let mut t = AvailabilityTracker::new(10);
        t.record_down(3, 100);
        t.record_up(3, 300);
        // 200 s down out of 10 × 1000 s.
        assert!((t.availability(1_000) - (1.0 - 200.0 / 10_000.0)).abs() < 1e-12);
        assert_eq!(t.failures(), 1);
        assert_eq!(t.repairs(), 1);
        assert!((t.mttr_hours(1_000) - 200.0 / 3600.0).abs() < 1e-12);
        assert!((t.mtbf_hours(1_000) - 10_000.0 / 3600.0).abs() < 1e-9);
    }

    #[test]
    fn nested_failures_are_refcounted() {
        let mut t = AvailabilityTracker::new(4);
        t.record_down(0, 0); // PSU trip
        t.record_down(0, 50); // CDU drain of the same cabinet
        assert_eq!(t.down_now(), 1, "one instance, two reasons");
        assert_eq!(t.failures(), 1);
        t.record_up(0, 100); // PSU repaired, still draining
        assert_eq!(t.down_now(), 1);
        assert_eq!(t.repairs(), 0);
        t.record_up(0, 200);
        assert_eq!(t.down_now(), 0);
        assert_eq!(t.repairs(), 1);
        // Down for the whole [0, 200] span.
        assert!((t.availability(400) - (1.0 - 200.0 / 1_600.0)).abs() < 1e-12);
    }

    #[test]
    fn spurious_repair_is_ignored() {
        let mut t = AvailabilityTracker::new(2);
        t.record_up(1, 100);
        assert_eq!(t.down_now(), 0);
        assert_eq!(t.repairs(), 0);
        assert_eq!(t.availability(1_000), 1.0);
    }

    #[test]
    fn open_failures_count_in_availability() {
        let mut t = AvailabilityTracker::new(1);
        t.record_down(0, 0);
        // Never repaired: availability at 100 s is 0.
        assert!(t.availability(100).abs() < 1e-12);
        assert!(t.mttr_hours(100).is_nan() || t.repairs() == 0);
    }

    #[test]
    fn monitor_routes_classes() {
        let mut m = HealthMonitor::new(8, 2, 1, 4);
        m.record(FaultKind::Down(FaultDomain::Node(NodeId(3))), 10);
        m.record(FaultKind::Down(FaultDomain::Cabinet(CabinetId(1))), 20);
        m.record(FaultKind::Up(FaultDomain::Node(NodeId(3))), 30);
        assert_eq!(m.class(DomainClass::Node).failures(), 1);
        assert_eq!(m.class(DomainClass::Node).down_now(), 0);
        assert_eq!(m.class(DomainClass::Cabinet).down_now(), 1);
        assert_eq!(m.total_failures(), 2);
    }
}
