//! # hpc-faults
//!
//! Facility-scale fault injection: deterministic, seedable schedules of
//! *correlated* hardware failures derived from the facility topology, plus
//! sensor-fault models for the cabinet power meters.
//!
//! The paper's 14-month measurement campaign visibly survives real
//! operational events — node failures, cabinet-level power events, and
//! gaps/glitches in the cabinet meters (Figures 1–3). This crate provides
//! the machinery to replay such events against the simulated facility:
//!
//! - [`domains`] — fault domains (node, cabinet PSU, CDU cooling loop,
//!   dragonfly switch), domain→node membership maps, and the seeded
//!   schedule generator ([`generate_schedule`]): Poisson arrivals per
//!   domain class, log-normal repair times, and CDU thermal-drain grace
//!   windows that trip every cabinet on the loop;
//! - [`sensor`] — per-meter fault plans (dropout windows, stuck-at-last
//!   value, spike outliers, slow drift, constant clock skew) applied
//!   between the physics and the telemetry store;
//! - [`health`] — per-domain availability accounting (MTBF/MTTR
//!   estimates, downtime integrals) for degraded-mode campaigns.
//!
//! Everything is deterministic under a fixed seed: two schedules generated
//! with the same inputs are bit-identical (see [`FaultSchedule::digest`]).

#![warn(missing_docs)]

pub mod domains;
pub mod health;
pub mod sensor;

pub use domains::{
    generate_schedule, DomainFaultConfig, DomainRate, FaultDomain, FaultDomains, FaultEvent,
    FaultKind, FaultSchedule,
};
pub use health::{AvailabilityTracker, DomainClass, HealthMonitor};
pub use sensor::{
    MeterFaultConfig, MeterFaultKind, MeterFaultPlan, MeterFaultWindow, MeterReading, MeterState,
};
