//! Correlated fault domains and the deterministic fault-schedule generator.
//!
//! A *fault domain* is the set of nodes that share a failure mode: a
//! cabinet PSU trip drops every node in the cabinet at once, a CDU
//! cooling-loop failure thermally drains every cabinet on the loop after a
//! grace window, and a dragonfly switch failure makes its attached nodes
//! unreachable (their jobs die even though the nodes stay powered).
//!
//! Schedules are generated up front from a seed: per domain class the
//! arrival process is fleet-level Poisson (rate `instances / mtbf`), the
//! victim is uniform over the instances, and the repair time is log-normal.
//! The whole schedule is therefore a pure function of
//! `(config, topology shape, seed, horizon)` — two runs with the same
//! inputs produce bit-identical schedules, which [`FaultSchedule::digest`]
//! makes checkable from the outside.

use hpc_topo::{CabinetId, CduId, FacilityTopology, NodeId, SwitchId};
use sim_core::dist::{Distribution, LogNormal};
use sim_core::rng::{Rng, Xoshiro256StarStar};
use serde::{Deserialize, Serialize};
use sim_core::time::SimDuration;

/// A set of nodes that fail together.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultDomain {
    /// A single compute node (uncorrelated MTBF failure).
    Node(NodeId),
    /// A compute cabinet: PSU trip de-energises every node in it.
    Cabinet(CabinetId),
    /// A CDU cooling loop: every cabinet on the loop drains thermally.
    CduLoop(CduId),
    /// A dragonfly switch: attached nodes become unreachable.
    Switch(SwitchId),
}

/// One scheduled fault transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Offset from the campaign start, in seconds.
    pub at_s: u64,
    /// What happens.
    pub kind: FaultKind,
}

/// The transition a [`FaultEvent`] applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A domain goes down (its nodes drop out of service).
    Down(FaultDomain),
    /// A previously failed domain returns to service.
    Up(FaultDomain),
}

/// Failure/repair parameters for one domain class.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DomainRate {
    /// Mean time between failures of one domain instance, in hours.
    /// Fleet-level arrivals are Poisson with rate `instances / mtbf`.
    pub mtbf_hours: f64,
    /// Mean repair time, in hours (log-normal, `repair_sigma` shape).
    pub repair_mean_hours: f64,
    /// Log-normal sigma of the repair time (0 = deterministic repairs).
    pub repair_sigma: f64,
}

impl DomainRate {
    /// A rate that never fires (infinite MTBF).
    pub const OFF: DomainRate =
        DomainRate { mtbf_hours: f64::INFINITY, repair_mean_hours: 1.0, repair_sigma: 0.0 };
}

/// Configuration of the correlated-fault schedule generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DomainFaultConfig {
    /// Per-node hardware failures (the uncorrelated baseline).
    pub node: DomainRate,
    /// Cabinet PSU trips.
    pub cabinet: DomainRate,
    /// CDU cooling-loop failures.
    pub cdu: DomainRate,
    /// Dragonfly switch failures.
    pub switch: DomainRate,
    /// Thermal grace window: how long a cabinet survives on residual
    /// coolant after its CDU loop fails before it must power down. If the
    /// CDU is repaired within the grace window the cabinets ride through.
    pub cdu_grace: SimDuration,
}

impl Default for DomainFaultConfig {
    fn default() -> Self {
        DomainFaultConfig {
            // ~6 months per node, as in the uncorrelated campaign model.
            node: DomainRate { mtbf_hours: 4_380.0, repair_mean_hours: 24.0, repair_sigma: 0.5 },
            // Cabinet PSU trips are rare: ~2 years per cabinet.
            cabinet: DomainRate {
                mtbf_hours: 17_520.0,
                repair_mean_hours: 8.0,
                repair_sigma: 0.4,
            },
            // CDU loop failures rarer still: ~4 years per CDU.
            cdu: DomainRate { mtbf_hours: 35_040.0, repair_mean_hours: 12.0, repair_sigma: 0.4 },
            // Switches: ~3 years per switch.
            switch: DomainRate {
                mtbf_hours: 26_280.0,
                repair_mean_hours: 6.0,
                repair_sigma: 0.4,
            },
            cdu_grace: SimDuration::from_mins(30),
        }
    }
}

/// Precomputed domain→node membership maps for a facility.
#[derive(Debug, Clone)]
pub struct FaultDomains {
    cabinet_nodes: Vec<Vec<NodeId>>,
    cdu_cabinets: Vec<Vec<CabinetId>>,
    switch_nodes: Vec<Vec<NodeId>>,
    nodes: u32,
}

impl FaultDomains {
    /// Build the membership maps from a facility topology.
    pub fn from_topology(topo: &FacilityTopology) -> Self {
        let cfg = topo.config();
        let cabinet_nodes: Vec<Vec<NodeId>> =
            (0..cfg.cabinets).map(|c| topo.nodes_in_cabinet(CabinetId(c)).to_vec()).collect();
        let mut cdu_cabinets = vec![Vec::new(); cfg.cdus as usize];
        for c in 0..cfg.cabinets {
            cdu_cabinets[topo.cdu_of_cabinet(CabinetId(c)).index()].push(CabinetId(c));
        }
        // Invert the node→switch attachment (each node has NIC links to a
        // small fixed set of switches).
        let mut switch_nodes = vec![Vec::new(); cfg.fabric.total_switches() as usize];
        for n in 0..cfg.nodes {
            for sw in topo.fabric().switches_of(NodeId(n)) {
                switch_nodes[sw.index()].push(NodeId(n));
            }
        }
        FaultDomains { cabinet_nodes, cdu_cabinets, switch_nodes, nodes: cfg.nodes }
    }

    /// Number of compute nodes.
    pub fn node_count(&self) -> u32 {
        self.nodes
    }

    /// Number of cabinets.
    pub fn cabinet_count(&self) -> u32 {
        self.cabinet_nodes.len() as u32
    }

    /// Number of CDU loops.
    pub fn cdu_count(&self) -> u32 {
        self.cdu_cabinets.len() as u32
    }

    /// Number of switches.
    pub fn switch_count(&self) -> u32 {
        self.switch_nodes.len() as u32
    }

    /// Cabinets cooled by a CDU loop.
    pub fn cabinets_on_loop(&self, cdu: CduId) -> &[CabinetId] {
        &self.cdu_cabinets[cdu.index()]
    }

    /// The nodes a domain covers. A CDU loop covers every node of every
    /// cabinet on the loop.
    pub fn nodes_of(&self, domain: FaultDomain) -> Vec<NodeId> {
        match domain {
            FaultDomain::Node(n) => vec![n],
            FaultDomain::Cabinet(c) => self.cabinet_nodes[c.index()].clone(),
            FaultDomain::CduLoop(d) => self.cdu_cabinets[d.index()]
                .iter()
                .flat_map(|c| self.cabinet_nodes[c.index()].iter().copied())
                .collect(),
            FaultDomain::Switch(s) => self.switch_nodes[s.index()].clone(),
        }
    }
}

/// A generated fault schedule: events sorted by time (ties broken by the
/// deterministic generation order).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// The events, sorted by `at_s`.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// How many `Down` events target each domain class:
    /// `(node, cabinet, cdu, switch)`.
    pub fn down_counts(&self) -> (u64, u64, u64, u64) {
        let mut c = (0, 0, 0, 0);
        for e in &self.events {
            if let FaultKind::Down(d) = e.kind {
                match d {
                    FaultDomain::Node(_) => c.0 += 1,
                    FaultDomain::Cabinet(_) => c.1 += 1,
                    FaultDomain::CduLoop(_) => c.2 += 1,
                    FaultDomain::Switch(_) => c.3 += 1,
                }
            }
        }
        c
    }

    /// FNV-1a digest over every event — two schedules with the same digest
    /// are (with overwhelming probability) bit-identical. Used by the
    /// verification gate to prove seed-determinism across processes.
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut fold = |x: u64| {
            for b in x.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        };
        for e in &self.events {
            fold(e.at_s);
            let (tag, idx) = match e.kind {
                FaultKind::Down(FaultDomain::Node(n)) => (1u64, u64::from(n.0)),
                FaultKind::Up(FaultDomain::Node(n)) => (2, u64::from(n.0)),
                FaultKind::Down(FaultDomain::Cabinet(c)) => (3, u64::from(c.0)),
                FaultKind::Up(FaultDomain::Cabinet(c)) => (4, u64::from(c.0)),
                FaultKind::Down(FaultDomain::CduLoop(d)) => (5, u64::from(d.0)),
                FaultKind::Up(FaultDomain::CduLoop(d)) => (6, u64::from(d.0)),
                FaultKind::Down(FaultDomain::Switch(s)) => (7, u64::from(s.0)),
                FaultKind::Up(FaultDomain::Switch(s)) => (8, u64::from(s.0)),
            };
            fold(tag);
            fold(idx);
        }
        h
    }
}

/// Draw Poisson arrivals for one domain class and push Down/Up pairs.
fn class_events(
    events: &mut Vec<FaultEvent>,
    rate: DomainRate,
    instances: u32,
    horizon_s: u64,
    rng: &mut Xoshiro256StarStar,
    mk: impl Fn(u32) -> FaultDomain,
) {
    if instances == 0 || !rate.mtbf_hours.is_finite() || rate.mtbf_hours <= 0.0 {
        return;
    }
    let fleet_rate_per_s = instances as f64 / (rate.mtbf_hours * 3600.0);
    let repair = LogNormal::from_mean(rate.repair_mean_hours.max(1e-9), rate.repair_sigma);
    let mut t = 0.0f64;
    loop {
        let gap = -(1.0 - rng.next_f64()).ln() / fleet_rate_per_s;
        t += gap.max(1.0);
        if t >= horizon_s as f64 {
            break;
        }
        let at = t as u64;
        let victim = rng.next_below(u64::from(instances)) as u32;
        let repair_s = ((repair.sample(rng) * 3600.0) as u64).max(60);
        events.push(FaultEvent { at_s: at, kind: FaultKind::Down(mk(victim)) });
        events.push(FaultEvent {
            at_s: at.saturating_add(repair_s),
            kind: FaultKind::Up(mk(victim)),
        });
    }
}

/// Generate the full correlated-fault schedule over `[0, horizon)`.
///
/// CDU failures expand into cabinet-level consequences here, at generation
/// time: when a loop stays down past [`DomainFaultConfig::cdu_grace`],
/// every cabinet on the loop receives a `Down(Cabinet)` at
/// `fail + grace` and an `Up(Cabinet)` when the loop is repaired. A loop
/// repaired within the grace window rides through with no cabinet trips.
///
/// The result is a pure function of the inputs: same config, same topology
/// shape, same seed, same horizon ⇒ bit-identical schedule.
pub fn generate_schedule(
    cfg: &DomainFaultConfig,
    domains: &FaultDomains,
    seed: u64,
    horizon: SimDuration,
) -> FaultSchedule {
    let horizon_s = horizon.as_secs();
    let root = Xoshiro256StarStar::seeded(seed ^ 0xFA_17_5C_ED);
    let mut events = Vec::new();

    let mut rng = root.substream(1);
    class_events(&mut events, cfg.node, domains.node_count(), horizon_s, &mut rng, |i| {
        FaultDomain::Node(NodeId(i))
    });
    let mut rng = root.substream(2);
    class_events(&mut events, cfg.cabinet, domains.cabinet_count(), horizon_s, &mut rng, |i| {
        FaultDomain::Cabinet(CabinetId(i))
    });
    let mut rng = root.substream(3);
    // CDU loops: generate the loop events, then expand the thermal drain.
    let mut cdu_events = Vec::new();
    class_events(&mut cdu_events, cfg.cdu, domains.cdu_count(), horizon_s, &mut rng, |i| {
        FaultDomain::CduLoop(CduId(i))
    });
    let grace_s = cfg.cdu_grace.as_secs();
    let mut i = 0;
    while i < cdu_events.len() {
        let down = cdu_events[i];
        let up = cdu_events[i + 1];
        debug_assert!(matches!(down.kind, FaultKind::Down(_)));
        let FaultKind::Down(FaultDomain::CduLoop(loop_id)) = down.kind else {
            unreachable!("cdu generator emits loop domains")
        };
        events.push(down);
        events.push(up);
        if up.at_s > down.at_s.saturating_add(grace_s) {
            for &cab in domains.cabinets_on_loop(loop_id) {
                events.push(FaultEvent {
                    at_s: down.at_s + grace_s,
                    kind: FaultKind::Down(FaultDomain::Cabinet(cab)),
                });
                events.push(FaultEvent {
                    at_s: up.at_s,
                    kind: FaultKind::Up(FaultDomain::Cabinet(cab)),
                });
            }
        }
        i += 2;
    }
    let mut rng = root.substream(4);
    class_events(&mut events, cfg.switch, domains.switch_count(), horizon_s, &mut rng, |i| {
        FaultDomain::Switch(SwitchId(i))
    });

    // Stable sort keeps the deterministic generation order for ties.
    events.sort_by_key(|e| e.at_s);
    FaultSchedule { events }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpc_topo::{DragonflyConfig, FacilityConfig};

    fn topo() -> FacilityTopology {
        FacilityTopology::build(FacilityConfig {
            nodes: 128,
            cores_per_node: 128,
            cabinets: 4,
            cdus: 2,
            filesystems: 1,
            fabric: DragonflyConfig {
                groups: 4,
                switches_per_group: 4,
                ports_per_switch: 64,
                endpoints_per_switch: 16,
                nics_per_node: 2,
            },
        })
    }

    fn storm_config() -> DomainFaultConfig {
        DomainFaultConfig {
            node: DomainRate { mtbf_hours: 100.0, repair_mean_hours: 6.0, repair_sigma: 0.4 },
            cabinet: DomainRate { mtbf_hours: 400.0, repair_mean_hours: 4.0, repair_sigma: 0.3 },
            cdu: DomainRate { mtbf_hours: 300.0, repair_mean_hours: 8.0, repair_sigma: 0.3 },
            switch: DomainRate { mtbf_hours: 500.0, repair_mean_hours: 3.0, repair_sigma: 0.3 },
            cdu_grace: SimDuration::from_mins(30),
        }
    }

    #[test]
    fn membership_maps_cover_the_facility() {
        let d = FaultDomains::from_topology(&topo());
        assert_eq!(d.node_count(), 128);
        assert_eq!(d.cabinet_count(), 4);
        assert_eq!(d.cdu_count(), 2);
        let all: usize = (0..4).map(|c| d.nodes_of(FaultDomain::Cabinet(CabinetId(c))).len()).sum();
        assert_eq!(all, 128, "cabinets partition the nodes");
        let loop0 = d.nodes_of(FaultDomain::CduLoop(CduId(0)));
        let loop1 = d.nodes_of(FaultDomain::CduLoop(CduId(1)));
        assert_eq!(loop0.len() + loop1.len(), 128, "loops partition the nodes");
        // Every switch domain is non-empty and its nodes attach to it.
        let t = topo();
        for s in 0..d.switch_count() {
            let members = d.nodes_of(FaultDomain::Switch(SwitchId(s)));
            assert!(!members.is_empty());
            for n in members {
                assert!(t.fabric().switches_of(n).contains(&SwitchId(s)));
            }
        }
    }

    #[test]
    fn schedule_is_deterministic_and_seed_sensitive() {
        let d = FaultDomains::from_topology(&topo());
        let cfg = storm_config();
        let h = SimDuration::from_days(30);
        let a = generate_schedule(&cfg, &d, 7, h);
        let b = generate_schedule(&cfg, &d, 7, h);
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
        let c = generate_schedule(&cfg, &d, 8, h);
        assert_ne!(a.digest(), c.digest(), "different seeds diverge");
        assert!(!a.is_empty());
    }

    #[test]
    fn every_down_has_a_matching_up() {
        let d = FaultDomains::from_topology(&topo());
        let s = generate_schedule(&storm_config(), &d, 3, SimDuration::from_days(60));
        let mut balance: std::collections::HashMap<FaultDomain, i64> =
            std::collections::HashMap::new();
        for e in s.events() {
            match e.kind {
                FaultKind::Down(dom) => *balance.entry(dom).or_insert(0) += 1,
                FaultKind::Up(dom) => *balance.entry(dom).or_insert(0) -= 1,
            }
        }
        assert!(balance.values().all(|&v| v == 0), "unbalanced: {balance:?}");
    }

    #[test]
    fn cdu_failure_past_grace_trips_its_cabinets() {
        let d = FaultDomains::from_topology(&topo());
        // Repairs far longer than the grace window: every CDU failure must
        // drain its cabinets.
        let cfg = DomainFaultConfig {
            node: DomainRate::OFF,
            cabinet: DomainRate::OFF,
            switch: DomainRate::OFF,
            cdu: DomainRate { mtbf_hours: 100.0, repair_mean_hours: 10.0, repair_sigma: 0.0 },
            cdu_grace: SimDuration::from_mins(30),
        };
        let s = generate_schedule(&cfg, &d, 11, SimDuration::from_days(60));
        let (_, cab_downs, cdu_downs, _) = s.down_counts();
        assert!(cdu_downs > 0, "some loop failures");
        assert_eq!(cab_downs, cdu_downs * 2, "each loop covers 2 cabinets");
        // Each cabinet trip lands exactly grace after its loop failure.
        let downs: Vec<&FaultEvent> = s
            .events()
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::Down(FaultDomain::CduLoop(_))))
            .collect();
        for e in downs {
            assert!(s.events().iter().any(|c| {
                matches!(c.kind, FaultKind::Down(FaultDomain::Cabinet(_)))
                    && c.at_s == e.at_s + 30 * 60
            }));
        }
    }

    #[test]
    fn fast_cdu_repair_rides_through_the_grace_window() {
        let d = FaultDomains::from_topology(&topo());
        let cfg = DomainFaultConfig {
            node: DomainRate::OFF,
            cabinet: DomainRate::OFF,
            switch: DomainRate::OFF,
            // 6-minute repairs, 30-minute grace: never drains.
            cdu: DomainRate { mtbf_hours: 100.0, repair_mean_hours: 0.1, repair_sigma: 0.0 },
            cdu_grace: SimDuration::from_mins(30),
        };
        let s = generate_schedule(&cfg, &d, 11, SimDuration::from_days(60));
        let (_, cab_downs, cdu_downs, _) = s.down_counts();
        assert!(cdu_downs > 0);
        assert_eq!(cab_downs, 0, "no thermal drain when repairs beat the grace window");
    }

    #[test]
    fn off_rates_generate_nothing() {
        let d = FaultDomains::from_topology(&topo());
        let cfg = DomainFaultConfig {
            node: DomainRate::OFF,
            cabinet: DomainRate::OFF,
            cdu: DomainRate::OFF,
            switch: DomainRate::OFF,
            cdu_grace: SimDuration::from_mins(30),
        };
        let s = generate_schedule(&cfg, &d, 1, SimDuration::from_days(365));
        assert!(s.is_empty());
    }
}
