//! Sensor-fault models for the cabinet power meters.
//!
//! The paper's cabinet telemetry (Figures 1–3) is not a perfect sampling
//! grid: meters drop out for windows, stick at a stale value, emit spike
//! outliers, drift slowly out of calibration, and individual meter clocks
//! sit slightly off the facility clock. This module generates a
//! deterministic *fault plan* per meter — a sorted set of fault windows
//! plus a constant per-meter clock skew — and applies it between the
//! physics (the true cabinet power) and the telemetry store.
//!
//! The plan is a pure function of `(config, meter count, horizon, seed)`;
//! applying it is pure given the per-meter [`MeterState`] the caller
//! threads through, so two identically seeded campaigns produce
//! bit-identical faulted telemetry.

use serde::{Deserialize, Serialize};
use sim_core::dist::{Distribution, Exponential};
use sim_core::rng::{Rng, Xoshiro256StarStar};
use sim_core::time::SimDuration;

/// The kinds of meter misbehaviour the plan can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MeterFaultKind {
    /// The meter reports nothing for the window (a telemetry gap).
    Dropout,
    /// The meter repeats the last value it reported before the window.
    StuckAtLast,
    /// One sample is multiplied by a large outlier factor.
    Spike,
    /// Readings drift linearly away from truth over the window.
    Drift,
}

/// One fault window on one meter. `start_s..=end_s` are offsets from the
/// campaign start, inclusive on both ends so a single-sample spike is a
/// window with `start_s == end_s`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeterFaultWindow {
    /// Window start (seconds from campaign start, inclusive).
    pub start_s: u64,
    /// Window end (seconds from campaign start, inclusive).
    pub end_s: u64,
    /// What the meter does inside the window.
    pub kind: MeterFaultKind,
    /// Kind-specific magnitude: spike factor for [`MeterFaultKind::Spike`],
    /// fractional drift per day for [`MeterFaultKind::Drift`], unused
    /// otherwise.
    pub magnitude: f64,
}

/// Meter-fault generation parameters. Rates are per meter per 30-day
/// month; zero disables that fault kind.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeterFaultConfig {
    /// Dropout windows per meter-month.
    pub dropouts_per_month: f64,
    /// Mean dropout duration.
    pub dropout_mean: SimDuration,
    /// Stuck-at-last windows per meter-month.
    pub stuck_per_month: f64,
    /// Mean stuck duration.
    pub stuck_mean: SimDuration,
    /// Spike outliers per meter-month.
    pub spikes_per_month: f64,
    /// Spike multiplication factor (e.g. 8.0 = reads 8× the true power).
    pub spike_factor: f64,
    /// Drift windows per meter-month.
    pub drifts_per_month: f64,
    /// Mean drift window duration.
    pub drift_mean: SimDuration,
    /// Fractional drift accumulated per day inside a drift window.
    pub drift_per_day: f64,
    /// Maximum absolute per-meter clock skew (seconds); each meter draws a
    /// constant skew uniformly in `[-max, +max]`.
    pub clock_skew_max_s: i64,
}

impl Default for MeterFaultConfig {
    fn default() -> Self {
        MeterFaultConfig {
            dropouts_per_month: 1.0,
            dropout_mean: SimDuration::from_hours(6),
            stuck_per_month: 0.5,
            stuck_mean: SimDuration::from_hours(2),
            spikes_per_month: 2.0,
            spike_factor: 8.0,
            drifts_per_month: 0.25,
            drift_mean: SimDuration::from_hours(48),
            drift_per_day: 0.02,
            clock_skew_max_s: 30,
        }
    }
}

impl MeterFaultConfig {
    /// A config with every fault kind disabled (clean meters).
    pub fn clean() -> Self {
        MeterFaultConfig {
            dropouts_per_month: 0.0,
            stuck_per_month: 0.0,
            spikes_per_month: 0.0,
            drifts_per_month: 0.0,
            clock_skew_max_s: 0,
            ..MeterFaultConfig::default()
        }
    }
}

/// What one meter reports for one sampling instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MeterReading {
    /// The meter reported nothing (dropout window): a gap in the series.
    Missing,
    /// The meter reported a value at a (possibly skewed) timestamp.
    Value {
        /// Timestamp offset the meter stamps on the sample (true offset
        /// plus the meter's constant clock skew), seconds.
        at_s: i64,
        /// The reported power.
        value: f64,
        /// The fault distorting this reading, if any.
        fault: Option<MeterFaultKind>,
    },
}

/// Mutable per-meter state the caller threads through
/// [`MeterFaultPlan::apply`] (the stuck-at-last hold value).
#[derive(Debug, Clone, Copy, Default)]
pub struct MeterState {
    last_reported: Option<f64>,
}

/// A generated per-meter fault plan.
#[derive(Debug, Clone, Default)]
pub struct MeterFaultPlan {
    /// Per meter: fault windows sorted by start.
    windows: Vec<Vec<MeterFaultWindow>>,
    /// Per meter: constant clock skew in seconds.
    skew_s: Vec<i64>,
}

const MONTH_S: f64 = 30.0 * 86_400.0;

fn windows_for(
    out: &mut Vec<MeterFaultWindow>,
    per_month: f64,
    mean_len_s: f64,
    kind: MeterFaultKind,
    magnitude: f64,
    horizon_s: u64,
    rng: &mut Xoshiro256StarStar,
) {
    if per_month <= 0.0 {
        return;
    }
    let rate_per_s = per_month / MONTH_S;
    let len = Exponential::from_mean(mean_len_s.max(1.0));
    let mut t = 0.0f64;
    loop {
        t += -(1.0 - rng.next_f64()).ln() / rate_per_s;
        if t >= horizon_s as f64 {
            break;
        }
        let start = t as u64;
        let end = if kind == MeterFaultKind::Spike {
            start // single-sample outlier
        } else {
            start + (len.sample(rng) as u64).max(1)
        };
        out.push(MeterFaultWindow { start_s: start, end_s: end, kind, magnitude });
    }
}

impl MeterFaultPlan {
    /// Generate the plan for `meters` meters over `[0, horizon)` from a
    /// seed. Deterministic: same inputs, bit-identical plan.
    pub fn generate(
        cfg: &MeterFaultConfig,
        meters: usize,
        horizon: SimDuration,
        seed: u64,
    ) -> Self {
        let horizon_s = horizon.as_secs();
        let root = Xoshiro256StarStar::seeded(seed ^ 0x5E_05_0F_AA);
        let mut windows = Vec::with_capacity(meters);
        let mut skew_s = Vec::with_capacity(meters);
        for m in 0..meters {
            let mut rng = root.substream(m as u64 + 1);
            let mut w = Vec::new();
            windows_for(
                &mut w,
                cfg.dropouts_per_month,
                cfg.dropout_mean.as_secs() as f64,
                MeterFaultKind::Dropout,
                0.0,
                horizon_s,
                &mut rng,
            );
            windows_for(
                &mut w,
                cfg.stuck_per_month,
                cfg.stuck_mean.as_secs() as f64,
                MeterFaultKind::StuckAtLast,
                0.0,
                horizon_s,
                &mut rng,
            );
            windows_for(
                &mut w,
                cfg.spikes_per_month,
                1.0,
                MeterFaultKind::Spike,
                cfg.spike_factor,
                horizon_s,
                &mut rng,
            );
            windows_for(
                &mut w,
                cfg.drifts_per_month,
                cfg.drift_mean.as_secs() as f64,
                MeterFaultKind::Drift,
                cfg.drift_per_day,
                horizon_s,
                &mut rng,
            );
            w.sort_by_key(|w| (w.start_s, w.end_s));
            windows.push(w);
            let skew = if cfg.clock_skew_max_s > 0 {
                let span = 2 * cfg.clock_skew_max_s + 1;
                rng.next_below(span as u64) as i64 - cfg.clock_skew_max_s
            } else {
                0
            };
            skew_s.push(skew);
        }
        MeterFaultPlan { windows, skew_s }
    }

    /// Number of meters the plan covers.
    pub fn meters(&self) -> usize {
        self.windows.len()
    }

    /// The fault windows of one meter (sorted by start).
    pub fn windows(&self, meter: usize) -> &[MeterFaultWindow] {
        &self.windows[meter]
    }

    /// The constant clock skew of one meter, seconds.
    pub fn skew_s(&self, meter: usize) -> i64 {
        self.skew_s[meter]
    }

    /// Total fault windows across every meter.
    pub fn total_windows(&self) -> usize {
        self.windows.iter().map(Vec::len).sum()
    }

    /// The active fault window at `at_s` on `meter`, if any (first match
    /// in start order).
    fn active(&self, meter: usize, at_s: u64) -> Option<&MeterFaultWindow> {
        self.windows[meter].iter().find(|w| w.start_s <= at_s && at_s <= w.end_s)
    }

    /// Run one true sample through the meter: `at_s` is the true sampling
    /// offset (seconds from campaign start), `true_value` the physics
    /// power. Returns what the meter reports; `state` carries the
    /// stuck-at-last hold value between calls and must be per-meter.
    pub fn apply(&self, meter: usize, at_s: u64, true_value: f64, state: &mut MeterState) -> MeterReading {
        let skewed = at_s as i64 + self.skew_s[meter];
        let reading = match self.active(meter, at_s) {
            Some(w) => match w.kind {
                MeterFaultKind::Dropout => return MeterReading::Missing,
                MeterFaultKind::StuckAtLast => MeterReading::Value {
                    at_s: skewed,
                    value: state.last_reported.unwrap_or(true_value),
                    fault: Some(MeterFaultKind::StuckAtLast),
                },
                MeterFaultKind::Spike => MeterReading::Value {
                    at_s: skewed,
                    value: true_value * w.magnitude,
                    fault: Some(MeterFaultKind::Spike),
                },
                MeterFaultKind::Drift => {
                    let days = (at_s - w.start_s) as f64 / 86_400.0;
                    MeterReading::Value {
                        at_s: skewed,
                        value: true_value * (1.0 + w.magnitude * days),
                        fault: Some(MeterFaultKind::Drift),
                    }
                }
            },
            None => MeterReading::Value { at_s: skewed, value: true_value, fault: None },
        };
        if let MeterReading::Value { value, fault, .. } = reading {
            // Stuck windows hold the last *reported* value, which under a
            // stuck window is itself — so the hold only advances outside.
            if fault != Some(MeterFaultKind::StuckAtLast) {
                state.last_reported = Some(value);
            }
        }
        reading
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flaky() -> MeterFaultConfig {
        MeterFaultConfig {
            dropouts_per_month: 20.0,
            dropout_mean: SimDuration::from_hours(3),
            stuck_per_month: 10.0,
            stuck_mean: SimDuration::from_hours(2),
            spikes_per_month: 30.0,
            spike_factor: 8.0,
            drifts_per_month: 4.0,
            drift_mean: SimDuration::from_hours(24),
            drift_per_day: 0.05,
            clock_skew_max_s: 30,
        }
    }

    #[test]
    fn plan_is_deterministic() {
        let h = SimDuration::from_days(30);
        let a = MeterFaultPlan::generate(&flaky(), 4, h, 42);
        let b = MeterFaultPlan::generate(&flaky(), 4, h, 42);
        assert_eq!(a.total_windows(), b.total_windows());
        for m in 0..4 {
            assert_eq!(a.windows(m), b.windows(m));
            assert_eq!(a.skew_s(m), b.skew_s(m));
        }
        let c = MeterFaultPlan::generate(&flaky(), 4, h, 43);
        assert!(
            (0..4).any(|m| a.windows(m) != c.windows(m) || a.skew_s(m) != c.skew_s(m)),
            "different seed should differ"
        );
    }

    #[test]
    fn clean_config_passes_everything_through() {
        let plan =
            MeterFaultPlan::generate(&MeterFaultConfig::clean(), 2, SimDuration::from_days(30), 1);
        assert_eq!(plan.total_windows(), 0);
        let mut st = MeterState::default();
        for i in 0..100u64 {
            match plan.apply(0, i * 900, 400.0 + i as f64, &mut st) {
                MeterReading::Value { at_s, value, fault } => {
                    assert_eq!(at_s, (i * 900) as i64);
                    assert_eq!(value, 400.0 + i as f64);
                    assert_eq!(fault, None);
                }
                MeterReading::Missing => panic!("clean meter dropped a sample"),
            }
        }
    }

    #[test]
    fn stuck_window_repeats_the_last_reported_value() {
        let plan = MeterFaultPlan {
            windows: vec![vec![MeterFaultWindow {
                start_s: 1_000,
                end_s: 3_000,
                kind: MeterFaultKind::StuckAtLast,
                magnitude: 0.0,
            }]],
            skew_s: vec![0],
        };
        let mut st = MeterState::default();
        assert_eq!(
            plan.apply(0, 0, 500.0, &mut st),
            MeterReading::Value { at_s: 0, value: 500.0, fault: None }
        );
        for at in [1_000, 2_000, 3_000] {
            assert_eq!(
                plan.apply(0, at, 600.0, &mut st),
                MeterReading::Value {
                    at_s: at as i64,
                    value: 500.0,
                    fault: Some(MeterFaultKind::StuckAtLast)
                }
            );
        }
        // Past the window the meter reads true again.
        assert_eq!(
            plan.apply(0, 4_000, 610.0, &mut st),
            MeterReading::Value { at_s: 4_000, value: 610.0, fault: None }
        );
    }

    #[test]
    fn spike_and_drift_distort_and_dropout_drops() {
        let plan = MeterFaultPlan {
            windows: vec![vec![
                MeterFaultWindow {
                    start_s: 100,
                    end_s: 100,
                    kind: MeterFaultKind::Spike,
                    magnitude: 8.0,
                },
                MeterFaultWindow {
                    start_s: 1_000,
                    end_s: 2_000,
                    kind: MeterFaultKind::Dropout,
                    magnitude: 0.0,
                },
                MeterFaultWindow {
                    start_s: 86_400,
                    end_s: 3 * 86_400,
                    kind: MeterFaultKind::Drift,
                    magnitude: 0.1,
                },
            ]],
            skew_s: vec![-5],
        };
        let mut st = MeterState::default();
        assert_eq!(
            plan.apply(0, 100, 400.0, &mut st),
            MeterReading::Value { at_s: 95, value: 3_200.0, fault: Some(MeterFaultKind::Spike) }
        );
        assert_eq!(plan.apply(0, 1_500, 400.0, &mut st), MeterReading::Missing);
        // One day into the drift window: +10 %.
        match plan.apply(0, 2 * 86_400, 400.0, &mut st) {
            MeterReading::Value { value, fault, .. } => {
                assert!((value - 440.0).abs() < 1e-9);
                assert_eq!(fault, Some(MeterFaultKind::Drift));
            }
            MeterReading::Missing => panic!("drift does not drop"),
        }
    }
}
