//! All-pairs n-body step — compute-bound with O(n²) flops over O(n) data,
//! the character of the paper's molecular-dynamics benchmarks (GROMACS,
//! LAMMPS).

use crate::roofline::{KernelCounts, KernelProfile};
use rayon::prelude::*;
use std::time::Instant;

const SOFTENING: f64 = 1e-3;

/// Particle state in structure-of-arrays layout.
#[derive(Debug, Clone)]
pub struct NBody {
    px: Vec<f64>,
    py: Vec<f64>,
    pz: Vec<f64>,
    vx: Vec<f64>,
    vy: Vec<f64>,
    vz: Vec<f64>,
    mass: Vec<f64>,
}

impl NBody {
    /// A deterministic particle cloud of `n` bodies.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one body");
        let f = |i: usize, k: u64| {
            // Cheap deterministic hash to scatter positions in [-1, 1].
            let h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17) ^ k;
            (h % 10_000) as f64 / 5_000.0 - 1.0
        };
        NBody {
            px: (0..n).map(|i| f(i, 1)).collect(),
            py: (0..n).map(|i| f(i, 2)).collect(),
            pz: (0..n).map(|i| f(i, 3)).collect(),
            vx: vec![0.0; n],
            vy: vec![0.0; n],
            vz: vec![0.0; n],
            mass: (0..n).map(|i| 1.0 + (i % 5) as f64 * 0.1).collect(),
        }
    }

    /// Body count.
    pub fn len(&self) -> usize {
        self.px.len()
    }

    /// Whether the system is empty (never; constructor forbids).
    pub fn is_empty(&self) -> bool {
        self.px.is_empty()
    }

    /// Compute accelerations for all bodies (parallel over targets).
    fn accelerations(&self) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let n = self.len();
        let mut ax = vec![0.0; n];
        let mut ay = vec![0.0; n];
        let mut az = vec![0.0; n];
        ax.par_iter_mut()
            .zip(ay.par_iter_mut().zip(az.par_iter_mut()))
            .enumerate()
            .for_each(|(i, (axi, (ayi, azi)))| {
                let (xi, yi, zi) = (self.px[i], self.py[i], self.pz[i]);
                let (mut sx, mut sy, mut sz) = (0.0, 0.0, 0.0);
                for j in 0..n {
                    let dx = self.px[j] - xi;
                    let dy = self.py[j] - yi;
                    let dz = self.pz[j] - zi;
                    let r2 = dx * dx + dy * dy + dz * dz + SOFTENING;
                    let inv_r = 1.0 / r2.sqrt();
                    let w = self.mass[j] * inv_r * inv_r * inv_r;
                    sx += dx * w;
                    sy += dy * w;
                    sz += dz * w;
                }
                *axi = sx;
                *ayi = sy;
                *azi = sz;
            });
        (ax, ay, az)
    }

    /// One leapfrog step with timestep `dt`.
    pub fn step(&mut self, dt: f64) {
        let (ax, ay, az) = self.accelerations();
        let n = self.len();
        for i in 0..n {
            self.vx[i] += ax[i] * dt;
            self.vy[i] += ay[i] * dt;
            self.vz[i] += az[i] * dt;
            self.px[i] += self.vx[i] * dt;
            self.py[i] += self.vy[i] * dt;
            self.pz[i] += self.vz[i] * dt;
        }
    }

    /// Total momentum magnitude — conserved by symmetric pairwise forces.
    pub fn momentum(&self) -> (f64, f64, f64) {
        let mut p = (0.0, 0.0, 0.0);
        for i in 0..self.len() {
            p.0 += self.mass[i] * self.vx[i];
            p.1 += self.mass[i] * self.vy[i];
            p.2 += self.mass[i] * self.vz[i];
        }
        p
    }

    /// Analytic per-step counts: ~20 flops per pair, SoA positions reread
    /// per target but cached — compulsory traffic is O(n).
    pub fn counts(&self) -> KernelCounts {
        let n = self.len() as f64;
        KernelCounts {
            flops: 20.0 * n * n,
            bytes: 7.0 * 8.0 * n * 2.0, // read state, write state
        }
    }

    /// Timed steps.
    pub fn profile(&mut self, dt: f64, iters: usize) -> KernelProfile {
        let t0 = Instant::now();
        for _ in 0..iters {
            self.step(dt);
        }
        let one = self.counts();
        KernelProfile {
            counts: KernelCounts {
                flops: one.flops * iters as f64,
                bytes: one.bytes * iters as f64,
            },
            seconds: t0.elapsed().as_secs_f64().max(1e-9),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_bodies_attract() {
        let mut nb = NBody::new(2);
        nb.px = vec![-0.5, 0.5];
        nb.py = vec![0.0, 0.0];
        nb.pz = vec![0.0, 0.0];
        nb.mass = vec![1.0, 1.0];
        nb.step(0.01);
        assert!(nb.vx[0] > 0.0, "left body accelerates right");
        assert!(nb.vx[1] < 0.0, "right body accelerates left");
        assert!(nb.px[0] > -0.5 && nb.px[1] < 0.5);
    }

    #[test]
    fn momentum_approximately_conserved() {
        let mut nb = NBody::new(200);
        for _ in 0..10 {
            nb.step(1e-3);
        }
        let (px, py, pz) = nb.momentum();
        // Softened symmetric forces conserve momentum to FP accumulation error.
        assert!(px.abs() < 1e-6 && py.abs() < 1e-6 && pz.abs() < 1e-6, "p = ({px}, {py}, {pz})");
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = NBody::new(100);
        let mut b = NBody::new(100);
        for _ in 0..5 {
            a.step(1e-3);
            b.step(1e-3);
        }
        assert_eq!(a.px, b.px);
        assert_eq!(a.vz, b.vz);
    }

    #[test]
    fn intensity_is_high_and_grows_with_n() {
        let small = NBody::new(100).counts().intensity();
        let large = NBody::new(1000).counts().intensity();
        assert!(large > small * 5.0);
        assert!(large > 100.0, "n-body is strongly compute-bound: {large}");
    }

    #[test]
    fn profile_counts() {
        let mut nb = NBody::new(64);
        let p = nb.profile(1e-3, 2);
        assert_eq!(p.counts.flops, 2.0 * 20.0 * 64.0 * 64.0);
        assert!(p.seconds > 0.0);
    }
}
