//! Blocked, parallel dense matrix multiply — the canonical compute-bound
//! kernel (the LAMMPS end of the paper's Table 4 spectrum).
//!
//! `C = A·B` with 2n³ flops against O(n²) memory traffic: operational
//! intensity grows linearly with n, so any reasonably sized multiply sits
//! far above the machine balance and scales almost exactly with core
//! frequency.

use crate::roofline::{KernelCounts, KernelProfile};
use rayon::prelude::*;
use std::time::Instant;

const BLOCK: usize = 64;

/// A square matrix multiply workspace (row-major).
#[derive(Debug, Clone)]
pub struct Dgemm {
    n: usize,
    a: Vec<f64>,
    b: Vec<f64>,
    c: Vec<f64>,
}

impl Dgemm {
    /// Allocate `n×n` matrices with deterministic contents.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "dgemm needs n > 0");
        let a = (0..n * n).map(|i| ((i * 7 + 3) % 13) as f64 * 0.25).collect();
        let b = (0..n * n).map(|i| ((i * 5 + 1) % 11) as f64 * 0.5).collect();
        Dgemm {
            n,
            a,
            b,
            c: vec![0.0; n * n],
        }
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The result matrix.
    pub fn c(&self) -> &[f64] {
        &self.c
    }

    /// Parallel blocked multiply: rows of C are distributed over the Rayon
    /// pool in `BLOCK`-row panels; the k-loop is blocked for cache reuse.
    pub fn run(&mut self) {
        let n = self.n;
        let a = &self.a;
        let b = &self.b;
        self.c
            .par_chunks_mut(BLOCK * n)
            .enumerate()
            .for_each(|(panel, c_panel)| {
                let i0 = panel * BLOCK;
                let rows = c_panel.len() / n;
                c_panel.fill(0.0);
                for k0 in (0..n).step_by(BLOCK) {
                    let kmax = (k0 + BLOCK).min(n);
                    for di in 0..rows {
                        let i = i0 + di;
                        let c_row = &mut c_panel[di * n..(di + 1) * n];
                        for k in k0..kmax {
                            let aik = a[i * n + k];
                            let b_row = &b[k * n..(k + 1) * n];
                            for (cj, bj) in c_row.iter_mut().zip(b_row) {
                                *cj += aik * bj;
                            }
                        }
                    }
                }
            });
    }

    /// Naive sequential reference (for correctness tests; O(n³), use small n).
    pub fn run_reference(&mut self) {
        let n = self.n;
        for i in 0..n {
            for j in 0..n {
                let mut sum = 0.0;
                for k in 0..n {
                    sum += self.a[i * n + k] * self.b[k * n + j];
                }
                self.c[i * n + j] = sum;
            }
        }
    }

    /// Analytic work counts for one multiply.
    pub fn counts(&self) -> KernelCounts {
        let n = self.n as f64;
        KernelCounts {
            flops: 2.0 * n * n * n,
            // Compulsory traffic: read A and B, write C.
            bytes: 3.0 * n * n * 8.0,
        }
    }

    /// Timed parallel run.
    pub fn profile(&mut self) -> KernelProfile {
        let t0 = Instant::now();
        self.run();
        KernelProfile {
            counts: self.counts(),
            seconds: t0.elapsed().as_secs_f64().max(1e-9),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocked_matches_reference() {
        for n in [1, 7, 64, 65, 130] {
            let mut fast = Dgemm::new(n);
            let mut slow = fast.clone();
            fast.run();
            slow.run_reference();
            for (i, (x, y)) in fast.c.iter().zip(&slow.c).enumerate() {
                assert!((x - y).abs() < 1e-9, "n={n} idx={i}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn identity_multiply() {
        let mut g = Dgemm::new(8);
        // Overwrite A with the identity: C must equal B.
        g.a.fill(0.0);
        for i in 0..8 {
            g.a[i * 8 + i] = 1.0;
        }
        g.run();
        assert_eq!(g.c, g.b);
    }

    #[test]
    fn intensity_grows_with_n() {
        let small = Dgemm::new(64).counts().intensity();
        let large = Dgemm::new(256).counts().intensity();
        assert!(large > small * 3.0, "intensity should grow ~linearly: {small} -> {large}");
    }

    #[test]
    fn rerun_is_idempotent() {
        let mut g = Dgemm::new(96);
        g.run();
        let first = g.c.clone();
        g.run();
        assert_eq!(g.c, first, "run() must reset C, not accumulate");
    }

    #[test]
    fn profile_counts_match() {
        let mut g = Dgemm::new(128);
        let p = g.profile();
        assert_eq!(p.counts.flops, 2.0 * 128.0f64.powi(3));
        assert!(p.gflops() > 0.0);
    }
}
