//! 3-D Jacobi 7-point stencil — the middle of the intensity spectrum, and
//! the shape of the paper's CFD benchmarks (OpenSBLI, Nektar++ workloads
//! are grid sweeps of exactly this character).
//!
//! 8 flops per point against ~16 bytes of compulsory traffic (read the
//! centre plane once amortised, write once): intensity ≈ 0.5 flops/byte —
//! memory-bound, but less extremely than triad.

use crate::roofline::{KernelCounts, KernelProfile};
use rayon::prelude::*;
use std::time::Instant;

/// A cubic Jacobi workspace with two buffers.
#[derive(Debug, Clone)]
pub struct Jacobi3d {
    n: usize,
    src: Vec<f64>,
    dst: Vec<f64>,
}

impl Jacobi3d {
    /// Allocate an `n×n×n` grid with a hot centre cell.
    ///
    /// # Panics
    /// Panics if `n < 3` (no interior to sweep).
    pub fn new(n: usize) -> Self {
        assert!(n >= 3, "stencil needs an interior, n >= 3");
        let mut src = vec![0.0; n * n * n];
        let mid = n / 2;
        src[(mid * n + mid) * n + mid] = 1.0e6;
        Jacobi3d {
            n,
            src,
            dst: vec![0.0; n * n * n],
        }
    }

    /// Grid dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    #[inline]
    fn idx(n: usize, x: usize, y: usize, z: usize) -> usize {
        (z * n + y) * n + x
    }

    /// One parallel Jacobi sweep (z-slabs distributed over the pool), then
    /// swap buffers.
    pub fn step(&mut self) {
        let n = self.n;
        let src = &self.src;
        self.dst
            .par_chunks_mut(n * n)
            .enumerate()
            .for_each(|(z, slab)| {
                if z == 0 || z == n - 1 {
                    // Fixed boundary.
                    slab.copy_from_slice(&src[z * n * n..(z + 1) * n * n]);
                    return;
                }
                for y in 0..n {
                    for x in 0..n {
                        let i = y * n + x;
                        if y == 0 || y == n - 1 || x == 0 || x == n - 1 {
                            slab[i] = src[Self::idx(n, x, y, z)];
                            continue;
                        }
                        let c = src[Self::idx(n, x, y, z)];
                        let sum = src[Self::idx(n, x - 1, y, z)]
                            + src[Self::idx(n, x + 1, y, z)]
                            + src[Self::idx(n, x, y - 1, z)]
                            + src[Self::idx(n, x, y + 1, z)]
                            + src[Self::idx(n, x, y, z - 1)]
                            + src[Self::idx(n, x, y, z + 1)];
                        slab[i] = (1.0 / 7.0) * (c + sum);
                    }
                }
            });
        std::mem::swap(&mut self.src, &mut self.dst);
    }

    /// Sequential reference sweep.
    pub fn step_seq(&mut self) {
        let n = self.n;
        for z in 0..n {
            for y in 0..n {
                for x in 0..n {
                    let i = Self::idx(n, x, y, z);
                    if z == 0 || z == n - 1 || y == 0 || y == n - 1 || x == 0 || x == n - 1 {
                        self.dst[i] = self.src[i];
                        continue;
                    }
                    let c = self.src[i];
                    let sum = self.src[Self::idx(n, x - 1, y, z)]
                        + self.src[Self::idx(n, x + 1, y, z)]
                        + self.src[Self::idx(n, x, y - 1, z)]
                        + self.src[Self::idx(n, x, y + 1, z)]
                        + self.src[Self::idx(n, x, y, z - 1)]
                        + self.src[Self::idx(n, x, y, z + 1)];
                    self.dst[i] = (1.0 / 7.0) * (c + sum);
                }
            }
        }
        std::mem::swap(&mut self.src, &mut self.dst);
    }

    /// Total field sum — conserved by the stencil away from boundaries and
    /// a cheap correctness probe.
    pub fn total(&self) -> f64 {
        self.src.iter().sum()
    }

    /// Analytic per-sweep counts (interior points only).
    pub fn counts(&self) -> KernelCounts {
        let interior = (self.n - 2) as f64;
        let pts = interior * interior * interior;
        KernelCounts {
            flops: 8.0 * pts,       // 6 adds + 1 add + 1 mul
            bytes: 16.0 * pts,      // amortised: one read + one write per point
        }
    }

    /// Timed parallel sweeps.
    pub fn profile(&mut self, iters: usize) -> KernelProfile {
        let t0 = Instant::now();
        for _ in 0..iters {
            self.step();
        }
        let one = self.counts();
        KernelProfile {
            counts: KernelCounts {
                flops: one.flops * iters as f64,
                bytes: one.bytes * iters as f64,
            },
            seconds: t0.elapsed().as_secs_f64().max(1e-9),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_matches_sequential() {
        let mut par = Jacobi3d::new(24);
        let mut seq = par.clone();
        for _ in 0..5 {
            par.step();
            seq.step_seq();
        }
        for (i, (a, b)) in par.src.iter().zip(&seq.src).enumerate() {
            assert!((a - b).abs() < 1e-12, "idx {i}: {a} vs {b}");
        }
    }

    #[test]
    fn heat_diffuses_from_centre() {
        let mut j = Jacobi3d::new(17);
        let before_neighbors = j.src[Jacobi3d::idx(17, 8, 8, 7)];
        assert_eq!(before_neighbors, 0.0);
        j.step();
        let after = j.src[Jacobi3d::idx(17, 8, 8, 7)];
        assert!(after > 0.0, "heat must spread to neighbours");
        let centre = j.src[Jacobi3d::idx(17, 8, 8, 8)];
        assert!(centre < 1.0e6, "centre must cool");
    }

    #[test]
    fn total_approximately_conserved_early() {
        // Before heat reaches the boundary the sweep conserves the sum.
        let mut j = Jacobi3d::new(33);
        let t0 = j.total();
        for _ in 0..3 {
            j.step();
        }
        assert!((j.total() - t0).abs() / t0 < 1e-12, "conservation violated");
    }

    #[test]
    fn intensity_is_half_flop_per_byte() {
        let j = Jacobi3d::new(64);
        assert!((j.counts().intensity() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn profile_counts_scale_with_iters() {
        let mut j = Jacobi3d::new(16);
        let p = j.profile(4);
        assert_eq!(p.counts.flops, 4.0 * 8.0 * 14.0f64.powi(3));
    }

    #[test]
    #[should_panic(expected = "n >= 3")]
    fn tiny_grid_rejected() {
        let _ = Jacobi3d::new(2);
    }
}
