//! Roofline classification: operational intensity vs machine balance.
//!
//! A kernel with operational intensity `I = flops / bytes` is memory-bound
//! on a machine whose balance point `B = peak_flops / peak_bandwidth`
//! exceeds `I`, and compute-bound otherwise. The workload models in
//! `hpc-workload` encode the same physics as the β parameter; this module
//! is the measurable ground truth for it.

/// Analytic work counts for one kernel execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelCounts {
    /// Floating-point operations performed.
    pub flops: f64,
    /// Bytes moved to/from memory (minimum traffic, ignoring caches).
    pub bytes: f64,
}

impl KernelCounts {
    /// Operational intensity in flops/byte.
    ///
    /// # Panics
    /// Panics if `bytes` is zero.
    pub fn intensity(&self) -> f64 {
        assert!(self.bytes > 0.0, "kernel moves no bytes");
        self.flops / self.bytes
    }
}

/// A machine's roofline parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineBalance {
    /// Peak floating-point rate (GFLOP/s).
    pub peak_gflops: f64,
    /// Peak memory bandwidth (GB/s).
    pub peak_gbs: f64,
}

impl MachineBalance {
    /// An ARCHER2 compute node: 2 × 64-core EPYC Rome at 2.25 GHz with
    /// 2×256-bit FMA per core ≈ 4.6 TFLOP/s, 8 DDR4-3200 channels per
    /// socket ≈ 410 GB/s.
    pub fn archer2_node() -> Self {
        MachineBalance {
            peak_gflops: 4608.0,
            peak_gbs: 410.0,
        }
    }

    /// Balance point in flops/byte: kernels below it are memory-bound.
    pub fn balance(&self) -> f64 {
        self.peak_gflops / self.peak_gbs
    }

    /// Roofline-attainable rate (GFLOP/s) at operational intensity `i`.
    pub fn attainable_gflops(&self, i: f64) -> f64 {
        (self.peak_gbs * i).min(self.peak_gflops)
    }

    /// Classify a kernel.
    pub fn classify(&self, counts: &KernelCounts) -> RooflineClass {
        if counts.intensity() < self.balance() {
            RooflineClass::MemoryBound
        } else {
            RooflineClass::ComputeBound
        }
    }

    /// The implied compute-bound runtime fraction β for a kernel: the share
    /// of the roofline-model runtime spent at the flop limit.
    ///
    /// `t = flops/peak_flops + bytes/peak_bw` (serialised transfer model);
    /// β is the flop term's share. The serialised model over-counts overlap
    /// but gives the right ordering, which is all the workload calibration
    /// needs from it.
    pub fn beta(&self, counts: &KernelCounts) -> f64 {
        let t_flop = counts.flops / (self.peak_gflops * 1e9);
        let t_mem = counts.bytes / (self.peak_gbs * 1e9);
        t_flop / (t_flop + t_mem)
    }
}

/// Memory- vs compute-bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RooflineClass {
    /// Limited by memory bandwidth; clock reduction is nearly free.
    MemoryBound,
    /// Limited by instruction throughput; clock reduction hurts linearly.
    ComputeBound,
}

/// A measured kernel execution, combining counts with wall time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelProfile {
    /// Analytic counts.
    pub counts: KernelCounts,
    /// Wall time (seconds).
    pub seconds: f64,
}

impl KernelProfile {
    /// Achieved GFLOP/s.
    pub fn gflops(&self) -> f64 {
        self.counts.flops / self.seconds / 1e9
    }

    /// Achieved GB/s.
    pub fn gbs(&self) -> f64 {
        self.counts.bytes / self.seconds / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn archer2_balance_point() {
        let m = MachineBalance::archer2_node();
        // ≈ 11 flops/byte: the classic "most codes are memory-bound" regime.
        assert!((10.0..=13.0).contains(&m.balance()), "balance {}", m.balance());
    }

    #[test]
    fn triad_is_memory_bound_dgemm_compute_bound() {
        let m = MachineBalance::archer2_node();
        // STREAM triad: 2 flops per 24 bytes = 1/12 flops/byte.
        let triad = KernelCounts {
            flops: 2.0e9,
            bytes: 24.0e9,
        };
        assert_eq!(m.classify(&triad), RooflineClass::MemoryBound);
        // 4096³ DGEMM: 2n³ flops over ~4n² ·8 bytes ⇒ intensity ~2048/8·... ≫ balance.
        let n = 4096.0f64;
        let dgemm = KernelCounts {
            flops: 2.0 * n * n * n,
            bytes: 4.0 * n * n * 8.0,
        };
        assert_eq!(m.classify(&dgemm), RooflineClass::ComputeBound);
    }

    #[test]
    fn attainable_follows_roofline_shape() {
        let m = MachineBalance::archer2_node();
        // Below the ridge: bandwidth-limited.
        assert!((m.attainable_gflops(1.0) - 410.0).abs() < 1e-9);
        // Above the ridge: flop-limited.
        assert!((m.attainable_gflops(100.0) - 4608.0).abs() < 1e-9);
        // At the ridge both limits agree.
        let ridge = m.balance();
        assert!((m.attainable_gflops(ridge) - 4608.0).abs() < 1e-6);
    }

    #[test]
    fn beta_ordering_matches_intensity() {
        let m = MachineBalance::archer2_node();
        let triad = KernelCounts {
            flops: 2.0,
            bytes: 24.0,
        };
        let stencil = KernelCounts {
            flops: 8.0,
            bytes: 16.0,
        };
        let gemm = KernelCounts {
            flops: 1e12,
            bytes: 4e8,
        };
        let b_triad = m.beta(&triad);
        let b_stencil = m.beta(&stencil);
        let b_gemm = m.beta(&gemm);
        assert!(b_triad < b_stencil && b_stencil < b_gemm);
        assert!(b_triad < 0.05, "triad beta {b_triad}");
        assert!(b_gemm > 0.95, "gemm beta {b_gemm}");
    }

    #[test]
    fn profile_rates() {
        let p = KernelProfile {
            counts: KernelCounts {
                flops: 2e9,
                bytes: 8e9,
            },
            seconds: 2.0,
        };
        assert!((p.gflops() - 1.0).abs() < 1e-12);
        assert!((p.gbs() - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "moves no bytes")]
    fn zero_bytes_rejected() {
        let _ = KernelCounts {
            flops: 1.0,
            bytes: 0.0,
        }
        .intensity();
    }
}
