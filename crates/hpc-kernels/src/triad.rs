//! STREAM triad — the canonical memory-bound kernel.
//!
//! `a[i] = b[i] + s·c[i]`: 2 flops per element against 24 bytes of traffic
//! (read b, read c, write a), operational intensity 1/12 flops/byte — far
//! below any modern machine balance. This is the regime where the paper's
//! 2.0 GHz cap is nearly free.

use crate::roofline::{KernelCounts, KernelProfile};
use rayon::prelude::*;
use std::time::Instant;

/// A triad workspace of three equal-length vectors.
#[derive(Debug, Clone)]
pub struct Triad {
    a: Vec<f64>,
    b: Vec<f64>,
    c: Vec<f64>,
}

impl Triad {
    /// Allocate for `n` elements with deterministic contents.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "triad needs at least one element");
        Triad {
            a: vec![0.0; n],
            b: (0..n).map(|i| (i % 97) as f64).collect(),
            c: (0..n).map(|i| (i % 89) as f64 * 0.5).collect(),
        }
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.a.len()
    }

    /// Whether the workspace is empty (never; constructor forbids).
    pub fn is_empty(&self) -> bool {
        self.a.is_empty()
    }

    /// One parallel triad sweep: `a = b + s·c`.
    pub fn run(&mut self, s: f64) {
        self.a
            .par_iter_mut()
            .zip(self.b.par_iter().zip(self.c.par_iter()))
            .for_each(|(a, (b, c))| {
                *a = b + s * c;
            });
    }

    /// Sequential reference sweep (for correctness tests).
    pub fn run_seq(&mut self, s: f64) {
        for i in 0..self.a.len() {
            self.a[i] = self.b[i] + s * self.c[i];
        }
    }

    /// Analytic work counts for one sweep.
    pub fn counts(&self) -> KernelCounts {
        let n = self.len() as f64;
        KernelCounts {
            flops: 2.0 * n,
            bytes: 24.0 * n,
        }
    }

    /// Run `iters` timed parallel sweeps and report the profile.
    pub fn profile(&mut self, s: f64, iters: usize) -> KernelProfile {
        let t0 = Instant::now();
        for _ in 0..iters {
            self.run(s);
        }
        let seconds = t0.elapsed().as_secs_f64().max(1e-9);
        let one = self.counts();
        KernelProfile {
            counts: KernelCounts {
                flops: one.flops * iters as f64,
                bytes: one.bytes * iters as f64,
            },
            seconds,
        }
    }

    /// Checksum of the output vector (order-independent validation).
    pub fn checksum(&self) -> f64 {
        self.a.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_matches_sequential() {
        let mut par = Triad::new(100_000);
        let mut seq = par.clone();
        par.run(3.0);
        seq.run_seq(3.0);
        assert_eq!(par.a, seq.a);
    }

    #[test]
    fn values_are_correct() {
        let mut t = Triad::new(1000);
        t.run(2.0);
        for i in 0..1000 {
            let expect = (i % 97) as f64 + 2.0 * ((i % 89) as f64 * 0.5);
            assert_eq!(t.a[i], expect, "element {i}");
        }
    }

    #[test]
    fn counts_scale_with_n() {
        let t = Triad::new(1 << 20);
        let c = t.counts();
        assert_eq!(c.flops, 2.0 * (1 << 20) as f64);
        assert_eq!(c.bytes, 24.0 * (1 << 20) as f64);
        assert!((c.intensity() - 1.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn profile_reports_positive_rates() {
        let mut t = Triad::new(1 << 16);
        let p = t.profile(1.5, 3);
        assert!(p.gbs() > 0.0);
        assert!(p.gflops() > 0.0);
        assert_eq!(p.counts.flops, 3.0 * 2.0 * (1 << 16) as f64);
    }

    #[test]
    fn checksum_changes_with_scalar() {
        let mut t = Triad::new(10_000);
        t.run(1.0);
        let c1 = t.checksum();
        t.run(2.0);
        let c2 = t.checksum();
        assert_ne!(c1, c2);
    }
}
