//! # hpc-kernels
//!
//! Real, runnable parallel kernels spanning the memory-bound ↔ compute-bound
//! spectrum that §4.2 of the paper turns on: "if application performance is
//! limited by data transfer rates from memory to the processor rather than
//! the rate of instruction execution, then [reducing the clock] may not have
//! a large detrimental effect on performance".
//!
//! Each kernel reports its analytic flop and byte counts, so the roofline
//! harness ([`roofline`]) can classify it by operational intensity — the
//! ground truth behind the β (compute-bound fraction) parameters the
//! workload models use. The Criterion benches in `archer2-bench` run these
//! kernels to demonstrate the dichotomy on the host machine.
//!
//! Parallelism is Rayon data-parallelism throughout: no hand-rolled thread
//! pools, data-race freedom by construction.

#![warn(missing_docs)]

pub mod dgemm;
pub mod fft;
pub mod nbody;
pub mod roofline;
pub mod spmv;
pub mod stencil;
pub mod triad;

pub use dgemm::Dgemm;
pub use fft::{fft, Complex, FftBatch};
pub use nbody::NBody;
pub use roofline::{KernelCounts, KernelProfile, MachineBalance, RooflineClass};
pub use spmv::CsrMatrix;
pub use stencil::Jacobi3d;
pub use triad::Triad;
