//! Iterative radix-2 FFT — the spectral-transform workhorse of climate and
//! plasma codes (the paper's ClimateOcean research area), sitting between
//! the stencil and DGEMM on the intensity spectrum: `O(n log n)` flops over
//! `O(n)` data.
//!
//! Batched transforms are parallelised across rows with Rayon, matching how
//! spectral models transform many latitude circles at once.

use crate::roofline::{KernelCounts, KernelProfile};
use rayon::prelude::*;
use std::time::Instant;

/// A complex value as (re, im); kept as a plain tuple-struct for dense
/// slice storage.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Construct.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Squared magnitude.
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }
}

impl std::ops::Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, other: Complex) -> Complex {
        Complex {
            re: self.re * other.re - self.im * other.im,
            im: self.re * other.im + self.im * other.re,
        }
    }
}

impl std::ops::Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, other: Complex) -> Complex {
        Complex {
            re: self.re + other.re,
            im: self.im + other.im,
        }
    }
}

impl std::ops::Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, other: Complex) -> Complex {
        Complex {
            re: self.re - other.re,
            im: self.im - other.im,
        }
    }
}

/// In-place iterative radix-2 Cooley–Tukey FFT.
///
/// `invert = true` computes the inverse transform (including the `1/n`
/// normalisation).
///
/// # Panics
/// Panics if the length is not a power of two.
pub fn fft(data: &mut [Complex], invert: bool) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length {n} must be a power of two");
    if n <= 1 {
        return;
    }

    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            data.swap(i, j);
        }
    }

    // Butterflies.
    let mut len = 2;
    while len <= n {
        let ang = std::f64::consts::TAU / len as f64 * if invert { 1.0 } else { -1.0 };
        let wlen = Complex::new(ang.cos(), ang.sin());
        let mut i = 0;
        while i < n {
            let mut w = Complex::new(1.0, 0.0);
            for k in 0..len / 2 {
                let u = data[i + k];
                let v = data[i + k + len / 2] * w;
                data[i + k] = u + v;
                data[i + k + len / 2] = u - v;
                w = w * wlen;
            }
            i += len;
        }
        len <<= 1;
    }

    if invert {
        let inv_n = 1.0 / n as f64;
        for x in data.iter_mut() {
            x.re *= inv_n;
            x.im *= inv_n;
        }
    }
}

/// A batch of equal-length rows transformed in parallel.
#[derive(Debug, Clone)]
pub struct FftBatch {
    rows: usize,
    n: usize,
    data: Vec<Complex>,
}

impl FftBatch {
    /// Deterministic test signal: each row a distinct mix of two tones.
    ///
    /// # Panics
    /// Panics if `n` is not a power of two or either dimension is zero.
    pub fn new(rows: usize, n: usize) -> Self {
        assert!(rows > 0 && n > 0, "empty batch");
        assert!(n.is_power_of_two(), "row length must be a power of two");
        let mut data = Vec::with_capacity(rows * n);
        for r in 0..rows {
            let f1 = (1 + r % 7) as f64;
            let f2 = (3 + r % 11) as f64;
            for i in 0..n {
                let x = i as f64 / n as f64;
                data.push(Complex::new(
                    (std::f64::consts::TAU * f1 * x).sin() + 0.5 * (std::f64::consts::TAU * f2 * x).cos(),
                    0.0,
                ));
            }
        }
        FftBatch { rows, n, data }
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Row length.
    pub fn n(&self) -> usize {
        self.n
    }

    /// One row's data.
    pub fn row(&self, r: usize) -> &[Complex] {
        &self.data[r * self.n..(r + 1) * self.n]
    }

    /// Transform every row in parallel.
    pub fn forward(&mut self) {
        let n = self.n;
        self.data.par_chunks_mut(n).for_each(|row| fft(row, false));
    }

    /// Inverse-transform every row in parallel.
    pub fn inverse(&mut self) {
        let n = self.n;
        self.data.par_chunks_mut(n).for_each(|row| fft(row, true));
    }

    /// Analytic counts for one whole-batch transform: 5 flops per butterfly
    /// stage element (the classic FFT cost model `5·n·log2(n)`), with each
    /// complex element read and written once per stage.
    pub fn counts(&self) -> KernelCounts {
        let n = self.n as f64;
        let stages = (self.n as f64).log2();
        let per_row_flops = 5.0 * n * stages;
        KernelCounts {
            flops: per_row_flops * self.rows as f64,
            bytes: 2.0 * 16.0 * n * self.rows as f64, // one pass in + out of cache
        }
    }

    /// Timed forward transforms.
    pub fn profile(&mut self, iters: usize) -> KernelProfile {
        let t0 = Instant::now();
        for _ in 0..iters {
            self.forward();
        }
        let one = self.counts();
        KernelProfile {
            counts: KernelCounts {
                flops: one.flops * iters as f64,
                bytes: one.bytes * iters as f64,
            },
            seconds: t0.elapsed().as_secs_f64().max(1e-9),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_transforms_to_flat_spectrum() {
        let mut data = vec![Complex::default(); 8];
        data[0] = Complex::new(1.0, 0.0);
        fft(&mut data, false);
        for x in &data {
            assert!((x.re - 1.0).abs() < 1e-12 && x.im.abs() < 1e-12);
        }
    }

    #[test]
    fn single_tone_peaks_at_its_bin() {
        let n = 64;
        let k = 5;
        let mut data: Vec<Complex> = (0..n)
            .map(|i| {
                let x = std::f64::consts::TAU * k as f64 * i as f64 / n as f64;
                Complex::new(x.cos(), x.sin())
            })
            .collect();
        fft(&mut data, false);
        for (i, v) in data.iter().enumerate() {
            let mag = v.norm_sq().sqrt();
            if i == k {
                assert!((mag - n as f64).abs() < 1e-9, "bin {i}: {mag}");
            } else {
                assert!(mag < 1e-9, "bin {i} should be empty: {mag}");
            }
        }
    }

    #[test]
    fn forward_inverse_roundtrip() {
        let mut b = FftBatch::new(16, 256);
        let orig = b.data.clone();
        b.forward();
        b.inverse();
        for (a, o) in b.data.iter().zip(&orig) {
            assert!((a.re - o.re).abs() < 1e-9 && (a.im - o.im).abs() < 1e-9);
        }
    }

    #[test]
    fn parseval_energy_conserved() {
        let mut b = FftBatch::new(4, 128);
        let time_energy: f64 = b.row(0).iter().map(|c| c.norm_sq()).sum();
        b.forward();
        let freq_energy: f64 = b.row(0).iter().map(|c| c.norm_sq()).sum::<f64>() / 128.0;
        assert!((time_energy - freq_energy).abs() < 1e-9 * time_energy.max(1.0));
    }

    #[test]
    fn parallel_batch_matches_sequential_rows() {
        let mut batch = FftBatch::new(32, 64);
        let mut reference = batch.clone();
        batch.forward();
        for r in 0..32 {
            let row = &mut reference.data[r * 64..(r + 1) * 64];
            fft(row, false);
        }
        assert_eq!(batch.data, reference.data);
    }

    #[test]
    fn intensity_between_stencil_and_gemm() {
        let b = FftBatch::new(8, 1 << 16);
        let i = b.counts().intensity();
        // 5·log2(n)/32 flops per byte: ~2.5 at n = 2^16.
        assert!((1.0..=4.0).contains(&i), "FFT intensity {i}");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let mut data = vec![Complex::default(); 12];
        fft(&mut data, false);
    }
}
