//! Sparse matrix–vector product (CSR) — bandwidth- and latency-bound, the
//! character of implicit solvers (CASTEP/ONETEP iterative diagonalisation,
//! Nektar++ linear systems).

use crate::roofline::{KernelCounts, KernelProfile};
use rayon::prelude::*;
use std::time::Instant;

/// A compressed-sparse-row matrix.
#[derive(Debug, Clone)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Build from triplets (row, col, value). Duplicates are summed.
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(usize, usize, f64)]) -> Self {
        let mut sorted: Vec<(usize, usize, f64)> = triplets.to_vec();
        for &(r, c, _) in &sorted {
            assert!(r < rows && c < cols, "triplet ({r},{c}) out of {rows}x{cols}");
        }
        sorted.sort_by_key(|&(r, c, _)| (r, c));

        let mut row_ptr = vec![0usize; rows + 1];
        let mut col_idx = Vec::with_capacity(sorted.len());
        let mut values: Vec<f64> = Vec::with_capacity(sorted.len());
        for &(r, c, v) in &sorted {
            if let (Some(&last_c), true) = (col_idx.last(), row_ptr[r + 1] > 0) {
                // Merge duplicate (r, c) pairs within the current row.
                if last_c == c && col_idx.len() > row_ptr[r] && row_ptr[r + 1] == col_idx.len() {
                    *values.last_mut().expect("non-empty") += v;
                    continue;
                }
            }
            // Rows are visited in order; fill pointers for skipped rows.
            col_idx.push(c);
            values.push(v);
            row_ptr[r + 1] = col_idx.len();
        }
        // Make row_ptr cumulative over empty rows.
        for r in 1..=rows {
            if row_ptr[r] < row_ptr[r - 1] {
                row_ptr[r] = row_ptr[r - 1];
            }
        }
        CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// A deterministic 2-D 5-point Laplacian on an `n×n` grid (the classic
    /// SpMV test matrix; dimension n²).
    pub fn laplacian_2d(n: usize) -> Self {
        let idx = |x: usize, y: usize| y * n + x;
        let mut t = Vec::with_capacity(5 * n * n);
        for y in 0..n {
            for x in 0..n {
                let i = idx(x, y);
                t.push((i, i, 4.0));
                if x > 0 {
                    t.push((i, idx(x - 1, y), -1.0));
                }
                if x + 1 < n {
                    t.push((i, idx(x + 1, y), -1.0));
                }
                if y > 0 {
                    t.push((i, idx(x, y - 1), -1.0));
                }
                if y + 1 < n {
                    t.push((i, idx(x, y + 1), -1.0));
                }
            }
        }
        CsrMatrix::from_triplets(n * n, n * n, &t)
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Stored non-zero count.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Parallel `y = A·x` (rows distributed over the pool).
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "x length mismatch");
        assert_eq!(y.len(), self.rows, "y length mismatch");
        y.par_iter_mut().enumerate().for_each(|(r, yr)| {
            let mut sum = 0.0;
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                sum += self.values[k] * x[self.col_idx[k]];
            }
            *yr = sum;
        });
    }

    /// Sequential reference.
    pub fn spmv_seq(&self, x: &[f64], y: &mut [f64]) {
        for (r, yr) in y.iter_mut().enumerate().take(self.rows) {
            let mut sum = 0.0;
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                sum += self.values[k] * x[self.col_idx[k]];
            }
            *yr = sum;
        }
    }

    /// Analytic counts per SpMV: 2 flops per non-zero; 12 bytes per
    /// non-zero (8-byte value + 4-byte-equivalent index share) plus the
    /// vector traffic.
    pub fn counts(&self) -> KernelCounts {
        let nnz = self.nnz() as f64;
        KernelCounts {
            flops: 2.0 * nnz,
            bytes: 12.0 * nnz + 8.0 * (self.rows + self.cols) as f64,
        }
    }

    /// Timed parallel SpMVs.
    pub fn profile(&self, x: &[f64], iters: usize) -> KernelProfile {
        let mut y = vec![0.0; self.rows];
        let t0 = Instant::now();
        for _ in 0..iters {
            self.spmv(x, &mut y);
        }
        let one = self.counts();
        KernelProfile {
            counts: KernelCounts {
                flops: one.flops * iters as f64,
                bytes: one.bytes * iters as f64,
            },
            seconds: t0.elapsed().as_secs_f64().max(1e-9),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_matrix_known_product() {
        // [2 0 1; 0 3 0] × [1, 2, 3] = [5, 6].
        let m = CsrMatrix::from_triplets(2, 3, &[(0, 0, 2.0), (0, 2, 1.0), (1, 1, 3.0)]);
        let mut y = vec![0.0; 2];
        m.spmv(&[1.0, 2.0, 3.0], &mut y);
        assert_eq!(y, vec![5.0, 6.0]);
        assert_eq!(m.nnz(), 3);
    }

    #[test]
    fn parallel_matches_sequential() {
        let m = CsrMatrix::laplacian_2d(40);
        let x: Vec<f64> = (0..m.cols()).map(|i| (i % 17) as f64 * 0.3).collect();
        let mut yp = vec![0.0; m.rows()];
        let mut ys = vec![0.0; m.rows()];
        m.spmv(&x, &mut yp);
        m.spmv_seq(&x, &mut ys);
        assert_eq!(yp, ys);
    }

    #[test]
    fn laplacian_structure() {
        let m = CsrMatrix::laplacian_2d(10);
        assert_eq!(m.rows(), 100);
        // 5-point stencil: 5·n² − 4·n boundary deficit.
        assert_eq!(m.nnz(), 5 * 100 - 4 * 10);
        // Constant vector: interior rows sum to zero (4 - 4 neighbours).
        let x = vec![1.0; 100];
        let mut y = vec![0.0; 100];
        m.spmv(&x, &mut y);
        let interior = y[5 * 10 + 5];
        assert_eq!(interior, 0.0);
        // Corner row: 4 - 2 = 2.
        assert_eq!(y[0], 2.0);
    }

    #[test]
    fn duplicates_are_summed() {
        let m = CsrMatrix::from_triplets(1, 1, &[(0, 0, 1.0), (0, 0, 2.5)]);
        assert_eq!(m.nnz(), 1);
        let mut y = vec![0.0];
        m.spmv(&[2.0], &mut y);
        assert_eq!(y, vec![7.0]);
    }

    #[test]
    fn empty_rows_handled() {
        let m = CsrMatrix::from_triplets(4, 4, &[(0, 0, 1.0), (3, 3, 2.0)]);
        let mut y = vec![9.0; 4];
        m.spmv(&[1.0; 4], &mut y);
        assert_eq!(y, vec![1.0, 0.0, 0.0, 2.0]);
    }

    #[test]
    fn spmv_is_memory_bound() {
        let m = CsrMatrix::laplacian_2d(64);
        let i = m.counts().intensity();
        assert!(i < 0.25, "SpMV intensity {i} must be tiny");
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn out_of_bounds_triplet_rejected() {
        let _ = CsrMatrix::from_triplets(2, 2, &[(2, 0, 1.0)]);
    }
}
