//! Programmatic verification of the full reproduction contract.
//!
//! [`run`] executes every check that `EXPERIMENTS.md` documents — each
//! table, each figure, the §2 and §5 claims — and returns a typed report a
//! downstream user can print, archive or assert on. The integration test
//! suite and the `verify_reproduction` example are both thin wrappers over
//! this module, so "does the repo still reproduce the paper?" is a single
//! function call.

use crate::experiment;
use serde::{Deserialize, Serialize};

/// One verified claim.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Check {
    /// Which paper artefact the check belongs to.
    pub artefact: String,
    /// What is being compared.
    pub quantity: String,
    /// The paper's value.
    pub paper: f64,
    /// The model's value.
    pub measured: f64,
    /// Acceptance tolerance, relative (e.g. `0.02`) unless `absolute`.
    pub tolerance: f64,
    /// Whether `tolerance` is absolute rather than relative.
    pub absolute: bool,
    /// Did the check pass?
    pub pass: bool,
}

impl Check {
    fn relative(artefact: &str, quantity: &str, paper: f64, measured: f64, tol: f64) -> Check {
        let pass = (measured - paper).abs() / paper.abs().max(1e-12) <= tol;
        Check {
            artefact: artefact.to_string(),
            quantity: quantity.to_string(),
            paper,
            measured,
            tolerance: tol,
            absolute: false,
            pass,
        }
    }

    fn absolute(artefact: &str, quantity: &str, paper: f64, measured: f64, tol: f64) -> Check {
        let pass = (measured - paper).abs() <= tol;
        Check {
            artefact: artefact.to_string(),
            quantity: quantity.to_string(),
            paper,
            measured,
            tolerance: tol,
            absolute: true,
            pass,
        }
    }
}

/// The whole verification run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VerificationReport {
    /// Seed used.
    pub seed: u64,
    /// Campaign scale divisor used.
    pub scale: u32,
    /// Every check, in paper order.
    pub checks: Vec<Check>,
}

impl VerificationReport {
    /// Did every check pass?
    pub fn all_pass(&self) -> bool {
        self.checks.iter().all(|c| c.pass)
    }

    /// Failing checks, if any.
    pub fn failures(&self) -> Vec<&Check> {
        self.checks.iter().filter(|c| !c.pass).collect()
    }

    /// Render as an aligned checklist.
    pub fn render(&self) -> String {
        let mut t = crate::report::Table::new([
            "Artefact", "Quantity", "Paper", "Measured", "Tolerance", "Status",
        ]);
        for c in &self.checks {
            t.row([
                c.artefact.clone(),
                c.quantity.clone(),
                format!("{:.4}", c.paper),
                format!("{:.4}", c.measured),
                if c.absolute {
                    format!("±{}", c.tolerance)
                } else {
                    format!("±{:.1}%", c.tolerance * 100.0)
                },
                if c.pass { "PASS".into() } else { "FAIL".into() },
            ]);
        }
        format!(
            "Reproduction verification (seed {}, scale 1/{}): {}/{} checks pass\n{}",
            self.seed,
            self.scale,
            self.checks.iter().filter(|c| c.pass).count(),
            self.checks.len(),
            t.render()
        )
    }
}

/// Run the full reproduction contract.
pub fn run(seed: u64, scale: u32) -> VerificationReport {
    let mut checks = Vec::new();

    // Table 1.
    let t1 = experiment::table1();
    checks.push(Check::absolute("Table 1", "compute nodes", 5860.0, t1.compute_nodes as f64, 0.0));
    checks.push(Check::absolute("Table 1", "compute cores", 750_080.0, t1.compute_cores as f64, 0.0));
    checks.push(Check::absolute("Table 1", "Slingshot switches", 768.0, t1.slingshot_switches as f64, 0.0));

    // Table 2.
    let t2 = experiment::table2(seed);
    checks.push(Check::relative("Table 2", "idle total (kW)", 1800.0, t2.idle_total_kw, 0.05));
    checks.push(Check::relative("Table 2", "loaded total (kW)", 3500.0, t2.loaded_total_kw, 0.05));
    checks.push(Check::relative("Table 2", "node share of loaded", 0.86, t2.rows[0].share, 0.04));

    // Tables 3-4: every ratio.
    for (label, table) in [("Table 3", experiment::table3(seed)), ("Table 4", experiment::table4(seed))] {
        for row in &table.rows {
            checks.push(Check::absolute(
                label,
                &format!("{} perf ratio", row.benchmark),
                row.paper.perf,
                row.model.perf,
                0.01,
            ));
            checks.push(Check::absolute(
                label,
                &format!("{} energy ratio", row.benchmark),
                row.paper.energy,
                row.model.energy,
                0.01,
            ));
        }
    }

    // Figures.
    let fig1 = experiment::figure1(seed, scale);
    checks.push(Check::relative("Figure 1", "baseline mean (kW)", 3220.0, fig1.summary.means[0], 0.02));
    checks.push(Check::absolute("Figure 1", "utilisation > 0.9", 0.95, fig1.utilisation, 0.05));

    let fig2 = experiment::figure2(seed, scale);
    checks.push(Check::relative("Figure 2", "before BIOS change (kW)", 3220.0, fig2.settled_means_kw[0], 0.02));
    checks.push(Check::relative("Figure 2", "after BIOS change (kW)", 3010.0, fig2.settled_means_kw[1], 0.02));

    let fig3 = experiment::figure3(seed, scale);
    checks.push(Check::relative("Figure 3", "before freq change (kW)", 3010.0, fig3.settled_means_kw[0], 0.02));
    checks.push(Check::relative("Figure 3", "after freq change (kW)", 2530.0, fig3.settled_means_kw[1], 0.02));

    // §5 conclusions.
    let c = experiment::conclusions(seed, &fig2, &fig3);
    checks.push(Check::absolute("Section 5", "total saving (kW)", 690.0, c.total_saving_kw, 75.0));
    checks.push(Check::absolute("Section 5", "total reduction", 0.21, c.total_drop, 0.025));
    checks.push(Check::absolute("Section 5", "BIOS reduction", 0.065, c.bios_drop, 0.015));
    checks.push(Check::absolute("Section 5", "frequency saving (kW)", 480.0, c.freq_drop_kw, 60.0));
    checks.push(Check::absolute("Section 5", "idle/loaded node fraction", 0.50, c.idle_fraction, 0.06));

    // §2 regimes.
    let regimes = experiment::emissions_regimes(seed);
    checks.push(Check::absolute("Section 2", "scope2=scope3 parity (g/kWh)", 65.0, regimes.parity_ci, 35.0));

    VerificationReport { seed, scale, checks }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_run_passes_everything() {
        let report = run(2022, 10);
        assert!(
            report.all_pass(),
            "failing checks: {:#?}",
            report.failures()
        );
        // The contract covers all paper artefacts.
        assert!(report.checks.len() >= 30, "{} checks", report.checks.len());
        for artefact in ["Table 1", "Table 2", "Table 3", "Table 4", "Figure 1", "Figure 2", "Figure 3", "Section 2", "Section 5"] {
            assert!(
                report.checks.iter().any(|c| c.artefact == artefact),
                "no checks for {artefact}"
            );
        }
    }

    #[test]
    fn render_is_a_checklist() {
        let report = run(2022, 10);
        let out = report.render();
        assert!(out.contains("checks pass"));
        assert!(out.contains("PASS"));
        assert!(!out.contains("FAIL"), "render should show no failures:\n{out}");
    }

    #[test]
    fn check_math() {
        let c = Check::relative("x", "y", 100.0, 101.0, 0.02);
        assert!(c.pass);
        let c = Check::relative("x", "y", 100.0, 103.0, 0.02);
        assert!(!c.pass);
        let c = Check::absolute("x", "y", 0.5, 0.52, 0.01);
        assert!(!c.pass);
        let c = Check::absolute("x", "y", 0.5, 0.505, 0.01);
        assert!(c.pass);
    }

    #[test]
    fn report_serialises() {
        let report = run(2022, 20);
        let json = serde_json::to_string(&report).unwrap();
        let back: VerificationReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
    }
}
