//! The campaign: a months-long discrete-event simulation of the facility
//! replaying the paper's operational timeline.
//!
//! A campaign drives the batch scheduler with an on-demand job stream
//! (ARCHER2-style standing backlog ⇒ >90 % utilisation), samples compute-
//! cabinet power on a fixed telemetry cadence, and lets the operator change
//! the facility operating point mid-flight — the BIOS determinism switch of
//! May 2022 (§4.1) and the 2.0 GHz default of Dec 2022 (§4.2).
//!
//! ## Modelling choices
//!
//! * A job's power draw and runtime are fixed when it *starts*, from the
//!   operating point in force at that instant (plus any per-job override).
//!   Operating-point changes therefore propagate over roughly one mean job
//!   length (~hours) — matching the sharp day-scale steps in Figures 2–3.
//! * Per-job node power is the calibrated application model evaluated with
//!   the facility-typical silicon; the silicon spread moves cabinet power
//!   by well under the ±1 % telemetry noise applied to samples.
//! * The frequency-change policy reproduces the paper's deployment: the
//!   module system resets jobs whose expected slowdown exceeds a threshold
//!   back to 2.25 GHz+turbo, and a small fraction of users override the
//!   default themselves.

use crate::facility::Archer2Facility;
use hpc_faults::{
    generate_schedule, DomainFaultConfig, FaultDomain, FaultDomains, FaultEvent, FaultKind,
    FaultSchedule, HealthMonitor, MeterFaultConfig, MeterFaultPlan, MeterReading, MeterState,
};
use hpc_power::FreqSetting;
use hpc_sched::BatchScheduler;
use hpc_telemetry::TimeSeries;
use hpc_tsdb::{
    PersistError, SanitizeConfig, SanitizeStats, Sanitizer, SeriesId, SeriesMeta, SnapshotStats,
    StoreConfig, TsdbStore, WalReplayStats,
};
use hpc_workload::{
    AppModel, GeneratorConfig, Job, JobGenerator, JobId, JobTrace, OperatingPoint, TraceEntry,
    WorkloadMix,
};
use hpc_topo::{NodeId, SwitchId};
use serde::{Deserialize, Serialize};
use sim_core::rng::{Rng, Xoshiro256StarStar};
use sim_core::sim::{Scheduler as EventScheduler, Simulation, World};
use sim_core::time::{SimDuration, SimTime};
use std::collections::HashMap;
use std::path::Path;

/// How jobs respond to a facility default of 2.0 GHz (§4.2's deployment).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FrequencyPolicy {
    /// Every job runs at the facility default.
    Blanket,
    /// Jobs whose predicted performance ratio at 2.0 GHz falls below the
    /// threshold are reset to 2.25 GHz+turbo by the module system, and
    /// `user_revert_fraction` of the rest override the default themselves.
    AutoRevert {
        /// Perf-ratio threshold; the paper reverted apps with >10 % impact.
        threshold: f64,
        /// Fraction of remaining jobs whose users force turbo anyway.
        user_revert_fraction: f64,
    },
}

impl Default for FrequencyPolicy {
    fn default() -> Self {
        FrequencyPolicy::AutoRevert {
            threshold: 0.90,
            user_revert_fraction: 0.01,
        }
    }
}

/// Campaign parameters.
///
/// Serialisable: a config round-trips through JSON bit-exactly (floats use
/// shortest round-trip formatting), which is what lets [`crate::sweep`]
/// ship full scenario grids to worker processes inside shard manifests.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Master seed (silicon lottery, job stream, telemetry noise).
    pub seed: u64,
    /// Telemetry cadence.
    pub sample_interval: SimDuration,
    /// Standing backlog depth the generator maintains.
    pub backlog_target: usize,
    /// Job-shape parameters.
    pub generator: GeneratorConfig,
    /// Research-area mix.
    pub mix: WorkloadMix,
    /// Frequency policy once the default drops to 2.0 GHz.
    pub policy: FrequencyPolicy,
    /// Fractional 1-sigma telemetry noise on power samples.
    pub telemetry_noise: f64,
    /// Fraction of the fleet unavailable to the scheduler at any moment
    /// (maintenance drains, service reservations, short-queue set-asides).
    /// These nodes draw idle power. ARCHER2 runs >90 % but not 100 %
    /// utilisation (§3.2: full load is "impossible to achieve due to
    /// scheduling overheads").
    pub unavailable_fraction: f64,
    /// Hardware failure injection, if enabled.
    pub failures: Option<FailureConfig>,
    /// Correlated, topology-aware fault injection (cabinet PSU trips, CDU
    /// cooling-loop failures, switch failures, per-meter sensor faults).
    /// Composes with — and is meant to replace — the flat `failures` model.
    pub faults: Option<FaultInjectionConfig>,
    /// Record a per-job accounting trace (HPC-JEEP-style).
    pub record_trace: bool,
    /// Dynamic operating schedule; `None` keeps the operating point fixed
    /// between explicit `set_operating_point` calls.
    pub schedule: Option<OperatingSchedule>,
    /// Record one power series per compute cabinet (heavier diagnostics:
    /// O(nodes) work per telemetry sample).
    pub per_cabinet_telemetry: bool,
    /// Record one power series per *node* into the telemetry store —
    /// per-node scale is exactly what [`hpc_tsdb`] exists for, but it is
    /// still O(nodes) compressed samples per tick, so it stays opt-in.
    pub per_node_telemetry: bool,
}

/// A time-varying operating policy: drop the default frequency whenever
/// the grid's carbon intensity (or stress) is above a threshold, restore it
/// when the grid relaxes — the §2 decision rule applied hour by hour
/// instead of once per year.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingSchedule {
    /// Carbon-intensity signal driving the policy.
    pub scenario: hpc_grid::IntensityScenario,
    /// Above this intensity (gCO₂/kWh) the facility sheds to `shed`.
    pub high_ci_threshold: f64,
    /// Operating point on a relaxed grid.
    pub normal: OperatingPoint,
    /// Operating point on a stressed grid.
    pub shed: OperatingPoint,
    /// How often the policy re-evaluates.
    pub tick: SimDuration,
}

impl OperatingSchedule {
    /// The operating point this schedule selects at `t`.
    pub fn at(&self, t: SimTime) -> OperatingPoint {
        if self.scenario.expected(t) > self.high_ci_threshold {
            self.shed
        } else {
            self.normal
        }
    }
}

/// Node hardware failure model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailureConfig {
    /// Mean time between failures of one node (hours). Fleet-level failure
    /// arrivals are exponential with rate `nodes / mtbf`.
    pub node_mtbf_hours: f64,
    /// Time a failed node spends offline before returning to service.
    pub repair: SimDuration,
}

impl Default for FailureConfig {
    fn default() -> Self {
        FailureConfig {
            // ~6 months per node: a 5,860-node fleet sees ~1.3 failures/hour.
            node_mtbf_hours: 4_380.0,
            repair: SimDuration::from_hours(24),
        }
    }
}

/// Correlated, topology-aware fault injection (the successor to the flat
/// [`FailureConfig`] model): a deterministic schedule of node, cabinet-PSU,
/// CDU-loop and switch failures generated up front from the seed, plus
/// optional sensor-fault models on the per-cabinet power meters.
///
/// The schedule covers `[start, start + horizon)`; a campaign run past the
/// horizon sees no further injected faults. Meter faults only apply when
/// [`CampaignConfig::per_cabinet_telemetry`] is set (they model the cabinet
/// meters, and there is nothing to distort otherwise).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultInjectionConfig {
    /// Per-domain-class failure and repair rates.
    pub domains: DomainFaultConfig,
    /// How far ahead of the campaign start the fault schedule extends.
    pub horizon: SimDuration,
    /// Cabinet power-meter fault model; `None` keeps the meters ideal.
    pub meters: Option<MeterFaultConfig>,
    /// Sanitisation rules applied to metered cabinet samples on ingest.
    pub sanitize: SanitizeConfig,
}

impl Default for FaultInjectionConfig {
    fn default() -> Self {
        FaultInjectionConfig {
            domains: DomainFaultConfig::default(),
            horizon: SimDuration::from_days(30),
            meters: None,
            sanitize: SanitizeConfig::default(),
        }
    }
}

/// Sensor-path health counters for a campaign with meter faults enabled:
/// what the meters dropped outright and what the ingest sanitiser did with
/// everything they reported.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SensorStats {
    /// Samples the meters never reported (dropout windows): gaps.
    pub dropped: u64,
    /// Stored/quarantined breakdown from the ingest sanitiser.
    pub sanitize: SanitizeStats,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed: 2022,
            sample_interval: SimDuration::from_mins(15),
            backlog_target: 120,
            generator: GeneratorConfig::default(),
            mix: WorkloadMix::archer2(),
            policy: FrequencyPolicy::default(),
            telemetry_noise: 0.01,
            unavailable_fraction: 0.05,
            failures: None,
            faults: None,
            record_trace: false,
            schedule: None,
            per_cabinet_telemetry: false,
            per_node_telemetry: false,
        }
    }
}

/// Telemetry-store health counters for a campaign. Sampling never panics
/// the simulation: a sample the store refuses (unregistered series,
/// non-monotonic timestamp) is dropped and *counted* here, so data loss is
/// visible instead of silent.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TelemetryStats {
    /// Samples the telemetry store refused on the sampling path.
    pub samples_rejected: u64,
    /// WAL replay outcome when this campaign was resumed from a checkpoint
    /// directory containing a `wal.twal`; `None` for fresh campaigns and
    /// snapshot-only resumes.
    pub wal_replay: Option<WalReplayStats>,
}

/// `campaign.json` sidecar written next to the snapshot by
/// [`Campaign::checkpoint`]: the handful of facts needed to rebuild the
/// dense telemetry views and restart the clock, which the tsdb snapshot
/// alone does not carry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct CheckpointMeta {
    format_version: u32,
    start_unix: u64,
    interval_s: u64,
    checkpoint_unix: u64,
    samples: u64,
    per_cabinet_telemetry: bool,
    per_node_telemetry: bool,
}

/// State recovered from a checkpoint directory, handed to `assemble` in
/// place of the fresh-start defaults.
struct ResumePieces {
    store: TsdbStore,
    series: TimeSeries,
    cabinet_series: Vec<TimeSeries>,
    /// Resume the clock here (the checkpoint instant).
    now: SimTime,
    /// First telemetry tick after the recovered history.
    next_sample: SimTime,
    wal_replay: Option<WalReplayStats>,
}

/// Campaign events.
#[derive(Debug, Clone, Copy)]
enum Event {
    /// Telemetry sample tick.
    Sample,
    /// A running job finishes. The epoch guards against a stale completion
    /// firing for a job that was killed by a node failure and restarted.
    Finish(JobId, u32),
    /// Top up the backlog and run a scheduling pass.
    Refill,
    /// A node fails.
    NodeFail,
    /// The dynamic operating schedule re-evaluates.
    PolicyTick,
    /// A failed node returns to service.
    NodeRepair(NodeId),
    /// The pre-generated correlated fault schedule fires event `i`.
    Fault(u32),
}

/// Live state of the correlated fault injector: the pre-generated schedule,
/// the domain membership maps, availability accounting, and per-component
/// down-refcounts (a node can be held down by its own fault *and* its
/// cabinet's — it returns to service only when the last holder repairs).
struct FaultRuntime {
    schedule: FaultSchedule,
    domains: FaultDomains,
    health: HealthMonitor,
    node_down: Vec<u32>,
    cabinet_down: Vec<u32>,
    cdu_down: Vec<u32>,
    switch_down: Vec<u32>,
    /// Switches currently de-energised (refcount > 0), for the budget.
    switches_down_now: u32,
    /// CDU loops currently down, for the budget.
    cdus_down_now: u32,
    /// Unavailable-set nodes (outside the scheduler) currently held down:
    /// only the power model needs to know about these.
    unavailable_down_now: u32,
}

/// Live state of the cabinet meter fault models: the pre-generated
/// per-meter plan, the stuck-at-last hold values, and the ingest sanitiser
/// that quarantines implausible readings before they reach the store.
struct MeterRuntime {
    plan: MeterFaultPlan,
    states: Vec<MeterState>,
    sanitizer: Sanitizer,
    /// Samples lost to dropout windows (never reported at all).
    dropped: u64,
}

/// Key for the per-(application, operating point) power/runtime cache.
/// The app is an interned id (see `FacilityWorld::app_ids`) so the cache
/// hit path — every job start after the first per app — hashes a `Copy`
/// key instead of cloning the app name `String`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct EvalKey {
    app: u32,
    setting: FreqSetting,
    mode: hpc_power::DeterminismMode,
}

/// Compact per-node power class, updated incrementally at job start/finish
/// and fault transitions so the sampling paths never chase scheduler
/// HashMaps. `Dark` covers every zero-draw state: powered down for repair,
/// or de-energised by a correlated fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NodeState {
    /// Healthy and unoccupied (schedulable or unavailable-set): idles.
    Idle,
    /// Running part of a job: draws its entry in `node_watts`.
    Busy,
    /// Powered down (failed, drained, or fault-held): draws nothing.
    Dark,
}

/// Incremental per-cabinet power aggregate: enough to price a cabinet in
/// O(1) at sample time. Idle count is derived (`cabinet nodes − busy −
/// dark`), so only two counters and one power sum need maintaining.
#[derive(Debug, Clone, Copy, Default)]
struct CabinetAgg {
    /// Sum of per-node watts over this cabinet's busy nodes.
    busy_w: f64,
    /// Busy nodes in this cabinet.
    busy: u32,
    /// Zero-draw (offline / fault-held) nodes in this cabinet.
    dark: u32,
}

/// The simulated world.
struct FacilityWorld {
    facility: Archer2Facility,
    /// Nodes the scheduler may use (fleet minus the unavailable set).
    schedulable_nodes: u32,
    scheduler: BatchScheduler,
    generator: JobGenerator,
    op: OperatingPoint,
    policy_active: bool,
    config: CampaignConfig,
    /// Sum of node power over running jobs (W).
    busy_power_w: f64,
    /// Per-job node power (W) for incremental accounting.
    job_power_w: HashMap<JobId, f64>,
    /// (power W/node, runtime ratio) cache per app × operating point.
    eval_cache: HashMap<EvalKey, (f64, f64)>,
    /// App-name interner backing [`EvalKey::app`]: one clone per distinct
    /// app ever evaluated, allocation-free lookups after that.
    app_ids: HashMap<String, u32>,
    /// SoA per-node power class (len = fleet), updated incrementally.
    node_state: Vec<NodeState>,
    /// SoA per-node draw of the running job (W); 0.0 unless `Busy`. Holds
    /// exactly `job_w / job_nodes` as the retired per-sample lookup chain
    /// computed it, so per-node telemetry stays bit-identical.
    node_watts: Vec<f64>,
    /// Cabinet index per node (topology is static).
    node_cabinet: Vec<u16>,
    /// Cabinet index per switch; `u16::MAX` for switches outside cabinets.
    switch_cabinet: Vec<u16>,
    /// Incremental per-cabinet aggregates mirroring `node_state`.
    cabinet_agg: Vec<CabinetAgg>,
    /// Total nodes per cabinet (static).
    cabinet_node_count: Vec<u32>,
    /// Energised switches per cabinet, maintained at fault transitions so
    /// cabinet sampling never filters the switch list.
    cabinet_live_switches: Vec<u32>,
    /// Reusable per-tick buffer for the batched node-telemetry append.
    node_sample_buf: Vec<(SeriesId, f64)>,
    /// Internal-invariant breaches detected at runtime (accounting slots
    /// missing where the old code `expect`ed them). A breach degrades the
    /// affected job's accounting instead of aborting the campaign, and is
    /// surfaced through `Campaign::verify_invariants`. Capped; see
    /// `invariant_breach`.
    runtime_violations: Vec<String>,
    /// Total runtime breaches, including any dropped past the cap.
    runtime_violation_count: u64,
    /// Fleet-mean idle node power per BIOS mode (kW), computed lazily.
    idle_kw_cache: HashMap<hpc_power::DeterminismMode, f64>,
    series: TimeSeries,
    noise_rng: Xoshiro256StarStar,
    policy_rng: Xoshiro256StarStar,
    reverted_jobs: u64,
    started_jobs: u64,
    /// Run-instance counter per job id (bumped when a failure kills a job).
    job_epoch: HashMap<JobId, u32>,
    /// Effective operating point per running job (for trace records).
    job_op: HashMap<JobId, OperatingPoint>,
    trace: JobTrace,
    cabinet_series: Vec<TimeSeries>,
    /// Compressed telemetry store: the facility series always, per-cabinet
    /// and per-node series when the matching config flags are set.
    store: TsdbStore,
    facility_sid: SeriesId,
    cabinet_sids: Vec<SeriesId>,
    node_sids: Vec<SeriesId>,
    failure_rng: Xoshiro256StarStar,
    node_failures: u64,
    jobs_killed: u64,
    telemetry: TelemetryStats,
    /// Correlated fault injector state, when `config.faults` is set.
    faults: Option<FaultRuntime>,
    /// Meter fault state, when `config.faults.meters` is set alongside
    /// per-cabinet telemetry.
    meters: Option<MeterRuntime>,
}

impl FacilityWorld {
    /// Evaluate (node power W, runtime ratio) for an app at an operating
    /// point, cached — the catalog is small, so the cache stays tiny while
    /// eliminating per-job bisection cost. The hit path (every start after
    /// an app's first) is allocation-free: the key carries an interned app
    /// id, not a cloned name.
    fn evaluate(&mut self, app: &AppModel, op: OperatingPoint) -> (f64, f64) {
        let app_id = match self.app_ids.get(app.name.as_str()) {
            Some(&id) => id,
            None => {
                let id = self.app_ids.len() as u32;
                self.app_ids.insert(app.name.clone(), id);
                id
            }
        };
        let key = EvalKey { app: app_id, setting: op.setting, mode: op.mode };
        if let Some(&v) = self.eval_cache.get(&key) {
            return v;
        }
        let nm = self.facility.node_model();
        let lot = self.facility.lottery();
        let v = (app.node_power_w(op, nm, lot), app.runtime_ratio(op, nm, lot));
        self.eval_cache.insert(key, v);
        v
    }

    /// Record a broken internal accounting invariant. The campaign keeps
    /// running in a degraded mode; [`Campaign::verify_invariants`] reports
    /// every breach. Capped so a pathological loop cannot eat memory.
    fn invariant_breach(&mut self, what: String) {
        self.runtime_violation_count += 1;
        if self.runtime_violations.len() < 64 {
            self.runtime_violations.push(what);
        }
    }

    /// Move one node to a new power class, keeping the SoA arrays and the
    /// per-cabinet aggregates in lockstep. `w` is the node's draw when
    /// `Busy` (ignored otherwise). Idempotent: re-asserting the current
    /// state is a no-op.
    fn set_node(&mut self, n: NodeId, new: NodeState, w: f64) {
        let i = n.index();
        let old = self.node_state[i];
        let new_w = if new == NodeState::Busy { w } else { 0.0 };
        if old == new && self.node_watts[i] == new_w {
            return;
        }
        let agg = &mut self.cabinet_agg[self.node_cabinet[i] as usize];
        match old {
            NodeState::Busy => {
                agg.busy -= 1;
                agg.busy_w -= self.node_watts[i];
                // Re-anchor the float accumulator every time the cabinet
                // drains: the true sum over zero busy nodes is exactly 0,
                // so add/subtract round-off cannot build up across epochs.
                if agg.busy == 0 {
                    agg.busy_w = 0.0;
                }
            }
            NodeState::Dark => agg.dark -= 1,
            NodeState::Idle => {}
        }
        match new {
            NodeState::Busy => {
                agg.busy += 1;
                agg.busy_w += new_w;
            }
            NodeState::Dark => agg.dark += 1,
            NodeState::Idle => {}
        }
        self.node_state[i] = new;
        self.node_watts[i] = new_w;
    }

    /// Apply the frequency policy to a job about to start, returning its
    /// effective operating point.
    fn effective_op(&mut self, job: &Job) -> OperatingPoint {
        let mut op = self.op;
        if let Some(setting) = job.freq_override {
            op.setting = setting;
            return op;
        }
        if op.setting == FreqSetting::Mid2000 && self.policy_active {
            if let FrequencyPolicy::AutoRevert {
                threshold,
                user_revert_fraction,
            } = self.config.policy
            {
                let (_, rt) = self.evaluate(&job.app, op);
                let perf = 1.0 / rt;
                let reverts = perf < threshold || self.policy_rng.chance(user_revert_fraction);
                if reverts {
                    op.setting = FreqSetting::TurboBoost2250;
                    self.reverted_jobs += 1;
                }
            }
        }
        op
    }

    /// Total compute-cabinet power right now (kW).
    fn compute_cabinet_power_kw(&mut self) -> f64 {
        let mode = self.op.mode;
        let facility = &self.facility;
        let per_idle_kw = *self
            .idle_kw_cache
            .entry(mode)
            .or_insert_with(|| facility.mean_idle_node_kw(mode));
        let unavailable = self.facility.nodes() - self.schedulable_nodes;
        let (unavail_down, sw_down, cdu_down) = match &self.faults {
            Some(fr) => (fr.unavailable_down_now, fr.switches_down_now, fr.cdus_down_now),
            None => (0, 0, 0),
        };
        // Offline (failed) nodes are powered down for repair and draw
        // nothing; unavailable-but-healthy nodes idle.
        let idle_nodes = (self.scheduler.free_nodes() + unavailable - unavail_down) as f64;
        let idle_kw = idle_nodes * per_idle_kw;
        // The incremental busy counter can drift to ~-1e-10 when a fault
        // storm empties the fleet; clamp so the budget never sees < 0.
        let nodes_kw = (self.busy_power_w / 1000.0 + idle_kw).max(0.0);
        // Fabric traffic tracks utilisation loosely; switch power barely
        // cares (§5).
        let util = self.scheduler.busy_nodes() as f64 / self.facility.nodes() as f64;
        let budget =
            self.facility
                .budget_from_nodes_degraded(nodes_kw, 0.7 * util, sw_down, cdu_down);
        budget.compute_cabinets_kw()
    }

    /// Run a scheduling pass and register starts.
    fn schedule_pass(&mut self, now: SimTime, sched: &mut EventScheduler<'_, Event>) {
        let placements = self.scheduler.schedule(now);
        for p in placements {
            let running = self
                .scheduler
                .running_job(p.job_id)
                .expect("just placed")
                .job
                .clone();
            let op = self.effective_op(&running);
            let (power_per_node_w, rt_ratio) = self.evaluate(&running.app, op);
            let job_w = power_per_node_w * running.nodes as f64;
            self.busy_power_w += job_w;
            self.job_power_w.insert(p.job_id, job_w);
            self.job_op.insert(p.job_id, op);
            self.started_jobs += 1;
            // Same division the retired per-sample lookup performed, so the
            // SoA watt array carries bit-identical per-node values.
            let per_node_w = job_w / running.nodes as f64;
            for &n in &p.nodes {
                self.set_node(n, NodeState::Busy, per_node_w);
            }
            let runtime = running.actual_runtime(rt_ratio);
            let epoch = *self.job_epoch.entry(p.job_id).or_insert(0);
            sched.after(runtime, Event::Finish(p.job_id, epoch));
        }
    }

    /// From-scratch recompute of one node's draw (W) out of scheduler and
    /// fault state — the retired per-sample lookup chain, kept as the
    /// reference the incremental SoA state is audited against (see
    /// [`Self::audit_power_accounting`]). Never on the sampling hot path.
    fn expected_node_w(&self, n: NodeId, per_idle_w: f64) -> f64 {
        if let Some(fr) = &self.faults {
            if fr.node_down[n.index()] > 0 {
                return 0.0; // de-energised by a correlated fault
            }
        }
        if n.0 >= self.schedulable_nodes {
            per_idle_w // the unavailable set idles
        } else if let Some(job) = self.scheduler.job_on_node(n) {
            let job_w = self.job_power_w.get(&job).copied().unwrap_or(0.0);
            let nodes = self.scheduler.running_job(job).map_or(1, |r| r.job.nodes);
            job_w / nodes as f64
        } else if self.scheduler.is_node_offline(n) {
            0.0 // powered down for repair
        } else {
            per_idle_w
        }
    }

    /// Audit the incremental power accounting against a brute-force
    /// recompute from scheduler + fault state: per-node states and watts,
    /// per-cabinet busy/dark counts and busy-power sums, and the fleet
    /// totals. Returns a description of every mismatch (empty = all hold).
    fn audit_power_accounting(&self) -> Vec<String> {
        let mut violations = Vec::new();
        let n_cabs = self.cabinet_agg.len();
        let mut busy = vec![0u32; n_cabs];
        let mut dark = vec![0u32; n_cabs];
        let mut busy_w = vec![0.0f64; n_cabs];
        let mut fleet_busy_w = 0.0;
        // Any positive reference level distinguishes Idle from Dark.
        let per_idle_w = 1.0;
        for i in 0..self.node_state.len() {
            let n = NodeId(i as u32);
            let cab = self.node_cabinet[i] as usize;
            let expect_w = self.expected_node_w(n, per_idle_w);
            let expect_state = if self.scheduler.job_on_node(n).is_some()
                && n.0 < self.schedulable_nodes
                && expect_w > 0.0
            {
                NodeState::Busy
            } else if expect_w == 0.0 {
                NodeState::Dark
            } else {
                NodeState::Idle
            };
            if self.node_state[i] != expect_state {
                if violations.len() < 8 {
                    violations.push(format!(
                        "node {i}: incremental state {:?} but recompute says {expect_state:?}",
                        self.node_state[i]
                    ));
                }
                continue;
            }
            match expect_state {
                NodeState::Busy => {
                    busy[cab] += 1;
                    busy_w[cab] += expect_w;
                    fleet_busy_w += expect_w;
                    if self.node_watts[i].to_bits() != expect_w.to_bits() {
                        violations.push(format!(
                            "node {i}: incremental watts {} != recomputed {expect_w}",
                            self.node_watts[i]
                        ));
                    }
                }
                NodeState::Dark => dark[cab] += 1,
                NodeState::Idle => {}
            }
        }
        for c in 0..n_cabs {
            let agg = &self.cabinet_agg[c];
            if (agg.busy, agg.dark) != (busy[c], dark[c]) {
                violations.push(format!(
                    "cabinet {c}: incremental busy/dark {}/{} but recompute says {}/{}",
                    agg.busy, agg.dark, busy[c], dark[c]
                ));
            }
            // The incremental sum accumulates in event order, the recompute
            // in node order: equal as real numbers, so require agreement to
            // float round-off only (relative, with a microwatt floor for
            // near-empty cabinets against kW-scale per-node terms).
            let tol = 1e-9 * busy_w[c].abs() + 1e-6;
            if (agg.busy_w - busy_w[c]).abs() > tol {
                violations.push(format!(
                    "cabinet {c}: incremental busy power {} W but recompute says {} W",
                    agg.busy_w, busy_w[c]
                ));
            }
        }
        let tol = 1e-9 * fleet_busy_w.abs() + 1e-6;
        if (self.busy_power_w - fleet_busy_w).abs() > tol {
            violations.push(format!(
                "fleet: incremental busy power {} W but recompute says {fleet_busy_w} W",
                self.busy_power_w
            ));
        }
        violations
    }

    /// Fleet idle node power (W) for the current BIOS mode, cached.
    fn per_idle_node_w(&mut self) -> f64 {
        let mode = self.op.mode;
        let facility = &self.facility;
        *self
            .idle_kw_cache
            .entry(mode)
            .or_insert_with(|| facility.mean_idle_node_kw(mode))
            * 1000.0
    }

    /// Sample per-cabinet power in O(cabinets): each cabinet is priced from
    /// its incremental aggregate (busy power sum, busy/dark counts, live
    /// switch count) — no per-node rescan, no per-tick model construction.
    /// Recorded both in the dense compat series and the compressed store.
    fn sample_cabinets(&mut self, ts: i64) {
        debug_assert!(
            self.audit_power_accounting().is_empty(),
            "incremental power accounting drifted from recompute: {:?}",
            self.audit_power_accounting()
        );
        let per_idle_w = self.per_idle_node_w();
        let util = self.scheduler.busy_nodes() as f64 / self.facility.nodes() as f64;
        // Models are built once with the facility; only the load varies.
        let sw_w = self.facility.switch_model().power_w(0.7 * util);
        let overhead = self.facility.overhead_model();

        let mut samples = Vec::with_capacity(self.cabinet_series.len());
        for (c, agg) in self.cabinet_agg.iter().enumerate() {
            let idle_nodes = self.cabinet_node_count[c] - agg.busy - agg.dark;
            // Like the fleet counter, the incremental cabinet sum can drift
            // to ~-1e-10 when a fault storm empties the cabinet; clamp.
            let nodes_w = (agg.busy_w + idle_nodes as f64 * per_idle_w).max(0.0);
            let switches_w = self.cabinet_live_switches[c] as f64 * sw_w;
            let it_w = nodes_w + switches_w;
            samples.push((it_w + overhead.power_w(it_w)) / 1000.0);
        }
        // The dense cabinet views always record the ground-truth physics;
        // the store path goes through the meter fault models (if any) and
        // the ingest sanitiser, so the stored series is what an operator
        // would actually see.
        let start_unix = self.series.start().as_unix();
        for (i, ((series, &sid), kw)) in self
            .cabinet_series
            .iter_mut()
            .zip(&self.cabinet_sids)
            .zip(samples)
            .enumerate()
        {
            series.push(kw);
            match self.meters.as_mut() {
                Some(mr) => {
                    let rel_s = (ts as u64).saturating_sub(start_unix);
                    match mr.plan.apply(i, rel_s, kw, &mut mr.states[i]) {
                        MeterReading::Missing => mr.dropped += 1,
                        MeterReading::Value { at_s, value, .. } => {
                            let skewed_ts = start_unix as i64 + at_s;
                            if mr.sanitizer.ingest(&self.store, sid, skewed_ts, value).is_none() {
                                self.telemetry.samples_rejected += 1;
                            }
                        }
                    }
                }
                None => {
                    if self.store.try_append_batch(sid, &[(ts, kw)]).is_err() {
                        self.telemetry.samples_rejected += 1;
                    }
                }
            }
        }
    }

    /// Sample every node's power into the compressed store (kW): one
    /// branch-light linear scan over the SoA state arrays, then a single
    /// batched multi-series append (one lock per store shard, shards fanned
    /// out over rayon) instead of 5,860 one-sample appends.
    fn sample_nodes(&mut self, ts: i64) {
        let per_idle_w = self.per_idle_node_w();
        let mut batch = std::mem::take(&mut self.node_sample_buf);
        batch.clear();
        batch.reserve(self.node_sids.len());
        for ((&sid, &state), &w) in
            self.node_sids.iter().zip(&self.node_state).zip(&self.node_watts)
        {
            let node_w = match state {
                NodeState::Busy => w,
                NodeState::Idle => per_idle_w,
                NodeState::Dark => 0.0,
            };
            batch.push((sid, node_w / 1000.0));
        }
        self.telemetry.samples_rejected += self.store.append_tick(ts, &batch);
        self.node_sample_buf = batch;
    }

    /// Draw the next fleet-level failure arrival.
    fn schedule_fail(&mut self, sched: &mut EventScheduler<'_, Event>) {
        if let Some(cfg) = self.config.failures {
            let rate_per_hour = self.schedulable_nodes as f64 / cfg.node_mtbf_hours;
            let gap_h = -(1.0 - self.failure_rng.next_f64()).ln() / rate_per_hour;
            let gap_s = (gap_h * 3600.0).max(1.0) as u64;
            sched.after(SimDuration::from_secs(gap_s), Event::NodeFail);
        }
    }

    /// Top the backlog up to the target.
    fn refill(&mut self, now: SimTime) {
        while self.scheduler.pending_count() < self.config.backlog_target {
            let job = self.generator.next_job(now);
            self.scheduler.submit(job);
        }
    }

    /// Strip a failure-killed job out of the incremental power accounting
    /// and bump its epoch so any in-flight `Finish` event goes stale. A
    /// missing power slot is an internal-invariant breach: reported, and
    /// the kill proceeds with zero power instead of aborting the campaign.
    fn kill_job_accounting(&mut self, killed: JobId) {
        match self.job_power_w.remove(&killed) {
            Some(job_w) => self.busy_power_w -= job_w,
            None => self.invariant_breach(format!(
                "kill: job {killed:?} was running but carried no power"
            )),
        }
        self.job_op.remove(&killed);
        *self.job_epoch.entry(killed).or_insert(0) += 1;
        self.jobs_killed += 1;
    }

    /// Fail `victim` through the scheduler, keeping the SoA node state in
    /// lockstep: the victim goes dark, and every other node of a killed
    /// job is released back to idle. Returns the killed job, if any.
    fn fail_node_tracked(&mut self, victim: NodeId, now: SimTime) -> Option<JobId> {
        // The scheduler releases the killed job's node list; capture it
        // first so the SoA state can follow without an API change.
        let job_nodes: Option<Vec<NodeId>> = self
            .scheduler
            .job_on_node(victim)
            .and_then(|id| self.scheduler.running_job(id).map(|r| r.nodes.clone()));
        let killed = self.scheduler.fail_node(victim, now);
        if killed.is_some() {
            for n in job_nodes.unwrap_or_default() {
                if n != victim {
                    self.set_node(n, NodeState::Idle, 0.0);
                }
            }
        }
        // Offline either way (fail_node on an already-offline node is a
        // no-op, and Dark is already recorded then).
        self.set_node(victim, NodeState::Dark, 0.0);
        killed
    }

    /// One component of `domain` lost power: bump the node's down-refcount
    /// and, on the 0→1 transition, drain it. Schedulable nodes go through
    /// the scheduler (killing whatever ran there); unavailable-set nodes
    /// only exist in the power model.
    fn fault_node_down(&mut self, fr: &mut FaultRuntime, n: NodeId, now: SimTime) {
        fr.node_down[n.index()] += 1;
        if fr.node_down[n.index()] > 1 {
            return;
        }
        if n.0 >= self.schedulable_nodes {
            fr.unavailable_down_now += 1;
            self.set_node(n, NodeState::Dark, 0.0);
            return;
        }
        self.node_failures += 1;
        if let Some(killed) = self.fail_node_tracked(n, now) {
            self.kill_job_accounting(killed);
        }
    }

    /// Reverse of [`Self::fault_node_down`]: on the 1→0 transition the node
    /// returns to service. Tolerates unmatched `Up` events (a resumed
    /// campaign only replays the future half of the schedule).
    fn fault_node_up(&mut self, fr: &mut FaultRuntime, n: NodeId, now: SimTime) {
        if fr.node_down[n.index()] == 0 {
            return;
        }
        fr.node_down[n.index()] -= 1;
        if fr.node_down[n.index()] > 0 {
            return;
        }
        if n.0 >= self.schedulable_nodes {
            fr.unavailable_down_now -= 1;
            self.set_node(n, NodeState::Idle, 0.0);
            return;
        }
        if self.scheduler.repair_node(n, now) {
            self.set_node(n, NodeState::Idle, 0.0);
        }
    }

    fn switch_down_transition(&mut self, fr: &mut FaultRuntime, s: SwitchId) {
        fr.switch_down[s.index()] += 1;
        if fr.switch_down[s.index()] == 1 {
            fr.switches_down_now += 1;
            let cab = self.switch_cabinet[s.index()];
            if cab != u16::MAX {
                self.cabinet_live_switches[cab as usize] -= 1;
            }
        }
    }

    fn switch_up_transition(&mut self, fr: &mut FaultRuntime, s: SwitchId) {
        if fr.switch_down[s.index()] == 0 {
            return;
        }
        fr.switch_down[s.index()] -= 1;
        if fr.switch_down[s.index()] == 0 {
            fr.switches_down_now -= 1;
            let cab = self.switch_cabinet[s.index()];
            if cab != u16::MAX {
                self.cabinet_live_switches[cab as usize] += 1;
            }
        }
    }

    /// Apply one event from the pre-generated fault schedule.
    ///
    /// * Node: that node drains (its job is killed and requeued).
    /// * Cabinet: the PSU trips — every node and switch in the cabinet
    ///   loses power at once.
    /// * CDU loop: availability accounting only; the thermal-drain cabinet
    ///   trips were already expanded into explicit `Cabinet` events when
    ///   the schedule was generated.
    /// * Switch: the attached endpoint nodes become unreachable, so the
    ///   scheduler drains them (modelled as powered down until repair).
    fn apply_fault(&mut self, fr: &mut FaultRuntime, event: FaultEvent, now: SimTime) {
        fr.health.record(event.kind, event.at_s);
        match event.kind {
            FaultKind::Down(domain) => match domain {
                FaultDomain::Node(n) => self.fault_node_down(fr, n, now),
                FaultDomain::Cabinet(c) => {
                    fr.cabinet_down[c.index()] += 1;
                    if fr.cabinet_down[c.index()] == 1 {
                        let switches: Vec<SwitchId> =
                            self.facility.topology().switches_in_cabinet(c).to_vec();
                        for s in switches {
                            self.switch_down_transition(fr, s);
                        }
                        let nodes = fr.domains.nodes_of(domain);
                        for n in nodes {
                            self.fault_node_down(fr, n, now);
                        }
                    }
                }
                FaultDomain::CduLoop(d) => {
                    fr.cdu_down[d.index()] += 1;
                    if fr.cdu_down[d.index()] == 1 {
                        fr.cdus_down_now += 1;
                    }
                }
                FaultDomain::Switch(s) => {
                    self.switch_down_transition(fr, s);
                    let nodes = fr.domains.nodes_of(domain);
                    for n in nodes {
                        self.fault_node_down(fr, n, now);
                    }
                }
            },
            FaultKind::Up(domain) => match domain {
                FaultDomain::Node(n) => self.fault_node_up(fr, n, now),
                FaultDomain::Cabinet(c) => {
                    if fr.cabinet_down[c.index()] > 0 {
                        fr.cabinet_down[c.index()] -= 1;
                        if fr.cabinet_down[c.index()] == 0 {
                            let switches: Vec<SwitchId> =
                                self.facility.topology().switches_in_cabinet(c).to_vec();
                            for s in switches {
                                self.switch_up_transition(fr, s);
                            }
                            let nodes = fr.domains.nodes_of(domain);
                            for n in nodes {
                                self.fault_node_up(fr, n, now);
                            }
                        }
                    }
                }
                FaultDomain::CduLoop(d) => {
                    if fr.cdu_down[d.index()] > 0 {
                        fr.cdu_down[d.index()] -= 1;
                        if fr.cdu_down[d.index()] == 0 {
                            fr.cdus_down_now -= 1;
                        }
                    }
                }
                FaultDomain::Switch(s) => {
                    self.switch_up_transition(fr, s);
                    let nodes = fr.domains.nodes_of(domain);
                    for n in nodes {
                        self.fault_node_up(fr, n, now);
                    }
                }
            },
        }
    }
}

impl World for FacilityWorld {
    type Event = Event;

    fn handle(&mut self, event: Event, sched: &mut EventScheduler<'_, Event>) {
        let now = sched.now();
        match event {
            Event::Sample => {
                let kw = self.compute_cabinet_power_kw();
                let noise = 1.0 + self.config.telemetry_noise * standard_normal(&mut self.noise_rng);
                let sampled = kw * noise.max(0.0);
                let ts = now.as_unix() as i64;
                self.series.push(sampled);
                if self.store.try_append_batch(self.facility_sid, &[(ts, sampled)]).is_err() {
                    self.telemetry.samples_rejected += 1;
                }
                if self.config.per_cabinet_telemetry {
                    self.sample_cabinets(ts);
                }
                if self.config.per_node_telemetry {
                    self.sample_nodes(ts);
                }
                sched.after(self.config.sample_interval, Event::Sample);
            }
            Event::Finish(id, epoch) => {
                if self.job_epoch.get(&id) != Some(&epoch) {
                    // Stale completion: the job was killed by a failure and
                    // restarted (or is waiting to restart) under a new epoch.
                    return;
                }
                // Missing accounting slots are internal-invariant breaches:
                // report and degrade (zero power, current operating point)
                // instead of aborting the campaign mid-flight.
                let job_w = match self.job_power_w.remove(&id) {
                    Some(w) => {
                        self.busy_power_w -= w;
                        w
                    }
                    None => {
                        self.invariant_breach(format!(
                            "finish: job {id:?} completed but carried no power"
                        ));
                        0.0
                    }
                };
                self.job_epoch.remove(&id);
                let op = match self.job_op.remove(&id) {
                    Some(op) => op,
                    None => {
                        self.invariant_breach(format!(
                            "finish: job {id:?} completed but carried no operating point"
                        ));
                        self.op
                    }
                };
                let done = self.scheduler.complete(id, now);
                for &n in &done.nodes {
                    self.set_node(n, NodeState::Idle, 0.0);
                }
                if self.config.record_trace {
                    self.trace.push(TraceEntry {
                        job: id,
                        app: done.job.app.name.clone(),
                        area: done.job.app.area,
                        nodes: done.job.nodes,
                        submitted: done.job.submitted_at,
                        started: done.started_at,
                        ended: now,
                        op,
                        node_power_w: job_w / done.job.nodes as f64,
                    });
                }
                self.refill(now);
                self.schedule_pass(now, sched);
            }
            Event::Refill => {
                self.refill(now);
                self.schedule_pass(now, sched);
            }
            Event::NodeFail => {
                let Some(cfg) = self.config.failures else {
                    return;
                };
                // Uniform victim across the schedulable fleet.
                let victim = NodeId(self.failure_rng.next_below(self.schedulable_nodes as u64) as u32);
                if self.scheduler.is_node_offline(victim) {
                    // Already down for repair; no new repair must be queued.
                    self.schedule_fail(sched);
                    return;
                }
                self.node_failures += 1;
                if let Some(killed) = self.fail_node_tracked(victim, now) {
                    // Remove the dead job's power; it restarts from scratch
                    // when the scheduler re-places it (no checkpointing).
                    self.kill_job_accounting(killed);
                }
                sched.after(cfg.repair, Event::NodeRepair(victim));
                self.schedule_fail(sched);
                self.schedule_pass(now, sched);
            }
            Event::NodeRepair(node) => {
                // A correlated fault may still hold this node down; if so
                // its own Up event will bring it back instead.
                let held_down = self
                    .faults
                    .as_ref()
                    .map(|fr| fr.node_down[node.index()] > 0)
                    .unwrap_or(false);
                if !held_down && self.scheduler.repair_node(node, now) {
                    self.set_node(node, NodeState::Idle, 0.0);
                }
                self.schedule_pass(now, sched);
            }
            Event::Fault(i) => {
                let Some(mut fr) = self.faults.take() else {
                    return;
                };
                if let Some(&event) = fr.schedule.events().get(i as usize) {
                    self.apply_fault(&mut fr, event, now);
                }
                self.faults = Some(fr);
                self.schedule_pass(now, sched);
            }
            Event::PolicyTick => {
                if let Some(schedule) = self.config.schedule {
                    self.op = schedule.at(now);
                    sched.after(schedule.tick, Event::PolicyTick);
                }
            }
        }
    }
}

fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
    let u1 = 1.0 - rng.next_f64();
    let u2 = rng.next_f64();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A runnable campaign.
pub struct Campaign {
    sim: Simulation<FacilityWorld>,
}

impl Campaign {
    /// Build a campaign over `facility` starting at `start` in operating
    /// point `op`.
    pub fn new(facility: Archer2Facility, config: CampaignConfig, start: SimTime, op: OperatingPoint) -> Self {
        Self::assemble(facility, config, start, op, None)
    }

    /// Shared constructor behind [`Self::new`] and [`Self::resume`]: builds
    /// the world from scratch, or around recovered telemetry when `resume`
    /// is given (in which case the clock starts at the checkpoint instant
    /// and sampling continues on the original grid).
    fn assemble(
        facility: Archer2Facility,
        config: CampaignConfig,
        start: SimTime,
        op: OperatingPoint,
        resume: Option<ResumePieces>,
    ) -> Self {
        let root = Xoshiro256StarStar::seeded(config.seed);
        let mut gen_cfg = config.generator;
        gen_cfg.max_nodes = gen_cfg.max_nodes.min(
            (facility.nodes() as f64 * (1.0 - config.unavailable_fraction)) as u32,
        );
        let generator = JobGenerator::new(
            gen_cfg,
            config.mix.clone(),
            facility.catalog(),
            config.seed ^ 0x9E37_79B9,
        );
        let unavailable =
            (facility.nodes() as f64 * config.unavailable_fraction).round() as u32;
        let schedulable_nodes = facility.nodes() - unavailable;
        let scheduler = BatchScheduler::new(schedulable_nodes);
        let (store, series, recovered_cabinets, now, next_sample, wal_replay) = match resume {
            Some(p) => (p.store, p.series, Some(p.cabinet_series), p.now, p.next_sample, p.wal_replay),
            None => (
                TsdbStore::default(),
                TimeSeries::new(start, config.sample_interval, "kW"),
                None,
                start,
                start,
                None,
            ),
        };
        let interval_hint = config.sample_interval.as_secs() as i64;
        let smeta = |name: String| SeriesMeta { name, unit: "kW".into(), interval_hint };
        // On a recovered store `register` is a by-name lookup, so the ids
        // below are the persisted ones and history keeps accumulating.
        let facility_sid = store.register(smeta("facility".into()));
        let cabinet_sids: Vec<SeriesId> = if config.per_cabinet_telemetry {
            (0..facility.topology().config().cabinets)
                .map(|c| store.register(smeta(format!("cabinet.{c}"))))
                .collect()
        } else {
            Vec::new()
        };
        let node_sids: Vec<SeriesId> = if config.per_node_telemetry {
            (0..facility.nodes())
                .map(|n| store.register(smeta(format!("node.{n}"))))
                .collect()
        } else {
            Vec::new()
        };
        // Correlated fault injection: the whole schedule (and the meter
        // fault plan) is a pure function of (config, topology, seed), so
        // two same-seed campaigns inject bit-identical fault timelines.
        let faults = config.faults.as_ref().map(|fc| {
            let domains = FaultDomains::from_topology(facility.topology());
            let schedule =
                generate_schedule(&fc.domains, &domains, config.seed ^ 0xFA17_5EED, fc.horizon);
            let health = HealthMonitor::new(
                domains.node_count(),
                domains.cabinet_count(),
                domains.cdu_count(),
                domains.switch_count(),
            );
            FaultRuntime {
                node_down: vec![0; domains.node_count() as usize],
                cabinet_down: vec![0; domains.cabinet_count() as usize],
                cdu_down: vec![0; domains.cdu_count() as usize],
                switch_down: vec![0; domains.switch_count() as usize],
                switches_down_now: 0,
                cdus_down_now: 0,
                unavailable_down_now: 0,
                schedule,
                domains,
                health,
            }
        });
        let meters = config.faults.as_ref().and_then(|fc| {
            let mc = fc.meters.as_ref()?;
            if !config.per_cabinet_telemetry {
                return None; // nothing to distort without cabinet meters
            }
            let n = facility.topology().config().cabinets as usize;
            Some(MeterRuntime {
                plan: MeterFaultPlan::generate(mc, n, fc.horizon, config.seed ^ 0x05E7_50FA),
                states: vec![MeterState::default(); n],
                sanitizer: Sanitizer::new(fc.sanitize),
                dropped: 0,
            })
        });
        // Static topology maps for the incremental accounting: cabinet of
        // every node and switch, per-cabinet node and switch totals.
        let topo = facility.topology();
        let n_nodes = facility.nodes() as usize;
        let n_cabs = topo.config().cabinets as usize;
        let mut node_cabinet = vec![0u16; n_nodes];
        let mut switch_cabinet = Vec::new();
        let mut cabinet_node_count = vec![0u32; n_cabs];
        let mut cabinet_live_switches = vec![0u32; n_cabs];
        for cab in topo.cabinets() {
            let c = cab.index();
            for &n in topo.nodes_in_cabinet(cab) {
                node_cabinet[n.index()] = c as u16;
                cabinet_node_count[c] += 1;
            }
            for &s in topo.switches_in_cabinet(cab) {
                if switch_cabinet.len() <= s.index() {
                    switch_cabinet.resize(s.index() + 1, u16::MAX);
                }
                switch_cabinet[s.index()] = c as u16;
                cabinet_live_switches[c] += 1;
            }
        }
        let world = FacilityWorld {
            schedulable_nodes,
            scheduler,
            generator,
            op,
            policy_active: true,
            busy_power_w: 0.0,
            job_power_w: HashMap::new(),
            eval_cache: HashMap::new(),
            app_ids: HashMap::new(),
            node_state: vec![NodeState::Idle; n_nodes],
            node_watts: vec![0.0; n_nodes],
            node_cabinet,
            switch_cabinet,
            cabinet_agg: vec![CabinetAgg::default(); n_cabs],
            cabinet_node_count,
            cabinet_live_switches,
            node_sample_buf: Vec::new(),
            runtime_violations: Vec::new(),
            runtime_violation_count: 0,
            series,
            idle_kw_cache: HashMap::new(),
            noise_rng: root.substream(1),
            policy_rng: root.substream(2),
            reverted_jobs: 0,
            started_jobs: 0,
            job_epoch: HashMap::new(),
            job_op: HashMap::new(),
            trace: JobTrace::new(),
            cabinet_series: Vec::new(),
            store,
            facility_sid,
            cabinet_sids,
            node_sids,
            failure_rng: root.substream(3),
            node_failures: 0,
            jobs_killed: 0,
            telemetry: TelemetryStats { samples_rejected: 0, wal_replay },
            faults,
            meters,
            config,
            facility,
        };
        let mut world = world;
        if let Some(cabinets) = recovered_cabinets {
            world.cabinet_series = cabinets;
        } else if world.config.per_cabinet_telemetry {
            let n = world.facility.topology().config().cabinets as usize;
            // Compact (mirror-free) views: at cabinet/node scale the dense
            // mirror would cost 8 B/sample per series and erase the
            // compression win; readbacks go through the tsdb store instead.
            world.cabinet_series = (0..n)
                .map(|_| TimeSeries::new_compact(start, world.config.sample_interval, "kW"))
                .collect();
        }
        let failures_enabled = world.config.failures.is_some();
        // Arm the whole fault timeline up front. On a resumed campaign only
        // the future half replays: refcount transitions tolerate the
        // unmatched `Up` events of faults that opened before the checkpoint.
        let fault_events: Vec<(u32, SimTime)> = world
            .faults
            .as_ref()
            .map(|fr| {
                fr.schedule
                    .events()
                    .iter()
                    .enumerate()
                    .map(|(i, e)| (i as u32, start + SimDuration::from_secs(e.at_s)))
                    .filter(|&(_, t)| t >= now)
                    .collect()
            })
            .unwrap_or_default();
        let mut sim = Simulation::new(now, world);
        sim.schedule(now, Event::Refill);
        sim.schedule(next_sample, Event::Sample);
        for (i, t) in fault_events {
            sim.schedule(t, Event::Fault(i));
        }
        if failures_enabled {
            sim.schedule(now + SimDuration::from_secs(1), Event::NodeFail);
        }
        if sim.world().config.schedule.is_some() {
            sim.schedule(now, Event::PolicyTick);
        }
        Campaign { sim }
    }

    /// Persist the campaign's telemetry into `dir`: a checksummed store
    /// snapshot (`store.tsnap`, written atomically) plus a small
    /// `campaign.json` sidecar recording the sampling grid and clock.
    ///
    /// Scheduler and job state are *not* checkpointed — a resumed campaign
    /// re-seeds its workload from [`CampaignConfig::seed`] and refills the
    /// backlog immediately, so power telemetry continues realistically but
    /// the post-resume job stream is not a replay of the lost one.
    pub fn checkpoint(&self, dir: &Path) -> Result<SnapshotStats, PersistError> {
        std::fs::create_dir_all(dir)?;
        let w = self.sim.world();
        let stats = w.store.snapshot_to_path(&dir.join("store.tsnap"))?;
        let meta = CheckpointMeta {
            format_version: 1,
            start_unix: w.series.start().as_unix(),
            interval_s: w.config.sample_interval.as_secs(),
            checkpoint_unix: self.sim.now().as_unix(),
            samples: w.series.len() as u64,
            per_cabinet_telemetry: w.config.per_cabinet_telemetry,
            per_node_telemetry: w.config.per_node_telemetry,
        };
        let json = serde_json::to_string_pretty(&meta)
            .map_err(|e| PersistError::Malformed(format!("campaign.json encode: {e:?}")))?;
        std::fs::write(dir.join("campaign.json"), json)?;
        Ok(stats)
    }

    /// Rebuild a campaign from a [`Self::checkpoint`] directory and carry
    /// on from the checkpoint instant.
    ///
    /// Recovery reads `store.tsnap` and, if present, replays `wal.twal`
    /// (written by ingest pipelines built with
    /// [`hpc_tsdb::TsdbStore::pipeline_with_wal`]) on top; the replay
    /// outcome lands in [`Self::telemetry_stats`]. `config` must describe
    /// the same sampling grid and telemetry series set the checkpoint was
    /// taken with, or this returns [`PersistError::Malformed`].
    pub fn resume(
        facility: Archer2Facility,
        config: CampaignConfig,
        op: OperatingPoint,
        dir: &Path,
    ) -> Result<Self, PersistError> {
        let text = std::fs::read_to_string(dir.join("campaign.json"))?;
        let meta: CheckpointMeta = serde_json::from_str(&text)
            .map_err(|e| PersistError::Malformed(format!("campaign.json: {e:?}")))?;
        if meta.format_version != 1 {
            return Err(PersistError::Malformed(format!(
                "campaign.json format_version {} (supported: 1)",
                meta.format_version
            )));
        }
        if meta.interval_s != config.sample_interval.as_secs() {
            return Err(PersistError::Malformed(format!(
                "sample interval mismatch: checkpoint {} s, config {} s",
                meta.interval_s,
                config.sample_interval.as_secs()
            )));
        }
        if meta.per_cabinet_telemetry != config.per_cabinet_telemetry
            || meta.per_node_telemetry != config.per_node_telemetry
        {
            return Err(PersistError::Malformed(
                "telemetry series set mismatch between checkpoint and config".into(),
            ));
        }

        let (store, report) = hpc_tsdb::recover(
            Some(&dir.join("store.tsnap")),
            Some(&dir.join("wal.twal")),
            StoreConfig::default(),
        )?;
        let start = SimTime::from_unix(meta.start_unix);
        let interval = config.sample_interval;
        let scan = |name: &str| -> Result<Vec<(i64, f64)>, PersistError> {
            let id = store
                .lookup(name)
                .ok_or_else(|| PersistError::Malformed(format!("checkpoint has no series {name:?}")))?;
            Ok(store.with_series(id, |s| s.scan(i64::MIN, i64::MAX)).expect("registered series"))
        };
        let samples = scan("facility")?;
        if (samples.len() as u64) < meta.samples {
            return Err(PersistError::Malformed(format!(
                "recovered facility series has {} samples, checkpoint recorded {}",
                samples.len(),
                meta.samples
            )));
        }
        let series = TimeSeries::from_tsdb_samples(start, interval, "kW", &samples, true)
            .map_err(PersistError::Malformed)?;
        let mut cabinet_series = Vec::new();
        if config.per_cabinet_telemetry {
            let n = facility.topology().config().cabinets;
            for c in 0..n {
                let cab = scan(&format!("cabinet.{c}"))?;
                cabinet_series.push(
                    TimeSeries::from_tsdb_samples(start, interval, "kW", &cab, false)
                        .map_err(PersistError::Malformed)?,
                );
            }
        }
        // Resume the clock at the checkpoint and keep sampling on the
        // original grid: the next tick follows the recovered history (WAL
        // replay may have extended it past `meta.samples`), clamped forward
        // so it is never scheduled in the past.
        let next_unix =
            (meta.start_unix + series.len() as u64 * meta.interval_s).max(meta.checkpoint_unix);
        let pieces = ResumePieces {
            store,
            series,
            cabinet_series,
            now: SimTime::from_unix(meta.checkpoint_unix),
            next_sample: SimTime::from_unix(next_unix),
            wal_replay: report.wal,
        };
        Ok(Self::assemble(facility, config, start, op, Some(pieces)))
    }

    /// Run the campaign up to `until`.
    pub fn run_until(&mut self, until: SimTime) {
        self.sim.run_until(until);
    }

    /// Change the facility operating point (takes effect for jobs that
    /// start from now on, like a rolling reboot of defaults).
    pub fn set_operating_point(&mut self, op: OperatingPoint) {
        self.sim.world_mut().op = op;
    }

    /// Current operating point.
    pub fn operating_point(&self) -> OperatingPoint {
        self.sim.world().op
    }

    /// The compute-cabinet power telemetry recorded so far.
    pub fn power_series(&self) -> &TimeSeries {
        &self.sim.world().series
    }

    /// Mean utilisation since the start, measured against the whole fleet
    /// (unavailable nodes count as unutilised, as in the service reports).
    pub fn utilisation(&self) -> f64 {
        let w = self.sim.world();
        w.scheduler.utilisation_meter().utilisation() * w.schedulable_nodes as f64
            / w.facility.nodes() as f64
    }

    /// Jobs started / reverted-to-turbo counts.
    pub fn job_counts(&self) -> (u64, u64) {
        let w = self.sim.world();
        (w.started_jobs, w.reverted_jobs)
    }

    /// The facility being simulated.
    pub fn facility(&self) -> &Archer2Facility {
        &self.sim.world().facility
    }

    /// Events processed so far (diagnostics).
    pub fn events_processed(&self) -> u64 {
        self.sim.events_processed()
    }

    /// (node failures injected, jobs killed by failures) so far.
    pub fn failure_counts(&self) -> (u64, u64) {
        let w = self.sim.world();
        (w.node_failures, w.jobs_killed)
    }

    /// Nodes currently offline for repair.
    pub fn offline_nodes(&self) -> u32 {
        self.sim.world().scheduler.offline_nodes()
    }

    /// The job accounting trace (empty unless `record_trace` was set).
    pub fn trace(&self) -> &JobTrace {
        &self.sim.world().trace
    }

    /// Per-cabinet power series (empty unless `per_cabinet_telemetry`).
    pub fn cabinet_series(&self) -> &[TimeSeries] {
        &self.sim.world().cabinet_series
    }

    /// The compressed telemetry store. Always holds the `"facility"`
    /// series; `"cabinet.N"` and `"node.N"` series when the matching
    /// config flags are set.
    pub fn telemetry_store(&self) -> &TsdbStore {
        &self.sim.world().store
    }

    /// A shared handle to the campaign's telemetry store, for a query
    /// service running alongside the simulation. [`TsdbStore`] handles
    /// clone by sharing the underlying shards, so queries through the
    /// returned handle observe every sample the campaign keeps ingesting —
    /// this is the hook `hpc-serve` binds its server to.
    pub fn serve_store(&self) -> TsdbStore {
        self.sim.world().store.clone()
    }

    /// Serve-mode run loop: advance the simulation to `until` in `step`
    /// increments, calling `observe` after each increment. Between calls
    /// the campaign has ingested one more step of telemetry, so an
    /// observer that drives (or measures) a live query service sees the
    /// store genuinely growing under its queries instead of a finished
    /// corpus. `step` must be positive.
    ///
    /// After each ingest increment (and before `observe`) the store's
    /// immutable read view is republished
    /// ([`TsdbStore::publish_view`]), so concurrent query sessions spend
    /// the whole next step evaluating lock-free against a fresh epoch
    /// snapshot instead of contending for shard locks with the writer.
    pub fn run_serve(
        &mut self,
        until: SimTime,
        step: SimDuration,
        mut observe: impl FnMut(&Campaign),
    ) {
        assert!(step.as_secs() > 0, "serve step must be positive");
        let mut now = self.sim.now();
        while now < until {
            now = (now + step).min(until);
            self.sim.run_until(now);
            self.sim.world().store.publish_view();
            observe(self);
        }
    }

    /// [`Self::run_serve`] followed by a graceful drain of the query
    /// service once the campaign ends: the server stops accepting, idle
    /// sessions are told to go away with a typed `Draining` frame, and
    /// in-flight requests get up to `drain_deadline` to finish before
    /// being force-closed. This is the campaign-owned shutdown ordering —
    /// telemetry stops growing first, *then* the serving tier winds down,
    /// so no session is severed while the store is still moving.
    ///
    /// Returns the drain accounting so callers (benches, the verify gate)
    /// can assert nothing had to be force-closed.
    pub fn run_serve_drained(
        &mut self,
        until: SimTime,
        step: SimDuration,
        mut server: hpc_serve::Server,
        drain_deadline: std::time::Duration,
        observe: impl FnMut(&Campaign),
    ) -> hpc_serve::DrainStats {
        self.run_serve(until, step, observe);
        server.drain(drain_deadline)
    }

    /// Id of the facility power series in [`Self::telemetry_store`].
    pub fn facility_series_id(&self) -> SeriesId {
        self.sim.world().facility_sid
    }

    /// Ids of the per-cabinet series (empty unless `per_cabinet_telemetry`).
    pub fn cabinet_series_ids(&self) -> &[SeriesId] {
        &self.sim.world().cabinet_sids
    }

    /// Ids of the per-node series (empty unless `per_node_telemetry`).
    pub fn node_series_ids(&self) -> &[SeriesId] {
        &self.sim.world().node_sids
    }

    /// Mean facility power (kW) over `[from, to)`, answered by the store's
    /// cached, instrumented query engine (rollup-planned when the window is
    /// aligned). Returns the value and the plan that produced it.
    pub fn facility_window_kw(&self, from: SimTime, to: SimTime) -> Option<(f64, hpc_tsdb::Plan)> {
        let w = self.sim.world();
        hpc_tsdb::store_aggregate(
            &w.store,
            w.facility_sid,
            from.as_unix() as i64,
            to.as_unix() as i64,
            hpc_tsdb::AggOp::Mean,
        )
    }

    /// Fan-out readback over every cabinet series in `[from, to)`: the
    /// cabinets are aggregated concurrently and reduced to a
    /// [`hpc_tsdb::GroupValue`] whose `sum_of_means` is the facility draw
    /// attributable to compute cabinets. Empty unless
    /// `per_cabinet_telemetry` was set.
    pub fn cabinets_window_kw(&self, from: SimTime, to: SimTime) -> hpc_tsdb::GroupValue {
        let w = self.sim.world();
        hpc_tsdb::fanout_group(
            &w.store,
            &w.cabinet_sids,
            from.as_unix() as i64,
            to.as_unix() as i64,
        )
    }

    /// Query-engine counters for the campaign's telemetry store (plans
    /// chosen, chunk cache hits, samples scanned, wall time).
    pub fn query_stats(&self) -> hpc_tsdb::QueryStats {
        self.sim.world().store.query_stats()
    }

    /// Telemetry-store health counters: samples the store refused on the
    /// sampling path, and the WAL replay outcome if this campaign was
    /// resumed from a checkpoint.
    pub fn telemetry_stats(&self) -> TelemetryStats {
        self.sim.world().telemetry
    }

    /// Scheduler job accounting: submissions, completions, kills,
    /// abandonments and backfill counters.
    pub fn scheduler_stats(&self) -> hpc_sched::SchedulerStats {
        self.sim.world().scheduler.stats()
    }

    /// Per-domain availability accounting (failures, repairs, MTBF/MTTR),
    /// when correlated fault injection is enabled.
    pub fn health(&self) -> Option<&HealthMonitor> {
        self.sim.world().faults.as_ref().map(|fr| &fr.health)
    }

    /// The pre-generated correlated fault schedule, when enabled.
    pub fn fault_schedule(&self) -> Option<&FaultSchedule> {
        self.sim.world().faults.as_ref().map(|fr| &fr.schedule)
    }

    /// The per-meter fault plan, when meter faults are enabled.
    pub fn meter_plan(&self) -> Option<&MeterFaultPlan> {
        self.sim.world().meters.as_ref().map(|mr| &mr.plan)
    }

    /// Sensor-path counters (meter dropouts plus the sanitiser's
    /// stored/quarantined breakdown), when meter faults are enabled.
    pub fn sensor_stats(&self) -> Option<SensorStats> {
        self.sim.world().meters.as_ref().map(|mr| SensorStats {
            dropped: mr.dropped,
            sanitize: mr.sanitizer.stats(),
        })
    }

    /// Gap-aware mean of one cabinet's *stored* power over `[from, to)`:
    /// the aggregate over present samples plus the coverage fraction
    /// telemetry actually achieved (dropouts and quarantined samples leave
    /// gaps). `None` unless per-cabinet telemetry is on and the index is
    /// valid.
    pub fn cabinet_window_gap(
        &self,
        cabinet: usize,
        from: SimTime,
        to: SimTime,
    ) -> Option<hpc_tsdb::GapAwareValue> {
        let w = self.sim.world();
        let &sid = w.cabinet_sids.get(cabinet)?;
        hpc_tsdb::store_gap_aggregate(&w.store, sid, from.as_unix() as i64, to.as_unix() as i64)
    }

    /// Check the campaign's cross-layer conservation invariants and return
    /// a description of every violation (empty = all hold):
    ///
    /// 1. **No lost jobs** — every submission is completed, abandoned,
    ///    running, or pending.
    /// 2. **Node conservation** — busy + free + offline covers exactly the
    ///    schedulable fleet.
    /// 3. **Energy accounting** — the incremental busy-power counter equals
    ///    the sum over running jobs.
    /// 4. **Power map consistency** — exactly the running jobs carry power.
    pub fn verify_invariants(&self) -> Vec<String> {
        let w = self.sim.world();
        let mut violations = Vec::new();
        let stats = w.scheduler.stats();
        let accounted = stats.completed
            + stats.abandoned
            + w.scheduler.running_count() as u64
            + w.scheduler.pending_count() as u64;
        if stats.submitted != accounted {
            violations.push(format!(
                "job conservation: {} submitted but {} accounted (completed {} + abandoned {} + running {} + pending {})",
                stats.submitted,
                accounted,
                stats.completed,
                stats.abandoned,
                w.scheduler.running_count(),
                w.scheduler.pending_count()
            ));
        }
        let (busy, free, off) = (
            w.scheduler.busy_nodes(),
            w.scheduler.free_nodes(),
            w.scheduler.offline_nodes(),
        );
        if busy + free + off != w.schedulable_nodes {
            violations.push(format!(
                "node conservation: busy {busy} + free {free} + offline {off} != schedulable {}",
                w.schedulable_nodes
            ));
        }
        let sum_w: f64 = w.job_power_w.values().sum();
        if (sum_w - w.busy_power_w).abs() > 1e-6 * w.busy_power_w.abs().max(1.0) {
            violations.push(format!(
                "energy accounting: running jobs draw {sum_w} W but busy_power_w is {} W",
                w.busy_power_w
            ));
        }
        if w.job_power_w.len() != w.scheduler.running_count() {
            violations.push(format!(
                "power map: {} jobs carry power but {} are running",
                w.job_power_w.len(),
                w.scheduler.running_count()
            ));
        }
        // 5. Incremental accounting — the SoA node state and per-cabinet /
        //    fleet power aggregates equal a from-scratch recompute out of
        //    scheduler + fault state.
        violations.extend(w.audit_power_accounting());
        // 6. Runtime breaches — accounting slots found missing mid-flight
        //    (the campaign degraded instead of aborting; see
        //    [`Self::runtime_violations`]).
        violations.extend(w.runtime_violations.iter().cloned());
        if w.runtime_violation_count > w.runtime_violations.len() as u64 {
            violations.push(format!(
                "…and {} further runtime breaches past the reporting cap",
                w.runtime_violation_count - w.runtime_violations.len() as u64
            ));
        }
        violations
    }

    /// Internal-invariant breaches the campaign detected and survived at
    /// runtime (missing accounting slots that would previously have
    /// panicked). Also folded into [`Self::verify_invariants`].
    pub fn runtime_violations(&self) -> &[String] {
        &self.sim.world().runtime_violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpc_topo::{DragonflyConfig, FacilityConfig};

    /// A 1/10-scale facility for fast tests: power means scale linearly.
    fn small_facility(seed: u64) -> Archer2Facility {
        // Component counts scaled by ~1/10 so the power composition (node
        // share ≈ 86 %) matches the full facility and means scale linearly.
        let cfg = FacilityConfig {
            nodes: 586,
            cores_per_node: 128,
            cabinets: 3,
            cdus: 1,
            filesystems: 1,
            fabric: DragonflyConfig {
                groups: 10,
                switches_per_group: 8,
                ports_per_switch: 64,
                endpoints_per_switch: 16,
                nics_per_node: 2,
            },
        };
        Archer2Facility::with_config(cfg, seed)
    }

    fn small_config() -> CampaignConfig {
        CampaignConfig {
            backlog_target: 40,
            generator: GeneratorConfig {
                max_nodes: 128,
                ..GeneratorConfig::default()
            },
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn utilisation_exceeds_90_percent() {
        // §3.2: "Compute node utilisation on ARCHER2 over all periods
        // considered in this paper is consistently over 90%".
        let f = small_facility(1);
        let start = SimTime::from_ymd(2021, 12, 1);
        let mut c = Campaign::new(f, small_config(), start, OperatingPoint::ORIGINAL);
        c.run_until(start + SimDuration::from_days(14));
        let util = c.utilisation();
        assert!(util > 0.90, "utilisation {util}");
    }

    #[test]
    fn power_series_sampled_on_cadence() {
        let f = small_facility(2);
        let start = SimTime::from_ymd(2021, 12, 1);
        let mut c = Campaign::new(f, small_config(), start, OperatingPoint::ORIGINAL);
        c.run_until(start + SimDuration::from_days(2));
        let s = c.power_series();
        // 2 days at 15-minute cadence = 192 samples (±1 boundary sample).
        assert!((191..=193).contains(&s.len()), "samples {}", s.len());
        assert_eq!(s.interval(), SimDuration::from_mins(15));
    }

    #[test]
    fn bios_change_drops_power() {
        let f = small_facility(3);
        let start = SimTime::from_ymd(2022, 4, 1);
        let mut c = Campaign::new(f, small_config(), start, OperatingPoint::ORIGINAL);
        c.run_until(start + SimDuration::from_days(10));
        c.set_operating_point(OperatingPoint::AFTER_BIOS);
        c.run_until(start + SimDuration::from_days(20));
        let s = c.power_series();
        let before = s.window_mean(start, start + SimDuration::from_days(10));
        // Skip a 2-day transition while old jobs drain.
        let after = s.window_mean(start + SimDuration::from_days(12), start + SimDuration::from_days(20));
        let drop = (before - after) / before;
        assert!((0.04..=0.10).contains(&drop), "BIOS drop {drop} (from {before} to {after} kW)");
    }

    #[test]
    fn frequency_change_drops_power_further() {
        let f = small_facility(4);
        let start = SimTime::from_ymd(2022, 11, 1);
        let mut c = Campaign::new(f, small_config(), start, OperatingPoint::AFTER_BIOS);
        c.run_until(start + SimDuration::from_days(10));
        c.set_operating_point(OperatingPoint::AFTER_FREQ);
        c.run_until(start + SimDuration::from_days(20));
        let s = c.power_series();
        let before = s.window_mean(start, start + SimDuration::from_days(10));
        let after = s.window_mean(start + SimDuration::from_days(12), start + SimDuration::from_days(20));
        let drop = (before - after) / before;
        assert!(
            (0.10..=0.22).contains(&drop),
            "frequency drop {drop} (from {before} to {after} kW)"
        );
        let (started, reverted) = c.job_counts();
        assert!(reverted > 0, "some jobs must revert to turbo");
        assert!(reverted < started / 2, "most jobs must accept the default");
    }

    #[test]
    fn blanket_policy_saves_more_than_auto_revert() {
        let run = |policy: FrequencyPolicy| {
            let f = small_facility(5);
            let cfg = CampaignConfig {
                policy,
                ..small_config()
            };
            let start = SimTime::from_ymd(2022, 11, 1);
            let mut c = Campaign::new(f, cfg, start, OperatingPoint::AFTER_FREQ);
            c.run_until(start + SimDuration::from_days(7));
            c.power_series().mean()
        };
        let blanket = run(FrequencyPolicy::Blanket);
        let auto = run(FrequencyPolicy::default());
        assert!(blanket < auto, "blanket 2.0 GHz should draw less: {blanket} vs {auto}");
    }

    #[test]
    fn campaign_is_deterministic() {
        let mk = || {
            let f = small_facility(6);
            let start = SimTime::from_ymd(2022, 1, 1);
            let mut c = Campaign::new(f, small_config(), start, OperatingPoint::ORIGINAL);
            c.run_until(start + SimDuration::from_days(3));
            c.power_series().values().to_vec()
        };
        assert_eq!(mk(), mk());
    }
}

#[cfg(test)]
mod failure_tests {
    use super::*;
    use crate::experiment::scaled_facility;

    fn failing_config() -> CampaignConfig {
        CampaignConfig {
            failures: Some(FailureConfig {
                node_mtbf_hours: 200.0, // aggressive: ~3 failures/hour at 1/10 scale
                repair: SimDuration::from_hours(12),
            }),
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn failures_occur_and_jobs_requeue() {
        let f = scaled_facility(11, 10);
        let start = SimTime::from_ymd(2022, 2, 1);
        let mut c = Campaign::new(f, failing_config(), start, OperatingPoint::ORIGINAL);
        c.run_until(start + SimDuration::from_days(7));
        let (failures, killed) = c.failure_counts();
        assert!(failures > 100, "expected many failures, got {failures}");
        // At >90 % utilisation most victims are busy.
        assert!(killed as f64 > failures as f64 * 0.5, "{killed} killed of {failures}");
        assert!(c.offline_nodes() > 0, "some nodes should be in repair");
    }

    #[test]
    fn facility_survives_failures_at_high_utilisation() {
        let f = scaled_facility(12, 10);
        let start = SimTime::from_ymd(2022, 2, 1);
        let mut c = Campaign::new(f, failing_config(), start, OperatingPoint::ORIGINAL);
        c.run_until(start + SimDuration::from_days(10));
        // The backlog keeps the healthy fleet saturated despite the churn.
        assert!(c.utilisation() > 0.85, "utilisation {}", c.utilisation());
        // Power stays finite and positive throughout.
        for &kw in c.power_series().values().iter() {
            assert!(kw > 0.0 && kw.is_finite());
        }
    }

    #[test]
    fn failures_reduce_mean_power_slightly() {
        // Offline nodes are powered down, so the failing campaign draws a
        // little less than the healthy one.
        let start = SimTime::from_ymd(2022, 2, 1);
        let healthy = {
            let f = scaled_facility(13, 10);
            let mut c = Campaign::new(f, CampaignConfig::default(), start, OperatingPoint::ORIGINAL);
            c.run_until(start + SimDuration::from_days(5));
            c.power_series().mean()
        };
        let failing = {
            let f = scaled_facility(13, 10);
            let mut c = Campaign::new(f, failing_config(), start, OperatingPoint::ORIGINAL);
            c.run_until(start + SimDuration::from_days(5));
            c.power_series().mean()
        };
        assert!(failing < healthy, "failing {failing} vs healthy {healthy}");
        assert!(failing > healthy * 0.9, "the dip should be modest");
    }

    #[test]
    fn no_failure_config_means_no_failures() {
        let f = scaled_facility(14, 10);
        let start = SimTime::from_ymd(2022, 2, 1);
        let mut c = Campaign::new(f, CampaignConfig::default(), start, OperatingPoint::ORIGINAL);
        c.run_until(start + SimDuration::from_days(3));
        assert_eq!(c.failure_counts(), (0, 0));
        assert_eq!(c.offline_nodes(), 0);
    }
}

#[cfg(test)]
mod fault_campaign_tests {
    use super::*;
    use crate::experiment::scaled_facility;
    use hpc_faults::{DomainClass, DomainRate};

    /// Aggressive correlated-fault rates so a one-week run sees every
    /// domain class fail (the test fleet is 1/10 scale).
    fn storm_domains() -> DomainFaultConfig {
        DomainFaultConfig {
            node: DomainRate {
                mtbf_hours: 400.0,
                repair_mean_hours: 8.0,
                repair_sigma: 0.5,
            },
            cabinet: DomainRate {
                mtbf_hours: 300.0,
                repair_mean_hours: 4.0,
                repair_sigma: 0.4,
            },
            cdu: DomainRate {
                mtbf_hours: 150.0,
                repair_mean_hours: 6.0,
                repair_sigma: 0.4,
            },
            switch: DomainRate {
                mtbf_hours: 2_000.0,
                repair_mean_hours: 4.0,
                repair_sigma: 0.4,
            },
            ..DomainFaultConfig::default()
        }
    }

    fn storm_config() -> CampaignConfig {
        CampaignConfig {
            faults: Some(FaultInjectionConfig {
                domains: storm_domains(),
                horizon: SimDuration::from_days(14),
                meters: None,
                sanitize: SanitizeConfig::default(),
            }),
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn correlated_faults_fire_and_invariants_hold() {
        let f = scaled_facility(51, 10);
        let start = SimTime::from_ymd(2022, 3, 1);
        let mut c = Campaign::new(f, storm_config(), start, OperatingPoint::ORIGINAL);
        c.run_until(start + SimDuration::from_days(7));

        let health = c.health().expect("faults enabled");
        assert!(health.class(DomainClass::Node).failures() > 0, "no node faults fired");
        assert!(health.class(DomainClass::Cdu).failures() > 0, "no CDU faults fired");
        // CDU trips drain every cabinet on the loop, so cabinets fail too.
        assert!(health.class(DomainClass::Cabinet).failures() > 0, "no cabinet trips");
        let violations = c.verify_invariants();
        assert!(violations.is_empty(), "invariants violated: {violations:?}");
        // Power stays physical throughout the storm.
        for &kw in c.power_series().values().iter() {
            assert!(kw > 0.0 && kw.is_finite());
        }
    }

    #[test]
    fn cabinet_trip_visibly_dents_facility_power() {
        // Only cabinet faults, at a rate where trips are common; the mean
        // power of the faulted run must sit below the healthy run.
        let start = SimTime::from_ymd(2022, 3, 1);
        let cfg = CampaignConfig {
            faults: Some(FaultInjectionConfig {
                domains: DomainFaultConfig {
                    node: DomainRate::OFF,
                    cabinet: DomainRate {
                        mtbf_hours: 100.0,
                        repair_mean_hours: 12.0,
                        repair_sigma: 0.3,
                    },
                    cdu: DomainRate::OFF,
                    switch: DomainRate::OFF,
                    ..DomainFaultConfig::default()
                },
                horizon: SimDuration::from_days(14),
                meters: None,
                sanitize: SanitizeConfig::default(),
            }),
            ..CampaignConfig::default()
        };
        let run = |cfg: CampaignConfig| {
            let f = scaled_facility(52, 10);
            let mut c = Campaign::new(f, cfg, start, OperatingPoint::ORIGINAL);
            c.run_until(start + SimDuration::from_days(7));
            (c.power_series().mean(), c.health().map(|h| h.class(DomainClass::Cabinet).failures()))
        };
        let (healthy_kw, _) = run(CampaignConfig::default());
        let (faulted_kw, trips) = run(cfg);
        assert!(trips.unwrap() > 0, "no cabinet trips in 7 days");
        assert!(
            faulted_kw < healthy_kw * 0.995,
            "cabinet trips should dent power: {faulted_kw} vs {healthy_kw}"
        );
    }

    #[test]
    fn fault_campaigns_are_deterministic() {
        let run = || {
            let f = scaled_facility(53, 10);
            let start = SimTime::from_ymd(2022, 3, 1);
            let mut c = Campaign::new(f, storm_config(), start, OperatingPoint::ORIGINAL);
            c.run_until(start + SimDuration::from_days(5));
            (
                c.fault_schedule().unwrap().digest(),
                c.power_series().values().to_vec(),
                c.failure_counts(),
            )
        };
        let (d1, p1, f1) = run();
        let (d2, p2, f2) = run();
        assert_eq!(d1, d2, "fault schedule digest must be seed-stable");
        assert_eq!(f1, f2);
        for (a, b) in p1.iter().zip(&p2) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn faults_off_is_bit_identical_to_the_legacy_path() {
        // Adding the fault machinery must not perturb existing campaigns:
        // with `faults: None` no extra RNG draws or events occur.
        let run = |faults: Option<FaultInjectionConfig>| {
            let f = scaled_facility(54, 10);
            let start = SimTime::from_ymd(2022, 3, 1);
            let cfg = CampaignConfig { faults, ..CampaignConfig::default() };
            let mut c = Campaign::new(f, cfg, start, OperatingPoint::ORIGINAL);
            c.run_until(start + SimDuration::from_days(3));
            c.power_series().values().to_vec()
        };
        let base = run(None);
        // A schedule with every rate off generates zero events -> same run.
        let quiet = run(Some(FaultInjectionConfig {
            domains: DomainFaultConfig {
                node: DomainRate::OFF,
                cabinet: DomainRate::OFF,
                cdu: DomainRate::OFF,
                switch: DomainRate::OFF,
                ..DomainFaultConfig::default()
            },
            ..FaultInjectionConfig::default()
        }));
        assert_eq!(base.len(), quiet.len());
        for (a, b) in base.iter().zip(&quiet) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn meter_faults_quarantine_and_coverage_drops() {
        let f = scaled_facility(55, 10);
        let start = SimTime::from_ymd(2022, 3, 1);
        let cfg = CampaignConfig {
            per_cabinet_telemetry: true,
            faults: Some(FaultInjectionConfig {
                domains: DomainFaultConfig {
                    node: DomainRate::OFF,
                    cabinet: DomainRate::OFF,
                    cdu: DomainRate::OFF,
                    switch: DomainRate::OFF,
                    ..DomainFaultConfig::default()
                },
                horizon: SimDuration::from_days(14),
                // Aggressive meter faults: every class well-represented.
                meters: Some(MeterFaultConfig {
                    dropouts_per_month: 20.0,
                    stuck_per_month: 10.0,
                    spikes_per_month: 30.0,
                    ..MeterFaultConfig::default()
                }),
                sanitize: SanitizeConfig {
                    min_value: 0.0,
                    max_value: 500.0,
                    max_stuck_run: 3,
                },
            }),
            ..CampaignConfig::default()
        };
        let mut c = Campaign::new(f, cfg, start, OperatingPoint::ORIGINAL);
        c.run_until(start + SimDuration::from_days(7));

        let stats = c.sensor_stats().expect("meter faults enabled");
        assert!(stats.dropped > 0, "no dropouts in 7 days: {stats:?}");
        assert!(stats.sanitize.quarantined() > 0, "nothing quarantined: {stats:?}");
        assert!(stats.sanitize.stored > 0, "sanitiser stored nothing: {stats:?}");

        // The dense (ground-truth) views are unaffected by meter faults.
        let total_samples = c.power_series().len() as u64;
        for s in c.cabinet_series() {
            assert_eq!(s.len() as u64, total_samples);
        }

        // Gap-aware readback: summed over cabinets, coverage is below 1
        // (samples went missing) and the mean stays physical.
        let (from, to) = (start, start + SimDuration::from_days(7));
        let mut any_gap = false;
        for i in 0..c.cabinet_series_ids().len() {
            let g = c.cabinet_window_gap(i, from, to).expect("cabinet series exists");
            assert!(g.coverage > 0.5 && g.coverage <= 1.0, "coverage {}", g.coverage);
            assert!(g.mean() > 0.0);
            if g.coverage < 1.0 || g.quarantined > 0 {
                any_gap = true;
            }
        }
        assert!(any_gap, "aggressive meter faults left no gaps at all");

        // Quarantined samples never entered the stored aggregates: every
        // stored sample sits inside the sanitiser's plausible range.
        let store = c.telemetry_store();
        for &sid in c.cabinet_series_ids() {
            let samples = store.with_series(sid, |s| s.scan(i64::MIN, i64::MAX)).unwrap();
            for (_, v) in samples {
                assert!((0.0..=500.0).contains(&v), "implausible stored value {v}");
            }
        }
        assert_eq!(c.telemetry_stats().samples_rejected, 0);
        let violations = c.verify_invariants();
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn switch_faults_drain_attached_nodes() {
        let f = scaled_facility(56, 10);
        let start = SimTime::from_ymd(2022, 3, 1);
        let cfg = CampaignConfig {
            faults: Some(FaultInjectionConfig {
                domains: DomainFaultConfig {
                    node: DomainRate::OFF,
                    cabinet: DomainRate::OFF,
                    cdu: DomainRate::OFF,
                    switch: DomainRate {
                        mtbf_hours: 500.0,
                        repair_mean_hours: 6.0,
                        repair_sigma: 0.4,
                    },
                    ..DomainFaultConfig::default()
                },
                horizon: SimDuration::from_days(14),
                meters: None,
                sanitize: SanitizeConfig::default(),
            }),
            ..CampaignConfig::default()
        };
        let mut c = Campaign::new(f, cfg, start, OperatingPoint::ORIGINAL);
        c.run_until(start + SimDuration::from_days(7));
        let health = c.health().unwrap();
        assert!(health.class(DomainClass::Switch).failures() > 0, "no switch faults");
        // Endpoint nodes were drained: node kills happened without any
        // node-class faults in the schedule.
        let (node_failures, _) = c.failure_counts();
        assert!(node_failures > 0, "switch faults must drain endpoints");
        let violations = c.verify_invariants();
        assert!(violations.is_empty(), "{violations:?}");
        // Everything comes back: after a quiet tail the fleet recovers.
        assert!(c.utilisation() > 0.8, "utilisation {}", c.utilisation());
    }

    #[test]
    fn health_monitor_availability_is_sane() {
        let f = scaled_facility(57, 10);
        let start = SimTime::from_ymd(2022, 3, 1);
        let mut c = Campaign::new(f, storm_config(), start, OperatingPoint::ORIGINAL);
        let days = 7u64;
        c.run_until(start + SimDuration::from_days(days));
        let health = c.health().unwrap();
        let at_s = days * 86_400;
        for class in [DomainClass::Node, DomainClass::Cabinet, DomainClass::Cdu, DomainClass::Switch] {
            let tr = health.class(class);
            let a = tr.availability(at_s);
            assert!((0.0..=1.0).contains(&a), "{class:?} availability {a}");
            if tr.failures() > 0 {
                assert!(a < 1.0, "{class:?} failed yet availability is 1.0");
                assert!(tr.mtbf_hours(at_s) > 0.0);
            }
        }
    }
}

#[cfg(test)]
mod telemetry_tests {
    use super::*;
    use crate::experiment::scaled_facility;

    fn instrumented_config() -> CampaignConfig {
        CampaignConfig {
            record_trace: true,
            per_cabinet_telemetry: true,
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn trace_records_completed_jobs() {
        let f = scaled_facility(21, 10);
        let start = SimTime::from_ymd(2022, 6, 1);
        let mut c = Campaign::new(f, instrumented_config(), start, OperatingPoint::AFTER_BIOS);
        c.run_until(start + SimDuration::from_days(4));
        let trace = c.trace();
        assert!(trace.len() > 500, "expected many completions, got {}", trace.len());
        // Energy per node-hour should sit near the busy node draw (~0.47 kW).
        let kwh = trace.mean_kwh_per_node_hour();
        assert!((0.35..=0.55).contains(&kwh), "kWh/node-hour {kwh}");
        // The app mix shows through: materials science codes lead.
        let by_app = trace.node_hours_by_app();
        assert!(by_app.len() >= 8, "a diverse mix: {} apps", by_app.len());
        // JSON round-trip of a real trace.
        let back = hpc_workload::JobTrace::from_json(&trace.to_json()).unwrap();
        assert_eq!(&back, trace);
    }

    #[test]
    fn cabinet_series_sum_to_facility_series() {
        let f = scaled_facility(22, 10);
        let cabinets = f.topology().config().cabinets as usize;
        let start = SimTime::from_ymd(2022, 6, 1);
        let mut c = Campaign::new(f, instrumented_config(), start, OperatingPoint::AFTER_BIOS);
        c.run_until(start + SimDuration::from_days(2));

        let cab = c.cabinet_series();
        assert_eq!(cab.len(), cabinets);
        // Cabinet views are compact: compressed chunks only, no dense mirror.
        assert!(cab.iter().all(|s| !s.has_mirror()));
        let total = c.power_series();
        assert_eq!(cab[0].len(), total.len());
        let cab_vals: Vec<Vec<f64>> = cab.iter().map(|s| s.values().into_owned()).collect();
        for i in 0..total.len() {
            let sum: f64 = cab_vals.iter().map(|v| v[i]).sum();
            let facility = total.values()[i];
            // The facility series carries ±1 % telemetry noise; the cabinet
            // series are noiseless, so reconcile within 5 sigma.
            assert!(
                (sum - facility).abs() / facility < 0.05,
                "sample {i}: cabinets {sum} vs facility {facility}"
            );
        }

        // The fan-out readback answers exactly what a sequential pass over
        // the store gives, and its cabinet sum reconciles with the facility
        // window mean within the telemetry noise.
        let (from, to) = (total.start(), total.end());
        let group = c.cabinets_window_kw(from, to);
        assert_eq!(group.series, cabinets);
        assert_eq!(group.missing, 0);
        let store = c.telemetry_store();
        let mut sequential = 0.0;
        for &sid in c.cabinet_series_ids() {
            sequential += hpc_tsdb::store_aggregate(
                store,
                sid,
                from.as_unix() as i64,
                to.as_unix() as i64,
                hpc_tsdb::AggOp::Mean,
            )
            .unwrap()
            .0;
        }
        let rel = (group.sum_of_means - sequential).abs() / sequential.abs().max(1.0);
        assert!(rel <= 1e-9, "fan-out {} vs sequential {sequential}", group.sum_of_means);
        let (facility_mean, _) = c.facility_window_kw(from, to).unwrap();
        assert!((group.sum_of_means - facility_mean).abs() / facility_mean < 0.05);
        // The readbacks above went through the instrumented engine.
        let stats = c.query_stats();
        assert!(stats.queries > cabinets as u64, "stats: {stats:?}");
    }

    #[test]
    fn cabinet_loads_are_balanced() {
        let f = scaled_facility(23, 10);
        let start = SimTime::from_ymd(2022, 6, 1);
        let mut c = Campaign::new(f, instrumented_config(), start, OperatingPoint::AFTER_BIOS);
        c.run_until(start + SimDuration::from_days(2));
        let means: Vec<f64> = c.cabinet_series().iter().map(|s| s.mean()).collect();
        // Nodes are spread in contiguous blocks, so per-cabinet means stay
        // within ~25 % of each other (the tail cabinet is smaller).
        let max = means.iter().cloned().fold(f64::MIN, f64::max);
        let min = means.iter().cloned().fold(f64::MAX, f64::min);
        assert!(min > 0.0);
        assert!(max / min < 1.6, "cabinet imbalance: {min:.1}..{max:.1} kW");
    }

    #[test]
    fn telemetry_off_by_default() {
        let f = scaled_facility(24, 10);
        let start = SimTime::from_ymd(2022, 6, 1);
        let mut c = Campaign::new(f, CampaignConfig::default(), start, OperatingPoint::AFTER_BIOS);
        c.run_until(start + SimDuration::from_days(1));
        assert!(c.trace().is_empty());
        assert!(c.cabinet_series().is_empty());
        // The store still carries the facility series, nothing else.
        assert_eq!(c.telemetry_store().series_count(), 1);
        assert!(c.node_series_ids().is_empty());
    }

    #[test]
    fn store_mirrors_the_facility_series_exactly() {
        let f = scaled_facility(25, 10);
        let start = SimTime::from_ymd(2022, 6, 1);
        let mut c = Campaign::new(f, CampaignConfig::default(), start, OperatingPoint::AFTER_BIOS);
        c.run_until(start + SimDuration::from_days(2));
        let stored = c
            .telemetry_store()
            .with_series(c.facility_series_id(), |s| s.scan(i64::MIN, i64::MAX))
            .unwrap();
        let dense = c.power_series();
        assert_eq!(stored.len(), dense.len());
        for (i, &(ts, v)) in stored.iter().enumerate() {
            assert_eq!(ts, dense.time_at(i).as_unix() as i64);
            assert_eq!(v.to_bits(), dense.values()[i].to_bits());
        }
    }

    #[test]
    fn per_node_telemetry_lands_in_the_store() {
        let f = scaled_facility(26, 10);
        let nodes = f.nodes() as usize;
        let start = SimTime::from_ymd(2022, 6, 1);
        let cfg = CampaignConfig {
            per_node_telemetry: true,
            per_cabinet_telemetry: true,
            ..CampaignConfig::default()
        };
        let mut c = Campaign::new(f, cfg, start, OperatingPoint::AFTER_BIOS);
        c.run_until(start + SimDuration::from_days(1));
        let store = c.telemetry_store();
        assert_eq!(c.node_series_ids().len(), nodes);
        assert_eq!(store.series_count(), 1 + c.cabinet_series_ids().len() + nodes);

        // Every node series is sampled on the telemetry cadence.
        let n_samples = c.power_series().len() as u64;
        for &sid in c.node_series_ids() {
            assert_eq!(store.with_series(sid, |s| s.len()).unwrap(), n_samples);
        }

        // Nodes dominate the facility draw: their summed mean sits below
        // the (noiseless) cabinet total but makes up most of it.
        let node_kw: f64 = c
            .node_series_ids()
            .iter()
            .map(|&sid| store.with_series(sid, |s| s.total_aggregate().mean()).unwrap())
            .sum();
        let cabinet_kw: f64 = c
            .cabinet_series_ids()
            .iter()
            .map(|&sid| store.with_series(sid, |s| s.total_aggregate().mean()).unwrap())
            .sum();
        assert!(node_kw < cabinet_kw, "nodes {node_kw} vs cabinets {cabinet_kw}");
        assert!(node_kw > 0.8 * cabinet_kw, "nodes {node_kw} vs cabinets {cabinet_kw}");
    }
}

#[cfg(test)]
mod persistence_tests {
    use super::*;
    use crate::experiment::scaled_facility;
    use hpc_tsdb::{WalConfig, WalWriter};
    use std::path::PathBuf;

    /// A unique scratch directory for one test, removed on drop.
    struct Scratch(PathBuf);

    impl Scratch {
        fn new(tag: &str) -> Self {
            let dir = std::env::temp_dir()
                .join(format!("archer2-campaign-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            Scratch(dir)
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn instrumented_config() -> CampaignConfig {
        CampaignConfig {
            per_cabinet_telemetry: true,
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn checkpoint_then_resume_is_bit_identical_on_history() {
        let scratch = Scratch::new("roundtrip");
        let start = SimTime::from_ymd(2022, 6, 1);
        let mut c = Campaign::new(
            scaled_facility(41, 10),
            instrumented_config(),
            start,
            OperatingPoint::AFTER_BIOS,
        );
        c.run_until(start + SimDuration::from_days(3));
        let stats = c.checkpoint(&scratch.0).unwrap();
        assert!(stats.series > 1 && stats.samples > 0);

        let r = Campaign::resume(
            scaled_facility(41, 10),
            instrumented_config(),
            OperatingPoint::AFTER_BIOS,
            &scratch.0,
        )
        .unwrap();
        // The dense facility view survives to the bit, mirror included.
        assert_eq!(c.power_series().len(), r.power_series().len());
        for (a, b) in c.power_series().values().iter().zip(r.power_series().values().iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // So do the compact cabinet views and the store contents.
        assert_eq!(c.cabinet_series().len(), r.cabinet_series().len());
        for (a, b) in c.cabinet_series().iter().zip(r.cabinet_series()) {
            assert_eq!(a.values(), b.values());
        }
        for &sid in c.cabinet_series_ids() {
            assert_eq!(
                c.telemetry_store().with_series(sid, |s| s.scan(i64::MIN, i64::MAX)),
                r.telemetry_store().with_series(sid, |s| s.scan(i64::MIN, i64::MAX)),
            );
        }
        assert_eq!(r.telemetry_stats().samples_rejected, 0);
        assert_eq!(r.telemetry_stats().wal_replay, None);
    }

    #[test]
    fn resumed_campaign_keeps_sampling_on_the_grid() {
        let scratch = Scratch::new("continue");
        let start = SimTime::from_ymd(2022, 6, 1);
        let cfg = CampaignConfig::default();
        let mut c = Campaign::new(scaled_facility(42, 10), cfg.clone(), start, OperatingPoint::AFTER_BIOS);
        c.run_until(start + SimDuration::from_days(2));
        let len_at_checkpoint = c.power_series().len();
        c.checkpoint(&scratch.0).unwrap();

        let mut r =
            Campaign::resume(scaled_facility(42, 10), cfg, OperatingPoint::AFTER_BIOS, &scratch.0)
                .unwrap();
        r.run_until(start + SimDuration::from_days(3));
        let s = r.power_series();
        // One more day of 15-minute samples landed on the original grid.
        assert!(s.len() >= len_at_checkpoint + 90, "{} -> {}", len_at_checkpoint, s.len());
        assert_eq!(s.start(), start);
        for &kw in s.values().iter() {
            assert!(kw > 0.0 && kw.is_finite());
        }
        // The store mirror also kept growing, rejecting nothing.
        let stored = r
            .telemetry_store()
            .with_series(r.facility_series_id(), |s| s.len())
            .unwrap();
        assert_eq!(stored, s.len() as u64);
        assert_eq!(r.telemetry_stats().samples_rejected, 0);
        assert!(r.utilisation() > 0.5, "backlog refills after resume");
    }

    #[test]
    fn resume_replays_a_wal_and_reports_it() {
        let scratch = Scratch::new("wal");
        let start = SimTime::from_ymd(2022, 6, 1);
        let cfg = CampaignConfig::default();
        let mut c = Campaign::new(scaled_facility(43, 10), cfg.clone(), start, OperatingPoint::AFTER_BIOS);
        c.run_until(start + SimDuration::from_days(1));
        c.checkpoint(&scratch.0).unwrap();

        // An external ingest pipeline appended one more grid-aligned sample
        // after the snapshot; only its WAL survived the "crash".
        let n = c.power_series().len() as u64;
        let interval = cfg.sample_interval.as_secs();
        let ts = (start.as_unix() + n * interval) as i64;
        let mut wal = WalWriter::create(&scratch.0.join("wal.twal"), WalConfig::default()).unwrap();
        wal.append_batch(c.facility_series_id(), &[(ts, 1234.5)]).unwrap();
        wal.sync().unwrap();
        drop(wal);

        let r = Campaign::resume(scaled_facility(43, 10), cfg, OperatingPoint::AFTER_BIOS, &scratch.0)
            .unwrap();
        let replay = r.telemetry_stats().wal_replay.expect("wal was replayed");
        assert_eq!(replay.applied, 1);
        assert_eq!(replay.rejected, 0);
        assert!(!replay.torn);
        // The replayed sample is part of the recovered history.
        assert_eq!(r.power_series().len() as u64, n + 1);
        assert_eq!(r.power_series().values().last().unwrap().to_bits(), 1234.5f64.to_bits());
    }

    #[test]
    fn resume_refuses_a_mismatched_config() {
        let scratch = Scratch::new("mismatch");
        let start = SimTime::from_ymd(2022, 6, 1);
        let mut c = Campaign::new(
            scaled_facility(44, 10),
            CampaignConfig::default(),
            start,
            OperatingPoint::AFTER_BIOS,
        );
        c.run_until(start + SimDuration::from_days(1));
        c.checkpoint(&scratch.0).unwrap();

        let wrong_interval = CampaignConfig {
            sample_interval: SimDuration::from_mins(5),
            ..CampaignConfig::default()
        };
        let err = Campaign::resume(
            scaled_facility(44, 10),
            wrong_interval,
            OperatingPoint::AFTER_BIOS,
            &scratch.0,
        )
        .err()
        .expect("resume must fail");
        assert!(matches!(err, PersistError::Malformed(_)), "{err}");

        let wrong_series_set = CampaignConfig {
            per_cabinet_telemetry: true,
            ..CampaignConfig::default()
        };
        let err = Campaign::resume(
            scaled_facility(44, 10),
            wrong_series_set,
            OperatingPoint::AFTER_BIOS,
            &scratch.0,
        )
        .err()
        .expect("resume must fail");
        assert!(matches!(err, PersistError::Malformed(_)), "{err}");
    }

    #[test]
    fn resume_detects_a_corrupted_snapshot() {
        let scratch = Scratch::new("corrupt");
        let start = SimTime::from_ymd(2022, 6, 1);
        let mut c = Campaign::new(
            scaled_facility(45, 10),
            CampaignConfig::default(),
            start,
            OperatingPoint::AFTER_BIOS,
        );
        c.run_until(start + SimDuration::from_days(1));
        c.checkpoint(&scratch.0).unwrap();

        let snap = scratch.0.join("store.tsnap");
        let len = std::fs::metadata(&snap).unwrap().len();
        hpc_tsdb::faults::flip_bit(&snap, len / 2, 3).unwrap();
        let err = Campaign::resume(
            scaled_facility(45, 10),
            CampaignConfig::default(),
            OperatingPoint::AFTER_BIOS,
            &scratch.0,
        )
        .err()
        .expect("resume must fail");
        assert!(
            matches!(
                err,
                PersistError::CorruptBlock { .. }
                    | PersistError::Truncated { .. }
                    | PersistError::Malformed(_)
            ),
            "{err}"
        );
    }
}

#[cfg(test)]
mod schedule_tests {
    use super::*;
    use crate::experiment::scaled_facility;
    use hpc_grid::IntensityScenario;

    fn grid_aware_config() -> CampaignConfig {
        CampaignConfig {
            schedule: Some(OperatingSchedule {
                scenario: IntensityScenario::UkGrid2022,
                high_ci_threshold: 230.0,
                normal: OperatingPoint::AFTER_BIOS,
                shed: OperatingPoint::AFTER_FREQ,
                tick: SimDuration::from_hours(1),
            }),
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn grid_aware_campaign_sits_between_the_static_points() {
        let start = SimTime::from_ymd(2022, 12, 1);
        let run = |cfg: CampaignConfig, op: OperatingPoint| {
            let f = scaled_facility(31, 10);
            let mut c = Campaign::new(f, cfg, start, op);
            c.run_until(start + SimDuration::from_days(10));
            c.power_series().mean()
        };
        let fast = run(CampaignConfig::default(), OperatingPoint::AFTER_BIOS);
        let slow = run(CampaignConfig::default(), OperatingPoint::AFTER_FREQ);
        let aware = run(grid_aware_config(), OperatingPoint::AFTER_BIOS);
        assert!(
            aware < fast && aware > slow,
            "grid-aware {aware:.0} should sit between {slow:.0} and {fast:.0}"
        );
    }

    #[test]
    fn schedule_follows_the_intensity_signal() {
        let sched = OperatingSchedule {
            scenario: IntensityScenario::UkGrid2022,
            high_ci_threshold: 230.0,
            normal: OperatingPoint::AFTER_BIOS,
            shed: OperatingPoint::AFTER_FREQ,
            tick: SimDuration::from_hours(1),
        };
        // December evening: stressed grid -> shed.
        let evening = SimTime::from_ymd_hms(2022, 12, 12, 18, 0, 0);
        assert_eq!(sched.at(evening), OperatingPoint::AFTER_FREQ);
        // July night: relaxed grid -> normal.
        let night = SimTime::from_ymd_hms(2022, 7, 10, 3, 0, 0);
        assert_eq!(sched.at(night), OperatingPoint::AFTER_BIOS);
    }

    #[test]
    fn campaign_operating_point_actually_switches() {
        let f = scaled_facility(32, 10);
        let start = SimTime::from_ymd(2022, 12, 1);
        let mut c = Campaign::new(f, grid_aware_config(), start, OperatingPoint::AFTER_BIOS);
        // Run to a December evening: the policy should have shed by then.
        c.run_until(SimTime::from_ymd_hms(2022, 12, 1, 18, 30, 0));
        assert_eq!(c.operating_point().setting, FreqSetting::Mid2000);
        // And restored overnight.
        c.run_until(SimTime::from_ymd_hms(2022, 12, 2, 4, 30, 0));
        assert_eq!(c.operating_point().setting, FreqSetting::TurboBoost2250);
    }
}
