//! Bit-identical merge of per-shard sweep output.
//!
//! The merge step is the sweep's verdict: it refuses anything less than a
//! provably complete, provably uncorrupted result set. Every shard summary
//! is revalidated (checksums, footers, recomputed digests), the per-shard
//! result lists are reassembled into grid order with every scenario present
//! exactly once, the per-scenario stores are folded into one merged
//! snapshot with namespaced series, and finally the merged snapshot is
//! *reopened* and re-digested per scenario to prove the merge itself did
//! not diverge — a failed self-check is [`SweepError::DigestMismatch`], not
//! a warning.

use super::manifest::{write_checksummed, SweepManifest};
use super::worker::{scenario_snapshot_path, validate_shard};
use super::{
    fold_store_digests, fold_summaries, hex, store_digest_stripped, ScenarioResult, SweepError,
};
use hpc_tsdb::{SeriesMeta, StoreConfig, TsdbStore};
use serde::{Serialize, Value};
use std::path::{Path, PathBuf};

/// A completed, digest-verified merge of a distributed sweep.
#[derive(Debug, Clone)]
pub struct MergedSweep {
    /// The manifest's grid digest, for provenance.
    pub grid_digest: String,
    /// Fold of per-scenario store digests in grid order — must equal
    /// [`run_in_process`](super::run_in_process)'s `store_digest` for the
    /// same grid.
    pub store_digest: String,
    /// Fold of per-scenario deterministic summaries in grid order.
    pub summary_digest: String,
    /// Canonical per-scenario results, grid order, every index once.
    pub results: Vec<ScenarioResult>,
    /// Path of the merged snapshot (`merged/store.tsnap`).
    pub merged_snapshot: PathBuf,
    /// Path of the merged checksummed summary (`merged/summary.json`).
    pub merged_summary: PathBuf,
    /// Scenario count, for convenience.
    pub scenarios: u32,
}

/// Prefix under which scenario `index`'s series live in the merged store.
fn scenario_prefix(index: u32) -> String {
    format!("s{index:05}/")
}

/// Merge every shard's persisted output under `out_dir` into one snapshot
/// and one checksummed summary, verifying completeness and bit-identity
/// along the way. See the module docs for the exact guarantees.
pub fn merge(manifest: &SweepManifest, out_dir: &Path) -> Result<MergedSweep, SweepError> {
    // 1. Every shard must validate end to end.
    let mut summaries = Vec::with_capacity(manifest.shards.len());
    for shard in &manifest.shards {
        let summary = validate_shard(out_dir, manifest, shard.shard_id)
            .map_err(|e| SweepError::Manifest(format!("shard {}: {e}", shard.shard_id)))?;
        summaries.push(summary);
    }

    // 2. Reassemble grid order: every scenario exactly once.
    let n = manifest.specs.len();
    let mut slots: Vec<Option<ScenarioResult>> = vec![None; n];
    for summary in summaries {
        for result in summary.results {
            let slot = slots.get_mut(result.index as usize).ok_or_else(|| {
                SweepError::Manifest(format!(
                    "merge: scenario index {} out of range (grid has {n})",
                    result.index
                ))
            })?;
            if slot.is_some() {
                return Err(SweepError::Manifest(format!(
                    "merge: scenario index {} delivered by more than one shard",
                    result.index
                )));
            }
            *slot = Some(result);
        }
    }
    let results: Vec<ScenarioResult> = slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.ok_or_else(|| SweepError::Manifest(format!("merge: scenario {i} missing")))
        })
        .collect::<Result<_, _>>()?;

    // 3. Fold the per-scenario stores into one namespaced merged store.
    let merged_dir = out_dir.join("merged");
    std::fs::create_dir_all(&merged_dir)?;
    let merged = TsdbStore::new(StoreConfig::default());
    for result in &results {
        let prefix = scenario_prefix(result.index);
        let snap = scenario_snapshot_path(out_dir, result.index);
        let store = TsdbStore::open_snapshot_path(&snap, StoreConfig::default())?;
        let mut catalog = store.series_catalog();
        catalog.sort_by(|a, b| a.1.name.cmp(&b.1.name));
        for (sid, meta, _) in catalog {
            let merged_id = merged.register(SeriesMeta {
                name: format!("{prefix}{}", meta.name),
                unit: meta.unit.clone(),
                interval_hint: meta.interval_hint,
            });
            let samples = store
                .with_series(sid, |s| s.scan(i64::MIN, i64::MAX))
                .expect("catalogued series exists");
            merged.append_batch(merged_id, &samples);
        }
    }
    let merged_snapshot = merged_dir.join("store.tsnap");
    merged.snapshot_to_path(&merged_snapshot)?;

    // 4. Self-check: reopen the merged snapshot and prove each scenario's
    //    namespaced slice digests exactly as its original store did.
    let reopened = TsdbStore::open_snapshot_path(&merged_snapshot, StoreConfig::default())?;
    for result in &results {
        let actual = hex(store_digest_stripped(&reopened, &scenario_prefix(result.index)));
        if actual != result.store_digest {
            return Err(SweepError::DigestMismatch {
                scenario: result.index,
                expected: result.store_digest.clone(),
                actual,
            });
        }
    }

    // 5. Write the merged summary (checksummed, atomic).
    let store_digest = hex(fold_store_digests(&results));
    let summary_digest = hex(fold_summaries(&results));
    let merged_summary = merged_dir.join("summary.json");
    let record = Value::Map(vec![
        ("grid_digest".to_string(), Value::Str(manifest.grid_digest.clone())),
        ("store_digest".to_string(), Value::Str(store_digest.clone())),
        ("summary_digest".to_string(), Value::Str(summary_digest.clone())),
        ("scenarios".to_string(), (n as u64).to_value()),
        ("results".to_string(), results.to_value()),
    ]);
    write_checksummed(&merged_summary, record)?;

    Ok(MergedSweep {
        grid_digest: manifest.grid_digest.clone(),
        store_digest,
        summary_digest,
        results,
        merged_snapshot,
        merged_summary,
        scenarios: n as u32,
    })
}

#[cfg(test)]
mod tests {
    use super::super::tests::tiny_specs;
    use super::super::worker::run_worker;
    use super::super::run_in_process;
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("sweep-merge-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn merge_matches_in_process_reference() {
        let dir = scratch("match");
        let specs = tiny_specs(3);
        let reference = run_in_process(&specs);
        let manifest = SweepManifest::partition(specs, 2, "explicit");
        let mpath = dir.join("manifest.json");
        manifest.write(&mpath).unwrap();
        run_worker(&mpath, 0, &dir).unwrap();
        run_worker(&mpath, 1, &dir).unwrap();

        let merged = merge(&manifest, &dir).unwrap();
        assert_eq!(merged.store_digest, reference.store_digest);
        assert_eq!(merged.summary_digest, reference.summary_digest);
        assert_eq!(merged.scenarios, 3);
        assert!(merged.merged_snapshot.is_file());
        assert!(merged.merged_summary.is_file());

        // The merged summary is itself a valid checksummed record.
        super::super::manifest::load_checksummed(&merged.merged_summary).unwrap();
    }

    #[test]
    fn merge_refuses_missing_shard() {
        let dir = scratch("missing");
        let manifest = SweepManifest::partition(tiny_specs(2), 2, "explicit");
        let mpath = dir.join("manifest.json");
        manifest.write(&mpath).unwrap();
        run_worker(&mpath, 0, &dir).unwrap(); // shard 1 never runs
        let err = merge(&manifest, &dir).unwrap_err();
        assert!(matches!(err, SweepError::Manifest(_)), "{err}");
    }
}
