//! Shard manifests: the checksummed JSON contract between the sweep
//! coordinator and its worker processes.
//!
//! A manifest is self-contained: it carries the *full* scenario grid (every
//! [`ScenarioSpec`] serialised field-by-field), the grid digest, the seed
//! derivation provenance, and the shard → scenario-index partition. A
//! worker needs nothing else to run its shard; a resumed coordinator needs
//! nothing else to finish a half-dead sweep. `docs/SWEEP.md` specifies the
//! format field by field.

use super::{hex, Fnv, SweepError};
use crate::scenarios::ScenarioSpec;
use serde::{Deserialize, Serialize, Value};
use std::path::Path;

/// Manifest format version. Bumped on any incompatible layout change;
/// loaders refuse versions they do not understand.
pub const MANIFEST_VERSION: u32 = 1;

/// One shard: a dense id and the grid indices it owns, ascending.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardSpec {
    /// Dense shard id, `0..shards.len()`.
    pub shard_id: u32,
    /// Grid indices this shard runs, strictly ascending.
    pub scenarios: Vec<u32>,
}

/// The sweep manifest: everything a worker or a resumed coordinator needs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepManifest {
    /// Format version ([`MANIFEST_VERSION`]).
    pub version: u32,
    /// How per-scenario seeds were derived from the sweep's base seed —
    /// provenance for reproducers (e.g. `"splitmix64(2022, index)"`, or
    /// `"explicit"` when the grid builder assigned seeds by hand).
    pub seed_derivation: String,
    /// FNV-1a over the canonical JSON of every spec, in grid order;
    /// 16 hex digits. Workers refuse a manifest whose recomputed grid
    /// digest differs — the grid they run is provably the grid that was
    /// partitioned.
    pub grid_digest: String,
    /// The full scenario grid, input order. Index into this is the
    /// scenario identity used everywhere else in the sweep layer.
    pub specs: Vec<ScenarioSpec>,
    /// The partition. Every grid index appears in exactly one shard.
    pub shards: Vec<ShardSpec>,
}

impl SweepManifest {
    /// Partition a grid into `shard_count` shards of near-equal size
    /// (sizes differ by at most one; earlier shards take the extra).
    ///
    /// The partition is a bijection: every scenario index lands in exactly
    /// one shard, for any `shard_count >= 1` — property-tested in
    /// `tests/sweep_distributed.rs`.
    ///
    /// # Panics
    /// Panics if `shard_count` is zero.
    pub fn partition(
        specs: Vec<ScenarioSpec>,
        shard_count: usize,
        seed_derivation: impl Into<String>,
    ) -> SweepManifest {
        assert!(shard_count >= 1, "a sweep needs at least one shard");
        let n = specs.len();
        let base = n / shard_count;
        let extra = n % shard_count;
        let mut shards = Vec::with_capacity(shard_count);
        let mut next = 0u32;
        for shard_id in 0..shard_count as u32 {
            let take = base + usize::from((shard_id as usize) < extra);
            let scenarios: Vec<u32> = (next..next + take as u32).collect();
            next += take as u32;
            shards.push(ShardSpec { shard_id, scenarios });
        }
        let grid_digest = hex(grid_digest(&specs));
        SweepManifest {
            version: MANIFEST_VERSION,
            seed_derivation: seed_derivation.into(),
            grid_digest,
            specs,
            shards,
        }
    }

    /// Write the manifest as checksummed JSON, atomically (tmp + rename).
    pub fn write(&self, path: &Path) -> Result<(), SweepError> {
        write_checksummed(path, self.to_value())
    }

    /// Load and fully validate a manifest: checksum, version, recomputed
    /// grid digest, and partition well-formedness (every grid index in
    /// exactly one shard, shard ids dense and ascending).
    pub fn load(path: &Path) -> Result<SweepManifest, SweepError> {
        let value = load_checksummed(path)?;
        let manifest = SweepManifest::from_value(&value)
            .map_err(|e| SweepError::Manifest(format!("{}: {e}", path.display())))?;
        if manifest.version != MANIFEST_VERSION {
            return Err(SweepError::Manifest(format!(
                "{}: unsupported manifest version {} (this build reads {})",
                path.display(),
                manifest.version,
                MANIFEST_VERSION
            )));
        }
        let recomputed = hex(grid_digest(&manifest.specs));
        if recomputed != manifest.grid_digest {
            return Err(SweepError::Manifest(format!(
                "{}: grid digest mismatch: recorded {}, recomputed {recomputed}",
                path.display(),
                manifest.grid_digest
            )));
        }
        manifest.validate_partition().map_err(|e| {
            SweepError::Manifest(format!("{}: {e}", path.display()))
        })?;
        Ok(manifest)
    }

    /// Check the shards form a partition of `0..specs.len()`.
    fn validate_partition(&self) -> Result<(), String> {
        let n = self.specs.len();
        let mut seen = vec![false; n];
        for (pos, shard) in self.shards.iter().enumerate() {
            if shard.shard_id as usize != pos {
                return Err(format!(
                    "shard ids must be dense and ascending: position {pos} holds id {}",
                    shard.shard_id
                ));
            }
            let mut prev: Option<u32> = None;
            for &idx in &shard.scenarios {
                if let Some(p) = prev {
                    if idx <= p {
                        return Err(format!(
                            "shard {}: scenario indices must be strictly ascending",
                            shard.shard_id
                        ));
                    }
                }
                prev = Some(idx);
                let slot = seen.get_mut(idx as usize).ok_or_else(|| {
                    format!("shard {}: scenario index {idx} out of range (grid has {n})", shard.shard_id)
                })?;
                if *slot {
                    return Err(format!(
                        "scenario index {idx} appears in more than one shard"
                    ));
                }
                *slot = true;
            }
        }
        if let Some(missing) = seen.iter().position(|s| !s) {
            return Err(format!("scenario index {missing} is in no shard"));
        }
        Ok(())
    }
}

/// FNV-1a over the canonical (compact) JSON of every spec, in grid order.
pub(crate) fn grid_digest(specs: &[ScenarioSpec]) -> u64 {
    let mut h = Fnv::new();
    h.u64(specs.len() as u64);
    for spec in specs {
        let json = serde_json::to_string(spec).expect("spec serialises");
        h.str(&json);
    }
    h.0
}

/// Serialise `value` (a JSON object) with a `checksum` field appended —
/// FNV-1a over the compact JSON of the object *without* the checksum —
/// and write it atomically via tmp + rename.
pub(crate) fn write_checksummed(path: &Path, value: Value) -> Result<(), SweepError> {
    let Value::Map(mut entries) = value else {
        return Err(SweepError::Manifest(format!(
            "{}: checksummed records must be JSON objects",
            path.display()
        )));
    };
    entries.retain(|(k, _)| k != "checksum");
    let body = serde_json::to_string(&Value::Map(entries.clone()))
        .map_err(|e| SweepError::Manifest(format!("{}: {e:?}", path.display())))?;
    let mut h = Fnv::new();
    h.bytes(body.as_bytes());
    entries.push(("checksum".to_string(), Value::Str(hex(h.0))));
    let json = serde_json::to_string_pretty(&Value::Map(entries))
        .map_err(|e| SweepError::Manifest(format!("{}: {e:?}", path.display())))?;
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, &json)?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Load a checksummed JSON object, verify its checksum, and return the
/// object with the `checksum` field removed.
pub(crate) fn load_checksummed(path: &Path) -> Result<Value, SweepError> {
    let text = std::fs::read_to_string(path)?;
    let parsed = serde_json::parse_value(&text)
        .map_err(|e| SweepError::Manifest(format!("{}: unparseable JSON: {e:?}", path.display())))?;
    let Value::Map(mut entries) = parsed else {
        return Err(SweepError::Manifest(format!(
            "{}: expected a JSON object",
            path.display()
        )));
    };
    let pos = entries.iter().position(|(k, _)| k == "checksum").ok_or_else(|| {
        SweepError::Manifest(format!("{}: missing checksum field", path.display()))
    })?;
    let (_, recorded) = entries.remove(pos);
    let Value::Str(recorded) = recorded else {
        return Err(SweepError::Manifest(format!(
            "{}: checksum must be a string",
            path.display()
        )));
    };
    let body = serde_json::to_string(&Value::Map(entries.clone()))
        .map_err(|e| SweepError::Manifest(format!("{}: {e:?}", path.display())))?;
    let mut h = Fnv::new();
    h.bytes(body.as_bytes());
    if hex(h.0) != recorded {
        return Err(SweepError::Manifest(format!(
            "{}: checksum mismatch: recorded {recorded}, recomputed {}",
            path.display(),
            hex(h.0)
        )));
    }
    Ok(Value::Map(entries))
}

#[cfg(test)]
mod tests {
    use super::super::tests::tiny_specs;
    use super::*;

    fn scratch(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "sweep-manifest-{name}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn partition_covers_every_scenario_exactly_once() {
        for (n, k) in [(0usize, 1usize), (1, 1), (5, 2), (8, 8), (3, 7), (10, 3)] {
            let m = SweepManifest::partition(tiny_specs(n), k, "explicit");
            assert_eq!(m.shards.len(), k);
            let mut seen: Vec<u32> =
                m.shards.iter().flat_map(|s| s.scenarios.clone()).collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..n as u32).collect::<Vec<_>>(), "n={n} k={k}");
            let sizes: Vec<usize> = m.shards.iter().map(|s| s.scenarios.len()).collect();
            let (lo, hi) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(hi - lo <= 1, "balanced partition: {sizes:?}");
        }
    }

    #[test]
    fn manifest_round_trips_and_validates() {
        let dir = scratch("roundtrip");
        let m = SweepManifest::partition(tiny_specs(5), 3, "splitmix64(2022, index)");
        let path = dir.join("manifest.json");
        m.write(&path).unwrap();
        let back = SweepManifest::load(&path).unwrap();
        assert_eq!(back.grid_digest, m.grid_digest);
        assert_eq!(back.shards, m.shards);
        assert_eq!(back.seed_derivation, "splitmix64(2022, index)");
        assert_eq!(back.specs.len(), 5);
    }

    #[test]
    fn tampered_manifest_is_refused() {
        let dir = scratch("tamper");
        let m = SweepManifest::partition(tiny_specs(3), 2, "explicit");
        let path = dir.join("manifest.json");
        m.write(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        // Flip a scenario label inside the signed body.
        let tampered = text.replacen("tiny0", "evil0", 1);
        assert_ne!(text, tampered);
        std::fs::write(&path, tampered).unwrap();
        let err = SweepManifest::load(&path).unwrap_err();
        assert!(matches!(err, SweepError::Manifest(_)), "{err}");
    }

    #[test]
    fn truncated_manifest_is_refused() {
        let dir = scratch("truncate");
        let m = SweepManifest::partition(tiny_specs(2), 1, "explicit");
        let path = dir.join("manifest.json");
        m.write(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() / 2]).unwrap();
        assert!(SweepManifest::load(&path).is_err());
    }

    #[test]
    fn overlapping_partition_is_refused() {
        let mut m = SweepManifest::partition(tiny_specs(4), 2, "explicit");
        m.shards[1].scenarios = vec![1, 3]; // index 1 now in both shards
        let dir = scratch("overlap");
        let path = dir.join("manifest.json");
        m.write(&path).unwrap();
        let err = SweepManifest::load(&path).unwrap_err();
        assert!(err.to_string().contains("more than one shard"), "{err}");
    }
}
