//! The sweep worker: one process, one shard, resumable at scenario
//! granularity.
//!
//! Workers are plain re-executions of the host binary: the coordinator
//! spawns `current_exe()` (or any command the caller configures) with the
//! `ARCHER2_SWEEP_*` environment variables set, and the host's `main` calls
//! [`worker_from_env`] before doing anything else. A process in which the
//! variables are unset gets `None` back and proceeds as the coordinator;
//! one in which they are set runs its shard and exits with a documented
//! code (`docs/SWEEP.md` §worker lifecycle).
//!
//! Every finished scenario is persisted as an atomic, footer-validated
//! `.tsnap` snapshot plus a checksummed JSON sidecar carrying the canonical
//! [`ScenarioResult`]. On (re)start a worker revalidates both — sidecar
//! checksum, snapshot footer, and the *recomputed* store digest against the
//! recorded one — and skips scenarios that pass, so a worker killed
//! mid-shard loses at most the scenario it was running.

use super::manifest::{load_checksummed, write_checksummed, SweepManifest};
use super::{hex, store_digest, summarize, ScenarioResult, SweepError};
use hpc_tsdb::{StoreConfig, TsdbStore};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Worker exited cleanly: shard complete, summary written.
pub const EXIT_OK: i32 = 0;
/// The `ARCHER2_SWEEP_*` environment was malformed (unparseable shard id,
/// missing manifest path, …).
pub const EXIT_ENV: i32 = 10;
/// The manifest failed to load or validate (checksum, version, partition).
pub const EXIT_MANIFEST: i32 = 11;
/// The requested shard id is not in the manifest.
pub const EXIT_SHARD: i32 = 12;
/// A scenario run, snapshot write or summary write failed.
pub const EXIT_RUN: i32 = 13;

/// Path of the manifest the worker must load.
pub(crate) const ENV_MANIFEST: &str = "ARCHER2_SWEEP_MANIFEST";
/// Shard id (decimal) the worker must run.
pub(crate) const ENV_SHARD: &str = "ARCHER2_SWEEP_SHARD";
/// Output directory shared by every worker of the sweep.
pub(crate) const ENV_OUT: &str = "ARCHER2_SWEEP_OUT";
/// Fault injection: abort the process after this many *newly executed*
/// scenarios, leaving a torn snapshot for the next one (test/demo only).
pub(crate) const ENV_ABORT_AFTER: &str = "ARCHER2_SWEEP_ABORT_AFTER";
/// Fault injection: sleep this many milliseconds before starting, turning
/// the worker into a deterministic straggler (test/demo only).
pub(crate) const ENV_STALL_MS: &str = "ARCHER2_SWEEP_STALL_MS";

/// The per-shard summary a worker writes last (checksummed, atomic): the
/// shard's canonical results plus provenance tying it to the manifest.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardSummary {
    /// Which shard this summarises.
    pub shard_id: u32,
    /// The manifest's grid digest, copied so a summary can never be merged
    /// against a different grid.
    pub grid_digest: String,
    /// Canonical results, one per owned scenario, ascending by index.
    pub results: Vec<ScenarioResult>,
    /// How many of those were validated leftovers of an earlier attempt
    /// (resume) rather than executed by this process.
    pub skipped: u64,
    /// Wall-clock time of this attempt, milliseconds.
    pub wall_ms: u64,
}

/// Snapshot path of a scenario (shared by all shards and attempts:
/// scenario identity is grid-global, writes are atomic and bit-identical).
pub(crate) fn scenario_snapshot_path(out_dir: &Path, index: u32) -> PathBuf {
    out_dir.join(format!("scenario-{index:05}.tsnap"))
}

/// Sidecar path of a scenario's canonical result.
pub(crate) fn scenario_sidecar_path(out_dir: &Path, index: u32) -> PathBuf {
    out_dir.join(format!("scenario-{index:05}.json"))
}

/// Summary path of a shard.
pub(crate) fn shard_summary_path(out_dir: &Path, shard_id: u32) -> PathBuf {
    out_dir.join(format!("shard-{shard_id:04}.summary.json"))
}

/// Validate one persisted scenario: sidecar parses and passes its
/// checksum, identity matches the manifest, the snapshot opens (footer,
/// per-block CRCs), and the store digest recomputed from the *reopened*
/// store equals the recorded one. Returns the result on success, or a
/// reason the scenario must be re-run.
pub(crate) fn validate_scenario(
    out_dir: &Path,
    index: u32,
    expected_label: &str,
) -> Result<ScenarioResult, String> {
    let sidecar = scenario_sidecar_path(out_dir, index);
    let value = load_checksummed(&sidecar).map_err(|e| format!("sidecar: {e}"))?;
    let result =
        ScenarioResult::from_value(&value).map_err(|e| format!("sidecar shape: {e}"))?;
    if result.index != index {
        return Err(format!("sidecar index {} != {index}", result.index));
    }
    if result.label != expected_label {
        return Err(format!(
            "sidecar label {:?} != manifest label {expected_label:?}",
            result.label
        ));
    }
    let snap = scenario_snapshot_path(out_dir, index);
    let store = TsdbStore::open_snapshot_path(&snap, StoreConfig::default())
        .map_err(|e| format!("snapshot: {e:?}"))?;
    let recomputed = hex(store_digest(&store));
    if recomputed != result.store_digest {
        return Err(format!(
            "store digest mismatch: recorded {}, recomputed {recomputed}",
            result.store_digest
        ));
    }
    Ok(result)
}

/// Validate a whole shard's persisted output against the manifest:
/// summary checksum and identity, result set exactly the shard's scenario
/// list, and every scenario individually valid per [`validate_scenario`].
pub(crate) fn validate_shard(
    out_dir: &Path,
    manifest: &SweepManifest,
    shard_id: u32,
) -> Result<ShardSummary, String> {
    let shard = manifest
        .shards
        .get(shard_id as usize)
        .ok_or_else(|| format!("shard {shard_id} not in manifest"))?;
    let path = shard_summary_path(out_dir, shard_id);
    let value = load_checksummed(&path).map_err(|e| format!("summary: {e}"))?;
    let summary =
        ShardSummary::from_value(&value).map_err(|e| format!("summary shape: {e}"))?;
    if summary.shard_id != shard_id {
        return Err(format!("summary shard id {} != {shard_id}", summary.shard_id));
    }
    if summary.grid_digest != manifest.grid_digest {
        return Err(format!(
            "summary grid digest {} != manifest {}",
            summary.grid_digest, manifest.grid_digest
        ));
    }
    let got: Vec<u32> = summary.results.iter().map(|r| r.index).collect();
    if got != shard.scenarios {
        return Err(format!(
            "summary covers scenarios {got:?}, shard owns {:?}",
            shard.scenarios
        ));
    }
    for result in &summary.results {
        let spec = &manifest.specs[result.index as usize];
        let validated = validate_scenario(out_dir, result.index, &spec.label)
            .map_err(|e| format!("scenario {}: {e}", result.index))?;
        if validated != *result {
            return Err(format!(
                "scenario {}: sidecar result differs from summary",
                result.index
            ));
        }
    }
    Ok(summary)
}

/// Fault-injection knobs a worker reads from its environment (set by the
/// coordinator's [`super::WorkerFault`]; absent in production sweeps).
#[derive(Debug, Clone, Copy, Default)]
struct WorkerFaultEnv {
    abort_after: Option<u32>,
    stall_ms: Option<u64>,
}

/// Run one shard to completion: execute (or, on resume, validate and skip)
/// every owned scenario, persist each as snapshot + sidecar, then write the
/// shard summary. This is the in-process body of the worker; the
/// process-level wrapper is [`worker_from_env`].
pub fn run_worker(
    manifest_path: &Path,
    shard_id: u32,
    out_dir: &Path,
) -> Result<ShardSummary, SweepError> {
    run_worker_inner(manifest_path, shard_id, out_dir, WorkerFaultEnv::default())
}

fn run_worker_inner(
    manifest_path: &Path,
    shard_id: u32,
    out_dir: &Path,
    fault: WorkerFaultEnv,
) -> Result<ShardSummary, SweepError> {
    let t0 = Instant::now();
    if let Some(ms) = fault.stall_ms {
        std::thread::sleep(std::time::Duration::from_millis(ms));
    }
    let manifest = SweepManifest::load(manifest_path)?;
    let shard = manifest
        .shards
        .get(shard_id as usize)
        .ok_or_else(|| {
            SweepError::Worker(format!(
                "shard id {shard_id} out of range: manifest has {} shards",
                manifest.shards.len()
            ))
        })?
        .clone();
    std::fs::create_dir_all(out_dir)?;

    let mut results = Vec::with_capacity(shard.scenarios.len());
    let mut skipped = 0u64;
    let mut executed = 0u32;
    for &index in &shard.scenarios {
        let spec = &manifest.specs[index as usize];
        if let Ok(prev) = validate_scenario(out_dir, index, &spec.label) {
            skipped += 1;
            results.push(prev);
            continue;
        }
        if fault.abort_after.is_some_and(|n| executed >= n) {
            die_mid_shard(out_dir, index, results.last());
        }
        let snap = scenario_snapshot_path(out_dir, index);
        let started = Instant::now();
        let result = crate::scenarios::run_one(spec, &|spec, campaign| {
            let mut r = summarize(index, &spec.label, campaign, 0);
            campaign
                .telemetry_store()
                .snapshot_to_path(&snap)
                .map(|_| {
                    r.wall_ms = started.elapsed().as_millis() as u64;
                    r
                })
        })?;
        write_checksummed(&scenario_sidecar_path(out_dir, index), result.to_value())?;
        executed += 1;
        results.push(result);
    }
    if fault.abort_after.is_some_and(|n| executed >= n) {
        // The budget ran out exactly at the shard boundary: still die
        // before the summary, so the shard reads as incomplete.
        std::process::abort();
    }

    let summary = ShardSummary {
        shard_id,
        grid_digest: manifest.grid_digest.clone(),
        results,
        skipped,
        wall_ms: t0.elapsed().as_millis() as u64,
    };
    write_checksummed(&shard_summary_path(out_dir, shard_id), summary.to_value())?;
    Ok(summary)
}

/// Injected mid-shard death: leave a *torn* snapshot for the scenario that
/// was "in flight" (so resume has to exercise footer validation, not just
/// absence), then abort the process without unwinding — exactly what a
/// SIGKILL mid-write looks like to the next attempt.
fn die_mid_shard(out_dir: &Path, index: u32, last_done: Option<&ScenarioResult>) -> ! {
    let torn = scenario_snapshot_path(out_dir, index);
    let bytes = last_done
        .map(|r| scenario_snapshot_path(out_dir, r.index))
        .and_then(|p| std::fs::read(p).ok())
        .unwrap_or_else(|| vec![0u8; 256]);
    let _ = std::fs::write(&torn, &bytes[..bytes.len() / 2]);
    std::process::abort();
}

/// Process-level worker entry point. Call this first thing in `main` (and
/// in any test binary the coordinator may re-exec): when the
/// `ARCHER2_SWEEP_*` environment is absent it returns `None` and the
/// process proceeds normally; when present it runs the designated shard
/// and returns `Some(exit_code)` for the caller to pass to
/// `std::process::exit`.
///
/// ```no_run
/// if let Some(code) = archer2_core::sweep::worker_from_env() {
///     std::process::exit(code);
/// }
/// // ... coordinator / example / test logic ...
/// ```
pub fn worker_from_env() -> Option<i32> {
    let shard = std::env::var(ENV_SHARD).ok()?;
    let code = worker_env_main(&shard);
    Some(code)
}

fn worker_env_main(shard: &str) -> i32 {
    let Ok(shard_id) = shard.parse::<u32>() else {
        eprintln!("sweep worker: unparseable {ENV_SHARD}={shard:?}");
        return EXIT_ENV;
    };
    let (Ok(manifest), Ok(out)) = (std::env::var(ENV_MANIFEST), std::env::var(ENV_OUT)) else {
        eprintln!("sweep worker: {ENV_MANIFEST} and {ENV_OUT} must both be set");
        return EXIT_ENV;
    };
    let fault = WorkerFaultEnv {
        abort_after: std::env::var(ENV_ABORT_AFTER).ok().and_then(|v| v.parse().ok()),
        stall_ms: std::env::var(ENV_STALL_MS).ok().and_then(|v| v.parse().ok()),
    };
    match run_worker_inner(Path::new(&manifest), shard_id, Path::new(&out), fault) {
        Ok(_) => EXIT_OK,
        Err(e) => {
            eprintln!("sweep worker (shard {shard_id}): {e}");
            match &e {
                SweepError::Manifest(_) => EXIT_MANIFEST,
                SweepError::Worker(_) => EXIT_SHARD,
                _ => EXIT_RUN,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests::tiny_specs;
    use super::super::{fold_store_digests, run_in_process};
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("sweep-worker-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn worker_runs_its_shard_and_matches_in_process() {
        let dir = scratch("runs");
        let specs = tiny_specs(3);
        let reference = run_in_process(&specs);
        let manifest = SweepManifest::partition(specs, 2, "explicit");
        let mpath = dir.join("manifest.json");
        manifest.write(&mpath).unwrap();

        let s0 = run_worker(&mpath, 0, &dir).unwrap();
        let s1 = run_worker(&mpath, 1, &dir).unwrap();
        assert_eq!(s0.skipped, 0);
        let mut all = [s0.results.clone(), s1.results.clone()].concat();
        all.sort_by_key(|r| r.index);
        assert_eq!(
            hex(fold_store_digests(&all)),
            reference.store_digest,
            "worker-run shards must fold to the in-process store digest"
        );
        // Shard outputs validate end to end.
        validate_shard(&dir, &manifest, 0).unwrap();
        validate_shard(&dir, &manifest, 1).unwrap();
    }

    #[test]
    fn rerun_skips_validated_scenarios() {
        let dir = scratch("skip");
        let manifest = SweepManifest::partition(tiny_specs(2), 1, "explicit");
        let mpath = dir.join("manifest.json");
        manifest.write(&mpath).unwrap();
        let first = run_worker(&mpath, 0, &dir).unwrap();
        assert_eq!(first.skipped, 0);
        let second = run_worker(&mpath, 0, &dir).unwrap();
        assert_eq!(second.skipped, 2, "second run must validate and skip both");
        assert_eq!(first.results, second.results);
    }

    #[test]
    fn corrupted_snapshot_forces_rerun_and_heals() {
        let dir = scratch("heal");
        let manifest = SweepManifest::partition(tiny_specs(2), 1, "explicit");
        let mpath = dir.join("manifest.json");
        manifest.write(&mpath).unwrap();
        let first = run_worker(&mpath, 0, &dir).unwrap();
        // Tear scenario 1's snapshot: footer validation must reject it.
        let snap = scenario_snapshot_path(&dir, 1);
        let bytes = std::fs::read(&snap).unwrap();
        std::fs::write(&snap, &bytes[..bytes.len() / 2]).unwrap();
        assert!(validate_scenario(&dir, 1, &manifest.specs[1].label).is_err());
        let second = run_worker(&mpath, 0, &dir).unwrap();
        assert_eq!(second.skipped, 1, "only the intact scenario is skipped");
        // The healed scenario re-runs, so its wall_ms is fresh timing, not
        // simulation output — normalise it out of the bit-identity check.
        let norm = |rs: &[ScenarioResult]| -> Vec<ScenarioResult> {
            rs.iter()
                .map(|r| ScenarioResult { wall_ms: 0, ..r.clone() })
                .collect()
        };
        assert_eq!(
            norm(&first.results),
            norm(&second.results),
            "healed rerun is bit-identical"
        );
        validate_shard(&dir, &manifest, 0).unwrap();
    }

    #[test]
    fn out_of_range_shard_is_a_typed_error() {
        let dir = scratch("range");
        let manifest = SweepManifest::partition(tiny_specs(1), 1, "explicit");
        let mpath = dir.join("manifest.json");
        manifest.write(&mpath).unwrap();
        let err = run_worker(&mpath, 5, &dir).unwrap_err();
        assert!(matches!(err, SweepError::Worker(_)), "{err}");
    }
}
