//! The sweep coordinator: partition, launch, watch, steal, retry, merge.
//!
//! The coordinator owns the control loop of a distributed sweep. It writes
//! the checksummed manifest, keeps up to `max_workers` worker processes
//! alive, and reacts to three kinds of trouble:
//!
//! - **death** — a worker that exits non-zero (or whose output fails
//!   validation) is retried until the shard's retry budget is exhausted,
//!   each attempt recorded as a typed [`ShardFailure`];
//! - **straggling** — a shard still running past `steal_after` is
//!   *stolen*: a duplicate attempt is launched on a free slot, whichever
//!   finishes first wins, and the loser is killed (bit-identity makes the
//!   race benign — both attempts would write identical bytes);
//! - **history** — shards already completed by a previous (killed) run are
//!   detected via footer-validated snapshots and checksummed summaries,
//!   counted as `resumed_shards`, and never re-run.

use super::manifest::SweepManifest;
use super::merge::{merge, MergedSweep};
use super::worker::{validate_shard, ENV_ABORT_AFTER, ENV_MANIFEST, ENV_OUT, ENV_SHARD, ENV_STALL_MS};
use super::SweepError;
use crate::scenarios::ScenarioSpec;
use serde::Serialize;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// How to launch a worker process. The default is self-exec: re-run the
/// current binary (whose `main` must call
/// [`worker_from_env`](super::worker_from_env) first) with no extra
/// arguments. Test harnesses add filter arguments so the re-exec lands in
/// the worker entry test.
#[derive(Debug, Clone)]
pub struct WorkerCommand {
    /// Program to execute.
    pub program: PathBuf,
    /// Arguments passed verbatim before the `ARCHER2_SWEEP_*` environment
    /// takes over.
    pub args: Vec<String>,
}

impl WorkerCommand {
    /// Re-exec the current executable with no arguments.
    pub fn self_exec() -> std::io::Result<WorkerCommand> {
        Ok(WorkerCommand { program: std::env::current_exe()?, args: Vec::new() })
    }

    /// Re-exec the current executable with the given arguments (e.g. a
    /// libtest filter selecting the worker-entry test).
    pub fn self_exec_with(args: &[&str]) -> std::io::Result<WorkerCommand> {
        Ok(WorkerCommand {
            program: std::env::current_exe()?,
            args: args.iter().map(|s| s.to_string()).collect(),
        })
    }
}

/// Deterministic worker-fault injection for tests and demos: applied to
/// the **first** attempt of the designated shard only, so retries and
/// resumes heal the sweep.
#[derive(Debug, Clone, Copy)]
pub struct WorkerFault {
    /// Shard whose first attempt is sabotaged.
    pub shard: u32,
    /// Abort the process after this many newly executed scenarios,
    /// leaving a torn snapshot behind (a SIGKILL mid-write, replayed
    /// deterministically).
    pub abort_after: Option<u32>,
    /// Stall this long before starting, turning the attempt into a
    /// straggler for the work-stealing deadline to catch.
    pub stall_ms: Option<u64>,
}

/// Coordinator configuration.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Number of shards to partition the grid into.
    pub shards: usize,
    /// Maximum concurrently running worker processes.
    pub max_workers: usize,
    /// Extra attempts a shard gets after its first failure (0 = one
    /// attempt only).
    pub retry_budget: u32,
    /// Straggler deadline: a shard running longer than this with a free
    /// worker slot available gets a duplicate (stolen) attempt. `None`
    /// disables stealing.
    pub steal_after: Option<Duration>,
    /// How to launch workers.
    pub worker: WorkerCommand,
    /// Deterministic fault injection (tests/demos); `None` in production.
    pub fault: Option<WorkerFault>,
    /// Seed-derivation provenance recorded in the manifest.
    pub seed_derivation: String,
}

impl SweepConfig {
    /// A production config: `shards` shards over `max_workers` processes,
    /// 2 retries per shard, stealing after 5 minutes.
    pub fn new(shards: usize, max_workers: usize, worker: WorkerCommand) -> SweepConfig {
        SweepConfig {
            shards,
            max_workers,
            retry_budget: 2,
            steal_after: Some(Duration::from_secs(300)),
            worker,
            fault: None,
            seed_derivation: "explicit".to_string(),
        }
    }
}

/// Why one shard attempt failed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub enum ShardFailureKind {
    /// The worker process could not be spawned.
    Spawn(String),
    /// The worker exited with this non-zero code (`None` = killed by a
    /// signal, e.g. the injected mid-shard abort).
    Exit(Option<i32>),
    /// The worker exited zero but its persisted output failed validation.
    InvalidOutput(String),
}

impl std::fmt::Display for ShardFailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardFailureKind::Spawn(e) => write!(f, "spawn failed: {e}"),
            ShardFailureKind::Exit(Some(code)) => write!(f, "exited with code {code}"),
            ShardFailureKind::Exit(None) => write!(f, "killed by signal"),
            ShardFailureKind::InvalidOutput(e) => write!(f, "output invalid: {e}"),
        }
    }
}

/// One failed shard attempt, recorded in the [`SweepReport`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ShardFailure {
    /// Which shard.
    pub shard: u32,
    /// Which attempt (1-based).
    pub attempt: u32,
    /// What went wrong.
    pub kind: ShardFailureKind,
}

/// Orchestration accounting for one coordinator run.
#[derive(Debug, Clone, Default, Serialize)]
pub struct SweepReport {
    /// Shards in the manifest.
    pub shards: u32,
    /// Scenarios in the grid.
    pub scenarios: u32,
    /// Worker attempts actually launched (excludes resumed shards).
    pub attempts: u32,
    /// Attempts that failed and were re-queued (or exhausted the budget).
    pub retries: u32,
    /// Straggler shards that received a duplicate (stolen) attempt.
    pub stolen_shards: u32,
    /// Shards found complete on disk from a previous run and skipped.
    pub resumed_shards: u32,
    /// Every failed attempt, in the order observed.
    pub failures: Vec<ShardFailure>,
    /// Coordinator wall-clock, milliseconds.
    pub wall_ms: u64,
}

/// A finished distributed sweep: the merged result set plus the
/// orchestration report.
#[derive(Debug)]
pub struct SweepOutcome {
    /// The merged, digest-verified result set.
    pub merged: MergedSweep,
    /// What it took to get there.
    pub report: SweepReport,
}

/// Partition `specs`, write `out_dir/manifest.json`, and drive the sweep
/// to a merged, digest-verified result set.
///
/// Re-running after a crash is safe and cheap: shards whose outputs
/// validate are skipped. For explicit resume (e.g. after
/// [`SweepError::ShardExhausted`]) use [`resume_distributed`], which reuses
/// the existing manifest instead of re-partitioning.
pub fn run_distributed(
    specs: Vec<ScenarioSpec>,
    config: &SweepConfig,
    out_dir: &Path,
) -> Result<SweepOutcome, SweepError> {
    std::fs::create_dir_all(out_dir)?;
    let manifest = SweepManifest::partition(specs, config.shards, config.seed_derivation.clone());
    let manifest_path = out_dir.join("manifest.json");
    manifest.write(&manifest_path)?;
    drive(&manifest, &manifest_path, config, out_dir)
}

/// Resume a sweep from its on-disk manifest: completed shards are
/// validated and skipped, incomplete or torn ones re-run, and the merge is
/// digest-verified exactly as in [`run_distributed`]. The `shards` and
/// `seed_derivation` fields of `config` are ignored (the manifest wins).
pub fn resume_distributed(
    manifest_path: &Path,
    config: &SweepConfig,
    out_dir: &Path,
) -> Result<SweepOutcome, SweepError> {
    let manifest = SweepManifest::load(manifest_path)?;
    drive(&manifest, manifest_path, config, out_dir)
}

/// One live worker process.
struct Running {
    shard: u32,
    attempt: u32,
    child: Child,
    started: Instant,
}

fn drive(
    manifest: &SweepManifest,
    manifest_path: &Path,
    config: &SweepConfig,
    out_dir: &Path,
) -> Result<SweepOutcome, SweepError> {
    let t0 = Instant::now();
    let mut report = SweepReport {
        shards: manifest.shards.len() as u32,
        scenarios: manifest.specs.len() as u32,
        ..SweepReport::default()
    };

    // Resume: shards whose persisted output validates are already done.
    let mut done: HashMap<u32, ()> = HashMap::new();
    let mut pending: Vec<u32> = Vec::new();
    for shard in &manifest.shards {
        if validate_shard(out_dir, manifest, shard.shard_id).is_ok() {
            done.insert(shard.shard_id, ());
            report.resumed_shards += 1;
        } else {
            pending.push(shard.shard_id);
        }
    }
    pending.reverse(); // pop() serves lowest shard id first

    let mut running: Vec<Running> = Vec::new();
    let outcome = drive_loop(
        manifest,
        manifest_path,
        config,
        out_dir,
        &mut report,
        &mut done,
        &mut pending,
        &mut running,
    );
    // Whatever happened, leave no orphans: kill and reap every still-live
    // worker (budget-exhaustion error paths, losing stolen duplicates).
    for worker in running.iter_mut() {
        let _ = worker.child.kill();
        let _ = worker.child.wait();
    }
    outcome?;

    let merged = merge(manifest, out_dir)?;
    report.wall_ms = t0.elapsed().as_millis() as u64;
    Ok(SweepOutcome { merged, report })
}

#[allow(clippy::too_many_arguments)]
fn drive_loop(
    manifest: &SweepManifest,
    manifest_path: &Path,
    config: &SweepConfig,
    out_dir: &Path,
    report: &mut SweepReport,
    done: &mut HashMap<u32, ()>,
    pending: &mut Vec<u32>,
    running: &mut Vec<Running>,
) -> Result<(), SweepError> {
    let mut attempts_used: HashMap<u32, u32> = HashMap::new();
    let mut stolen_once: HashMap<u32, ()> = HashMap::new();

    while done.len() < manifest.shards.len() {
        // Fill free slots with pending shards.
        while running.len() < config.max_workers {
            let Some(shard) = pending.pop() else { break };
            let attempt = attempts_used.get(&shard).copied().unwrap_or(0) + 1;
            match spawn_worker(manifest_path, shard, attempt, config, out_dir) {
                Ok(r) => {
                    report.attempts += 1;
                    running.push(r);
                }
                Err(kind) => {
                    attempts_used.insert(shard, attempt);
                    record_failure(report, pending, &attempts_used, shard, attempt, kind, config)?;
                }
            }
        }

        // Work stealing: duplicate one straggler onto a free slot.
        if let Some(deadline) = config.steal_after {
            if running.len() < config.max_workers {
                let victim = running
                    .iter()
                    .filter(|r| {
                        r.started.elapsed() > deadline
                            && !stolen_once.contains_key(&r.shard)
                            && running.iter().filter(|o| o.shard == r.shard).count() == 1
                    })
                    .map(|r| (r.shard, r.attempt))
                    .next();
                if let Some((shard, prev_attempt)) = victim {
                    let attempt = prev_attempt + 1;
                    if let Ok(r) = spawn_worker(manifest_path, shard, attempt, config, out_dir) {
                        stolen_once.insert(shard, ());
                        report.attempts += 1;
                        report.stolen_shards += 1;
                        running.push(r);
                    }
                }
            }
        }

        // Poll the fleet.
        let mut i = 0;
        while i < running.len() {
            let status = running[i].child.try_wait()?;
            let Some(status) = status else {
                i += 1;
                continue;
            };
            let mut worker = running.swap_remove(i);
            let shard = worker.shard;
            if done.contains_key(&shard) {
                continue; // the other attempt of a stolen shard already won
            }
            let outcome = if status.success() {
                validate_shard(out_dir, manifest, shard)
                    .map(|_| ())
                    .map_err(ShardFailureKind::InvalidOutput)
            } else {
                Err(ShardFailureKind::Exit(status.code()))
            };
            match outcome {
                Ok(()) => {
                    done.insert(shard, ());
                    // Kill the losing duplicate of a stolen shard.
                    for other in running.iter_mut().filter(|r| r.shard == shard) {
                        let _ = other.child.kill();
                        let _ = other.child.wait();
                    }
                    running.retain(|r| r.shard != shard);
                }
                Err(kind) => {
                    let attempt = worker.attempt;
                    let used = attempts_used.entry(shard).or_insert(0);
                    *used = (*used).max(attempt);
                    // A stolen duplicate may still be running; only
                    // re-queue if no other attempt is live.
                    let still_live = running.iter().any(|r| r.shard == shard);
                    if !still_live {
                        record_failure(report, pending, &attempts_used, shard, attempt, kind, config)?;
                    } else {
                        report.retries += 1;
                        report.failures.push(ShardFailure { shard, attempt, kind });
                    }
                }
            }
            let _ = worker.child.wait(); // reap
        }

        if done.len() < manifest.shards.len() {
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    Ok(())
}

/// Record a failed attempt; re-queue the shard or exhaust its budget.
fn record_failure(
    report: &mut SweepReport,
    pending: &mut Vec<u32>,
    attempts_used: &HashMap<u32, u32>,
    shard: u32,
    attempt: u32,
    kind: ShardFailureKind,
    config: &SweepConfig,
) -> Result<(), SweepError> {
    report.failures.push(ShardFailure { shard, attempt, kind: kind.clone() });
    let used = attempts_used.get(&shard).copied().unwrap_or(attempt);
    if used > config.retry_budget {
        return Err(SweepError::ShardExhausted { shard, attempts: used, last: kind });
    }
    report.retries += 1;
    pending.push(shard);
    Ok(())
}

/// Launch one worker attempt. Fault-injection env vars are attached only
/// to the first attempt of the configured shard.
fn spawn_worker(
    manifest_path: &Path,
    shard: u32,
    attempt: u32,
    config: &SweepConfig,
    out_dir: &Path,
) -> Result<Running, ShardFailureKind> {
    let mut cmd = Command::new(&config.worker.program);
    cmd.args(&config.worker.args)
        .env(ENV_MANIFEST, manifest_path)
        .env(ENV_SHARD, shard.to_string())
        .env(ENV_OUT, out_dir)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .stdin(Stdio::null());
    if let Some(fault) = &config.fault {
        if fault.shard == shard && attempt == 1 {
            if let Some(n) = fault.abort_after {
                cmd.env(ENV_ABORT_AFTER, n.to_string());
            }
            if let Some(ms) = fault.stall_ms {
                cmd.env(ENV_STALL_MS, ms.to_string());
            }
        }
    }
    let child = cmd.spawn().map_err(|e| ShardFailureKind::Spawn(e.to_string()))?;
    Ok(Running { shard, attempt, child, started: Instant::now() })
}
