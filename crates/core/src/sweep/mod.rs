//! Distributed sweep orchestration: shard a scenario grid across worker
//! *processes* and merge the results bit-identically.
//!
//! [`run_scenarios`] fans a grid out over
//! threads in one process; this module is the next tier. A coordinator
//! partitions the grid into a checksummed **shard manifest** (JSON: grid
//! digest, seed-derivation provenance, full scenario specs, per-shard
//! scenario lists), launches worker **processes** (self-exec via
//! `std::process::Command`, no new dependencies) that each run their shard
//! through the existing parallel runner and persist every finished scenario
//! as a footer-validated `.tsnap` snapshot plus a checksummed JSON sidecar,
//! then merges the per-shard stores and summaries into one result set.
//!
//! Robustness is the point of the layer:
//!
//! - **Resume from manifest.** A killed worker leaves partial output; a
//!   re-run of the coordinator (or of the worker itself) detects completed
//!   shards and scenarios via footer-validated snapshots whose recomputed
//!   store digests match their sidecars, and skips them.
//! - **Work stealing.** A straggling shard past its deadline is duplicated
//!   onto a free worker slot; whichever attempt finishes first wins and the
//!   loser is killed. Bit-identity makes the race benign.
//! - **Retry budgets with typed failures.** Every failed attempt is
//!   recorded as a [`ShardFailure`]; a shard that exhausts its budget fails
//!   the sweep with [`SweepError::ShardExhausted`], never silently.
//! - **Bit-identical merge.** The merged sweep's store digest and summary
//!   digest are proven equal to the single-process
//!   [`run_in_process`] answer regardless of shard count, worker count, or
//!   worker death. `examples/sweep_distributed.rs` gates this in CI.
//!
//! See `docs/SWEEP.md` for the manifest format, the worker lifecycle and
//! exit codes, and the failure taxonomy.
//!
//! ```
//! use archer2_core::sweep::{derive_seed, SweepManifest};
//! use archer2_core::scenarios::ScenarioSpec;
//! use archer2_core::campaign::CampaignConfig;
//! use hpc_workload::OperatingPoint;
//! use sim_core::time::{SimDuration, SimTime};
//!
//! // A tiny 3-scenario grid with manifest-documented seed derivation.
//! let start = SimTime::from_ymd(2022, 3, 1);
//! let specs: Vec<ScenarioSpec> = (0..3)
//!     .map(|i| {
//!         let cfg = CampaignConfig { seed: derive_seed(7, i), ..CampaignConfig::default() };
//!         ScenarioSpec::new(
//!             format!("s{i}"), cfg, 40, start,
//!             start + SimDuration::from_hours(6), OperatingPoint::AFTER_BIOS,
//!         )
//!     })
//!     .collect();
//!
//! // Partition into 2 shards: every scenario lands in exactly one shard.
//! let manifest = SweepManifest::partition(specs, 2, "splitmix64(7, index)");
//! let mut seen: Vec<u32> = manifest.shards.iter().flat_map(|s| s.scenarios.clone()).collect();
//! seen.sort_unstable();
//! assert_eq!(seen, vec![0, 1, 2]);
//! ```

mod coordinator;
mod manifest;
mod merge;
mod worker;

pub use coordinator::{
    resume_distributed, run_distributed, ShardFailure, ShardFailureKind, SweepConfig,
    SweepOutcome, SweepReport, WorkerCommand, WorkerFault,
};
pub use manifest::{ShardSpec, SweepManifest, MANIFEST_VERSION};
pub use merge::{merge, MergedSweep};
pub use worker::{run_worker, worker_from_env, ShardSummary, EXIT_ENV, EXIT_MANIFEST, EXIT_OK, EXIT_RUN, EXIT_SHARD};

use crate::campaign::Campaign;
use crate::scenarios::{run_scenarios, ScenarioSpec};
use hpc_tsdb::{PersistError, TsdbStore};
use serde::{Deserialize, Serialize};

/// Typed failure surface of the sweep layer. Everything the coordinator,
/// worker and merge steps can refuse is one of these — no stringly-typed
/// panics on the orchestration path.
#[derive(Debug)]
pub enum SweepError {
    /// Filesystem or process-spawn I/O failure.
    Io(std::io::Error),
    /// Snapshot write/open failure from the `.tsnap` transport.
    Persist(PersistError),
    /// A manifest, sidecar or summary that is missing, malformed, fails its
    /// checksum, or does not partition the grid.
    Manifest(String),
    /// A worker-side execution failure (bad shard id, unwritable out dir).
    Worker(String),
    /// A shard failed more times than its retry budget allows. The last
    /// failure is carried; the full history is in [`SweepReport::failures`].
    ShardExhausted {
        /// The shard that ran out of attempts.
        shard: u32,
        /// Attempts consumed (including the first).
        attempts: u32,
        /// The most recent failure.
        last: ShardFailureKind,
    },
    /// A recomputed store digest disagreed with the recorded one — the
    /// snapshot transport or the merge would have silently diverged.
    DigestMismatch {
        /// Grid index of the offending scenario.
        scenario: u32,
        /// Digest recorded at run time.
        expected: String,
        /// Digest recomputed from the reopened snapshot.
        actual: String,
    },
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::Io(e) => write!(f, "sweep I/O error: {e}"),
            SweepError::Persist(e) => write!(f, "sweep snapshot error: {e:?}"),
            SweepError::Manifest(m) => write!(f, "sweep manifest error: {m}"),
            SweepError::Worker(m) => write!(f, "sweep worker error: {m}"),
            SweepError::ShardExhausted { shard, attempts, last } => write!(
                f,
                "shard {shard} exhausted its retry budget after {attempts} attempts (last: {last})"
            ),
            SweepError::DigestMismatch { scenario, expected, actual } => write!(
                f,
                "scenario {scenario} store digest mismatch: recorded {expected}, recomputed {actual}"
            ),
        }
    }
}

impl std::error::Error for SweepError {}

impl From<std::io::Error> for SweepError {
    fn from(e: std::io::Error) -> Self {
        SweepError::Io(e)
    }
}

impl From<PersistError> for SweepError {
    fn from(e: PersistError) -> Self {
        SweepError::Persist(e)
    }
}

/// FNV-1a accumulator — the same digest primitive the benchmark examples
/// and determinism gates use, so sweep digests compose with them.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Fnv(pub u64);

impl Fnv {
    pub(crate) fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    pub(crate) fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x1000_0000_01b3);
        }
    }

    pub(crate) fn u64(&mut self, x: u64) {
        self.bytes(&x.to_le_bytes());
    }

    pub(crate) fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes());
    }
}

/// Render a digest the way every benchmark record does: 16 hex digits.
pub(crate) fn hex(d: u64) -> String {
    format!("{d:016x}")
}

/// Derive a per-scenario seed from a sweep base seed — splitmix64 of
/// `base ^ index`, the derivation every grid builder should use so a
/// manifest's `seed_derivation` field is honest provenance.
///
/// ```
/// use archer2_core::sweep::derive_seed;
/// // Stable across processes and time: safe to record in a manifest.
/// assert_eq!(derive_seed(2022, 0), derive_seed(2022, 0));
/// assert_ne!(derive_seed(2022, 0), derive_seed(2022, 1));
/// ```
pub fn derive_seed(base: u64, index: u64) -> u64 {
    let mut z = (base ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15)).wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Canonical digest of everything a store holds: every series, iterated in
/// sorted-name order, its name folded in followed by every stored
/// `(timestamp, value-bits)` pair. Two stores digest equal iff they carry
/// the same series with the same samples, bit for bit — independent of
/// shard count, chunk layout, compaction state or cache temperature.
pub fn store_digest(store: &TsdbStore) -> u64 {
    let mut catalog = store.series_catalog();
    catalog.sort_by(|a, b| a.1.name.cmp(&b.1.name));
    let mut h = Fnv::new();
    for (sid, meta, _) in catalog {
        digest_series(store, sid, &meta.name, &mut h);
    }
    h.0
}

/// [`store_digest`] with a per-series name rewrite: series whose names
/// start with `strip` digest as if the prefix were absent, others are
/// skipped. This is how the merged store (scenario series prefixed
/// `s00042/…`) is proven bit-identical per scenario to the original
/// un-prefixed stores.
pub(crate) fn store_digest_stripped(store: &TsdbStore, strip: &str) -> u64 {
    let mut catalog: Vec<_> = store
        .series_catalog()
        .into_iter()
        .filter(|(_, meta, _)| meta.name.starts_with(strip))
        .collect();
    catalog.sort_by(|a, b| a.1.name.cmp(&b.1.name));
    let mut h = Fnv::new();
    for (sid, meta, _) in catalog {
        let name = meta.name[strip.len()..].to_string();
        digest_series(store, sid, &name, &mut h);
    }
    h.0
}

fn digest_series(store: &TsdbStore, sid: hpc_tsdb::SeriesId, name: &str, h: &mut Fnv) {
    h.str(name);
    let samples = store
        .with_series(sid, |s| s.scan(i64::MIN, i64::MAX))
        .expect("catalogued series exists");
    h.u64(samples.len() as u64);
    for (ts, v) in samples {
        h.u64(ts as u64);
        h.u64(v.to_bits());
    }
}

/// What one finished scenario reduces to under the sweep's canonical
/// reduction — the portable summary a worker persists and the merge step
/// reassembles. Everything except `wall_ms` is deterministic for a given
/// spec; `wall_ms` is excluded from all digests.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioResult {
    /// Index into the manifest's grid (input order).
    pub index: u32,
    /// The spec's label, carried through for reporting.
    pub label: String,
    /// [`store_digest`] of the scenario's telemetry store, as 16 hex digits.
    pub store_digest: String,
    /// Samples stored across every series.
    pub samples: u64,
    /// Simulation events processed.
    pub events: u64,
    /// Mean facility power over the window, kW.
    pub mean_kw: f64,
    /// Campaign invariant violations ([`Campaign::verify_invariants`]).
    pub violations: u64,
    /// Wall-clock run time, milliseconds (non-deterministic; never
    /// folded into a digest).
    pub wall_ms: u64,
}

impl ScenarioResult {
    /// Fold the deterministic fields into a digest accumulator.
    fn fold(&self, h: &mut Fnv) {
        h.u64(u64::from(self.index));
        h.str(&self.label);
        h.str(&self.store_digest);
        h.u64(self.samples);
        h.u64(self.events);
        h.u64(self.mean_kw.to_bits());
        h.u64(self.violations);
    }
}

/// Fold per-scenario *store* digests, in grid-index order, into the sweep
/// store digest both the distributed merge and [`run_in_process`] report.
pub(crate) fn fold_store_digests(results: &[ScenarioResult]) -> u64 {
    let mut h = Fnv::new();
    for r in results {
        h.str(&r.store_digest);
    }
    h.0
}

/// Fold full deterministic summaries, in grid-index order, into the sweep
/// summary digest.
pub(crate) fn fold_summaries(results: &[ScenarioResult]) -> u64 {
    let mut h = Fnv::new();
    for r in results {
        r.fold(&mut h);
    }
    h.0
}

/// The sweep's canonical reduction of one finished campaign.
pub(crate) fn summarize(index: u32, label: &str, campaign: &mut Campaign, wall_ms: u64) -> ScenarioResult {
    let values = campaign.power_series().values();
    let mean_kw = if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    };
    ScenarioResult {
        index,
        label: label.to_string(),
        store_digest: hex(store_digest(campaign.telemetry_store())),
        samples: campaign.telemetry_store().total_samples(),
        events: campaign.events_processed(),
        mean_kw,
        violations: campaign.verify_invariants().len() as u64,
        wall_ms,
    }
}

/// The single-process reference answer a distributed sweep must reproduce
/// bit for bit.
#[derive(Debug, Clone)]
pub struct InProcessSweep {
    /// Per-scenario canonical results, in grid order.
    pub results: Vec<ScenarioResult>,
    /// Fold of per-scenario store digests, 16 hex digits.
    pub store_digest: String,
    /// Fold of per-scenario deterministic summaries, 16 hex digits.
    pub summary_digest: String,
}

/// Run the whole grid in-process through [`run_scenarios`] under the sweep's
/// canonical reduction. This is the oracle: a distributed sweep of the same
/// grid must merge to the same `store_digest` and `summary_digest`.
pub fn run_in_process(specs: &[ScenarioSpec]) -> InProcessSweep {
    let indexed: Vec<(u32, &ScenarioSpec)> =
        specs.iter().enumerate().map(|(i, s)| (i as u32, s)).collect();
    // `run_scenarios` preserves input order, so zip the indices back on.
    let results: Vec<ScenarioResult> = {
        let raw = run_scenarios(specs, |spec, campaign| {
            let t0 = std::time::Instant::now();
            // The campaign already ran before reduce is called; wall time of
            // the reduction alone is negligible but still recorded honestly.
            let mut r = summarize(0, &spec.label, campaign, 0);
            r.wall_ms = t0.elapsed().as_millis() as u64;
            r
        });
        raw.into_iter()
            .zip(&indexed)
            .map(|(mut r, (i, _))| {
                r.index = *i;
                r
            })
            .collect()
    };
    InProcessSweep {
        store_digest: hex(fold_store_digests(&results)),
        summary_digest: hex(fold_summaries(&results)),
        results,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::CampaignConfig;
    use hpc_workload::OperatingPoint;
    use sim_core::time::{SimDuration, SimTime};

    pub(crate) fn tiny_specs(n: usize) -> Vec<ScenarioSpec> {
        let start = SimTime::from_ymd(2022, 3, 1);
        (0..n)
            .map(|i| {
                let cfg = CampaignConfig {
                    seed: derive_seed(2022, i as u64),
                    backlog_target: 30,
                    generator: hpc_workload::GeneratorConfig {
                        max_nodes: 32,
                        ..hpc_workload::GeneratorConfig::default()
                    },
                    per_cabinet_telemetry: true,
                    ..CampaignConfig::default()
                };
                ScenarioSpec::new(
                    format!("tiny{i}"),
                    cfg,
                    40,
                    start,
                    start + SimDuration::from_hours(6),
                    OperatingPoint::AFTER_BIOS,
                )
            })
            .collect()
    }

    #[test]
    fn derive_seed_is_stable_and_spreads() {
        assert_eq!(derive_seed(1, 1), derive_seed(1, 1));
        let seeds: Vec<u64> = (0..100).map(|i| derive_seed(42, i)).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len(), "derived seeds must not collide");
    }

    #[test]
    fn in_process_sweep_is_deterministic() {
        let specs = tiny_specs(2);
        let a = run_in_process(&specs);
        let b = run_in_process(&specs);
        assert_eq!(a.store_digest, b.store_digest);
        assert_eq!(a.summary_digest, b.summary_digest);
        assert_eq!(a.results.len(), 2);
        assert!(a.results.iter().all(|r| r.samples > 0));
    }

    #[test]
    fn scenario_spec_round_trips_through_json() {
        let specs = tiny_specs(1);
        let json = serde_json::to_string(&specs[0]).unwrap();
        let back: ScenarioSpec = serde_json::from_str(&json).unwrap();
        // The round-tripped spec must drive a bit-identical campaign.
        let a = run_in_process(std::slice::from_ref(&specs[0]));
        let b = run_in_process(std::slice::from_ref(&back));
        assert_eq!(a.store_digest, b.store_digest);
        assert_eq!(a.summary_digest, b.summary_digest);
    }
}
