//! One typed experiment per table and figure of the paper, plus the
//! ablation sweeps listed in `DESIGN.md`.
//!
//! Figure experiments run the discrete-event campaign; table experiments
//! are closed-form evaluations of the calibrated models. Every experiment
//! takes a seed (reproducibility) and, where a campaign is involved, a
//! `scale` divisor: `scale = 1` simulates the full 5,860-node facility,
//! `scale = 10` a 586-node replica with the same power composition whose
//! reported kilowatts are multiplied back up — the composition, not the
//! absolute node count, is what fixes the means.

use crate::campaign::{CampaignConfig, FrequencyPolicy};
use crate::facility::Archer2Facility;
use crate::report::{ratio, Table};
use crate::scenarios::{run_scenarios, ScenarioSpec};
use hpc_emissions::{EmbodiedEmissions, OperatingChoice, RegimeAnalysis};
use hpc_power::{DeterminismMode, FreqSetting};
use hpc_telemetry::{ChangePoint, SegmentSummary, TimeSeries};
use hpc_topo::{DragonflyConfig, FacilityConfig, HardwareSummary};
use hpc_workload::{OperatingPoint, PaperRatios};
use sim_core::time::{SimDuration, SimTime};

/// Build a facility at `1/scale` of ARCHER2 with matching composition.
///
/// # Panics
/// Panics if `scale` is zero.
pub fn scaled_facility(seed: u64, scale: u32) -> Archer2Facility {
    assert!(scale >= 1, "scale must be at least 1");
    if scale == 1 {
        return Archer2Facility::new(seed);
    }
    let nodes = 5860 / scale;
    let switches = (768 + scale / 2) / scale;
    let spg = 8u32;
    let groups = switches.div_ceil(spg).max(2);
    let cfg = FacilityConfig {
        nodes,
        cores_per_node: 128,
        cabinets: ((23 + scale / 2) / scale).max(1),
        cdus: 1,
        filesystems: 1,
        fabric: DragonflyConfig {
            groups,
            switches_per_group: spg,
            ports_per_switch: 64,
            endpoints_per_switch: 16,
            nics_per_node: 2,
        },
    };
    Archer2Facility::with_config(cfg, seed)
}

fn campaign_config(seed: u64, scale: u32) -> CampaignConfig {
    CampaignConfig {
        seed,
        generator: hpc_workload::GeneratorConfig {
            max_nodes: (1024 / scale).max(16),
            ..hpc_workload::GeneratorConfig::default()
        },
        backlog_target: (120 / scale as usize).max(40),
        ..CampaignConfig::default()
    }
}

// ---------------------------------------------------------------------------
// Table 1
// ---------------------------------------------------------------------------

/// Table 1: the hardware summary (always full scale).
pub fn table1() -> HardwareSummary {
    hpc_topo::FacilityTopology::build(FacilityConfig::archer2()).hardware_summary()
}

// ---------------------------------------------------------------------------
// Table 2
// ---------------------------------------------------------------------------

/// One component row of Table 2.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Component label as in the paper.
    pub component: &'static str,
    /// Unit count.
    pub count: u32,
    /// Fleet idle power (kW).
    pub idle_kw: f64,
    /// Fleet loaded power (kW).
    pub loaded_kw: f64,
    /// Share of loaded total.
    pub share: f64,
}

/// Table 2: per-component idle/loaded power decomposition.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Result {
    /// Component rows in paper order.
    pub rows: Vec<Table2Row>,
    /// Idle facility total (kW).
    pub idle_total_kw: f64,
    /// Loaded facility total (kW).
    pub loaded_total_kw: f64,
}

impl Table2Result {
    /// Render in the paper's layout.
    pub fn render(&self) -> String {
        let mut t = Table::new(["Component", "Count", "Idle (kW)", "Loaded (kW)", "Approx. %"]);
        for r in &self.rows {
            t.row([
                r.component.to_string(),
                r.count.to_string(),
                format!("{:.0}", r.idle_kw),
                format!("{:.0}", r.loaded_kw),
                format!("{:.0}%", r.share * 100.0),
            ]);
        }
        t.row([
            "Total".to_string(),
            String::new(),
            format!("{:.0}", self.idle_total_kw),
            format!("{:.0}", self.loaded_total_kw),
            String::new(),
        ]);
        t.render()
    }
}

/// Run the Table 2 experiment (closed form, full scale).
pub fn table2(seed: u64) -> Table2Result {
    let f = Archer2Facility::new(seed);
    let idle = f.idle_budget(DeterminismMode::Power);
    let loaded = f.loaded_budget(OperatingPoint::ORIGINAL);
    let total = loaded.total_kw();
    let rows = vec![
        Table2Row {
            component: "Compute nodes",
            count: 5860,
            idle_kw: idle.nodes_kw,
            loaded_kw: loaded.nodes_kw,
            share: loaded.nodes_kw / total,
        },
        Table2Row {
            component: "Slingshot interconnect",
            count: 768,
            idle_kw: idle.switches_kw,
            loaded_kw: loaded.switches_kw,
            share: loaded.switches_kw / total,
        },
        Table2Row {
            component: "Other cabinet overheads",
            count: 23,
            idle_kw: idle.overheads_kw,
            loaded_kw: loaded.overheads_kw,
            share: loaded.overheads_kw / total,
        },
        Table2Row {
            component: "Coolant Distribution Units",
            count: 6,
            idle_kw: idle.cdus_kw,
            loaded_kw: loaded.cdus_kw,
            share: loaded.cdus_kw / total,
        },
        Table2Row {
            component: "File systems",
            count: 5,
            idle_kw: idle.filesystems_kw,
            loaded_kw: loaded.filesystems_kw,
            share: loaded.filesystems_kw / total,
        },
    ];
    Table2Result {
        rows,
        idle_total_kw: idle.total_kw(),
        loaded_total_kw: total,
    }
}

// ---------------------------------------------------------------------------
// Tables 3 and 4
// ---------------------------------------------------------------------------

/// One benchmark row: paper vs model.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkRow {
    /// Benchmark label.
    pub benchmark: String,
    /// Node count from the paper.
    pub nodes: u32,
    /// The paper's measured ratios.
    pub paper: PaperRatios,
    /// The model's forward-computed ratios.
    pub model: PaperRatios,
}

/// A rendered benchmark-ratio table.
#[derive(Debug, Clone, PartialEq)]
pub struct RatioTableResult {
    /// Rows in paper order.
    pub rows: Vec<BenchmarkRow>,
    /// Which paper table this is ("Table 3" / "Table 4").
    pub label: &'static str,
}

impl RatioTableResult {
    /// Render with paper and model columns side by side.
    pub fn render(&self) -> String {
        let mut t = Table::new([
            "Application benchmark",
            "Nodes",
            "Perf. ratio (paper)",
            "Perf. ratio (model)",
            "Energy ratio (paper)",
            "Energy ratio (model)",
        ]);
        for r in &self.rows {
            t.row([
                r.benchmark.clone(),
                r.nodes.to_string(),
                ratio(r.paper.perf),
                ratio(r.model.perf),
                ratio(r.paper.energy),
                ratio(r.model.energy),
            ]);
        }
        format!("{}\n{}", self.label, t.render())
    }

    /// Largest |model − paper| over both ratio columns.
    pub fn max_abs_error(&self) -> f64 {
        self.rows
            .iter()
            .flat_map(|r| {
                [
                    (r.model.perf - r.paper.perf).abs(),
                    (r.model.energy - r.paper.energy).abs(),
                ]
            })
            .fold(0.0, f64::max)
    }
}

/// Table 3: determinism-mode benchmark ratios.
pub fn table3(seed: u64) -> RatioTableResult {
    let f = Archer2Facility::new(seed);
    let (nm, lot) = (f.node_model(), f.lottery());
    let rows = f
        .catalog()
        .table3_records()
        .map(|rec| {
            let paper = rec.table3.expect("table3 record");
            // Table 3 reports perf(PerfDet)/perf(PowerDet) and
            // E(PerfDet)/E(PowerDet).
            let perf = rec.app.runtime_ratio(OperatingPoint::ORIGINAL, nm, lot);
            let e_ref = rec.app.energy_ratio(OperatingPoint::AFTER_BIOS, nm, lot);
            let e_pd = rec.app.energy_ratio(OperatingPoint::ORIGINAL, nm, lot);
            BenchmarkRow {
                benchmark: rec.table3_label.clone().unwrap_or_else(|| rec.benchmark.clone()),
                nodes: rec.table3_nodes.unwrap_or(rec.nodes),
                paper,
                model: PaperRatios::new(perf, e_ref / e_pd),
            }
        })
        .collect();
    RatioTableResult {
        rows,
        label: "Table 3",
    }
}

/// Table 4: 2.0 GHz vs 2.25 GHz+turbo benchmark ratios.
pub fn table4(seed: u64) -> RatioTableResult {
    let f = Archer2Facility::new(seed);
    let (nm, lot) = (f.node_model(), f.lottery());
    let rows = f
        .catalog()
        .table4_records()
        .map(|rec| {
            let paper = rec.table4.expect("table4 record");
            let perf = rec.app.perf_ratio(OperatingPoint::AFTER_FREQ, nm, lot);
            let energy = rec.app.energy_ratio(OperatingPoint::AFTER_FREQ, nm, lot);
            BenchmarkRow {
                benchmark: rec.benchmark.clone(),
                nodes: rec.nodes,
                paper,
                model: PaperRatios::new(perf, energy),
            }
        })
        .collect();
    RatioTableResult {
        rows,
        label: "Table 4",
    }
}

// ---------------------------------------------------------------------------
// Figures 1-3
// ---------------------------------------------------------------------------

/// A reproduced power-draw figure.
#[derive(Debug, Clone)]
pub struct FigureResult {
    /// Figure label.
    pub label: &'static str,
    /// Compute-cabinet power telemetry, scaled to full-facility kW.
    pub series: TimeSeries,
    /// The operational changes in the window.
    pub changes: Vec<ChangePoint>,
    /// Per-segment means (the paper's orange lines).
    pub summary: SegmentSummary,
    /// Segment means with a 2-day transition skipped after each change
    /// (jobs started before a change finish under the old settings).
    pub settled_means_kw: Vec<f64>,
    /// Mean utilisation over the window.
    pub utilisation: f64,
}

impl FigureResult {
    /// Render the ASCII figure with mean lines.
    pub fn render(&self) -> String {
        hpc_telemetry::AsciiPlot::new(self.label).render(&self.series, Some(&self.summary))
    }
}

/// Multiply a series' values by `k` (scaling a 1/scale facility back to
/// full-facility kilowatts).
fn scale_series(s: &TimeSeries, k: f64) -> TimeSeries {
    let mut out = TimeSeries::new(s.start(), s.interval(), s.unit.clone());
    for &v in s.values().iter() {
        out.push(v * k);
    }
    out
}

fn run_window(
    seed: u64,
    scale: u32,
    start: SimTime,
    end: SimTime,
    initial: OperatingPoint,
    changes: &[(SimTime, OperatingPoint, &'static str)],
    label: &'static str,
) -> FigureResult {
    let mut spec = ScenarioSpec::new(label, campaign_config(seed, scale), scale, start, end, initial);
    spec.changes = changes.iter().map(|&(at, op, _)| (at, op)).collect();
    let (series, utilisation) = run_scenarios(std::slice::from_ref(&spec), |_, campaign| {
        let k = 5860.0 / campaign.facility().nodes() as f64;
        (scale_series(campaign.power_series(), k), campaign.utilisation())
    })
    .pop()
    .expect("one scenario in, one result out");

    let change_points: Vec<ChangePoint> = changes
        .iter()
        .map(|&(at, _, label)| ChangePoint::new(at, label))
        .collect();
    let summary = SegmentSummary::compute(&series, &change_points);

    // Settled means: skip 2 days after each boundary.
    let settle = SimDuration::from_days(2);
    let mut bounds = vec![start];
    bounds.extend(changes.iter().map(|&(at, _, _)| at));
    bounds.push(end);
    let settled_means_kw = bounds
        .windows(2)
        .map(|w| {
            let from = if w[0] == start { w[0] } else { w[0] + settle };
            series.window_mean(from, w[1])
        })
        .collect();

    FigureResult {
        label,
        series,
        changes: change_points,
        summary,
        settled_means_kw,
        utilisation,
    }
}

/// Figure 1: baseline power draw, Dec 2021 – Apr 2022 (mean 3,220 kW).
pub fn figure1(seed: u64, scale: u32) -> FigureResult {
    run_window(
        seed,
        scale,
        SimTime::from_ymd(2021, 12, 1),
        SimTime::from_ymd(2022, 4, 1),
        OperatingPoint::ORIGINAL,
        &[],
        "Figure 1: ARCHER2 compute cabinet power, Dec 2021 - Apr 2022",
    )
}

/// Figure 2: the BIOS change, Apr – May 2022 (3,220 → 3,010 kW).
pub fn figure2(seed: u64, scale: u32) -> FigureResult {
    run_window(
        seed,
        scale,
        SimTime::from_ymd(2022, 4, 1),
        SimTime::from_ymd(2022, 6, 1),
        OperatingPoint::ORIGINAL,
        &[(
            SimTime::from_ymd(2022, 5, 1),
            OperatingPoint::AFTER_BIOS,
            "BIOS: performance determinism",
        )],
        "Figure 2: ARCHER2 compute cabinet power, Apr 2022 - May 2022",
    )
}

/// Figure 3: the frequency change, Nov – Dec 2022 (3,010 → 2,530 kW).
pub fn figure3(seed: u64, scale: u32) -> FigureResult {
    run_window(
        seed,
        scale,
        SimTime::from_ymd(2022, 11, 1),
        SimTime::from_ymd(2023, 1, 1),
        OperatingPoint::AFTER_BIOS,
        &[(
            SimTime::from_ymd(2022, 12, 1),
            OperatingPoint::AFTER_FREQ,
            "default frequency 2.0 GHz",
        )],
        "Figure 3: ARCHER2 compute cabinet power, Nov 2022 - Dec 2022",
    )
}

// ---------------------------------------------------------------------------
// §5 conclusions
// ---------------------------------------------------------------------------

/// The §5 headline numbers, derived from the figure experiments.
#[derive(Debug, Clone, PartialEq)]
pub struct ConclusionsResult {
    /// Baseline mean compute-cabinet power (paper: 3,220 kW).
    pub baseline_kw: f64,
    /// After the BIOS change (paper: 3,010 kW).
    pub after_bios_kw: f64,
    /// After the frequency change (paper: 2,530 kW).
    pub after_freq_kw: f64,
    /// Total saving (paper: ≈690 kW, 21 %).
    pub total_saving_kw: f64,
    /// Total fractional reduction.
    pub total_drop: f64,
    /// BIOS-change fractional reduction (paper: 210 kW, 6.5 %).
    pub bios_drop: f64,
    /// Frequency-change reduction (paper: 480 kW).
    pub freq_drop_kw: f64,
    /// Idle node power as a fraction of loaded (paper: ≈50 %).
    pub idle_fraction: f64,
    /// Switch power band (paper: 200–250 W irrespective of load).
    pub switch_band_w: (f64, f64),
}

/// Compute the conclusions from already-run figure experiments.
pub fn conclusions(seed: u64, fig2: &FigureResult, fig3: &FigureResult) -> ConclusionsResult {
    let baseline_kw = fig2.settled_means_kw[0];
    let after_bios_kw = fig2.settled_means_kw[1];
    let after_freq_kw = fig3.settled_means_kw[1];

    let f = Archer2Facility::new(seed);
    let nm = f.node_model();
    let lot = f.lottery();
    let part = hpc_power::SiliconSample::typical(lot);
    let parts = [part, part];
    let idle = nm.idle_power(DeterminismMode::Power, &parts).total_w();
    let loaded = nm
        .power(
            FreqSetting::TurboBoost2250,
            DeterminismMode::Power,
            hpc_power::NodeActivity::typical(),
            &parts,
            lot,
        )
        .total_w();
    let sw = hpc_power::SwitchPowerModel::new(hpc_power::SwitchSpec::default());

    ConclusionsResult {
        baseline_kw,
        after_bios_kw,
        after_freq_kw,
        total_saving_kw: baseline_kw - after_freq_kw,
        total_drop: (baseline_kw - after_freq_kw) / baseline_kw,
        bios_drop: (baseline_kw - after_bios_kw) / baseline_kw,
        freq_drop_kw: after_bios_kw - after_freq_kw,
        idle_fraction: idle / loaded,
        switch_band_w: (sw.power_w(0.0), sw.power_w(1.0)),
    }
}

// ---------------------------------------------------------------------------
// §2 emissions regimes
// ---------------------------------------------------------------------------

/// §2 regime analysis over a carbon-intensity sweep.
pub fn emissions_regimes(seed: u64) -> RegimeAnalysis {
    let f = Archer2Facility::new(seed);
    let (nm, lot) = (f.node_model(), f.lottery());
    let generic = hpc_workload::AppModel::generic(hpc_workload::ResearchArea::MaterialsScience);
    let choices: Vec<OperatingChoice> = [
        ("2.25 GHz+turbo (perf. det.)", OperatingPoint::AFTER_BIOS),
        ("2.0 GHz", OperatingPoint::AFTER_FREQ),
        (
            "1.5 GHz",
            OperatingPoint {
                setting: FreqSetting::Low1500,
                mode: DeterminismMode::Performance,
            },
        ),
    ]
    .iter()
    .map(|(label, op)| OperatingChoice {
        label: label.to_string(),
        node_power_kw: generic.node_power_w(*op, nm, lot) / 1000.0,
        runtime_ratio: generic.runtime_ratio(*op, nm, lot),
    })
    .collect();

    let ci: Vec<f64> = (0..=60).map(|i| 5.0 * i as f64).collect();
    RegimeAnalysis::run(&EmbodiedEmissions::archer2_scale(), 3220.0, &choices, &ci)
}

/// Render the regime analysis as a table.
pub fn render_regimes(a: &RegimeAnalysis) -> String {
    let mut t = Table::new(["CI (g/kWh)", "Regime", "Embodied share", "Best operating point"]);
    for r in a.rows.iter().step_by(4) {
        t.row([
            format!("{:.0}", r.ci),
            r.regime.to_string(),
            format!("{:.0}%", r.embodied_share * 100.0),
            r.best_choice.clone(),
        ]);
    }
    format!(
        "Section 2 regime analysis (scope2 = scope3 parity at {:.0} g/kWh)\n{}",
        a.parity_ci,
        t.render()
    )
}

// ---------------------------------------------------------------------------
// Ablations
// ---------------------------------------------------------------------------

/// One row of the utilisation-sweep ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct UtilisationRow {
    /// Mean utilisation.
    pub utilisation: f64,
    /// Facility compute-cabinet power (kW).
    pub facility_kw: f64,
    /// Energy per busy node-hour (kWh) — the §5 efficiency metric.
    pub kwh_per_busy_node_hour: f64,
}

/// §5 ablation: energy efficiency vs utilisation ("utilisation ... must be
/// as close to 100 % as possible and ideally over 90 %"). Closed form: busy
/// nodes at typical load, the rest idle, fixed overheads always on.
pub fn utilisation_sweep(seed: u64) -> Vec<UtilisationRow> {
    let f = Archer2Facility::new(seed);
    let (nm, lot) = (f.node_model(), f.lottery());
    let generic = hpc_workload::AppModel::generic(hpc_workload::ResearchArea::MaterialsScience);
    let busy_kw = generic.node_power_w(OperatingPoint::AFTER_BIOS, nm, lot) / 1000.0;
    let idle_kw = f.mean_idle_node_kw(DeterminismMode::Performance);
    let nodes = f.nodes() as f64;
    (0..=10)
        .map(|i| {
            let u = 0.5 + 0.05 * i as f64;
            let nodes_kw = nodes * (u * busy_kw + (1.0 - u) * idle_kw);
            let budget = f.budget_from_nodes(nodes_kw, 0.7 * u);
            let facility_kw = budget.compute_cabinets_kw();
            UtilisationRow {
                utilisation: u,
                facility_kw,
                kwh_per_busy_node_hour: facility_kw / (nodes * u),
            }
        })
        .collect()
}

/// One row of the frequency-sweep ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct FrequencySweepRow {
    /// Benchmark label.
    pub benchmark: String,
    /// Perf ratio at (1.5 GHz, 2.0 GHz, 2.25+turbo) vs 2.25+turbo.
    pub perf: [f64; 3],
    /// Energy ratio at the same points.
    pub energy: [f64; 3],
}

/// Extension: the full frequency sweep (adds 1.5 GHz to the paper's two
/// points) for every catalog benchmark.
pub fn frequency_sweep(seed: u64) -> Vec<FrequencySweepRow> {
    let f = Archer2Facility::new(seed);
    let (nm, lot) = (f.node_model(), f.lottery());
    let ops = [
        OperatingPoint {
            setting: FreqSetting::Low1500,
            mode: DeterminismMode::Performance,
        },
        OperatingPoint::AFTER_FREQ,
        OperatingPoint::AFTER_BIOS,
    ];
    f.catalog()
        .records()
        .iter()
        .map(|rec| {
            let perf = ops.map(|op| rec.app.perf_ratio(op, nm, lot));
            let energy = ops.map(|op| rec.app.energy_ratio(op, nm, lot));
            FrequencySweepRow {
                benchmark: rec.benchmark.clone(),
                perf,
                energy,
            }
        })
        .collect()
}

/// One row of the frequency-policy ablation.
#[derive(Debug, Clone)]
pub struct PolicyRow {
    /// Policy label.
    pub policy: String,
    /// Mean compute-cabinet power (full-facility kW).
    pub mean_kw: f64,
    /// Jobs reverted to turbo per job started.
    pub revert_fraction: f64,
}

/// Extension: blanket 2.0 GHz vs the paper's auto-revert deployment.
pub fn policy_ablation(seed: u64, scale: u32) -> Vec<PolicyRow> {
    let start = SimTime::from_ymd(2022, 12, 1);
    let end = start + SimDuration::from_days(14);
    let policies: Vec<(String, FrequencyPolicy)> = vec![
        ("blanket 2.0 GHz".into(), FrequencyPolicy::Blanket),
        (
            "auto-revert >10% impact".into(),
            FrequencyPolicy::AutoRevert {
                threshold: 0.90,
                user_revert_fraction: 0.05,
            },
        ),
        (
            "auto-revert >20% impact".into(),
            FrequencyPolicy::AutoRevert {
                threshold: 0.80,
                user_revert_fraction: 0.05,
            },
        ),
    ];
    let specs: Vec<ScenarioSpec> = policies
        .into_iter()
        .map(|(label, policy)| {
            let mut cfg = campaign_config(seed, scale);
            cfg.policy = policy;
            ScenarioSpec::new(label, cfg, scale, start, end, OperatingPoint::AFTER_FREQ)
        })
        .collect();
    run_scenarios(&specs, |spec, c| {
        let k = 5860.0 / c.facility().nodes() as f64;
        let (started, reverted) = c.job_counts();
        PolicyRow {
            policy: spec.label.clone(),
            mean_kw: c.power_series().mean() * k,
            revert_fraction: reverted as f64 / started.max(1) as f64,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEED: u64 = 2022;
    const SCALE: u32 = 10;

    #[test]
    fn table1_matches_paper() {
        let s = table1();
        assert_eq!(s.compute_nodes, 5860);
        assert_eq!(s.compute_cores, 750_080);
        assert_eq!(s.slingshot_switches, 768);
    }

    #[test]
    fn table2_matches_paper() {
        let t = table2(SEED);
        // Paper totals: idle 1,800 kW, loaded 3,500 kW (±5 %).
        assert!((t.idle_total_kw - 1800.0).abs() / 1800.0 < 0.05, "idle {}", t.idle_total_kw);
        assert!((t.loaded_total_kw - 3500.0).abs() / 3500.0 < 0.05, "loaded {}", t.loaded_total_kw);
        // Node share ≈ 86 %.
        assert!((t.rows[0].share - 0.86).abs() < 0.03, "node share {}", t.rows[0].share);
        let rendered = t.render();
        assert!(rendered.contains("Compute nodes"));
        assert!(rendered.contains("Total"));
    }

    #[test]
    fn table3_within_tolerance() {
        let t = table3(SEED);
        assert_eq!(t.rows.len(), 3);
        assert!(t.max_abs_error() < 0.01, "max error {}", t.max_abs_error());
    }

    #[test]
    fn table4_within_tolerance() {
        let t = table4(SEED);
        assert_eq!(t.rows.len(), 7);
        assert!(t.max_abs_error() < 0.01, "max error {}", t.max_abs_error());
    }

    #[test]
    fn figure1_baseline_mean() {
        let fig = figure1(SEED, SCALE);
        let mean = fig.summary.means[0];
        // Paper: 3,220 kW. Contract: ±2 %.
        assert!((mean - 3220.0).abs() / 3220.0 < 0.02, "baseline mean {mean} kW");
        assert!(fig.utilisation > 0.90, "utilisation {}", fig.utilisation);
    }

    #[test]
    fn figure2_bios_change() {
        let fig = figure2(SEED, SCALE);
        let before = fig.settled_means_kw[0];
        let after = fig.settled_means_kw[1];
        assert!((before - 3220.0).abs() / 3220.0 < 0.02, "before {before}");
        assert!((after - 3010.0).abs() / 3010.0 < 0.02, "after {after}");
    }

    #[test]
    fn figure3_frequency_change() {
        let fig = figure3(SEED, SCALE);
        let before = fig.settled_means_kw[0];
        let after = fig.settled_means_kw[1];
        assert!((before - 3010.0).abs() / 3010.0 < 0.02, "before {before}");
        assert!((after - 2530.0).abs() / 2530.0 < 0.02, "after {after}");
    }

    #[test]
    fn conclusion_numbers() {
        let fig2 = figure2(SEED, SCALE);
        let fig3 = figure3(SEED, SCALE);
        let c = conclusions(SEED, &fig2, &fig3);
        // Paper: 690 kW saved, 21 % total, 6.5 % from BIOS, ~480 kW from
        // frequency, idle ≈ 50 %, switches 200–250 W.
        assert!((c.total_saving_kw - 690.0).abs() < 75.0, "saving {}", c.total_saving_kw);
        assert!((c.total_drop - 0.21).abs() < 0.025, "total drop {}", c.total_drop);
        assert!((c.bios_drop - 0.065).abs() < 0.015, "bios drop {}", c.bios_drop);
        assert!((c.freq_drop_kw - 480.0).abs() < 60.0, "freq saving {}", c.freq_drop_kw);
        assert!((c.idle_fraction - 0.5).abs() < 0.06, "idle fraction {}", c.idle_fraction);
        assert!(c.switch_band_w.0 >= 200.0 && c.switch_band_w.1 <= 250.0);
    }

    #[test]
    fn regimes_reproduce_section2() {
        let a = emissions_regimes(SEED);
        assert!((30.0..=100.0).contains(&a.parity_ci), "parity {}", a.parity_ci);
        assert_eq!(a.rows[0].best_choice, "2.25 GHz+turbo (perf. det.)");
        let last = a.rows.last().unwrap();
        assert_ne!(last.best_choice, "2.25 GHz+turbo (perf. det.)");
        let rendered = render_regimes(&a);
        assert!(rendered.contains("parity"));
    }

    #[test]
    fn utilisation_sweep_shows_efficiency_cliff() {
        let rows = utilisation_sweep(SEED);
        // Energy per busy node-hour falls monotonically with utilisation.
        for w in rows.windows(2) {
            assert!(w[1].kwh_per_busy_node_hour < w[0].kwh_per_busy_node_hour);
        }
        let at50 = &rows[0];
        let at100 = rows.last().unwrap();
        assert!(
            at50.kwh_per_busy_node_hour / at100.kwh_per_busy_node_hour > 1.3,
            "running half-empty must cost >30 % more per node-hour"
        );
    }

    #[test]
    fn frequency_sweep_is_physical() {
        let rows = frequency_sweep(SEED);
        assert_eq!(rows.len(), 8);
        for r in &rows {
            // Perf increases with frequency; the reference point is 1.0.
            assert!(r.perf[0] < r.perf[1] && r.perf[1] < r.perf[2]);
            assert!((r.perf[2] - 1.0).abs() < 1e-9);
            assert!((r.energy[2] - 1.0).abs() < 1e-9);
            // 2.0 GHz always saves energy vs reference (the paper's result).
            assert!(r.energy[1] < 1.0, "{}: energy {}", r.benchmark, r.energy[1]);
        }
    }
}

// ---------------------------------------------------------------------------
// §5 future-work extensions
// ---------------------------------------------------------------------------

/// One compiler/library variant of an application (the §5 future-work item
/// "investigating the impact of compiler and library choices on the energy
/// efficiency of application benchmarks at different CPU frequencies").
#[derive(Debug, Clone, PartialEq)]
pub struct ToolchainRow {
    /// Benchmark label.
    pub benchmark: String,
    /// Variant label.
    pub variant: &'static str,
    /// Throughput relative to the baseline variant at the reference
    /// operating point (>1 = faster build).
    pub rel_speed_ref: f64,
    /// Performance ratio at 2.0 GHz vs reference frequency *for this
    /// variant* (the frequency sensitivity the variant exhibits).
    pub perf_ratio_20: f64,
    /// Energy-to-solution at 2.0 GHz relative to this variant at reference.
    pub energy_ratio_20: f64,
    /// Energy per work unit at 2.0 GHz relative to the *baseline variant at
    /// reference* — the figure of merit for picking compiler × frequency.
    pub energy_per_work_20: f64,
}

/// Sweep compiler/library variants across the frequency change for every
/// catalog benchmark.
///
/// Variants are modelled as profile perturbations:
/// * **vectorised** — wide-SIMD build: 15 % faster at reference, higher
///   pipeline activity, a *smaller* compute-bound fraction (the remaining
///   time is memory stalls), so it loses less at 2.0 GHz;
/// * **portable** — conservative scalar build: 25 % slower at reference,
///   lower activity, more compute-bound, so the frequency cap hurts more.
pub fn toolchain_sweep(seed: u64) -> Vec<ToolchainRow> {
    let f = Archer2Facility::new(seed);
    let (nm, lot) = (f.node_model(), f.lottery());
    let mut rows = Vec::new();
    for rec in f.catalog().records() {
        let base = &rec.app;
        let variants: [(&'static str, f64, hpc_workload::AppModel); 3] = [
            ("baseline", 1.0, base.clone()),
            ("vectorised", 1.15, {
                let mut v = base.clone();
                v.beta = (v.beta * 0.75).clamp(0.0, 1.0);
                v.cpu_activity = (v.cpu_activity * 1.2).min(1.2);
                v
            }),
            ("portable", 0.75, {
                let mut v = base.clone();
                v.beta = (v.beta * 1.3).clamp(0.0, 1.0);
                v.cpu_activity = (v.cpu_activity * 0.85).max(0.05);
                v
            }),
        ];
        for (label, rel_speed_ref, app) in variants {
            let perf = app.perf_ratio(OperatingPoint::AFTER_FREQ, nm, lot);
            let energy = app.energy_ratio(OperatingPoint::AFTER_FREQ, nm, lot);
            // Energy per work unit at 2.0 GHz, normalised to the baseline
            // variant at the reference point: (power ratio) / (work rate),
            // where the variant's work rate folds in both its build speedup
            // and its frequency sensitivity.
            let p_ref_base = base.node_power_w(OperatingPoint::AFTER_BIOS, nm, lot);
            let p20 = app.node_power_w(OperatingPoint::AFTER_FREQ, nm, lot);
            let work_rate = rel_speed_ref * perf;
            let energy_per_work_20 = (p20 / p_ref_base) / work_rate;
            rows.push(ToolchainRow {
                benchmark: rec.benchmark.clone(),
                variant: label,
                rel_speed_ref,
                perf_ratio_20: perf,
                energy_ratio_20: energy,
                energy_per_work_20,
            });
        }
    }
    rows
}

/// Outcome of replacing part of a modelling workflow with an AI surrogate
/// (§5 future work: "the impact on energy and emissions efficiency of
/// replacing parts of modelling applications by AI-based approaches").
#[derive(Debug, Clone, PartialEq)]
pub struct AiSurrogateRow {
    /// Grid carbon intensity (g/kWh).
    pub ci: f64,
    /// gCO₂e per science unit, classical numerical workflow.
    pub classical_g: f64,
    /// gCO₂e per science unit, surrogate-accelerated workflow.
    pub surrogate_g: f64,
    /// Emissions reduction factor.
    pub reduction: f64,
}

/// Compare a classical workflow against an AI-surrogate-accelerated one
/// across the §2 carbon-intensity range.
///
/// The surrogate does the same science unit in `1/speedup` of the
/// node-hours at somewhat higher node power (dense inference keeps the
/// pipelines and memory system busy). Both energy *and* amortised embodied
/// emissions per science unit shrink, so the surrogate wins in **every**
/// regime — embodied-dominated included — which is the §2-framework answer
/// to the paper's open question.
pub fn ai_surrogate(seed: u64, speedup: f64) -> Vec<AiSurrogateRow> {
    assert!(speedup > 1.0, "a surrogate that is not faster is not a surrogate");
    let f = Archer2Facility::new(seed);
    let (nm, lot) = (f.node_model(), f.lottery());
    let classical = hpc_workload::AppModel::generic(hpc_workload::ResearchArea::ClimateOcean);
    let mut surrogate = classical.clone();
    surrogate.cpu_activity = (surrogate.cpu_activity * 1.4).min(1.1);
    surrogate.mem_intensity = (surrogate.mem_intensity * 1.2).min(1.0);

    let p_classical = classical.node_power_w(OperatingPoint::AFTER_BIOS, nm, lot) / 1000.0;
    let p_surrogate = surrogate.node_power_w(OperatingPoint::AFTER_BIOS, nm, lot) / 1000.0;
    let embodied = EmbodiedEmissions::archer2_scale();
    let rate = embodied.rate_g_per_node_hour();

    (0..=6)
        .map(|i| {
            let ci = 50.0 * i as f64;
            // Science unit = 1 classical node-hour of output.
            let classical_g = p_classical * ci + rate;
            let surrogate_g = (p_surrogate * ci + rate) / speedup;
            AiSurrogateRow {
                ci,
                classical_g,
                surrogate_g,
                reduction: classical_g / surrogate_g,
            }
        })
        .collect()
}

/// Annualised savings implied by the campaign's power reduction — §5's
/// "significant savings in both scope 2 emissions and energy costs".
#[derive(Debug, Clone, PartialEq)]
pub struct SavingsResult {
    /// Power saved (kW).
    pub saved_kw: f64,
    /// Energy saved per year (GWh).
    pub energy_gwh_per_year: f64,
    /// Scope-2 emissions avoided per year at UK-2022 intensity (tCO₂e).
    pub scope2_t_per_year: f64,
    /// Electricity cost avoided per year (million GBP) at the winter-2022
    /// UK non-domestic rate (~£0.30/kWh).
    pub cost_mgbp_per_year: f64,
}

/// Convert the measured power saving into annualised energy, emissions and
/// cost savings.
pub fn annualised_savings(fig2: &FigureResult, fig3: &FigureResult) -> SavingsResult {
    let saved_kw = fig2.settled_means_kw[0] - fig3.settled_means_kw[1];
    let kwh_per_year = saved_kw * 8766.0;
    let acc = hpc_emissions::Scope2Accountant::new(hpc_grid::IntensityScenario::UkGrid2022);
    let scope2_t_per_year = acc.emissions_constant_t(
        saved_kw,
        SimTime::from_ymd(2023, 1, 1),
        SimDuration::from_days(365),
    );
    SavingsResult {
        saved_kw,
        energy_gwh_per_year: kwh_per_year / 1e6,
        scope2_t_per_year,
        cost_mgbp_per_year: kwh_per_year * 0.30 / 1e6,
    }
}

#[cfg(test)]
mod extension_tests {
    use super::*;

    const SEED: u64 = 2022;

    #[test]
    fn vectorised_builds_are_less_frequency_sensitive() {
        let rows = toolchain_sweep(SEED);
        assert_eq!(rows.len(), 8 * 3);
        for chunk in rows.chunks(3) {
            let base = &chunk[0];
            let vec = &chunk[1];
            let portable = &chunk[2];
            assert_eq!(base.variant, "baseline");
            // The vectorised build loses less performance at 2.0 GHz…
            assert!(
                vec.perf_ratio_20 >= base.perf_ratio_20 - 1e-9,
                "{}: vectorised perf {} vs base {}",
                base.benchmark,
                vec.perf_ratio_20,
                base.perf_ratio_20
            );
            // …and the portable build loses more.
            assert!(portable.perf_ratio_20 <= base.perf_ratio_20 + 1e-9);
            // Energy per unit of science at 2.0 GHz: vectorised wins.
            assert!(vec.energy_per_work_20 < base.energy_per_work_20);
            assert!(portable.energy_per_work_20 > base.energy_per_work_20);
        }
    }

    #[test]
    fn surrogate_wins_in_every_regime() {
        let rows = ai_surrogate(SEED, 8.0);
        for r in &rows {
            assert!(
                r.surrogate_g < r.classical_g,
                "CI {}: surrogate {} vs classical {}",
                r.ci,
                r.surrogate_g,
                r.classical_g
            );
            assert!(r.reduction > 4.0, "CI {}: reduction only {}", r.ci, r.reduction);
        }
        // The reduction factor grows slightly with CI (the surrogate's power
        // premium is amortised better when electricity is dirtier… or at
        // least never shrinks below the node-hour speedup divided by the
        // power premium).
        assert!(rows.last().unwrap().reduction >= rows[0].reduction * 0.9);
    }

    #[test]
    #[should_panic(expected = "not a surrogate")]
    fn surrogate_must_be_faster() {
        let _ = ai_surrogate(SEED, 0.5);
    }

    #[test]
    fn annualised_savings_match_paper_magnitudes() {
        let fig2 = figure2(SEED, 10);
        let fig3 = figure3(SEED, 10);
        let s = annualised_savings(&fig2, &fig3);
        // ~690 kW → ~6 GWh/yr → ~1.2 ktCO₂e/yr at UK-2022 CI → ~£1.8M/yr.
        assert!((600.0..=800.0).contains(&s.saved_kw), "saved {}", s.saved_kw);
        assert!((5.0..=7.5).contains(&s.energy_gwh_per_year), "energy {}", s.energy_gwh_per_year);
        assert!((1000.0..=1600.0).contains(&s.scope2_t_per_year), "scope2 {}", s.scope2_t_per_year);
        assert!((1.5..=2.3).contains(&s.cost_mgbp_per_year), "cost {}", s.cost_mgbp_per_year);
    }
}

// ---------------------------------------------------------------------------
// Grid-citizen extensions: power capping and grid-aware scheduling
// ---------------------------------------------------------------------------

/// One row of the power-cap sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct CapSweepRow {
    /// Busy-fleet power cap (kW).
    pub cap_kw: f64,
    /// Fleet fractions at `[1.5, 2.0, 2.25+turbo]`.
    pub fractions: [f64; 3],
    /// Relative science throughput.
    pub throughput: f64,
}

/// Sweep facility power caps and report the throughput-optimal frequency
/// mix for each — the operator's curtailment menu.
pub fn power_cap_sweep(seed: u64) -> Vec<CapSweepRow> {
    let f = Archer2Facility::new(seed);
    let busy = (f.nodes() as f64 * 0.92) as u32;
    let planner = hpc_power::PowerCapPlanner::for_fleet(f.node_model(), f.lottery(), busy);
    planner
        .sweep(10)
        .into_iter()
        .map(|p| CapSweepRow {
            cap_kw: p.power_kw,
            fractions: p.fractions,
            throughput: p.throughput,
        })
        .collect()
}

/// Outcome of a month of grid-aware operation vs the static alternatives.
#[derive(Debug, Clone, PartialEq)]
pub struct GridAwareResult {
    /// Mean compute-cabinet power, static 2.25+turbo (kW, full facility).
    pub static_fast_kw: f64,
    /// Mean power, static 2.0 GHz default.
    pub static_slow_kw: f64,
    /// Mean power, grid-aware switching.
    pub grid_aware_kw: f64,
    /// Scope-2 emissions for the month under each policy (tCO₂e), same
    /// order as the power fields.
    pub scope2_t: [f64; 3],
    /// Fraction of hours the grid-aware policy spent shed.
    pub shed_fraction: f64,
}

/// December 2022 under three policies: always-fast, always-capped, and the
/// §2 decision rule applied hourly (shed when CI > threshold).
pub fn grid_aware_december(seed: u64, scale: u32) -> GridAwareResult {
    use crate::campaign::OperatingSchedule;
    let start = SimTime::from_ymd(2022, 12, 1);
    let end = SimTime::from_ymd(2023, 1, 1);
    let scenario = hpc_grid::IntensityScenario::UkGrid2022;
    let threshold = 230.0;

    let schedule = OperatingSchedule {
        scenario,
        high_ci_threshold: threshold,
        normal: OperatingPoint::AFTER_BIOS,
        shed: OperatingPoint::AFTER_FREQ,
        tick: SimDuration::from_hours(1),
    };
    let mk = |label: &str, sched: Option<OperatingSchedule>, op: OperatingPoint| {
        let mut cfg = campaign_config(seed, scale);
        cfg.schedule = sched;
        ScenarioSpec::new(label, cfg, scale, start, end, op)
    };
    let specs = [
        mk("static 2.25+turbo", None, OperatingPoint::AFTER_BIOS),
        mk("static 2.0 GHz", None, OperatingPoint::AFTER_FREQ),
        mk("grid-aware", Some(schedule), OperatingPoint::AFTER_BIOS),
    ];
    let results = run_scenarios(&specs, |_, c| {
        let k = 5860.0 / c.facility().nodes() as f64;
        let mean = c.power_series().mean() * k;
        let acc = hpc_emissions::Scope2Accountant::new(scenario);
        // Integrate the (scaled) series against the hourly CI signal.
        let mut series = hpc_telemetry::TimeSeries::new(start, c.power_series().interval(), "kW");
        for &v in c.power_series().values().iter() {
            series.push(v * k);
        }
        (mean, acc.emissions_t(&series))
    });
    let (static_fast_kw, e_fast) = results[0];
    let (static_slow_kw, e_slow) = results[1];
    let (grid_aware_kw, e_aware) = results[2];

    // Shed fraction from the deterministic signal.
    let mut shed_hours = 0u32;
    let mut total_hours = 0u32;
    let mut t = start;
    while t < end {
        if scenario.expected(t) > threshold {
            shed_hours += 1;
        }
        total_hours += 1;
        t += SimDuration::from_hours(1);
    }

    GridAwareResult {
        static_fast_kw,
        static_slow_kw,
        grid_aware_kw,
        scope2_t: [e_fast, e_slow, e_aware],
        shed_fraction: shed_hours as f64 / total_hours as f64,
    }
}

#[cfg(test)]
mod grid_extension_tests {
    use super::*;

    #[test]
    fn cap_sweep_is_a_menu() {
        let rows = power_cap_sweep(2022);
        assert_eq!(rows.len(), 11);
        // Throughput monotone in cap; turbo share rises with cap.
        for w in rows.windows(2) {
            assert!(w[1].throughput >= w[0].throughput - 1e-12);
        }
        assert!(rows[0].fractions[0] > 0.99, "floor: all 1.5 GHz");
        assert!(rows.last().unwrap().fractions[2] > 0.99, "uncapped: all turbo");
    }

    #[test]
    fn grid_aware_december_splits_the_difference() {
        let r = grid_aware_december(2022, 10);
        assert!(
            r.grid_aware_kw < r.static_fast_kw && r.grid_aware_kw > r.static_slow_kw,
            "{} in ({}, {})",
            r.grid_aware_kw,
            r.static_slow_kw,
            r.static_fast_kw
        );
        // Emissions: grid-aware beats always-fast.
        assert!(r.scope2_t[2] < r.scope2_t[0]);
        // December: the policy sheds a substantial minority of hours.
        assert!((0.1..=0.8).contains(&r.shed_fraction), "shed {}", r.shed_fraction);
        // Per-kW emissions advantage: the aware policy sheds preferentially
        // in dirty hours, so its emissions per mean-kW beat always-fast's.
        let per_kw_fast = r.scope2_t[0] / r.static_fast_kw;
        let per_kw_aware = r.scope2_t[2] / r.grid_aware_kw;
        assert!(per_kw_aware <= per_kw_fast * 1.001);
    }
}
