//! The assembled ARCHER2 facility: topology, power models, silicon lottery
//! tickets for every socket, and the calibrated application catalog.

use hpc_power::{
    CabinetOverheadModel, CduModel, DeterminismMode, FilesystemModel, NodePowerModel, NodeSpec,
    SiliconLottery, SiliconSample, SwitchPowerModel, SwitchSpec,
};
use hpc_topo::{FacilityConfig, FacilityTopology, NodeId};
use hpc_workload::{Catalog, OperatingPoint};
use sim_core::rng::Xoshiro256StarStar;

/// The whole system, ready to simulate.
#[derive(Debug, Clone)]
pub struct Archer2Facility {
    topology: FacilityTopology,
    node_model: NodePowerModel,
    switch_model: SwitchPowerModel,
    cdu_model: CduModel,
    overhead_model: CabinetOverheadModel,
    filesystem_model: FilesystemModel,
    lottery: SiliconLottery,
    /// Two silicon samples per node, indexed by node id.
    parts: Vec<[SiliconSample; 2]>,
    catalog: Catalog,
}

/// A static power budget (the Table 2 decomposition) for one facility state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerBudget {
    /// All compute nodes (kW).
    pub nodes_kw: f64,
    /// All switches (kW).
    pub switches_kw: f64,
    /// Cabinet overheads (kW).
    pub overheads_kw: f64,
    /// CDUs (kW).
    pub cdus_kw: f64,
    /// File systems (kW).
    pub filesystems_kw: f64,
}

impl PowerBudget {
    /// Total facility power (kW).
    pub fn total_kw(&self) -> f64 {
        self.nodes_kw + self.switches_kw + self.overheads_kw + self.cdus_kw + self.filesystems_kw
    }

    /// The "compute cabinet" subset the paper's figures measure: nodes +
    /// switches + cabinet overheads (≈90 % of the facility total).
    pub fn compute_cabinets_kw(&self) -> f64 {
        self.nodes_kw + self.switches_kw + self.overheads_kw
    }
}

impl Archer2Facility {
    /// Build the full-size facility with a deterministic silicon lottery.
    pub fn new(seed: u64) -> Self {
        Self::with_config(FacilityConfig::archer2(), seed)
    }

    /// Build with a custom topology (scaled-down facilities for fast tests).
    pub fn with_config(config: FacilityConfig, seed: u64) -> Self {
        let topology = FacilityTopology::build(config);
        let node_model = NodePowerModel::new(NodeSpec::default());
        let lottery = SiliconLottery::default();
        let root = Xoshiro256StarStar::seeded(seed);
        let mut silicon_rng = root.substream(0x51C0_DE00);
        let parts: Vec<[SiliconSample; 2]> = (0..config.nodes)
            .map(|_| [lottery.sample(&mut silicon_rng), lottery.sample(&mut silicon_rng)])
            .collect();
        let catalog = Catalog::calibrated(&node_model, &lottery);
        Archer2Facility {
            topology,
            node_model,
            switch_model: SwitchPowerModel::new(SwitchSpec::default()),
            cdu_model: CduModel::default(),
            overhead_model: CabinetOverheadModel::default(),
            filesystem_model: FilesystemModel::default(),
            lottery,
            parts,
            catalog,
        }
    }

    /// The topology.
    pub fn topology(&self) -> &FacilityTopology {
        &self.topology
    }

    /// The node power model.
    pub fn node_model(&self) -> &NodePowerModel {
        &self.node_model
    }

    /// The switch power model — built once with the facility, shared by the
    /// budget and telemetry-sampling paths so hot loops never reconstruct it.
    pub fn switch_model(&self) -> &SwitchPowerModel {
        &self.switch_model
    }

    /// The cabinet overhead model (rectifier/fan losses as a function of IT
    /// load); built once with the facility, like [`Self::switch_model`].
    pub fn overhead_model(&self) -> &CabinetOverheadModel {
        &self.overhead_model
    }

    /// The silicon lottery parameters.
    pub fn lottery(&self) -> &SiliconLottery {
        &self.lottery
    }

    /// The calibrated benchmark catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Silicon tickets of one node.
    pub fn node_parts(&self, node: NodeId) -> &[SiliconSample; 2] {
        &self.parts[node.index()]
    }

    /// Node count.
    pub fn nodes(&self) -> u32 {
        self.topology.config().nodes
    }

    /// Mean idle node power across the fleet (kW/node) in a BIOS mode.
    pub fn mean_idle_node_kw(&self, mode: DeterminismMode) -> f64 {
        let total: f64 = self
            .parts
            .iter()
            .map(|p| self.node_model.idle_power(mode, p).total_w())
            .sum();
        total / self.parts.len() as f64 / 1000.0
    }

    /// Power budget with every node idle (Table 2's "Idle" column).
    pub fn idle_budget(&self, mode: DeterminismMode) -> PowerBudget {
        let nodes_kw = self.mean_idle_node_kw(mode) * self.nodes() as f64;
        self.budget_from_nodes(nodes_kw, 0.0)
    }

    /// Power budget with every node running a typical HPC load (Table 2's
    /// "Loaded" column).
    pub fn loaded_budget(&self, op: OperatingPoint) -> PowerBudget {
        let generic = hpc_workload::AppModel::generic(hpc_workload::ResearchArea::MaterialsScience);
        let per_node_w =
            generic.node_power_w(op, &self.node_model, &self.lottery);
        let nodes_kw = per_node_w * self.nodes() as f64 / 1000.0;
        self.budget_from_nodes(nodes_kw, 1.0)
    }

    /// Assemble a budget given total node power and a fabric traffic load.
    pub fn budget_from_nodes(&self, nodes_kw: f64, fabric_load: f64) -> PowerBudget {
        self.budget_from_nodes_degraded(nodes_kw, fabric_load, 0, 0)
    }

    /// Assemble a budget with some components de-energised: offline
    /// switches (failed, or inside a tripped cabinet) and offline CDU
    /// loops draw nothing, and cabinet overhead scales with the surviving
    /// IT power. `nodes_kw` must already exclude powered-down nodes.
    pub fn budget_from_nodes_degraded(
        &self,
        nodes_kw: f64,
        fabric_load: f64,
        offline_switches: u32,
        offline_cdus: u32,
    ) -> PowerBudget {
        let cfg = self.topology.config();
        let online_switches = cfg.fabric.total_switches().saturating_sub(offline_switches);
        let switches_kw =
            online_switches as f64 * self.switch_model.power_w(fabric_load) / 1000.0;
        let it_per_cabinet_w = (nodes_kw + switches_kw) * 1000.0 / cfg.cabinets as f64;
        let overheads_kw =
            cfg.cabinets as f64 * self.overhead_model.power_w(it_per_cabinet_w) / 1000.0;
        let online_cdus = cfg.cdus.saturating_sub(offline_cdus);
        let cdus_kw = online_cdus as f64 * self.cdu_model.power_w() / 1000.0;
        let filesystems_kw = cfg.filesystems as f64 * self.filesystem_model.power_w() / 1000.0;
        PowerBudget {
            nodes_kw,
            switches_kw,
            overheads_kw,
            cdus_kw,
            filesystems_kw,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn facility() -> Archer2Facility {
        Archer2Facility::new(2022)
    }

    #[test]
    fn idle_budget_matches_table2() {
        // Table 2 idle: nodes 1,350 kW, switches 100-200 kW, overheads
        // 100-200 kW, CDUs 96 kW, filesystems 40 kW; total ≈ 1,800 kW.
        let f = facility();
        let b = f.idle_budget(DeterminismMode::Power);
        assert!((1250.0..=1480.0).contains(&b.nodes_kw), "idle nodes {} kW", b.nodes_kw);
        assert!((100.0..=200.0).contains(&b.switches_kw), "switches {} kW", b.switches_kw);
        assert!((100.0..=200.0).contains(&b.overheads_kw), "overheads {} kW", b.overheads_kw);
        assert!((b.cdus_kw - 96.0).abs() < 0.1);
        assert!((b.filesystems_kw - 40.0).abs() < 0.1);
        assert!((1650.0..=1950.0).contains(&b.total_kw()), "idle total {} kW", b.total_kw());
    }

    #[test]
    fn loaded_budget_matches_table2() {
        // Table 2 loaded: nodes 3,000 kW, switches 200 kW, overheads
        // 200 kW, CDUs 96 kW, filesystems 40 kW; total ≈ 3,500 kW.
        let f = facility();
        let b = f.loaded_budget(OperatingPoint::ORIGINAL);
        assert!((2800.0..=3200.0).contains(&b.nodes_kw), "loaded nodes {} kW", b.nodes_kw);
        assert!((170.0..=210.0).contains(&b.switches_kw), "switches {} kW", b.switches_kw);
        assert!((150.0..=230.0).contains(&b.overheads_kw), "overheads {} kW", b.overheads_kw);
        assert!((3300.0..=3700.0).contains(&b.total_kw()), "loaded total {} kW", b.total_kw());
    }

    #[test]
    fn nodes_dominate_loaded_power() {
        // Table 2: compute nodes ≈ 86 % of loaded facility power.
        let f = facility();
        let b = f.loaded_budget(OperatingPoint::ORIGINAL);
        let share = b.nodes_kw / b.total_kw();
        assert!((0.80..=0.90).contains(&share), "node share {share}");
    }

    #[test]
    fn compute_cabinets_are_about_90_percent() {
        // §3.2: compute cabinets ≈ 90 % of total ARCHER2 power draw.
        let f = facility();
        let b = f.loaded_budget(OperatingPoint::ORIGINAL);
        let share = b.compute_cabinets_kw() / b.total_kw();
        assert!((0.87..=0.97).contains(&share), "cabinet share {share}");
    }

    #[test]
    fn every_node_has_silicon() {
        let f = facility();
        assert_eq!(f.nodes(), 5860);
        let p0 = f.node_parts(NodeId(0));
        let p1 = f.node_parts(NodeId(5859));
        assert!(p0[0].v_margin > 0.0 && p1[1].v_margin > 0.0);
    }

    #[test]
    fn same_seed_same_facility() {
        let a = Archer2Facility::new(7);
        let b = Archer2Facility::new(7);
        for n in [0u32, 100, 5000] {
            assert_eq!(a.node_parts(NodeId(n)), b.node_parts(NodeId(n)));
        }
    }

    #[test]
    fn different_seed_different_silicon() {
        let a = Archer2Facility::new(1);
        let b = Archer2Facility::new(2);
        let same = (0..100u32)
            .filter(|&n| a.node_parts(NodeId(n)) == b.node_parts(NodeId(n)))
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn idle_total_near_half_loaded_total() {
        // Table 2: idle 1,800 kW vs loaded 3,500 kW.
        let f = facility();
        let idle = f.idle_budget(DeterminismMode::Power).total_kw();
        let loaded = f.loaded_budget(OperatingPoint::ORIGINAL).total_kw();
        let frac = idle / loaded;
        assert!((0.45..=0.60).contains(&frac), "idle/loaded {frac}");
    }
}
