//! Parallel scenario runner: fan a set of independent campaign scenarios
//! out over worker threads and reduce each finished campaign to a
//! caller-chosen summary.
//!
//! Every scenario is fully isolated — its own facility (silicon lottery and
//! all), its own scheduler, its own embedded telemetry store — so scenarios
//! never contend on shared state and a sweep of N scenarios is
//! embarrassingly parallel. The runner uses the same block-chunked
//! `rayon::scope` fan-out as the tsdb query engine: with `W` workers each
//! thread runs a contiguous block of scenarios to completion.
//!
//! Determinism: parallelism only changes *which thread* runs a scenario,
//! never the scenario's own event order. Results come back in input order,
//! and a given `(seed, scale, config)` scenario produces bit-identical
//! telemetry whether the sweep ran on one thread or sixteen.

use crate::campaign::{Campaign, CampaignConfig};
use crate::experiment::scaled_facility;
use hpc_workload::OperatingPoint;
use serde::{Deserialize, Serialize};
use sim_core::time::SimTime;

/// One self-contained campaign scenario: a `(seed, operating point,
/// policy)` tuple plus the window to simulate. The seed and frequency
/// policy travel inside [`CampaignConfig`].
///
/// Serialisable: specs round-trip through JSON bit-exactly, which is how
/// [`crate::sweep`] ships whole scenario grids to worker processes inside
/// checksummed shard manifests.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Human-readable label carried through to the results.
    pub label: String,
    /// Campaign parameters (seed, policy, telemetry, faults, …).
    pub config: CampaignConfig,
    /// Facility scale divisor (`1` = full 5,860-node ARCHER2).
    pub scale: u32,
    /// Simulation window start.
    pub start: SimTime,
    /// Simulation window end.
    pub end: SimTime,
    /// Operating point at `start`.
    pub initial_op: OperatingPoint,
    /// Mid-campaign operating-point changes, in chronological order
    /// (the BIOS/frequency switches of the figure experiments).
    pub changes: Vec<(SimTime, OperatingPoint)>,
}

impl ScenarioSpec {
    /// A scenario with no mid-campaign operating-point changes.
    pub fn new(
        label: impl Into<String>,
        config: CampaignConfig,
        scale: u32,
        start: SimTime,
        end: SimTime,
        initial_op: OperatingPoint,
    ) -> Self {
        ScenarioSpec {
            label: label.into(),
            config,
            scale,
            start,
            end,
            initial_op,
            changes: Vec::new(),
        }
    }
}

/// Build, run and reduce one scenario (the sequential unit of work).
pub(crate) fn run_one<T, F>(spec: &ScenarioSpec, reduce: &F) -> T
where
    F: Fn(&ScenarioSpec, &mut Campaign) -> T,
{
    let facility = scaled_facility(spec.config.seed, spec.scale);
    let mut campaign = Campaign::new(facility, spec.config.clone(), spec.start, spec.initial_op);
    for &(at, op) in &spec.changes {
        campaign.run_until(at);
        campaign.set_operating_point(op);
    }
    campaign.run_until(spec.end);
    reduce(spec, &mut campaign)
}

/// Run every scenario to completion, in parallel, and return the reduced
/// results **in input order**.
///
/// `reduce` sees the finished campaign while it is still owned by the
/// worker thread; extract whatever summary the sweep needs (a mean, a
/// digest, a whole [`crate::experiment::FigureResult`]) so the campaign —
/// and its telemetry store — can be dropped before the fan-out joins.
pub fn run_scenarios<T, F>(specs: &[ScenarioSpec], reduce: F) -> Vec<T>
where
    T: Send,
    F: Fn(&ScenarioSpec, &mut Campaign) -> T + Sync,
{
    let n = specs.len();
    let workers = rayon::current_num_threads().clamp(1, n.max(1));
    if n <= 1 || workers == 1 {
        return specs.iter().map(|s| run_one(s, &reduce)).collect();
    }
    let mut out: Vec<Option<T>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    let block = n.div_ceil(workers);
    let reduce = &reduce;
    rayon::scope(|s| {
        for (spec_block, out_block) in specs.chunks(block).zip(out.chunks_mut(block)) {
            s.spawn(move |_| {
                for (slot, spec) in out_block.iter_mut().zip(spec_block) {
                    *slot = Some(run_one(spec, reduce));
                }
            });
        }
    });
    out.into_iter()
        .map(|r| r.expect("every scenario block ran to completion"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::time::SimDuration;

    fn spec(seed: u64, label: &str) -> ScenarioSpec {
        let start = SimTime::from_ymd(2022, 3, 1);
        let cfg = CampaignConfig {
            seed,
            backlog_target: 40,
            generator: hpc_workload::GeneratorConfig {
                max_nodes: 64,
                ..hpc_workload::GeneratorConfig::default()
            },
            ..CampaignConfig::default()
        };
        ScenarioSpec::new(label, cfg, 40, start, start + SimDuration::from_hours(12), OperatingPoint::AFTER_BIOS)
    }

    #[test]
    fn results_come_back_in_input_order() {
        let specs: Vec<ScenarioSpec> =
            (0..4).map(|i| spec(100 + i, &format!("s{i}"))).collect();
        let labels = run_scenarios(&specs, |s, c| {
            assert!(c.events_processed() > 0);
            s.label.clone()
        });
        assert_eq!(labels, vec!["s0", "s1", "s2", "s3"]);
    }

    #[test]
    fn parallel_run_matches_sequential_run_bit_for_bit() {
        let specs: Vec<ScenarioSpec> = (0..3).map(|i| spec(7 + i, &format!("p{i}"))).collect();
        let digest = |_: &ScenarioSpec, c: &mut Campaign| {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for &v in c.power_series().values().iter() {
                for b in v.to_bits().to_le_bytes() {
                    h ^= u64::from(b);
                    h = h.wrapping_mul(0x1000_0000_01b3);
                }
            }
            h
        };
        let par = run_scenarios(&specs, digest);
        let seq: Vec<u64> = specs.iter().map(|s| run_one(s, &digest)).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn mid_campaign_changes_are_applied() {
        let mut s = spec(42, "changes");
        s.end = s.start + SimDuration::from_hours(24);
        s.changes = vec![(s.start + SimDuration::from_hours(12), OperatingPoint::AFTER_FREQ)];
        let ops = run_scenarios(std::slice::from_ref(&s), |_, c| c.operating_point());
        assert_eq!(ops[0], OperatingPoint::AFTER_FREQ);
    }
}
