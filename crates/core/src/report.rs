//! Minimal markdown table rendering for experiment output.

/// A simple markdown table builder.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics if the row width differs from the header width.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as aligned markdown.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            let mut s = String::from("|");
            for (i, c) in cells.iter().enumerate() {
                s.push_str(&format!(" {:<w$} |", c, w = width[i]));
            }
            s.push('\n');
            s
        };
        let mut out = fmt_row(&self.header);
        out.push('|');
        for w in &width {
            out.push_str(&format!("{:-<w$}|", "", w = w + 2));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
        }
        out
    }
}

/// Format a ratio to the paper's two decimal places.
pub fn ratio(x: f64) -> String {
    format!("{x:.2}")
}

/// Format kilowatts with thousands separators, as the paper prints them.
pub fn kw(x: f64) -> String {
    let v = x.round() as i64;
    let s = v.abs().to_string();
    let mut out = String::new();
    for (i, ch) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(ch);
    }
    if v < 0 {
        format!("-{out} kW")
    } else {
        format!("{out} kW")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new(["Benchmark", "Perf", "Energy"]);
        t.row(["CASTEP Al Slab", "0.93", "0.88"]);
        t.row(["VASP CdTe", "0.95", "0.88"]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("Benchmark"));
        assert!(lines[1].starts_with("|--"));
        assert!(lines[2].contains("CASTEP"));
        // All lines equal width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn ragged_row_rejected() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn formats() {
        assert_eq!(ratio(0.929_9), "0.93");
        assert_eq!(kw(3220.4), "3,220 kW");
        assert_eq!(kw(210.0), "210 kW");
        assert_eq!(kw(1_234_567.0), "1,234,567 kW");
    }
}
