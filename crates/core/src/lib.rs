//! # archer2-core
//!
//! The top of the reproduction stack: assembles the facility from the
//! substrate crates, replays the paper's operational timeline as a
//! discrete-event campaign, and exposes one typed experiment per table and
//! figure of the paper.
//!
//! * [`facility`] — the ARCHER2 system: topology + power models + silicon
//!   lottery + calibrated application catalog.
//! * [`campaign`] — months-long facility simulation with scheduler, power
//!   telemetry and operating-point changes (the BIOS switch of May 2022 and
//!   the frequency change of Dec 2022).
//! * [`experiment`] — `table1` … `figure3`, the §2 regime analysis, the §5
//!   conclusions check, and the ablation sweeps.
//! * [`scenarios`] — parallel fan-out runner for independent campaign
//!   scenarios (seed × operating point × policy sweeps), one isolated
//!   facility and telemetry store per scenario.
//! * [`sweep`] — distributed sweep orchestration on top of [`scenarios`]:
//!   checksummed shard manifests, resumable worker *processes*,
//!   work-stealing, and a bit-identical merge (`docs/SWEEP.md`).
//! * [`report`] — plain-text/markdown rendering of experiment results.

#![warn(missing_docs)]

pub mod campaign;
pub mod experiment;
pub mod facility;
pub mod report;
pub mod scenarios;
pub mod sweep;
pub mod verify;

pub use campaign::{
    Campaign, CampaignConfig, FailureConfig, FaultInjectionConfig, FrequencyPolicy, SensorStats,
    TelemetryStats,
};
pub use facility::{Archer2Facility, PowerBudget};
pub use scenarios::{run_scenarios, ScenarioSpec};
