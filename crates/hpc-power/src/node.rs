//! The compute-node power model: two sockets plus DRAM, NICs and board.
//!
//! Calibration targets are Table 2 of the paper: an ARCHER2 node draws
//! ≈ 0.23 kW idle and ≈ 0.51 kW loaded. The non-socket components matter for
//! the application energy ratios in Tables 3–4 because they do **not** scale
//! with core frequency — they dilute the CPU-side savings exactly as the
//! paper's measured ratios show.

use crate::pstate::FreqSetting;
use crate::silicon::{SiliconLottery, SiliconSample};
use crate::socket::{DeterminismMode, SocketPowerModel, SocketSpec};
use serde::{Deserialize, Serialize};

/// What a node is doing, power-wise.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeActivity {
    /// CPU pipeline activity factor `a` in `[0, 1.2]`.
    pub cpu: f64,
    /// Memory-subsystem intensity `m` in `[0, 1]` (fraction of peak DRAM
    /// bandwidth the workload sustains).
    pub mem: f64,
    /// Throughput factor relative to the workload's own reference speed in
    /// `[0, 1]`; DRAM and NIC activity power scale with it because a slower
    /// clock moves data more slowly.
    pub throughput: f64,
}

impl NodeActivity {
    /// A fully idle node.
    pub const IDLE: NodeActivity = NodeActivity {
        cpu: 0.0,
        mem: 0.0,
        throughput: 0.0,
    };

    /// A generic busy node (typical mixed HPC load).
    pub fn typical() -> Self {
        NodeActivity {
            cpu: 0.7,
            mem: 0.5,
            throughput: 1.0,
        }
    }
}

/// Physical constants of one node beyond its two sockets.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// Socket spec (node carries two).
    pub socket: SocketSpec,
    /// DRAM background power (W): refresh, PHY, idle DIMMs. 256–512 GB DDR4.
    pub dram_idle_w: f64,
    /// Extra DRAM power at full memory intensity and full throughput (W).
    pub dram_active_w: f64,
    /// Both Slingshot NICs, idle (W).
    pub nic_idle_w: f64,
    /// Extra NIC power at full throughput (W).
    pub nic_active_w: f64,
    /// Board, VRM losses, BMC (W), constant.
    pub board_w: f64,
}

impl Default for NodeSpec {
    fn default() -> Self {
        NodeSpec {
            socket: SocketSpec::default(),
            dram_idle_w: 28.0,
            dram_active_w: 24.0,
            nic_idle_w: 12.0,
            nic_active_w: 8.0,
            board_w: 15.0,
        }
    }
}

/// Per-component power draw of one node, in watts.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct NodePowerBreakdown {
    /// Both sockets.
    pub sockets_w: f64,
    /// DRAM.
    pub dram_w: f64,
    /// NICs.
    pub nic_w: f64,
    /// Board/VRM/BMC.
    pub board_w: f64,
}

impl NodePowerBreakdown {
    /// Total node power (W).
    pub fn total_w(&self) -> f64 {
        self.sockets_w + self.dram_w + self.nic_w + self.board_w
    }
}

/// Evaluates node power for given settings, activity and silicon.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodePowerModel {
    spec: NodeSpec,
    socket_model: SocketPowerModel,
}

impl NodePowerModel {
    /// Build from a node spec.
    pub fn new(spec: NodeSpec) -> Self {
        NodePowerModel {
            spec,
            socket_model: SocketPowerModel::new(spec.socket),
        }
    }

    /// The node spec.
    pub fn spec(&self) -> &NodeSpec {
        &self.spec
    }

    /// The embedded socket model.
    pub fn socket_model(&self) -> &SocketPowerModel {
        &self.socket_model
    }

    /// Power breakdown of a node running a workload.
    ///
    /// `parts` are the node's two sockets; activity applies to both (ARCHER2
    /// allocates whole nodes, and the benchmarks in the paper are
    /// node-filling MPI codes).
    pub fn power(
        &self,
        setting: FreqSetting,
        mode: DeterminismMode,
        activity: NodeActivity,
        parts: &[SiliconSample; 2],
        lottery: &SiliconLottery,
    ) -> NodePowerBreakdown {
        let sockets_w: f64 = parts
            .iter()
            .map(|p| self.socket_model.power_w(setting, mode, activity.cpu, p, lottery))
            .sum();
        NodePowerBreakdown {
            sockets_w,
            dram_w: self.spec.dram_idle_w + self.spec.dram_active_w * activity.mem * activity.throughput,
            nic_w: self.spec.nic_idle_w + self.spec.nic_active_w * activity.throughput,
            board_w: self.spec.board_w,
        }
    }

    /// Power breakdown of an idle (powered, scheduled-empty) node.
    pub fn idle_power(
        &self,
        mode: DeterminismMode,
        parts: &[SiliconSample; 2],
    ) -> NodePowerBreakdown {
        let sockets_w: f64 = parts.iter().map(|p| self.socket_model.idle_power_w(mode, p)).sum();
        NodePowerBreakdown {
            sockets_w,
            dram_w: self.spec.dram_idle_w,
            nic_w: self.spec.nic_idle_w,
            board_w: self.spec.board_w,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (NodePowerModel, [SiliconSample; 2], SiliconLottery) {
        let lot = SiliconLottery::default();
        let part = SiliconSample::typical(&lot);
        (NodePowerModel::new(NodeSpec::default()), [part, part], lot)
    }

    #[test]
    fn loaded_node_matches_table2() {
        // Table 2: loaded compute node ≈ 0.51 kW (vendor estimate, ±10 %).
        let (m, parts, lot) = setup();
        let p = m
            .power(
                FreqSetting::TurboBoost2250,
                DeterminismMode::Power,
                NodeActivity::typical(),
                &parts,
                &lot,
            )
            .total_w();
        assert!((459.0..=561.0).contains(&p), "loaded node power {p} W");
    }

    #[test]
    fn idle_node_matches_table2() {
        // Table 2: idle compute node ≈ 0.23 kW (±10 %).
        let (m, parts, _lot) = setup();
        let p = m.idle_power(DeterminismMode::Power, &parts).total_w();
        assert!((207.0..=253.0).contains(&p), "idle node power {p} W");
    }

    #[test]
    fn idle_is_about_half_of_loaded() {
        // Paper §5: "When compute nodes are not running user applications,
        // they draw around 50% of power of a fully loaded compute node."
        let (m, parts, lot) = setup();
        let idle = m.idle_power(DeterminismMode::Power, &parts).total_w();
        let loaded = m
            .power(
                FreqSetting::TurboBoost2250,
                DeterminismMode::Power,
                NodeActivity::typical(),
                &parts,
                &lot,
            )
            .total_w();
        let frac = idle / loaded;
        assert!((0.40..=0.60).contains(&frac), "idle/loaded = {frac}");
    }

    #[test]
    fn breakdown_sums_to_total() {
        let (m, parts, lot) = setup();
        let b = m.power(
            FreqSetting::Mid2000,
            DeterminismMode::Performance,
            NodeActivity::typical(),
            &parts,
            &lot,
        );
        let sum = b.sockets_w + b.dram_w + b.nic_w + b.board_w;
        assert!((b.total_w() - sum).abs() < 1e-12);
        assert!(b.sockets_w > 0.0 && b.dram_w > 0.0 && b.nic_w > 0.0 && b.board_w > 0.0);
    }

    #[test]
    fn sockets_dominate_node_power() {
        let (m, parts, lot) = setup();
        let b = m.power(
            FreqSetting::TurboBoost2250,
            DeterminismMode::Power,
            NodeActivity::typical(),
            &parts,
            &lot,
        );
        assert!(b.sockets_w / b.total_w() > 0.75, "sockets should dominate");
    }

    #[test]
    fn memory_bound_workload_draws_less_cpu_more_dram() {
        let (m, parts, lot) = setup();
        let compute = NodeActivity {
            cpu: 1.0,
            mem: 0.1,
            throughput: 1.0,
        };
        let memory = NodeActivity {
            cpu: 0.4,
            mem: 0.9,
            throughput: 1.0,
        };
        let bc = m.power(FreqSetting::Mid2000, DeterminismMode::Performance, compute, &parts, &lot);
        let bm = m.power(FreqSetting::Mid2000, DeterminismMode::Performance, memory, &parts, &lot);
        assert!(bc.sockets_w > bm.sockets_w);
        assert!(bc.dram_w < bm.dram_w);
    }

    #[test]
    fn throughput_scales_dram_and_nic_only() {
        let (m, parts, lot) = setup();
        let fast = NodeActivity {
            cpu: 0.7,
            mem: 0.5,
            throughput: 1.0,
        };
        let slow = NodeActivity {
            cpu: 0.7,
            mem: 0.5,
            throughput: 0.5,
        };
        let bf = m.power(FreqSetting::Mid2000, DeterminismMode::Performance, fast, &parts, &lot);
        let bs = m.power(FreqSetting::Mid2000, DeterminismMode::Performance, slow, &parts, &lot);
        assert_eq!(bf.sockets_w, bs.sockets_w);
        assert_eq!(bf.board_w, bs.board_w);
        assert!(bf.dram_w > bs.dram_w);
        assert!(bf.nic_w > bs.nic_w);
    }

    #[test]
    fn determinism_change_saves_node_power() {
        let (m, parts, lot) = setup();
        let act = NodeActivity::typical();
        let pd = m
            .power(FreqSetting::TurboBoost2250, DeterminismMode::Power, act, &parts, &lot)
            .total_w();
        let det = m
            .power(FreqSetting::TurboBoost2250, DeterminismMode::Performance, act, &parts, &lot)
            .total_w();
        let ratio = det / pd;
        // Table 3 band: node energy ratios 0.90-0.94 at ~constant runtime.
        assert!((0.88..=0.96).contains(&ratio), "node power ratio {ratio}");
    }
}
