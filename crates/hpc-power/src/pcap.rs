//! Facility-level power capping: choosing a frequency mix to meet a kW
//! target.
//!
//! §3's grid-citizen framing implies an operator question the paper leaves
//! implicit: *given a power cap from the grid operator, which frequency
//! setting (or mix of settings) meets it at the least throughput cost?*
//! The planner below answers it with the same node model the rest of the
//! reproduction uses: the three selectable P-states give three facility
//! operating levels, and fractional caps between them are met by splitting
//! the fleet (Slurm lets the operator set per-partition defaults, so a
//! split is deployable in practice).

use crate::node::{NodeActivity, NodePowerModel};
use crate::pstate::FreqSetting;
use crate::silicon::{SiliconLottery, SiliconSample};
use crate::socket::DeterminismMode;
use serde::{Deserialize, Serialize};

/// A fleet operating plan meeting a power cap.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CapPlan {
    /// Fraction of busy nodes at each setting, ordered as
    /// `[1.5 GHz, 2.0 GHz, 2.25 GHz+turbo]`; sums to 1.
    pub fractions: [f64; 3],
    /// Resulting busy-fleet power (kW).
    pub power_kw: f64,
    /// Resulting relative throughput (1.0 = everything at 2.25+turbo).
    pub throughput: f64,
    /// Whether the cap was achievable at all.
    pub feasible: bool,
}

/// Plans frequency mixes against power caps.
#[derive(Debug, Clone, Copy)]
pub struct PowerCapPlanner {
    /// Power per busy node at each setting (kW), `[1.5, 2.0, 2.25+turbo]`.
    pub node_kw: [f64; 3],
    /// Relative throughput per node at each setting.
    pub node_throughput: [f64; 3],
    /// Busy nodes the plan covers.
    pub busy_nodes: u32,
}

impl PowerCapPlanner {
    /// Build from the node model for a typical mixed workload (activity as
    /// in the facility baseline) under performance determinism.
    ///
    /// The throughput column uses the DVFS model with a fleet-typical
    /// compute-bound fraction β = 0.3.
    pub fn for_fleet(model: &NodePowerModel, lottery: &SiliconLottery, busy_nodes: u32) -> Self {
        let part = SiliconSample::typical(lottery);
        let parts = [part, part];
        let settings = [FreqSetting::Low1500, FreqSetting::Mid2000, FreqSetting::TurboBoost2250];
        let f_ref = model.socket_model().effective_freq(
            FreqSetting::TurboBoost2250,
            DeterminismMode::Performance,
            0.7,
            &part,
            lottery,
        );
        let beta = 0.3;
        let mut node_kw = [0.0; 3];
        let mut node_throughput = [0.0; 3];
        for (i, s) in settings.into_iter().enumerate() {
            let f = model.socket_model().effective_freq(s, DeterminismMode::Performance, 0.7, &part, lottery);
            let thr = 1.0 / (beta * f_ref / f + (1.0 - beta));
            let act = NodeActivity {
                cpu: 0.7,
                mem: 0.5,
                throughput: thr,
            };
            node_kw[i] = model.power(s, DeterminismMode::Performance, act, &parts, lottery).total_w() / 1000.0;
            node_throughput[i] = thr;
        }
        PowerCapPlanner {
            node_kw,
            node_throughput,
            busy_nodes,
        }
    }

    /// Fleet power with every node at setting `i` (kW).
    pub fn level_kw(&self, i: usize) -> f64 {
        self.node_kw[i] * self.busy_nodes as f64
    }

    /// Plan the throughput-optimal mix meeting `cap_kw`.
    ///
    /// Since power and throughput are both monotone in the setting, the
    /// optimal mix under a cap uses at most two *adjacent* settings: the
    /// planner walks down from full turbo, blending with the next setting
    /// until the cap is met.
    pub fn plan(&self, cap_kw: f64) -> CapPlan {
        let full = self.level_kw(2);
        if cap_kw >= full {
            return CapPlan {
                fractions: [0.0, 0.0, 1.0],
                power_kw: full,
                throughput: self.node_throughput[2],
                feasible: true,
            };
        }
        // Blend between adjacent levels (hi, lo) where the cap falls.
        for (hi, lo) in [(2usize, 1usize), (1, 0)] {
            let hi_kw = self.level_kw(hi);
            let lo_kw = self.level_kw(lo);
            if cap_kw <= hi_kw && cap_kw >= lo_kw {
                // x = fraction at `hi`.
                let x = (cap_kw - lo_kw) / (hi_kw - lo_kw);
                let mut fractions = [0.0; 3];
                fractions[hi] = x;
                fractions[lo] = 1.0 - x;
                let throughput = x * self.node_throughput[hi] + (1.0 - x) * self.node_throughput[lo];
                return CapPlan {
                    fractions,
                    power_kw: cap_kw,
                    throughput,
                    feasible: true,
                };
            }
        }
        // Below even the all-1.5 GHz floor: infeasible without idling nodes.
        CapPlan {
            fractions: [1.0, 0.0, 0.0],
            power_kw: self.level_kw(0),
            throughput: self.node_throughput[0],
            feasible: false,
        }
    }

    /// Sweep caps from the 1.5 GHz floor to full turbo in `steps` points.
    pub fn sweep(&self, steps: usize) -> Vec<CapPlan> {
        let lo = self.level_kw(0);
        let hi = self.level_kw(2);
        (0..=steps)
            .map(|i| {
                let cap = lo + (hi - lo) * i as f64 / steps as f64;
                self.plan(cap)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeSpec;

    fn planner() -> PowerCapPlanner {
        let model = NodePowerModel::new(NodeSpec::default());
        let lottery = SiliconLottery::default();
        PowerCapPlanner::for_fleet(&model, &lottery, 5400)
    }

    #[test]
    fn levels_are_ordered() {
        let p = planner();
        assert!(p.level_kw(0) < p.level_kw(1));
        assert!(p.level_kw(1) < p.level_kw(2));
        assert!(p.node_throughput[0] < p.node_throughput[1]);
        assert!(p.node_throughput[1] < p.node_throughput[2]);
        // The 2.0 GHz level reproduces the paper's ballpark: ~2.1 MW of
        // busy-node power vs ~2.6 MW at turbo.
        let ratio = p.level_kw(1) / p.level_kw(2);
        assert!((0.70..=0.85).contains(&ratio), "level ratio {ratio}");
    }

    #[test]
    fn uncapped_runs_full_turbo() {
        let p = planner();
        let plan = p.plan(p.level_kw(2) + 500.0);
        assert!(plan.feasible);
        assert_eq!(plan.fractions, [0.0, 0.0, 1.0]);
        assert!((plan.throughput - 1.0).abs() < 1e-9);
    }

    #[test]
    fn blended_cap_meets_target_exactly() {
        let p = planner();
        let cap = 0.5 * (p.level_kw(1) + p.level_kw(2));
        let plan = p.plan(cap);
        assert!(plan.feasible);
        assert!((plan.power_kw - cap).abs() < 1e-6);
        // Half-and-half between adjacent settings.
        assert!((plan.fractions[2] - 0.5).abs() < 0.01, "{:?}", plan.fractions);
        assert!(plan.fractions[0].abs() < 1e-12);
        assert!(plan.throughput < 1.0 && plan.throughput > p.node_throughput[1]);
    }

    #[test]
    fn deep_cap_uses_low_p_states() {
        let p = planner();
        let cap = 0.5 * (p.level_kw(0) + p.level_kw(1));
        let plan = p.plan(cap);
        assert!(plan.feasible);
        assert!(plan.fractions[2].abs() < 1e-12, "no turbo under a deep cap");
        assert!(plan.fractions[0] > 0.0 && plan.fractions[1] > 0.0);
    }

    #[test]
    fn impossible_cap_reported_infeasible() {
        let p = planner();
        let plan = p.plan(p.level_kw(0) * 0.8);
        assert!(!plan.feasible);
        assert_eq!(plan.fractions, [1.0, 0.0, 0.0]);
    }

    #[test]
    fn sweep_throughput_monotone_in_cap() {
        let p = planner();
        let plans = p.sweep(20);
        for w in plans.windows(2) {
            assert!(w[1].throughput >= w[0].throughput - 1e-12);
            assert!(w[1].power_kw >= w[0].power_kw - 1e-9);
        }
        assert!(plans.iter().all(|pl| pl.feasible));
    }

    #[test]
    fn fractions_always_sum_to_one() {
        let p = planner();
        for plan in p.sweep(50) {
            let sum: f64 = plan.fractions.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "{:?}", plan.fractions);
        }
    }

    #[test]
    fn the_papers_480kw_shed_is_a_feasible_plan() {
        // Figure 3's saving as a capping decision: shaving ~16 % off the
        // busy fleet is comfortably inside the planner's feasible range.
        let p = planner();
        let plan = p.plan(p.level_kw(2) * 0.84);
        assert!(plan.feasible);
        assert!(plan.throughput > 0.85, "throughput {}", plan.throughput);
    }
}
