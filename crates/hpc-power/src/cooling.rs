//! Cooling-plant model: from IT heat to facility overhead (PUE).
//!
//! §3 of the paper lists among the practical reasons for energy efficiency:
//! "Higher power draw by HPC systems lead to higher cooling requirements
//! increasing the overheads of running an HPC system." This module makes
//! that quantitative for an ARCHER2-class direct-liquid-cooled system:
//!
//! * CDU pumps move coolant against a fixed head — pump power follows the
//!   cube law in flow, and flow tracks heat load;
//! * heat is rejected through dry/evaporative coolers whenever the outdoor
//!   wet-bulb temperature allows (Edinburgh: almost always), with trim
//!   chillers picking up the rest of the load on warm afternoons;
//! * facility PUE = (IT + cooling + distribution losses) / IT.
//!
//! ARCHER2's published PUE is ~1.1 or better thanks to year-round free
//! cooling; the defaults below land there.

use serde::{Deserialize, Serialize};
use sim_core::time::SimTime;

/// Parameters of the cooling plant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoolingPlant {
    /// Design IT heat load (W) at which pumps run at full flow.
    pub design_load_w: f64,
    /// Pump power at design flow (W), all CDUs and primary loops together.
    pub pump_design_w: f64,
    /// Minimum pump turndown (fraction of design flow); loops never stop.
    pub min_flow_fraction: f64,
    /// Fan/evaporative-cooler power per watt of heat rejected under free
    /// cooling.
    pub free_cooling_w_per_w: f64,
    /// Chiller power per watt of heat when mechanical cooling must run
    /// (1/COP; COP ≈ 5 for water-cooled chillers).
    pub chiller_w_per_w: f64,
    /// Outdoor wet-bulb temperature (°C) above which trim chillers engage.
    pub free_cooling_limit_c: f64,
}

impl Default for CoolingPlant {
    fn default() -> Self {
        CoolingPlant {
            design_load_w: 4.0e6,
            pump_design_w: 96_000.0, // the 6 CDUs of Table 2 at design flow
            min_flow_fraction: 0.5,
            free_cooling_w_per_w: 0.01,
            chiller_w_per_w: 0.20,
            free_cooling_limit_c: 14.0,
        }
    }
}

/// Edinburgh-like outdoor wet-bulb temperature (°C): seasonal swing around
/// ~8 °C with a mild diurnal cycle. Deterministic — weather noise is far
/// below the power signals being studied.
pub fn wet_bulb_c(t: SimTime) -> f64 {
    let seasonal = 8.0 - 6.5 * (std::f64::consts::TAU * t.day_of_year_f64() / 365.25).cos();
    let diurnal = 2.0 * (std::f64::consts::TAU * (t.hour_of_day_f64() - 9.0) / 24.0).sin();
    seasonal + diurnal
}

/// Instantaneous cooling power breakdown (W).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoolingPower {
    /// Pump power.
    pub pumps_w: f64,
    /// Free-cooling fan/spray power.
    pub free_cooling_w: f64,
    /// Trim-chiller compressor power.
    pub chiller_w: f64,
}

impl CoolingPower {
    /// Total cooling power (W).
    pub fn total_w(&self) -> f64 {
        self.pumps_w + self.free_cooling_w + self.chiller_w
    }
}

impl CoolingPlant {
    /// Cooling power needed to reject `it_load_w` of heat at instant `t`.
    ///
    /// # Panics
    /// Panics on a negative heat load.
    pub fn cooling_power(&self, it_load_w: f64, t: SimTime) -> CoolingPower {
        assert!(it_load_w >= 0.0, "negative heat load");
        // Cube-law pumps with a turndown floor.
        let flow = (it_load_w / self.design_load_w).clamp(self.min_flow_fraction, 1.2);
        let pumps_w = self.pump_design_w * flow.powi(3);

        let wb = wet_bulb_c(t);
        let (free_fraction, chiller_fraction) = if wb <= self.free_cooling_limit_c {
            (1.0, 0.0)
        } else {
            // Above the limit the chillers trim a share growing with the
            // excess wet-bulb (fully mechanical 8 °C above the limit).
            let excess = ((wb - self.free_cooling_limit_c) / 8.0).min(1.0);
            (1.0 - excess, excess)
        };
        CoolingPower {
            pumps_w,
            free_cooling_w: it_load_w * free_fraction * self.free_cooling_w_per_w,
            chiller_w: it_load_w * chiller_fraction * self.chiller_w_per_w,
        }
    }

    /// Power usage effectiveness at an instant: `(IT + cooling) / IT`.
    ///
    /// # Panics
    /// Panics if the IT load is not positive.
    pub fn pue(&self, it_load_w: f64, t: SimTime) -> f64 {
        assert!(it_load_w > 0.0, "PUE undefined at zero IT load");
        (it_load_w + self.cooling_power(it_load_w, t).total_w()) / it_load_w
    }

    /// Annual-mean PUE for a constant IT load, sampled 3-hourly.
    pub fn annual_mean_pue(&self, it_load_w: f64, year: i32) -> f64 {
        let start = SimTime::from_ymd(year, 1, 1);
        let end = SimTime::from_ymd(year + 1, 1, 1);
        let mut t = start;
        let mut sum = 0.0;
        let mut n = 0u32;
        while t < end {
            sum += self.pue(it_load_w, t);
            n += 1;
            t += sim_core::time::SimDuration::from_hours(3);
        }
        sum / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::time::SimDuration;

    fn plant() -> CoolingPlant {
        CoolingPlant::default()
    }

    #[test]
    fn edinburgh_wet_bulb_is_plausible() {
        // Winter nights well below 5 °C, summer afternoons under ~18 °C.
        let winter_night = wet_bulb_c(SimTime::from_ymd_hms(2022, 1, 15, 3, 0, 0));
        let summer_afternoon = wet_bulb_c(SimTime::from_ymd_hms(2022, 7, 15, 15, 0, 0));
        assert!(winter_night < 4.0, "winter night wet bulb {winter_night}");
        assert!((12.0..=19.0).contains(&summer_afternoon), "summer {summer_afternoon}");
        assert!(summer_afternoon > winter_night + 8.0);
    }

    #[test]
    fn winter_is_pure_free_cooling() {
        let p = plant();
        let c = p.cooling_power(3.2e6, SimTime::from_ymd_hms(2022, 1, 10, 12, 0, 0));
        assert_eq!(c.chiller_w, 0.0, "no chillers in January");
        assert!(c.free_cooling_w > 0.0);
        assert!(c.pumps_w > 0.0);
    }

    #[test]
    fn warm_afternoons_engage_chillers() {
        let p = plant();
        let c = p.cooling_power(3.2e6, SimTime::from_ymd_hms(2022, 7, 20, 15, 0, 0));
        assert!(c.chiller_w > 0.0, "summer afternoon should trim with chillers");
    }

    #[test]
    fn pue_is_archer2_like() {
        // ARCHER2 reports PUE ≈ 1.1 or better.
        let p = plant();
        let pue = p.annual_mean_pue(3.2e6, 2022);
        assert!((1.02..=1.12).contains(&pue), "annual PUE {pue}");
    }

    #[test]
    fn pue_winter_better_than_summer() {
        let p = plant();
        let winter = p.pue(3.2e6, SimTime::from_ymd_hms(2022, 1, 10, 15, 0, 0));
        let summer = p.pue(3.2e6, SimTime::from_ymd_hms(2022, 7, 20, 15, 0, 0));
        assert!(winter < summer, "winter {winter} vs summer {summer}");
    }

    #[test]
    fn lower_it_load_reduces_cooling_power_but_not_linearly() {
        // The paper's §3 point in reverse: the 21 % IT saving also saves
        // cooling power — and the cube-law pumps make the saving in pump
        // power proportionally larger, until the turndown floor bites.
        let p = plant();
        let t = SimTime::from_ymd_hms(2022, 12, 10, 12, 0, 0);
        let before = p.cooling_power(3.22e6, t);
        let after = p.cooling_power(2.53e6, t);
        assert!(after.total_w() < before.total_w());
        let pump_ratio = after.pumps_w / before.pumps_w;
        let load_ratio: f64 = 2.53 / 3.22;
        assert!(pump_ratio < load_ratio, "cube law: {pump_ratio} < {load_ratio}");
    }

    #[test]
    fn pump_turndown_floor() {
        let p = plant();
        let t = SimTime::from_ymd(2022, 1, 1);
        let tiny = p.cooling_power(1.0, t);
        let floor = p.pump_design_w * p.min_flow_fraction.powi(3);
        assert!((tiny.pumps_w - floor).abs() < 1e-9, "pumps never stop");
    }

    #[test]
    fn cooling_overhead_consistent_with_table2_cdus() {
        // At ARCHER2's baseline load in mild weather, pump power should be
        // in the neighbourhood of Table 2's 96 kW CDU figure.
        let p = plant();
        let mut worst: f64 = 0.0;
        let mut t = SimTime::from_ymd(2022, 1, 1);
        let end = SimTime::from_ymd(2023, 1, 1);
        while t < end {
            worst = worst.max(p.cooling_power(3.22e6, t).pumps_w);
            t += SimDuration::from_days(7);
        }
        assert!((40_000.0..=100_000.0).contains(&worst), "peak pump power {worst} W");
    }

    #[test]
    #[should_panic(expected = "PUE undefined")]
    fn pue_requires_load() {
        let _ = plant().pue(0.0, SimTime::EPOCH);
    }
}
