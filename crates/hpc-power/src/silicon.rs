//! The silicon lottery: per-part voltage margin and leakage factors.
//!
//! AMD's determinism whitepaper (paper ref \[4\]) is explicit that parts of
//! the same SKU differ: a typical part reaches a given frequency at lower
//! voltage than the worst-case part the SKU is specified against, and parts
//! differ in leakage current. Both axes are sampled per-socket when a
//! facility is built, deterministically from the campaign seed, so the same
//! seed always builds the same 11,720-socket fleet.

use serde::{Deserialize, Serialize};
use sim_core::dist::{Distribution, LogNormal, Normal};
use sim_core::rng::Rng;

/// Quality factors for one physical part (socket).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SiliconSample {
    /// Required voltage relative to the worst-case part, in `(0, 1]`.
    ///
    /// Performance-determinism mode runs the part at this fraction of the
    /// worst-case voltage; power-determinism mode ignores it (uniform
    /// worst-case schedule).
    pub v_margin: f64,
    /// Leakage factor multiplying core static power; mean 1.0.
    pub leak: f64,
}

impl SiliconSample {
    /// The exact worst-case part: full voltage, high leakage.
    pub fn worst_case(lottery: &SiliconLottery) -> Self {
        SiliconSample {
            v_margin: 1.0,
            leak: lottery.leak_max,
        }
    }

    /// A deterministic "typical" part at the distribution means — used by
    /// closed-form experiments that don't want sampling noise.
    pub fn typical(lottery: &SiliconLottery) -> Self {
        SiliconSample {
            v_margin: lottery.v_margin_mean,
            leak: 1.0,
        }
    }

    /// Squared voltage margin — the factor by which this part's dynamic and
    /// static power shrink when run at its own minimum voltage.
    pub fn v_margin_sq(&self) -> f64 {
        self.v_margin * self.v_margin
    }
}

/// Distribution of part quality across a manufacturing run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SiliconLottery {
    /// Mean of the per-part voltage margin (typical ≈ 0.95: a typical part
    /// needs ~5 % less voltage than worst case).
    pub v_margin_mean: f64,
    /// Standard deviation of the voltage margin.
    pub v_margin_sd: f64,
    /// Sigma of the log-normal leakage factor (mean fixed at 1.0).
    pub leak_sigma: f64,
    /// Leakage of the worst part the SKU is specified against.
    pub leak_max: f64,
}

impl Default for SiliconLottery {
    fn default() -> Self {
        SiliconLottery {
            v_margin_mean: 0.95,
            v_margin_sd: 0.015,
            leak_sigma: 0.03,
            leak_max: 1.08,
        }
    }
}

impl SiliconLottery {
    /// Draw one part.
    ///
    /// The voltage margin is truncated to `(0.88, 1.0]` — no part is better
    /// than 12 % under worst-case voltage, none needs more than worst case
    /// (by definition of "worst case"). Leakage is truncated at `leak_max`.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> SiliconSample {
        let vdist = Normal::new(self.v_margin_mean, self.v_margin_sd);
        let ldist = LogNormal::from_mean(1.0, self.leak_sigma);
        let v_margin = vdist.sample(rng).clamp(0.88, 1.0);
        let leak = ldist.sample(rng).min(self.leak_max);
        SiliconSample { v_margin, leak }
    }

    /// Draw a whole fleet of parts.
    pub fn sample_fleet<R: Rng>(&self, n: usize, rng: &mut R) -> Vec<SiliconSample> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::rng::Xoshiro256StarStar;
    use sim_core::stats::OnlineStats;

    #[test]
    fn samples_respect_bounds() {
        let lottery = SiliconLottery::default();
        let mut rng = Xoshiro256StarStar::seeded(1);
        for _ in 0..10_000 {
            let s = lottery.sample(&mut rng);
            assert!(s.v_margin > 0.0 && s.v_margin <= 1.0, "v_margin {}", s.v_margin);
            assert!(s.leak > 0.0 && s.leak <= lottery.leak_max, "leak {}", s.leak);
        }
    }

    #[test]
    fn fleet_statistics_match_lottery() {
        let lottery = SiliconLottery::default();
        let mut rng = Xoshiro256StarStar::seeded(2);
        let fleet = lottery.sample_fleet(20_000, &mut rng);
        let mut v = OnlineStats::new();
        let mut l = OnlineStats::new();
        for s in &fleet {
            v.push(s.v_margin);
            l.push(s.leak);
        }
        assert!((v.mean() - 0.95).abs() < 0.005, "v mean {}", v.mean());
        // Leakage mean slightly below 1.0 due to upper truncation.
        assert!((l.mean() - 1.0).abs() < 0.02, "leak mean {}", l.mean());
    }

    #[test]
    fn worst_case_dominates_fleet() {
        let lottery = SiliconLottery::default();
        let worst = SiliconSample::worst_case(&lottery);
        let mut rng = Xoshiro256StarStar::seeded(3);
        for _ in 0..5_000 {
            let s = lottery.sample(&mut rng);
            assert!(s.v_margin <= worst.v_margin);
            assert!(s.leak <= worst.leak);
        }
    }

    #[test]
    fn typical_part_draws_less_power_proxy() {
        let lottery = SiliconLottery::default();
        let t = SiliconSample::typical(&lottery);
        let w = SiliconSample::worst_case(&lottery);
        assert!(t.v_margin_sq() < w.v_margin_sq());
        // ~0.95^2 ≈ 0.9: the headline ~10 % voltage-squared margin.
        assert!((t.v_margin_sq() - 0.9025).abs() < 1e-12);
    }

    #[test]
    fn sampling_is_deterministic() {
        let lottery = SiliconLottery::default();
        let mut a = Xoshiro256StarStar::seeded(42);
        let mut b = Xoshiro256StarStar::seeded(42);
        for _ in 0..100 {
            let sa = lottery.sample(&mut a);
            let sb = lottery.sample(&mut b);
            assert_eq!(sa.v_margin.to_bits(), sb.v_margin.to_bits());
            assert_eq!(sa.leak.to_bits(), sb.leak.to_bits());
        }
    }
}
