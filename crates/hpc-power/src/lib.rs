//! # hpc-power
//!
//! Power models for the ARCHER2 reproduction: CPU sockets with DVFS and AMD
//! determinism-mode semantics, compute nodes, Slingshot switches, coolant
//! distribution units, cabinet overheads and file systems.
//!
//! ## The socket model
//!
//! Each EPYC-7742-class socket is modelled as
//!
//! ```text
//! P_socket = P_io  +  v_part² · V(f)² · ( S_core · leak  +  a · K · f )
//! ```
//!
//! * `P_io` — uncore/IO-die power, frequency-invariant;
//! * `V(f)` — the voltage/frequency curve (piecewise linear over P-states);
//! * `v_part` — this part's required voltage relative to the worst-case part
//!   (the *silicon lottery*: a typical part needs ~5 % less voltage);
//! * `leak` — this part's leakage factor (second lottery axis);
//! * `a` — application activity factor (how hard the pipelines are driven);
//! * `K` — dynamic power coefficient (W per GHz at reference voltage).
//!
//! ## Determinism modes (AMD whitepaper semantics)
//!
//! * **Power determinism** (ARCHER2's original BIOS default): every part runs
//!   the *uniform worst-case voltage schedule* and boosts until it reaches
//!   the package power cap or the all-core boost ceiling. Power draw is
//!   uniform and maximal; per-part frequency varies slightly with leakage.
//! * **Performance determinism**: frequency is pinned to the guaranteed
//!   deterministic level (slightly below the power-determinism fleet mean),
//!   and each part runs at *its own* minimum stable voltage. A typical part
//!   therefore draws ~V²-worth less power — the mechanism behind the paper's
//!   7 % cabinet-level saving for ≤1 % performance impact (§4.1).
//!
//! The ~2.8 GHz effective all-core boost the paper reports in §4.2 is the
//! model's `f_allcore_ceiling`; capping the clock at 2.0 GHz removes both the
//! frequency *and* the voltage headroom, which is why the measured energy
//! savings (7–20 %) are larger than the naive frequency ratio suggests.

#![warn(missing_docs)]

pub mod cooling;
pub mod energy;
pub mod infra;
pub mod node;
pub mod pcap;
pub mod pstate;
pub mod silicon;
pub mod socket;
pub mod switch;

pub use cooling::{CoolingPlant, CoolingPower};
pub use energy::EnergyMeter;
pub use infra::{CabinetOverheadModel, CduModel, FilesystemModel};
pub use node::{NodeActivity, NodePowerBreakdown, NodePowerModel, NodeSpec};
pub use pcap::{CapPlan, PowerCapPlanner};
pub use pstate::{FreqSetting, PState, VoltageCurve};
pub use silicon::{SiliconLottery, SiliconSample};
pub use socket::{DeterminismMode, SocketPowerModel, SocketSpec};
pub use switch::{SwitchPowerModel, SwitchSpec};
