//! Slingshot switch power model.
//!
//! Paper §5: "The power draw of interconnect switches is steady at 200-250 W
//! irrespective of system load." Table 2 gives 768 switches at 0.10–0.25 kW
//! idle and ~0.25 kW loaded. The model is therefore a high constant with a
//! small load-dependent term — the SerDes lanes stay lit whether or not
//! traffic flows, which is precisely why the paper discounts the fabric as a
//! savings opportunity.

use serde::{Deserialize, Serialize};

/// Constants for one 64-port Slingshot switch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SwitchSpec {
    /// Power with all lanes lit but no traffic (W).
    pub base_w: f64,
    /// Additional power at 100 % traffic load (W) — small by design.
    pub traffic_w: f64,
    /// Port count (Slingshot: 64).
    pub ports: u32,
}

impl Default for SwitchSpec {
    fn default() -> Self {
        SwitchSpec {
            base_w: 220.0,
            traffic_w: 30.0,
            ports: 64,
        }
    }
}

/// Evaluates switch power.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SwitchPowerModel {
    spec: SwitchSpec,
}

impl SwitchPowerModel {
    /// Wrap a spec.
    pub fn new(spec: SwitchSpec) -> Self {
        SwitchPowerModel { spec }
    }

    /// The spec in use.
    pub fn spec(&self) -> &SwitchSpec {
        &self.spec
    }

    /// Power (W) at fractional traffic load `load` in `[0, 1]`.
    pub fn power_w(&self, load: f64) -> f64 {
        let load = load.clamp(0.0, 1.0);
        self.spec.base_w + self.spec.traffic_w * load
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_in_paper_band_at_all_loads() {
        // §5: steady at 200-250 W irrespective of load.
        let m = SwitchPowerModel::new(SwitchSpec::default());
        for i in 0..=10 {
            let p = m.power_w(i as f64 / 10.0);
            assert!((200.0..=250.0).contains(&p), "switch power {p} at load {i}");
        }
    }

    #[test]
    fn load_dependence_is_weak() {
        let m = SwitchPowerModel::new(SwitchSpec::default());
        let idle = m.power_w(0.0);
        let full = m.power_w(1.0);
        assert!((full - idle) / full < 0.15, "load swing should be under 15 %");
    }

    #[test]
    fn load_clamped() {
        let m = SwitchPowerModel::new(SwitchSpec::default());
        assert_eq!(m.power_w(-0.5), m.power_w(0.0));
        assert_eq!(m.power_w(1.5), m.power_w(1.0));
    }

    #[test]
    fn fleet_total_matches_table2() {
        // Table 2: 768 switches ≈ 200 kW loaded, 100-200 kW idle.
        let m = SwitchPowerModel::new(SwitchSpec::default());
        let loaded_kw = 768.0 * m.power_w(1.0) / 1000.0;
        let idle_kw = 768.0 * m.power_w(0.0) / 1000.0;
        assert!((180.0..=220.0).contains(&loaded_kw), "loaded fleet {loaded_kw} kW");
        assert!((100.0..=200.0).contains(&idle_kw), "idle fleet {idle_kw} kW");
    }
}
