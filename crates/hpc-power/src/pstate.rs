//! P-states, frequency settings and the voltage/frequency curve.
//!
//! ARCHER2's EPYC parts expose three selectable frequencies — 1.5 GHz,
//! 2.0 GHz and 2.25 GHz — where the 2.25 GHz setting also enables turbo
//! boost (§4.2 of the paper). The paper observes that under the boost
//! setting "most applications typically boost the CPU frequency to closer
//! to 2.8 GHz in actual operation".

use serde::{Deserialize, Serialize};

/// The user/operator-selectable CPU frequency setting.
///
/// Matches the knobs available on ARCHER2 via Slurm's `--cpu-freq` and the
/// module system: three fixed P-states, with turbo only available at the
/// highest setting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FreqSetting {
    /// Fixed 1.5 GHz (lowest P-state).
    Low1500,
    /// Fixed 2.0 GHz — the new ARCHER2 default after the §4.2 change.
    Mid2000,
    /// 2.25 GHz with turbo boost enabled — the original default.
    TurboBoost2250,
}

impl FreqSetting {
    /// The nominal set-point frequency in GHz (before any boost).
    pub fn nominal_ghz(self) -> f64 {
        match self {
            FreqSetting::Low1500 => 1.5,
            FreqSetting::Mid2000 => 2.0,
            FreqSetting::TurboBoost2250 => 2.25,
        }
    }

    /// Whether turbo boost is enabled at this setting.
    pub fn boost_enabled(self) -> bool {
        matches!(self, FreqSetting::TurboBoost2250)
    }

    /// All selectable settings, lowest first.
    pub const ALL: [FreqSetting; 3] = [
        FreqSetting::Low1500,
        FreqSetting::Mid2000,
        FreqSetting::TurboBoost2250,
    ];
}

impl std::fmt::Display for FreqSetting {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FreqSetting::Low1500 => write!(f, "1.5 GHz"),
            FreqSetting::Mid2000 => write!(f, "2.0 GHz"),
            FreqSetting::TurboBoost2250 => write!(f, "2.25 GHz+turbo"),
        }
    }
}

/// A single P-state: a frequency and the (worst-case-part) voltage needed to
/// sustain it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PState {
    /// Core clock in GHz.
    pub freq_ghz: f64,
    /// Core voltage in volts (worst-case part).
    pub voltage: f64,
}

/// Piecewise-linear voltage/frequency curve.
///
/// Calibrated so the curve spans the EPYC Rome operating range:
/// ~0.85 V at the 1.5 GHz floor rising to ~1.12 V at the ~2.95 GHz
/// single-point turbo ceiling. Only the slope matters for the power *ratios*
/// the paper reports; the absolute values anchor the watt-level numbers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VoltageCurve {
    /// Voltage at `f_lo`.
    pub v_lo: f64,
    /// Lowest supported frequency (GHz).
    pub f_lo: f64,
    /// Volts per GHz slope above `f_lo`.
    pub slope: f64,
}

impl VoltageCurve {
    /// The EPYC-Rome-like default curve used throughout the reproduction.
    pub fn epyc_rome() -> Self {
        VoltageCurve {
            v_lo: 0.85,
            f_lo: 1.5,
            slope: 0.1923, // reaches ~1.10 V at 2.8 GHz
        }
    }

    /// Voltage (V) required by the worst-case part at frequency `f` GHz.
    ///
    /// Clamps below `f_lo` (parts cannot undervolt below the floor).
    pub fn voltage(&self, f_ghz: f64) -> f64 {
        let f = f_ghz.max(self.f_lo);
        self.v_lo + self.slope * (f - self.f_lo)
    }

    /// Squared voltage — the quantity dynamic power scales with.
    pub fn voltage_sq(&self, f_ghz: f64) -> f64 {
        let v = self.voltage(f_ghz);
        v * v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn settings_have_expected_nominals() {
        assert_eq!(FreqSetting::Low1500.nominal_ghz(), 1.5);
        assert_eq!(FreqSetting::Mid2000.nominal_ghz(), 2.0);
        assert_eq!(FreqSetting::TurboBoost2250.nominal_ghz(), 2.25);
        assert!(FreqSetting::TurboBoost2250.boost_enabled());
        assert!(!FreqSetting::Mid2000.boost_enabled());
        assert!(!FreqSetting::Low1500.boost_enabled());
    }

    #[test]
    fn curve_monotone_increasing() {
        let c = VoltageCurve::epyc_rome();
        let mut prev = 0.0;
        let mut f = 1.5;
        while f <= 3.0 {
            let v = c.voltage(f);
            assert!(v > prev, "voltage must increase with frequency");
            prev = v;
            f += 0.05;
        }
    }

    #[test]
    fn curve_anchors() {
        let c = VoltageCurve::epyc_rome();
        assert!((c.voltage(1.5) - 0.85).abs() < 1e-12);
        let v28 = c.voltage(2.8);
        assert!((1.08..=1.12).contains(&v28), "V(2.8) = {v28}");
    }

    #[test]
    fn curve_clamps_below_floor() {
        let c = VoltageCurve::epyc_rome();
        assert_eq!(c.voltage(0.8), c.voltage(1.5));
    }

    #[test]
    fn voltage_sq_consistent() {
        let c = VoltageCurve::epyc_rome();
        let v = c.voltage(2.25);
        assert!((c.voltage_sq(2.25) - v * v).abs() < 1e-12);
    }

    #[test]
    fn display_strings() {
        assert_eq!(FreqSetting::TurboBoost2250.to_string(), "2.25 GHz+turbo");
        assert_eq!(FreqSetting::Mid2000.to_string(), "2.0 GHz");
        assert_eq!(FreqSetting::Low1500.to_string(), "1.5 GHz");
    }

    #[test]
    fn serde_roundtrip() {
        let s = FreqSetting::Mid2000;
        let json = serde_json::to_string(&s).unwrap();
        let back: FreqSetting = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
