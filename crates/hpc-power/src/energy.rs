//! Energy integration: turning power samples into kWh and emissions-ready
//! energy records.
//!
//! The meter integrates piecewise-constant power over simulated time — the
//! same left-rectangle rule a real facility meter applies between telemetry
//! samples.

use serde::{Deserialize, Serialize};
use sim_core::time::{SimDuration, SimTime};

/// Integrates a piecewise-constant power signal into cumulative energy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyMeter {
    last_update: Option<u64>, // SimTime as unix secs (serde-friendly)
    current_power_w: f64,
    energy_j: f64,
}

impl Default for EnergyMeter {
    fn default() -> Self {
        EnergyMeter::new()
    }
}

impl EnergyMeter {
    /// A fresh meter with no accumulated energy.
    pub fn new() -> Self {
        EnergyMeter {
            last_update: None,
            current_power_w: 0.0,
            energy_j: 0.0,
        }
    }

    /// Record that power changed to `power_w` at instant `now`.
    ///
    /// Energy for the elapsed interval is accumulated at the *previous*
    /// power level (left-rectangle integration of a piecewise-constant
    /// signal).
    ///
    /// # Panics
    /// Panics if `now` precedes the previous update (meters cannot run
    /// backwards) or `power_w` is negative/non-finite.
    pub fn set_power(&mut self, now: SimTime, power_w: f64) {
        assert!(power_w.is_finite() && power_w >= 0.0, "invalid power {power_w}");
        self.accumulate_until(now);
        self.current_power_w = power_w;
    }

    /// Advance the meter to `now` without changing the power level.
    ///
    /// # Panics
    /// Panics if `now` precedes the previous update.
    pub fn accumulate_until(&mut self, now: SimTime) {
        let now_s = now.as_unix();
        if let Some(prev) = self.last_update {
            assert!(now_s >= prev, "meter driven backwards: {now_s} < {prev}");
            let dt = (now_s - prev) as f64;
            self.energy_j += self.current_power_w * dt;
        }
        self.last_update = Some(now_s);
    }

    /// Convenience: accumulate a fixed power level over a duration without
    /// tracking absolute time (used by per-job energy accounting).
    pub fn add_energy(&mut self, power_w: f64, dt: SimDuration) {
        assert!(power_w.is_finite() && power_w >= 0.0, "invalid power {power_w}");
        self.energy_j += power_w * dt.as_secs() as f64;
    }

    /// Power level currently being integrated (W).
    pub fn current_power_w(&self) -> f64 {
        self.current_power_w
    }

    /// Total accumulated energy in joules.
    pub fn energy_j(&self) -> f64 {
        self.energy_j
    }

    /// Total accumulated energy in kilowatt-hours.
    pub fn energy_kwh(&self) -> f64 {
        self.energy_j / 3.6e6
    }

    /// Reset accumulated energy to zero, keeping the current power level and
    /// clock (used at measurement-window boundaries).
    pub fn reset_energy(&mut self) {
        self.energy_j = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_power_integrates_linearly() {
        let mut m = EnergyMeter::new();
        let t0 = SimTime::from_unix(0);
        m.set_power(t0, 1000.0); // 1 kW
        m.accumulate_until(t0 + SimDuration::from_hours(2));
        assert!((m.energy_kwh() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn left_rectangle_semantics() {
        let mut m = EnergyMeter::new();
        let t0 = SimTime::from_unix(0);
        m.set_power(t0, 100.0);
        // Power changes to 300 W after one hour: first hour billed at 100 W.
        m.set_power(t0 + SimDuration::from_hours(1), 300.0);
        assert!((m.energy_kwh() - 0.1).abs() < 1e-12);
        m.accumulate_until(t0 + SimDuration::from_hours(2));
        assert!((m.energy_kwh() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn zero_duration_accumulates_nothing() {
        let mut m = EnergyMeter::new();
        let t0 = SimTime::from_unix(50);
        m.set_power(t0, 500.0);
        m.set_power(t0, 700.0);
        assert_eq!(m.energy_j(), 0.0);
        assert_eq!(m.current_power_w(), 700.0);
    }

    #[test]
    fn add_energy_shortcut() {
        let mut m = EnergyMeter::new();
        m.add_energy(510.0, SimDuration::from_hours(10));
        // 510 W × 10 h = 5.1 kWh.
        assert!((m.energy_kwh() - 5.1).abs() < 1e-12);
    }

    #[test]
    fn reset_keeps_power_level() {
        let mut m = EnergyMeter::new();
        let t0 = SimTime::from_unix(0);
        m.set_power(t0, 250.0);
        m.accumulate_until(t0 + SimDuration::from_hours(4));
        assert!(m.energy_kwh() > 0.0);
        m.reset_energy();
        assert_eq!(m.energy_kwh(), 0.0);
        assert_eq!(m.current_power_w(), 250.0);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn backwards_time_panics() {
        let mut m = EnergyMeter::new();
        m.set_power(SimTime::from_unix(100), 1.0);
        m.accumulate_until(SimTime::from_unix(50));
    }

    #[test]
    #[should_panic(expected = "invalid power")]
    fn negative_power_panics() {
        let mut m = EnergyMeter::new();
        m.set_power(SimTime::from_unix(0), -5.0);
    }
}
