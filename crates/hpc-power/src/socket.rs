//! The socket power model: DVFS, turbo boost and AMD determinism modes.
//!
//! See the crate-level docs for the model equation and the determinism-mode
//! semantics. All constants are per-socket (one EPYC 7742-class 64-core
//! part); ARCHER2 nodes carry two.

use crate::pstate::{FreqSetting, VoltageCurve};
use crate::silicon::{SiliconLottery, SiliconSample};
use serde::{Deserialize, Serialize};

/// AMD BIOS determinism setting (paper §4.1, AMD whitepaper ref \[4\]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeterminismMode {
    /// Power determinism: uniform worst-case voltage schedule, every part
    /// boosts to the package power cap. ARCHER2's original configuration.
    Power,
    /// Performance determinism: frequency pinned to the guaranteed
    /// deterministic level, per-part minimum voltage. ARCHER2's
    /// configuration after May 2022.
    Performance,
}

impl std::fmt::Display for DeterminismMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeterminismMode::Power => write!(f, "power determinism"),
            DeterminismMode::Performance => write!(f, "performance determinism"),
        }
    }
}

/// Physical constants of one socket.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SocketSpec {
    /// Package power limit (W). EPYC 7742-class TDP.
    pub p_cap_w: f64,
    /// Uncore/IO-die power (W), frequency-invariant.
    pub p_io_w: f64,
    /// Core static power at worst-case voltage and leak = 1 (W).
    pub s_core_w: f64,
    /// Dynamic power coefficient at worst-case voltage (W per GHz at
    /// activity 1.0).
    pub k_dyn_w_per_ghz: f64,
    /// All-core turbo ceiling (GHz) — the paper's observed ~2.8 GHz lives
    /// just below this.
    pub f_allcore_ceiling_ghz: f64,
    /// Frequency the part idles at (lowest P-state).
    pub f_idle_ghz: f64,
    /// Residual activity of an idle-but-powered node (OS noise, monitoring).
    pub idle_activity: f64,
    /// Voltage/frequency curve.
    pub curve: VoltageCurve,
    /// Core count (64 for the 7742-class part).
    pub cores: u32,
}

impl Default for SocketSpec {
    fn default() -> Self {
        SocketSpec {
            p_cap_w: 225.0,
            p_io_w: 65.0,
            s_core_w: 30.0,
            k_dyn_w_per_ghz: 52.0,
            f_allcore_ceiling_ghz: 2.85,
            f_idle_ghz: 1.5,
            idle_activity: 0.06,
            curve: VoltageCurve::epyc_rome(),
            cores: 64,
        }
    }
}

/// Evaluates power and effective frequency for one socket.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SocketPowerModel {
    spec: SocketSpec,
}

impl SocketPowerModel {
    /// Wrap a spec.
    pub fn new(spec: SocketSpec) -> Self {
        SocketPowerModel { spec }
    }

    /// The spec in use.
    pub fn spec(&self) -> &SocketSpec {
        &self.spec
    }

    /// Uncapped power at frequency `f`, activity `a`, voltage factor
    /// `v_sq` (squared margin; 1.0 = worst-case schedule) and leakage `leak`.
    fn raw_power(&self, f_ghz: f64, activity: f64, v_sq: f64, leak: f64) -> f64 {
        let s = &self.spec;
        s.p_io_w
            + v_sq
                * s.curve.voltage_sq(f_ghz)
                * (s.s_core_w * leak + activity * s.k_dyn_w_per_ghz * f_ghz)
    }

    /// Highest frequency at which a part with leakage `leak` stays within
    /// the package power cap at activity `a`, under the worst-case voltage
    /// schedule (power determinism). Clamped to the all-core ceiling.
    pub fn boost_solve(&self, activity: f64, leak: f64) -> f64 {
        let s = &self.spec;
        let lo_f = s.f_idle_ghz;
        let hi_f = s.f_allcore_ceiling_ghz;
        if self.raw_power(hi_f, activity, 1.0, leak) <= s.p_cap_w {
            return hi_f; // ceiling-limited, not power-limited
        }
        // Bisection: raw_power is strictly increasing in f.
        let (mut lo, mut hi) = (lo_f, hi_f);
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if self.raw_power(mid, activity, 1.0, leak) <= s.p_cap_w {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }

    /// The deterministic frequency guaranteed across the fleet in
    /// performance-determinism mode for a workload of activity `a`: what the
    /// worst-case part can sustain within the cap.
    pub fn deterministic_freq(&self, activity: f64, lottery: &SiliconLottery) -> f64 {
        self.boost_solve(activity, lottery.leak_max)
    }

    /// Effective sustained core frequency (GHz) for one part.
    pub fn effective_freq(
        &self,
        setting: FreqSetting,
        mode: DeterminismMode,
        activity: f64,
        part: &SiliconSample,
        lottery: &SiliconLottery,
    ) -> f64 {
        if !setting.boost_enabled() {
            return setting.nominal_ghz();
        }
        match mode {
            DeterminismMode::Power => self.boost_solve(activity, part.leak),
            DeterminismMode::Performance => self.deterministic_freq(activity, lottery),
        }
    }

    /// Power draw (W) of one active part.
    ///
    /// # Panics
    /// Panics in debug builds if `activity` is outside `[0, 1.2]` (a little
    /// headroom above 1.0 is allowed for power-virus workloads).
    pub fn power_w(
        &self,
        setting: FreqSetting,
        mode: DeterminismMode,
        activity: f64,
        part: &SiliconSample,
        lottery: &SiliconLottery,
    ) -> f64 {
        debug_assert!((0.0..=1.2).contains(&activity), "activity {activity} out of range");
        let f = self.effective_freq(setting, mode, activity, part, lottery);
        let v_sq = match mode {
            // Uniform worst-case voltage schedule.
            DeterminismMode::Power => 1.0,
            // Each part at its own minimum stable voltage.
            DeterminismMode::Performance => part.v_margin_sq(),
        };
        self.raw_power(f, activity, v_sq, part.leak).min(self.spec.p_cap_w)
    }

    /// Power draw (W) of an idle part (cores parked at the idle P-state,
    /// residual OS activity only).
    pub fn idle_power_w(&self, mode: DeterminismMode, part: &SiliconSample) -> f64 {
        let s = &self.spec;
        let v_sq = match mode {
            DeterminismMode::Power => 1.0,
            DeterminismMode::Performance => part.v_margin_sq(),
        };
        self.raw_power(s.f_idle_ghz, s.idle_activity, v_sq, part.leak)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> SocketPowerModel {
        SocketPowerModel::new(SocketSpec::default())
    }

    fn lottery() -> SiliconLottery {
        SiliconLottery::default()
    }

    #[test]
    fn typical_app_boosts_near_2_8_ghz() {
        // The paper: "most applications typically boost the CPU frequency to
        // closer to 2.8 GHz in actual operation".
        let m = model();
        let part = SiliconSample::typical(&lottery());
        let f = m.effective_freq(
            FreqSetting::TurboBoost2250,
            DeterminismMode::Power,
            0.7,
            &part,
            &lottery(),
        );
        assert!((2.7..=2.85).contains(&f), "boost frequency {f}");
    }

    #[test]
    fn power_determinism_runs_at_or_near_cap_for_hpc_loads() {
        let m = model();
        let part = SiliconSample::typical(&lottery());
        let p = m.power_w(
            FreqSetting::TurboBoost2250,
            DeterminismMode::Power,
            0.7,
            &part,
            &lottery(),
        );
        assert!(p <= 225.0 + 1e-9);
        assert!(p > 215.0, "HPC load should be close to the cap, got {p}");
    }

    #[test]
    fn performance_determinism_saves_power_at_small_perf_cost() {
        // The §4.1 mechanism: ≤1 % performance impact, ~7-10 % power saving.
        let m = model();
        let lot = lottery();
        let part = SiliconSample::typical(&lot);
        let a = 0.7;
        let f_pd = m.effective_freq(FreqSetting::TurboBoost2250, DeterminismMode::Power, a, &part, &lot);
        let f_det = m.effective_freq(FreqSetting::TurboBoost2250, DeterminismMode::Performance, a, &part, &lot);
        let perf_ratio = f_det / f_pd;
        assert!((0.97..=1.0).contains(&perf_ratio), "perf ratio {perf_ratio}");

        let p_pd = m.power_w(FreqSetting::TurboBoost2250, DeterminismMode::Power, a, &part, &lot);
        let p_det = m.power_w(FreqSetting::TurboBoost2250, DeterminismMode::Performance, a, &part, &lot);
        let power_ratio = p_det / p_pd;
        assert!((0.85..=0.96).contains(&power_ratio), "power ratio {power_ratio}");
    }

    #[test]
    fn frequency_cap_cuts_power_superlinearly() {
        // Dropping 2.25+turbo (≈2.8 effective) to 2.0 GHz cuts frequency by
        // ~29 % but socket power by more (voltage drops too).
        let m = model();
        let lot = lottery();
        let part = SiliconSample::typical(&lot);
        let a = 0.7;
        let p_hi = m.power_w(FreqSetting::TurboBoost2250, DeterminismMode::Performance, a, &part, &lot);
        let p_lo = m.power_w(FreqSetting::Mid2000, DeterminismMode::Performance, a, &part, &lot);
        let f_hi = m.effective_freq(FreqSetting::TurboBoost2250, DeterminismMode::Performance, a, &part, &lot);
        let freq_ratio = 2.0 / f_hi;
        let power_ratio = p_lo / p_hi;
        assert!(power_ratio < freq_ratio, "power {power_ratio} should fall faster than frequency {freq_ratio}");
    }

    #[test]
    fn fixed_settings_ignore_boost() {
        let m = model();
        let lot = lottery();
        let part = SiliconSample::typical(&lot);
        for (setting, f) in [(FreqSetting::Low1500, 1.5), (FreqSetting::Mid2000, 2.0)] {
            for mode in [DeterminismMode::Power, DeterminismMode::Performance] {
                assert_eq!(m.effective_freq(setting, mode, 0.9, &part, &lot), f);
            }
        }
    }

    #[test]
    fn power_monotone_in_activity() {
        let m = model();
        let lot = lottery();
        let part = SiliconSample::typical(&lot);
        let mut prev = 0.0;
        for i in 0..=10 {
            let a = i as f64 / 10.0;
            let p = m.power_w(FreqSetting::Mid2000, DeterminismMode::Performance, a, &part, &lot);
            assert!(p >= prev, "power must be monotone in activity");
            prev = p;
        }
    }

    #[test]
    fn power_monotone_in_frequency_setting() {
        let m = model();
        let lot = lottery();
        let part = SiliconSample::typical(&lot);
        let p15 = m.power_w(FreqSetting::Low1500, DeterminismMode::Performance, 0.7, &part, &lot);
        let p20 = m.power_w(FreqSetting::Mid2000, DeterminismMode::Performance, 0.7, &part, &lot);
        let p22 = m.power_w(FreqSetting::TurboBoost2250, DeterminismMode::Performance, 0.7, &part, &lot);
        assert!(p15 < p20 && p20 < p22, "{p15} < {p20} < {p22}");
    }

    #[test]
    fn idle_power_is_large_fraction_of_loaded() {
        // Paper §5: idle nodes draw around 50 % of a fully loaded node. At
        // socket level the fraction is a little lower (DRAM/board make up
        // the difference); assert the socket is in a plausible 30-55 % band.
        let m = model();
        let lot = lottery();
        let part = SiliconSample::typical(&lot);
        let idle = m.idle_power_w(DeterminismMode::Power, &part);
        let loaded = m.power_w(FreqSetting::TurboBoost2250, DeterminismMode::Power, 0.7, &part, &lot);
        let frac = idle / loaded;
        assert!((0.30..=0.55).contains(&frac), "idle fraction {frac}");
    }

    #[test]
    fn boost_solve_monotone_decreasing_in_activity() {
        let m = model();
        let mut prev = f64::INFINITY;
        for i in 1..=10 {
            let a = i as f64 / 10.0;
            let f = m.boost_solve(a, 1.0);
            assert!(f <= prev + 1e-12, "boost freq must not increase with activity");
            prev = f;
        }
    }

    #[test]
    fn boost_solve_respects_cap_exactly() {
        let m = model();
        let f = m.boost_solve(0.9, 1.0);
        if f < m.spec().f_allcore_ceiling_ghz - 1e-9 {
            let p = m.raw_power(f, 0.9, 1.0, 1.0);
            assert!((p - m.spec().p_cap_w).abs() < 0.01, "power at solved freq: {p}");
        }
    }

    #[test]
    fn low_activity_hits_ceiling_not_cap() {
        let m = model();
        let f = m.boost_solve(0.1, 1.0);
        assert_eq!(f, m.spec().f_allcore_ceiling_ghz);
    }

    #[test]
    fn deterministic_freq_below_typical_boost() {
        let m = model();
        let lot = lottery();
        let f_det = m.deterministic_freq(0.7, &lot);
        let f_typ = m.boost_solve(0.7, 1.0);
        assert!(f_det <= f_typ, "worst-case part cannot outboost typical");
    }
}
