//! Facility infrastructure power: coolant distribution units, cabinet
//! overheads and file systems.
//!
//! Table 2 of the paper:
//! * 6 CDUs at ~16 kW each, load-independent (96 kW total);
//! * "other cabinet overheads" — rectification/VRM losses, blowers, cabinet
//!   controllers — 4–9 kW per cabinet across 23 cabinets (100–200 kW);
//! * 5 file systems at ~8 kW each (40 kW), load-independent at this
//!   granularity.

use serde::{Deserialize, Serialize};

/// Coolant distribution unit: pumps sized for the worst case, so power draw
/// is effectively constant (Table 2 lists identical idle and loaded values).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CduModel {
    /// Constant electrical draw per CDU (W).
    pub power_w: f64,
}

impl Default for CduModel {
    fn default() -> Self {
        CduModel { power_w: 16_000.0 }
    }
}

impl CduModel {
    /// Power (W); load-independent.
    pub fn power_w(&self) -> f64 {
        self.power_w
    }
}

/// Per-cabinet overhead: rectifier/VRM conversion losses plus housekeeping.
///
/// Conversion losses scale with the IT power flowing through the cabinet;
/// housekeeping is constant. Calibrated to Table 2's 4–9 kW per cabinet
/// (idle → loaded).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CabinetOverheadModel {
    /// Constant housekeeping power per cabinet (W): controllers, blowers.
    pub base_w: f64,
    /// Fractional conversion loss on cabinet IT power (rectifier + busbar).
    pub conversion_loss: f64,
}

impl Default for CabinetOverheadModel {
    fn default() -> Self {
        CabinetOverheadModel {
            base_w: 1_500.0,
            conversion_loss: 0.05,
        }
    }
}

impl CabinetOverheadModel {
    /// Overhead power (W) for a cabinet currently drawing `it_power_w` of IT
    /// load (nodes + switches).
    ///
    /// # Panics
    /// Panics in debug builds on negative IT power.
    pub fn power_w(&self, it_power_w: f64) -> f64 {
        debug_assert!(it_power_w >= 0.0, "negative IT power {it_power_w}");
        self.base_w + self.conversion_loss * it_power_w
    }
}

/// One parallel file system (Table 2 lists 5: NetApp, 4× ClusterStor).
///
/// Storage power is dominated by spinning media and enclosure overhead, so
/// it is modelled as constant — the paper explicitly discounts storage from
/// the efficiency work for this reason.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FilesystemModel {
    /// Constant draw (W).
    pub power_w: f64,
}

impl Default for FilesystemModel {
    fn default() -> Self {
        FilesystemModel { power_w: 8_000.0 }
    }
}

impl FilesystemModel {
    /// Power (W); load-independent.
    pub fn power_w(&self) -> f64 {
        self.power_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdu_fleet_matches_table2() {
        // 6 CDUs ≈ 96 kW.
        let total = 6.0 * CduModel::default().power_w() / 1000.0;
        assert!((total - 96.0).abs() < 1e-9, "CDU fleet {total} kW");
    }

    #[test]
    fn filesystem_fleet_matches_table2() {
        // 5 file systems ≈ 40 kW.
        let total = 5.0 * FilesystemModel::default().power_w() / 1000.0;
        assert!((total - 40.0).abs() < 1e-9, "filesystem fleet {total} kW");
    }

    #[test]
    fn cabinet_overhead_band_matches_table2() {
        // 4-9 kW per cabinet from idle to loaded. A cabinet carries ~255
        // nodes; idle IT ≈ 255×0.23 kW ≈ 59 kW, loaded ≈ 255×0.51 ≈ 130 kW
        // plus ~33 switches × 0.22 ≈ 7 kW.
        let m = CabinetOverheadModel::default();
        let idle = m.power_w(66_000.0) / 1000.0;
        let loaded = m.power_w(137_000.0) / 1000.0;
        assert!((4.0..=6.0).contains(&idle), "idle overhead {idle} kW");
        assert!((7.0..=9.5).contains(&loaded), "loaded overhead {loaded} kW");
    }

    #[test]
    fn overhead_monotone_in_it_power() {
        let m = CabinetOverheadModel::default();
        assert!(m.power_w(100_000.0) > m.power_w(50_000.0));
        assert_eq!(m.power_w(0.0), m.base_w);
    }
}
