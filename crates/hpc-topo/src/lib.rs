//! # hpc-topo
//!
//! Structural model of the ARCHER2 facility: component identities, the
//! dragonfly interconnect, and the cabinet/CDU/filesystem plumbing that
//! Table 1 and Table 2 of the paper enumerate.
//!
//! The power analysis in the paper is *component-count × per-component
//! power*; this crate supplies the counts and the containment relations
//! (node → cabinet → CDU loop, node → switch pair) that the telemetry and
//! scheduler crates aggregate over.

#![warn(missing_docs)]

pub mod dragonfly;
pub mod facility;
pub mod ids;

pub use dragonfly::{DragonflyConfig, DragonflyTopology};
pub use facility::{FacilityConfig, FacilityTopology, HardwareSummary};
pub use ids::{CabinetId, CduId, FilesystemId, GroupId, NodeId, SwitchId};
