//! Dragonfly interconnect topology (Slingshot).
//!
//! ARCHER2's Slingshot fabric (Table 1) has 768 64-port switches in a
//! dragonfly arrangement: switches within a group are fully connected
//! (all-to-all local links), groups are connected by global links. Each
//! compute node attaches via two NICs to two different switches in its
//! group for resilience.
//!
//! The topology's role in the power study is modest — switch power is
//! load-insensitive (§5) — but the structure matters for per-cabinet
//! aggregation (switches live in the compute cabinets whose power the
//! figures measure) and for the traffic model in the scheduler.

use crate::ids::{GroupId, NodeId, SwitchId};
use serde::{Deserialize, Serialize};

/// Dragonfly shape parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DragonflyConfig {
    /// Number of groups.
    pub groups: u32,
    /// Switches per group (all-to-all connected within the group).
    pub switches_per_group: u32,
    /// Ports per switch.
    pub ports_per_switch: u32,
    /// Node endpoints (NIC attachments) per switch.
    pub endpoints_per_switch: u32,
    /// NICs per node (ARCHER2: 2, attached to distinct switches).
    pub nics_per_node: u32,
}

impl DragonflyConfig {
    /// ARCHER2's Slingshot-10 fabric: 768 switches as 24 groups × 32,
    /// 64-port switches, 16 node-facing ports each, dual-NIC nodes.
    pub fn archer2() -> Self {
        DragonflyConfig {
            groups: 24,
            switches_per_group: 32,
            ports_per_switch: 64,
            endpoints_per_switch: 16,
            nics_per_node: 2,
        }
    }

    /// Total switch count.
    pub fn total_switches(&self) -> u32 {
        self.groups * self.switches_per_group
    }

    /// Maximum number of nodes the fabric can attach.
    pub fn max_nodes(&self) -> u32 {
        self.total_switches() * self.endpoints_per_switch / self.nics_per_node
    }

    /// Local (intra-group) links per group: all-to-all.
    pub fn local_links_per_group(&self) -> u32 {
        let s = self.switches_per_group;
        s * (s - 1) / 2
    }

    /// Ports used per switch for local links.
    pub fn local_ports_per_switch(&self) -> u32 {
        self.switches_per_group - 1
    }

    /// Ports left per switch for global links.
    pub fn global_ports_per_switch(&self) -> u32 {
        self.ports_per_switch - self.local_ports_per_switch() - self.endpoints_per_switch
    }
}

/// A built dragonfly with node attachments.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DragonflyTopology {
    config: DragonflyConfig,
    /// For each node, the two switches its NICs attach to.
    node_switches: Vec<[SwitchId; 2]>,
    /// Per-switch endpoint occupancy (for capacity checks).
    switch_endpoints: Vec<u32>,
}

impl DragonflyTopology {
    /// Build a fabric and attach `nodes` nodes.
    ///
    /// Nodes are attached in switch order, each to a consecutive pair of
    /// switches in the same group (NIC0 → switch `2k`, NIC1 → switch `2k+1`
    /// pattern), which mirrors how Slingshot blades cable to adjacent
    /// switches.
    ///
    /// # Panics
    /// Panics if `nodes` exceeds fabric capacity.
    pub fn build(config: DragonflyConfig, nodes: u32) -> Self {
        assert!(
            nodes <= config.max_nodes(),
            "{} nodes exceed fabric capacity {}",
            nodes,
            config.max_nodes()
        );
        assert!(
            config.switches_per_group >= 2,
            "dual-NIC attachment needs at least 2 switches per group"
        );
        let total_switches = config.total_switches() as usize;
        let mut node_switches = Vec::with_capacity(nodes as usize);
        let mut switch_endpoints = vec![0u32; total_switches];

        // Pairs of adjacent switches fill up with endpoints; each pair hosts
        // `endpoints_per_switch` nodes (one NIC on each switch).
        let nodes_per_pair = config.endpoints_per_switch;
        for n in 0..nodes {
            let pair = n / nodes_per_pair;
            let sw0 = (pair * 2) as usize;
            let sw1 = sw0 + 1;
            assert!(sw1 < total_switches, "ran out of switch pairs");
            node_switches.push([SwitchId(sw0 as u32), SwitchId(sw1 as u32)]);
            switch_endpoints[sw0] += 1;
            switch_endpoints[sw1] += 1;
        }
        DragonflyTopology {
            config,
            node_switches,
            switch_endpoints,
        }
    }

    /// The shape parameters.
    pub fn config(&self) -> &DragonflyConfig {
        &self.config
    }

    /// Number of attached nodes.
    pub fn node_count(&self) -> usize {
        self.node_switches.len()
    }

    /// The group a switch belongs to.
    pub fn group_of(&self, sw: SwitchId) -> GroupId {
        GroupId(sw.0 / self.config.switches_per_group)
    }

    /// The two switches a node attaches to.
    pub fn switches_of(&self, node: NodeId) -> [SwitchId; 2] {
        self.node_switches[node.index()]
    }

    /// Endpoints currently attached to a switch.
    pub fn endpoint_count(&self, sw: SwitchId) -> u32 {
        self.switch_endpoints[sw.index()]
    }

    /// Minimal hop count between two nodes under dragonfly minimal routing:
    /// 0 if same switch, 1 within a group, and up to 3 (local–global–local)
    /// across groups.
    pub fn min_hops(&self, a: NodeId, b: NodeId) -> u32 {
        let [a0, _] = self.switches_of(a);
        let [b0, _] = self.switches_of(b);
        if a0 == b0 {
            return 0;
        }
        if self.group_of(a0) == self.group_of(b0) {
            1
        } else {
            3
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn archer2_config_matches_table1() {
        let c = DragonflyConfig::archer2();
        assert_eq!(c.total_switches(), 768, "Table 1: 768 Slingshot switches");
        assert!(c.max_nodes() >= 5860, "must attach all 5,860 nodes");
    }

    #[test]
    fn port_budget_is_feasible() {
        let c = DragonflyConfig::archer2();
        let used = c.local_ports_per_switch() + c.endpoints_per_switch;
        assert!(used <= c.ports_per_switch, "port budget exceeded: {used}");
        assert!(c.global_ports_per_switch() > 0, "need ports for global links");
    }

    #[test]
    fn build_attaches_all_nodes_dual_homed() {
        let t = DragonflyTopology::build(DragonflyConfig::archer2(), 5860);
        assert_eq!(t.node_count(), 5860);
        for n in 0..5860u32 {
            let [s0, s1] = t.switches_of(NodeId(n));
            assert_ne!(s0, s1, "dual NICs must hit distinct switches");
            assert_eq!(t.group_of(s0), t.group_of(s1), "NIC pair stays in one group");
        }
    }

    #[test]
    fn endpoint_capacity_respected() {
        let c = DragonflyConfig::archer2();
        let t = DragonflyTopology::build(c, 5860);
        for s in 0..c.total_switches() {
            assert!(
                t.endpoint_count(SwitchId(s)) <= c.endpoints_per_switch,
                "switch {s} over-subscribed"
            );
        }
    }

    #[test]
    #[should_panic(expected = "exceed fabric capacity")]
    fn over_capacity_rejected() {
        let c = DragonflyConfig::archer2();
        let _ = DragonflyTopology::build(c, c.max_nodes() + 1);
    }

    #[test]
    fn hop_counts() {
        let t = DragonflyTopology::build(DragonflyConfig::archer2(), 5860);
        // Nodes 0 and 1 share switch pair (16 endpoints per switch).
        assert_eq!(t.min_hops(NodeId(0), NodeId(1)), 0);
        // Node 0 and a node on another pair in the same group.
        let same_group = NodeId(20 * 16); // pair 20 < 16 pairs/group? compute below
        let [s0, _] = t.switches_of(NodeId(0));
        let [sg, _] = t.switches_of(same_group);
        if t.group_of(s0) == t.group_of(sg) && s0 != sg {
            assert_eq!(t.min_hops(NodeId(0), same_group), 1);
        }
        // Far node in another group: 3 hops.
        let far = NodeId(5000);
        let [sf, _] = t.switches_of(far);
        assert_ne!(t.group_of(s0), t.group_of(sf));
        assert_eq!(t.min_hops(NodeId(0), far), 3);
    }

    #[test]
    fn groups_partition_switches() {
        let c = DragonflyConfig::archer2();
        let t = DragonflyTopology::build(c, 100);
        let mut counts = vec![0u32; c.groups as usize];
        for s in 0..c.total_switches() {
            counts[t.group_of(SwitchId(s)).index()] += 1;
        }
        assert!(counts.iter().all(|&n| n == c.switches_per_group));
    }
}
