//! The whole facility: nodes in cabinets, cabinets on CDU loops, switches
//! distributed through the compute cabinets, and file systems alongside.
//!
//! Reproduces Table 1's inventory exactly: 5,860 compute nodes (750,080
//! cores), 768 Slingshot switches, 23 compute cabinets, 6 CDUs and 5 file
//! systems.

use crate::dragonfly::{DragonflyConfig, DragonflyTopology};
use crate::ids::{CabinetId, CduId, FilesystemId, NodeId, SwitchId};
use serde::{Deserialize, Serialize};

/// Facility shape parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FacilityConfig {
    /// Compute node count.
    pub nodes: u32,
    /// Cores per node (2 × 64 on ARCHER2).
    pub cores_per_node: u32,
    /// Compute cabinet count.
    pub cabinets: u32,
    /// CDU count.
    pub cdus: u32,
    /// File system count.
    pub filesystems: u32,
    /// Fabric shape.
    pub fabric: DragonflyConfig,
}

impl FacilityConfig {
    /// ARCHER2 per Table 1.
    pub fn archer2() -> Self {
        FacilityConfig {
            nodes: 5860,
            cores_per_node: 128,
            cabinets: 23,
            cdus: 6,
            filesystems: 5,
            fabric: DragonflyConfig::archer2(),
        }
    }

    /// Total core count (Table 1: 750,080).
    pub fn total_cores(&self) -> u64 {
        self.nodes as u64 * self.cores_per_node as u64
    }
}

/// The built facility with containment maps.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FacilityTopology {
    config: FacilityConfig,
    fabric: DragonflyTopology,
    node_cabinet: Vec<CabinetId>,
    switch_cabinet: Vec<CabinetId>,
    cabinet_cdu: Vec<CduId>,
    cabinet_nodes: Vec<Vec<NodeId>>,
    cabinet_switches: Vec<Vec<SwitchId>>,
}

impl FacilityTopology {
    /// Build the facility from a config.
    ///
    /// Nodes and switches are distributed round-robin-by-block over the
    /// cabinets (cabinet 0 gets the first `ceil(n/23)` nodes, …), and
    /// cabinets over CDU loops. This mirrors the physical reality that a
    /// HPE Cray EX cabinet houses a contiguous block of blades plus its
    /// share of the fabric.
    ///
    /// # Panics
    /// Panics if any count is zero.
    pub fn build(config: FacilityConfig) -> Self {
        assert!(config.nodes > 0 && config.cabinets > 0 && config.cdus > 0, "empty facility");
        let fabric = DragonflyTopology::build(config.fabric, config.nodes);

        let per_cab_nodes = config.nodes.div_ceil(config.cabinets);
        let node_cabinet: Vec<CabinetId> = (0..config.nodes)
            .map(|n| CabinetId((n / per_cab_nodes).min(config.cabinets - 1)))
            .collect();

        let total_switches = config.fabric.total_switches();
        let per_cab_switches = total_switches.div_ceil(config.cabinets);
        let switch_cabinet: Vec<CabinetId> = (0..total_switches)
            .map(|s| CabinetId((s / per_cab_switches).min(config.cabinets - 1)))
            .collect();

        let per_cdu = config.cabinets.div_ceil(config.cdus);
        let cabinet_cdu: Vec<CduId> = (0..config.cabinets)
            .map(|c| CduId((c / per_cdu).min(config.cdus - 1)))
            .collect();

        let mut cabinet_nodes = vec![Vec::new(); config.cabinets as usize];
        for (n, cab) in node_cabinet.iter().enumerate() {
            cabinet_nodes[cab.index()].push(NodeId(n as u32));
        }
        let mut cabinet_switches = vec![Vec::new(); config.cabinets as usize];
        for (s, cab) in switch_cabinet.iter().enumerate() {
            cabinet_switches[cab.index()].push(SwitchId(s as u32));
        }

        FacilityTopology {
            config,
            fabric,
            node_cabinet,
            switch_cabinet,
            cabinet_cdu,
            cabinet_nodes,
            cabinet_switches,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &FacilityConfig {
        &self.config
    }

    /// The interconnect fabric.
    pub fn fabric(&self) -> &DragonflyTopology {
        &self.fabric
    }

    /// Cabinet housing a node.
    pub fn cabinet_of_node(&self, node: NodeId) -> CabinetId {
        self.node_cabinet[node.index()]
    }

    /// Cabinet housing a switch.
    pub fn cabinet_of_switch(&self, sw: SwitchId) -> CabinetId {
        self.switch_cabinet[sw.index()]
    }

    /// CDU loop cooling a cabinet.
    pub fn cdu_of_cabinet(&self, cab: CabinetId) -> CduId {
        self.cabinet_cdu[cab.index()]
    }

    /// Nodes in a cabinet.
    pub fn nodes_in_cabinet(&self, cab: CabinetId) -> &[NodeId] {
        &self.cabinet_nodes[cab.index()]
    }

    /// Switches in a cabinet.
    pub fn switches_in_cabinet(&self, cab: CabinetId) -> &[SwitchId] {
        &self.cabinet_switches[cab.index()]
    }

    /// Iterate all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.config.nodes).map(NodeId)
    }

    /// Iterate all switch ids.
    pub fn switches(&self) -> impl Iterator<Item = SwitchId> + '_ {
        (0..self.config.fabric.total_switches()).map(SwitchId)
    }

    /// Iterate all cabinet ids.
    pub fn cabinets(&self) -> impl Iterator<Item = CabinetId> + '_ {
        (0..self.config.cabinets).map(CabinetId)
    }

    /// Iterate all filesystem ids.
    pub fn filesystems(&self) -> impl Iterator<Item = FilesystemId> + '_ {
        (0..self.config.filesystems).map(FilesystemId)
    }

    /// The Table 1 summary view.
    pub fn hardware_summary(&self) -> HardwareSummary {
        HardwareSummary {
            compute_nodes: self.config.nodes,
            compute_cores: self.config.total_cores(),
            processors_per_node: 2,
            processor_model: "AMD EPYC 7742-class 2.25 GHz 64-core".to_string(),
            memory_per_node_gb: "256/512".to_string(),
            interconnect: "Slingshot 10, dragonfly topology".to_string(),
            slingshot_switches: self.config.fabric.total_switches(),
            nics_per_node: self.config.fabric.nics_per_node,
            cabinets: self.config.cabinets,
            cdus: self.config.cdus,
            filesystems: self.config.filesystems,
        }
    }
}

/// A rendered Table 1 (hardware summary).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HardwareSummary {
    /// Compute node count.
    pub compute_nodes: u32,
    /// Total core count.
    pub compute_cores: u64,
    /// Processors per node.
    pub processors_per_node: u32,
    /// Processor description.
    pub processor_model: String,
    /// Memory per node (GB, the two ARCHER2 variants).
    pub memory_per_node_gb: String,
    /// Interconnect description.
    pub interconnect: String,
    /// Switch count.
    pub slingshot_switches: u32,
    /// NICs per node.
    pub nics_per_node: u32,
    /// Compute cabinet count.
    pub cabinets: u32,
    /// CDU count.
    pub cdus: u32,
    /// File system count.
    pub filesystems: u32,
}

impl std::fmt::Display for HardwareSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "| {} compute nodes ({} compute cores) | 2x AMD EPYC 64-core processors |", self.compute_nodes, self.compute_cores)?;
        writeln!(f, "|   | {} GB DDR4 RAM |", self.memory_per_node_gb)?;
        writeln!(f, "|   | {} Slingshot interconnect interfaces |", self.nics_per_node)?;
        writeln!(f, "| Slingshot 10 interconnect | {} Slingshot switches |", self.slingshot_switches)?;
        writeln!(f, "|   | Dragonfly topology |")?;
        writeln!(f, "| Cabinets | {} compute cabinets, {} CDUs |", self.cabinets, self.cdus)?;
        write!(f, "| Storage | {} file systems |", self.filesystems)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn archer2() -> FacilityTopology {
        FacilityTopology::build(FacilityConfig::archer2())
    }

    #[test]
    fn table1_counts() {
        let t = archer2();
        let s = t.hardware_summary();
        assert_eq!(s.compute_nodes, 5860);
        assert_eq!(s.compute_cores, 750_080, "Table 1: 750,080 compute cores");
        assert_eq!(s.slingshot_switches, 768);
        assert_eq!(s.cabinets, 23);
        assert_eq!(s.cdus, 6);
        assert_eq!(s.filesystems, 5);
        assert_eq!(s.nics_per_node, 2);
    }

    #[test]
    fn every_node_has_exactly_one_cabinet() {
        let t = archer2();
        let mut total = 0usize;
        for cab in t.cabinets() {
            total += t.nodes_in_cabinet(cab).len();
        }
        assert_eq!(total, 5860);
        // Spot-check the inverse map.
        for cab in t.cabinets() {
            for &n in t.nodes_in_cabinet(cab) {
                assert_eq!(t.cabinet_of_node(n), cab);
            }
        }
    }

    #[test]
    fn every_switch_has_exactly_one_cabinet() {
        let t = archer2();
        let mut total = 0usize;
        for cab in t.cabinets() {
            total += t.switches_in_cabinet(cab).len();
        }
        assert_eq!(total, 768);
        for cab in t.cabinets() {
            for &s in t.switches_in_cabinet(cab) {
                assert_eq!(t.cabinet_of_switch(s), cab);
            }
        }
    }

    #[test]
    fn cabinet_occupancy_is_balanced() {
        let t = archer2();
        let counts: Vec<usize> = t.cabinets().map(|c| t.nodes_in_cabinet(c).len()).collect();
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        // 5860 / 23 = 254.8 — blocks of 255 with a short tail cabinet.
        assert!(max <= 256, "cabinet overfull: {max}");
        assert!(min >= 200, "cabinet underfull: {min}");
    }

    #[test]
    fn cdus_cover_all_cabinets() {
        let t = archer2();
        let mut loads = vec![0u32; 6];
        for cab in t.cabinets() {
            loads[t.cdu_of_cabinet(cab).index()] += 1;
        }
        assert_eq!(loads.iter().sum::<u32>(), 23);
        assert!(loads.iter().all(|&l| l >= 3), "every CDU serves at least 3 cabinets: {loads:?}");
    }

    #[test]
    fn iterators_cover_everything() {
        let t = archer2();
        assert_eq!(t.nodes().count(), 5860);
        assert_eq!(t.switches().count(), 768);
        assert_eq!(t.cabinets().count(), 23);
        assert_eq!(t.filesystems().count(), 5);
    }

    #[test]
    fn summary_renders() {
        let s = archer2().hardware_summary().to_string();
        assert!(s.contains("5860 compute nodes (750080 compute cores)"));
        assert!(s.contains("768 Slingshot switches"));
    }

    #[test]
    fn small_test_facility_builds() {
        // A scaled-down facility for fast scheduler tests.
        let cfg = FacilityConfig {
            nodes: 64,
            cores_per_node: 128,
            cabinets: 2,
            cdus: 1,
            filesystems: 1,
            fabric: DragonflyConfig {
                groups: 2,
                switches_per_group: 4,
                ports_per_switch: 64,
                endpoints_per_switch: 16,
                nics_per_node: 2,
            },
        };
        let t = FacilityTopology::build(cfg);
        assert_eq!(t.nodes().count(), 64);
        assert_eq!(t.switches().count(), 8);
    }
}
