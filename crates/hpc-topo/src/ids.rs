//! Typed identifiers for facility components.
//!
//! Newtypes over `u32` keep the containment maps compact (the facility has
//! 5,860 nodes and 768 switches) while preventing a node index from being
//! used where a switch index is expected.

use serde::{Deserialize, Serialize};

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// The raw index.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}{}", $prefix, self.0)
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                $name(v)
            }
        }
    };
}

id_type!(
    /// A compute node (0..5859 on ARCHER2).
    NodeId,
    "nid"
);
id_type!(
    /// A compute cabinet (0..22 on ARCHER2).
    CabinetId,
    "cab"
);
id_type!(
    /// A Slingshot switch (0..767 on ARCHER2).
    SwitchId,
    "sw"
);
id_type!(
    /// A dragonfly group.
    GroupId,
    "grp"
);
id_type!(
    /// A coolant distribution unit (0..5 on ARCHER2).
    CduId,
    "cdu"
);
id_type!(
    /// A file system (0..4 on ARCHER2).
    FilesystemId,
    "fs"
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn display_uses_site_prefixes() {
        assert_eq!(NodeId(1001).to_string(), "nid1001");
        assert_eq!(CabinetId(7).to_string(), "cab7");
        assert_eq!(SwitchId(42).to_string(), "sw42");
        assert_eq!(CduId(3).to_string(), "cdu3");
        assert_eq!(FilesystemId(0).to_string(), "fs0");
        assert_eq!(GroupId(12).to_string(), "grp12");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        let mut set = HashSet::new();
        set.insert(NodeId(1));
        set.insert(NodeId(2));
        set.insert(NodeId(1));
        assert_eq!(set.len(), 2);
        assert!(NodeId(1) < NodeId(2));
    }

    #[test]
    fn index_roundtrip() {
        let id = NodeId::from(5859u32);
        assert_eq!(id.index(), 5859);
    }
}
