//! # hpc-sched
//!
//! A Slurm-like batch scheduler: whole-node allocation, FCFS with EASY
//! (aggressive) backfill, per-job frequency directives and utilisation
//! accounting.
//!
//! The scheduler's role in the reproduction is to hold the facility at the
//! ARCHER2-like >90 % utilisation the paper reports for every measurement
//! window — facility power is (busy nodes × app power + idle nodes × idle
//! power), so the utilisation regime is what makes the cabinet-level means
//! meaningful. Conclusions in §5 hinge on it: "to achieve good energy
//! efficiency ... utilisation of a system must be as close to 100 % as
//! possible and ideally over 90 %".

#![warn(missing_docs)]

pub mod allocator;
pub mod partition;
pub mod scheduler;
pub mod util;

pub use allocator::NodeAllocator;
pub use partition::{AdmissionError, Partition, QosPolicy, QuotaTracker};
pub use scheduler::{
    BatchScheduler, Placement, RunningJob, SchedulerStats, DEFAULT_REQUEUE_BUDGET,
};
pub use util::UtilizationMeter;
