//! Partitions and QOS limits — the admission-control layer in front of the
//! batch scheduler.
//!
//! ARCHER2 exposes its 5,860 nodes through partitions with per-job and
//! aggregate limits (the `standard`, `short`, `long` and `highmem` QOS of
//! the real service). The paper's frequency policy was deployed through
//! exactly this layer (per-QOS defaults plus the module system), so the
//! reproduction carries it: a [`QosPolicy`] validates jobs at submission
//! and enforces aggregate node quotas at start time.

use crate::scheduler::BatchScheduler;
use hpc_workload::Job;
use serde::{Deserialize, Serialize};
use sim_core::time::SimDuration;
use std::collections::HashMap;

/// One partition/QOS definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Partition {
    /// Name, e.g. `"standard"`.
    pub name: String,
    /// Largest node count a single job may request.
    pub max_nodes_per_job: u32,
    /// Smallest node count (capability partitions set this above 1).
    pub min_nodes_per_job: u32,
    /// Longest requested walltime allowed.
    pub max_walltime: SimDuration,
    /// Cap on the partition's *aggregate* concurrently allocated nodes
    /// (`None` = whole machine).
    pub node_quota: Option<u32>,
}

/// Why a submission was rejected.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdmissionError {
    /// No partition with that name.
    UnknownPartition(String),
    /// Job requests more nodes than the partition allows per job.
    TooManyNodes {
        /// Requested.
        requested: u32,
        /// Allowed maximum.
        limit: u32,
    },
    /// Job requests fewer nodes than the partition minimum.
    TooFewNodes {
        /// Requested.
        requested: u32,
        /// Required minimum.
        minimum: u32,
    },
    /// Walltime exceeds the partition limit.
    WalltimeTooLong {
        /// Requested seconds.
        requested_s: u64,
        /// Limit seconds.
        limit_s: u64,
    },
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::UnknownPartition(p) => write!(f, "unknown partition {p:?}"),
            AdmissionError::TooManyNodes { requested, limit } => {
                write!(f, "requested {requested} nodes exceeds the per-job limit {limit}")
            }
            AdmissionError::TooFewNodes { requested, minimum } => {
                write!(f, "requested {requested} nodes below the partition minimum {minimum}")
            }
            AdmissionError::WalltimeTooLong { requested_s, limit_s } => {
                write!(f, "walltime {requested_s}s exceeds the limit {limit_s}s")
            }
        }
    }
}

impl std::error::Error for AdmissionError {}

/// The facility's partition table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QosPolicy {
    partitions: Vec<Partition>,
}

impl QosPolicy {
    /// Build from a partition list.
    ///
    /// # Panics
    /// Panics on duplicate partition names or an empty list.
    pub fn new(partitions: Vec<Partition>) -> Self {
        assert!(!partitions.is_empty(), "need at least one partition");
        let mut seen = std::collections::HashSet::new();
        for p in &partitions {
            assert!(seen.insert(p.name.clone()), "duplicate partition {:?}", p.name);
            assert!(p.min_nodes_per_job >= 1 && p.min_nodes_per_job <= p.max_nodes_per_job);
        }
        QosPolicy { partitions }
    }

    /// The ARCHER2-like partition table.
    pub fn archer2() -> Self {
        QosPolicy::new(vec![
            Partition {
                name: "standard".into(),
                max_nodes_per_job: 1024,
                min_nodes_per_job: 1,
                max_walltime: SimDuration::from_hours(24),
                node_quota: None,
            },
            Partition {
                name: "short".into(),
                max_nodes_per_job: 32,
                min_nodes_per_job: 1,
                max_walltime: SimDuration::from_mins(20),
                node_quota: Some(64),
            },
            Partition {
                name: "long".into(),
                max_nodes_per_job: 64,
                min_nodes_per_job: 1,
                max_walltime: SimDuration::from_hours(96),
                node_quota: Some(512),
            },
            Partition {
                name: "largescale".into(),
                max_nodes_per_job: 5860,
                min_nodes_per_job: 1025,
                max_walltime: SimDuration::from_hours(12),
                node_quota: None,
            },
        ])
    }

    /// Look up a partition.
    pub fn partition(&self, name: &str) -> Option<&Partition> {
        self.partitions.iter().find(|p| p.name == name)
    }

    /// All partitions.
    pub fn partitions(&self) -> &[Partition] {
        &self.partitions
    }

    /// Validate a job against a partition's per-job limits.
    pub fn validate(&self, job: &Job, partition: &str) -> Result<(), AdmissionError> {
        let p = self
            .partition(partition)
            .ok_or_else(|| AdmissionError::UnknownPartition(partition.to_string()))?;
        if job.nodes > p.max_nodes_per_job {
            return Err(AdmissionError::TooManyNodes {
                requested: job.nodes,
                limit: p.max_nodes_per_job,
            });
        }
        if job.nodes < p.min_nodes_per_job {
            return Err(AdmissionError::TooFewNodes {
                requested: job.nodes,
                minimum: p.min_nodes_per_job,
            });
        }
        if job.requested_walltime.as_secs() > p.max_walltime.as_secs() {
            return Err(AdmissionError::WalltimeTooLong {
                requested_s: job.requested_walltime.as_secs(),
                limit_s: p.max_walltime.as_secs(),
            });
        }
        Ok(())
    }

    /// The partition a generated job naturally lands in: the first one whose
    /// per-job limits admit it (in table order — `standard` first).
    pub fn route(&self, job: &Job) -> Option<&Partition> {
        self.partitions.iter().find(|p| self.validate(job, &p.name).is_ok())
    }
}

/// Tracks aggregate per-partition node usage next to a [`BatchScheduler`].
///
/// The scheduler itself stays partition-agnostic (ARCHER2's partitions
/// overlap on the same nodes); the tracker enforces quotas by telling the
/// caller whether starting a job would breach its partition's aggregate
/// cap.
#[derive(Debug, Clone, Default)]
pub struct QuotaTracker {
    in_use: HashMap<String, u32>,
}

impl QuotaTracker {
    /// Empty tracker.
    pub fn new() -> Self {
        QuotaTracker::default()
    }

    /// Nodes currently allocated under `partition`.
    pub fn in_use(&self, partition: &str) -> u32 {
        self.in_use.get(partition).copied().unwrap_or(0)
    }

    /// Would starting `nodes` more under `partition` fit its quota?
    pub fn admits(&self, policy: &QosPolicy, partition: &str, nodes: u32) -> bool {
        match policy.partition(partition).and_then(|p| p.node_quota) {
            Some(quota) => self.in_use(partition) + nodes <= quota,
            None => true,
        }
    }

    /// Record a start.
    pub fn start(&mut self, partition: &str, nodes: u32) {
        *self.in_use.entry(partition.to_string()).or_insert(0) += nodes;
    }

    /// Record a completion.
    ///
    /// # Panics
    /// Panics if more nodes are released than were started.
    pub fn finish(&mut self, partition: &str, nodes: u32) {
        let entry = self
            .in_use
            .get_mut(partition)
            .unwrap_or_else(|| panic!("no usage recorded for {partition:?}"));
        assert!(*entry >= nodes, "releasing more nodes than {partition:?} holds");
        *entry -= nodes;
    }

    /// Sanity check against the scheduler: total tracked usage never
    /// exceeds the machine's busy count.
    pub fn consistent_with(&self, scheduler: &BatchScheduler) -> bool {
        let tracked: u32 = self.in_use.values().sum();
        tracked <= scheduler.busy_nodes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpc_workload::{AppModel, JobId, ResearchArea};
    use sim_core::time::SimTime;

    fn mk_job(nodes: u32, walltime_h: u64) -> Job {
        Job::new(
            JobId(1),
            AppModel::generic(ResearchArea::Other),
            nodes,
            SimDuration::from_hours(walltime_h.max(1)),
            SimDuration::from_hours(walltime_h.max(1)),
            SimTime::EPOCH,
        )
    }

    #[test]
    fn archer2_partitions_exist() {
        let q = QosPolicy::archer2();
        for name in ["standard", "short", "long", "largescale"] {
            assert!(q.partition(name).is_some(), "missing {name}");
        }
        assert_eq!(q.partitions().len(), 4);
    }

    #[test]
    fn standard_admits_typical_jobs() {
        let q = QosPolicy::archer2();
        assert!(q.validate(&mk_job(4, 12), "standard").is_ok());
        assert!(q.validate(&mk_job(1024, 24), "standard").is_ok());
    }

    #[test]
    fn per_job_limits_enforced() {
        let q = QosPolicy::archer2();
        assert_eq!(
            q.validate(&mk_job(2000, 12), "standard"),
            Err(AdmissionError::TooManyNodes {
                requested: 2000,
                limit: 1024
            })
        );
        assert_eq!(
            q.validate(&mk_job(4, 48), "standard"),
            Err(AdmissionError::WalltimeTooLong {
                requested_s: 48 * 3600,
                limit_s: 24 * 3600
            })
        );
        assert_eq!(
            q.validate(&mk_job(4, 2), "largescale"),
            Err(AdmissionError::TooFewNodes {
                requested: 4,
                minimum: 1025
            })
        );
        assert!(matches!(
            q.validate(&mk_job(4, 2), "gpu"),
            Err(AdmissionError::UnknownPartition(_))
        ));
    }

    #[test]
    fn routing_prefers_standard_then_capability() {
        let q = QosPolicy::archer2();
        assert_eq!(q.route(&mk_job(16, 10)).unwrap().name, "standard");
        assert_eq!(q.route(&mk_job(2048, 10)).unwrap().name, "largescale");
        // 2,048 nodes for 20 h fits nothing (largescale caps at 12 h).
        assert!(q.route(&mk_job(2048, 20)).is_none());
    }

    #[test]
    fn quota_tracker_lifecycle() {
        let q = QosPolicy::archer2();
        let mut t = QuotaTracker::new();
        assert!(t.admits(&q, "short", 40));
        t.start("short", 40);
        assert_eq!(t.in_use("short"), 40);
        // 64-node quota: 40 + 32 would exceed it.
        assert!(!t.admits(&q, "short", 32));
        assert!(t.admits(&q, "short", 24));
        t.finish("short", 40);
        assert!(t.admits(&q, "short", 64));
        // Unlimited partitions always admit.
        assert!(t.admits(&q, "standard", 100_000));
    }

    #[test]
    fn quota_tracker_consistency_with_scheduler() {
        let q = QosPolicy::archer2();
        let mut sched = BatchScheduler::new(64);
        let mut t = QuotaTracker::new();
        let job = mk_job(16, 4);
        assert!(q.validate(&job, "standard").is_ok());
        sched.submit(job);
        let placed = sched.schedule(SimTime::EPOCH);
        t.start("standard", placed[0].nodes.len() as u32);
        assert!(t.consistent_with(&sched));
    }

    #[test]
    #[should_panic(expected = "releasing more nodes")]
    fn over_release_panics() {
        let mut t = QuotaTracker::new();
        t.start("standard", 4);
        t.finish("standard", 8);
    }

    #[test]
    #[should_panic(expected = "duplicate partition")]
    fn duplicate_names_rejected() {
        let p = Partition {
            name: "x".into(),
            max_nodes_per_job: 1,
            min_nodes_per_job: 1,
            max_walltime: SimDuration::from_hours(1),
            node_quota: None,
        };
        let _ = QosPolicy::new(vec![p.clone(), p]);
    }
}
