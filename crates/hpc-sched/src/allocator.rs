//! Whole-node allocation.
//!
//! ARCHER2 allocates whole nodes to jobs, and the power model has no
//! placement sensitivity (switch power is load-insensitive), so the
//! allocator just tracks the free set. Nodes are handed out lowest-id-first
//! to keep allocation deterministic for reproducible campaigns.

use hpc_topo::NodeId;
use std::collections::BTreeSet;

/// Tracks which nodes are free, busy or offline (failed/draining).
#[derive(Debug, Clone)]
pub struct NodeAllocator {
    free: BTreeSet<NodeId>,
    offline: BTreeSet<NodeId>,
    total: u32,
}

impl NodeAllocator {
    /// All `total` nodes start free.
    pub fn new(total: u32) -> Self {
        NodeAllocator {
            free: (0..total).map(NodeId).collect(),
            offline: BTreeSet::new(),
            total,
        }
    }

    /// Total node count (free + busy + offline).
    pub fn total(&self) -> u32 {
        self.total
    }

    /// Currently free node count.
    pub fn free_count(&self) -> u32 {
        self.free.len() as u32
    }

    /// Currently offline node count.
    pub fn offline_count(&self) -> u32 {
        self.offline.len() as u32
    }

    /// Currently busy node count.
    pub fn busy_count(&self) -> u32 {
        self.total - self.free_count() - self.offline_count()
    }

    /// Take a *free* node offline (failure or drain). Returns `false` if
    /// the node was not free (busy or already offline) — the caller must
    /// first reclaim it from its job.
    pub fn take_offline(&mut self, id: NodeId) -> bool {
        if self.free.remove(&id) {
            self.offline.insert(id);
            true
        } else {
            false
        }
    }

    /// Bring an offline node back into the free pool.
    ///
    /// # Panics
    /// Panics if the node was not offline.
    pub fn bring_online(&mut self, id: NodeId) {
        assert!(self.offline.remove(&id), "{id} was not offline");
        self.free.insert(id);
    }

    /// Bring an offline node back into the free pool; `false` (and no state
    /// change) if the node was not offline. The form fault-driven repair
    /// paths use, where overlapping fault domains can emit a repair for a
    /// node that was never taken down.
    pub fn try_bring_online(&mut self, id: NodeId) -> bool {
        if self.offline.remove(&id) {
            self.free.insert(id);
            true
        } else {
            false
        }
    }

    /// Is a specific node offline?
    pub fn is_offline(&self, id: NodeId) -> bool {
        self.offline.contains(&id)
    }

    /// Allocate `n` nodes (lowest ids first); `None` if not enough are free.
    pub fn allocate(&mut self, n: u32) -> Option<Vec<NodeId>> {
        if n > self.free_count() {
            return None;
        }
        let picked: Vec<NodeId> = self.free.iter().take(n as usize).copied().collect();
        for id in &picked {
            self.free.remove(id);
        }
        Some(picked)
    }

    /// Return nodes to the free pool.
    ///
    /// # Panics
    /// Panics if a node is already free (double release) or out of range.
    pub fn release(&mut self, nodes: &[NodeId]) {
        for &id in nodes {
            assert!(id.0 < self.total, "node {id} out of range");
            assert!(self.free.insert(id), "double release of {id}");
        }
    }

    /// Is a specific node free?
    pub fn is_free(&self, id: NodeId) -> bool {
        self.free.contains(&id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_and_release_roundtrip() {
        let mut a = NodeAllocator::new(10);
        assert_eq!(a.free_count(), 10);
        let got = a.allocate(4).unwrap();
        assert_eq!(got.len(), 4);
        assert_eq!(a.free_count(), 6);
        assert_eq!(a.busy_count(), 4);
        a.release(&got);
        assert_eq!(a.free_count(), 10);
    }

    #[test]
    fn allocation_is_lowest_id_first() {
        let mut a = NodeAllocator::new(10);
        let got = a.allocate(3).unwrap();
        assert_eq!(got, vec![NodeId(0), NodeId(1), NodeId(2)]);
        a.release(&[NodeId(1)]);
        let next = a.allocate(2).unwrap();
        assert_eq!(next, vec![NodeId(1), NodeId(3)]);
    }

    #[test]
    fn insufficient_nodes_returns_none_without_side_effects() {
        let mut a = NodeAllocator::new(5);
        let _ = a.allocate(3).unwrap();
        assert!(a.allocate(3).is_none());
        assert_eq!(a.free_count(), 2);
    }

    #[test]
    #[should_panic(expected = "double release")]
    fn double_release_panics() {
        let mut a = NodeAllocator::new(5);
        let got = a.allocate(1).unwrap();
        a.release(&got);
        a.release(&got);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_release_panics() {
        let mut a = NodeAllocator::new(5);
        a.allocate(5).unwrap();
        a.release(&[NodeId(99)]);
    }

    #[test]
    fn is_free_tracks_state() {
        let mut a = NodeAllocator::new(3);
        assert!(a.is_free(NodeId(0)));
        let got = a.allocate(1).unwrap();
        assert!(!a.is_free(got[0]));
    }

    #[test]
    fn offline_lifecycle() {
        let mut a = NodeAllocator::new(4);
        assert!(a.take_offline(NodeId(2)));
        assert_eq!(a.offline_count(), 1);
        assert_eq!(a.free_count(), 3);
        assert_eq!(a.busy_count(), 0);
        assert!(a.is_offline(NodeId(2)));
        // Offline nodes are never allocated.
        let got = a.allocate(3).unwrap();
        assert!(!got.contains(&NodeId(2)));
        assert!(a.allocate(1).is_none(), "nothing left");
        a.bring_online(NodeId(2));
        assert_eq!(a.allocate(1).unwrap(), vec![NodeId(2)]);
    }

    #[test]
    fn busy_node_cannot_go_offline_directly() {
        let mut a = NodeAllocator::new(2);
        let got = a.allocate(1).unwrap();
        assert!(!a.take_offline(got[0]), "busy node must be reclaimed first");
    }

    #[test]
    #[should_panic(expected = "was not offline")]
    fn bring_online_requires_offline() {
        let mut a = NodeAllocator::new(2);
        a.bring_online(NodeId(0));
    }

    #[test]
    fn zero_allocation_is_empty() {
        let mut a = NodeAllocator::new(3);
        assert_eq!(a.allocate(0).unwrap(), Vec::<NodeId>::new());
        assert_eq!(a.free_count(), 3);
    }
}
