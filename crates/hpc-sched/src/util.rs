//! Utilisation accounting: integral of busy nodes over time.

use sim_core::time::SimTime;

/// Integrates busy-node count over time to report utilisation.
#[derive(Debug, Clone)]
pub struct UtilizationMeter {
    total_nodes: u32,
    busy: u32,
    last_update: Option<u64>,
    busy_node_seconds: f64,
    elapsed_seconds: f64,
}

impl UtilizationMeter {
    /// A meter over a machine of `total_nodes` nodes, starting idle.
    pub fn new(total_nodes: u32) -> Self {
        UtilizationMeter {
            total_nodes,
            busy: 0,
            last_update: None,
            busy_node_seconds: 0.0,
            elapsed_seconds: 0.0,
        }
    }

    /// Record that the busy count changed to `busy` at `now`.
    ///
    /// # Panics
    /// Panics if time runs backwards or `busy` exceeds the machine size.
    pub fn set_busy(&mut self, now: SimTime, busy: u32) {
        assert!(busy <= self.total_nodes, "busy {busy} > machine {}", self.total_nodes);
        self.advance(now);
        self.busy = busy;
    }

    /// Advance the integral to `now` without changing the busy count.
    pub fn advance(&mut self, now: SimTime) {
        let now_s = now.as_unix();
        if let Some(prev) = self.last_update {
            assert!(now_s >= prev, "utilisation meter driven backwards");
            let dt = (now_s - prev) as f64;
            self.busy_node_seconds += self.busy as f64 * dt;
            self.elapsed_seconds += dt;
        }
        self.last_update = Some(now_s);
    }

    /// Current busy count.
    pub fn busy(&self) -> u32 {
        self.busy
    }

    /// Mean utilisation over the metered span, in `[0, 1]`.
    pub fn utilisation(&self) -> f64 {
        if self.elapsed_seconds == 0.0 {
            return 0.0;
        }
        self.busy_node_seconds / (self.total_nodes as f64 * self.elapsed_seconds)
    }

    /// Accumulated busy node-hours.
    pub fn busy_node_hours(&self) -> f64 {
        self.busy_node_seconds / 3600.0
    }

    /// Reset the integral (e.g. at a measurement-window boundary), keeping
    /// the current busy level and clock.
    pub fn reset_window(&mut self) {
        self.busy_node_seconds = 0.0;
        self.elapsed_seconds = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::time::SimDuration;

    #[test]
    fn full_machine_is_100_percent() {
        let mut m = UtilizationMeter::new(10);
        let t0 = SimTime::from_unix(0);
        m.set_busy(t0, 10);
        m.advance(t0 + SimDuration::from_hours(5));
        assert!((m.utilisation() - 1.0).abs() < 1e-12);
        assert!((m.busy_node_hours() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn half_machine_is_50_percent() {
        let mut m = UtilizationMeter::new(10);
        let t0 = SimTime::from_unix(0);
        m.set_busy(t0, 5);
        m.advance(t0 + SimDuration::from_hours(2));
        assert!((m.utilisation() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn stepped_profile_averages() {
        let mut m = UtilizationMeter::new(4);
        let t0 = SimTime::from_unix(0);
        m.set_busy(t0, 4);
        m.set_busy(t0 + SimDuration::from_hours(1), 0);
        m.advance(t0 + SimDuration::from_hours(2));
        assert!((m.utilisation() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_meter_reports_zero() {
        let m = UtilizationMeter::new(4);
        assert_eq!(m.utilisation(), 0.0);
    }

    #[test]
    fn window_reset() {
        let mut m = UtilizationMeter::new(2);
        let t0 = SimTime::from_unix(0);
        m.set_busy(t0, 2);
        m.advance(t0 + SimDuration::from_hours(1));
        m.reset_window();
        m.set_busy(t0 + SimDuration::from_hours(1), 1);
        m.advance(t0 + SimDuration::from_hours(2));
        assert!((m.utilisation() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "busy 5 > machine 4")]
    fn busy_over_capacity_panics() {
        let mut m = UtilizationMeter::new(4);
        m.set_busy(SimTime::EPOCH, 5);
    }
}
