//! FCFS + EASY-backfill batch scheduling.
//!
//! The policy is the one national services actually run: strict
//! first-come-first-served order for the queue head, with a reservation for
//! the head job at the *shadow time* (when enough nodes will have freed),
//! and backfill of later jobs that either finish before the shadow time or
//! fit in the nodes the reservation does not need.
//!
//! Expected job end times use the *requested walltime* (what the scheduler
//! can see), not the true runtime — exactly the information asymmetry a
//! real backfill scheduler lives with.

use crate::allocator::NodeAllocator;
use crate::util::UtilizationMeter;
use hpc_topo::NodeId;
use hpc_workload::{Job, JobId};
use sim_core::time::SimTime;
#[cfg(test)]
use sim_core::time::SimDuration;
use std::collections::{BTreeSet, HashMap, VecDeque};

/// A job placed on nodes by the scheduler this round.
#[derive(Debug, Clone)]
pub struct Placement {
    /// Which job.
    pub job_id: JobId,
    /// The nodes it received.
    pub nodes: Vec<NodeId>,
}

/// Book-keeping for a running job.
#[derive(Debug, Clone)]
pub struct RunningJob {
    /// The job itself.
    pub job: Job,
    /// Nodes it occupies.
    pub nodes: Vec<NodeId>,
    /// When it started.
    pub started_at: SimTime,
    /// When the scheduler expects it to end (start + requested walltime).
    pub expected_end: SimTime,
}

/// Aggregate scheduler statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SchedulerStats {
    /// Jobs accepted into the queue.
    pub submitted: u64,
    /// Jobs started so far.
    pub started: u64,
    /// Jobs completed so far.
    pub completed: u64,
    /// Jobs backfilled (started out of FCFS order).
    pub backfilled: u64,
    /// Kill events: a running job lost to a node failure. A job killed
    /// twice counts twice.
    pub killed: u64,
    /// Jobs dropped failed-terminal after exhausting the requeue budget.
    pub abandoned: u64,
    /// Sum of queue wait times (seconds) over started jobs.
    pub total_wait_s: u64,
}

impl SchedulerStats {
    /// Mean queue wait in hours.
    pub fn mean_wait_hours(&self) -> f64 {
        if self.started == 0 {
            return 0.0;
        }
        self.total_wait_s as f64 / self.started as f64 / 3600.0
    }

    /// Kill events plus terminal abandonments — the old single `failed`
    /// counter, kept as a derived view.
    pub fn failed(&self) -> u64 {
        self.killed + self.abandoned
    }
}

/// Default requeue budget: a job killed by faults is retried this many
/// times before it is dropped failed-terminal (Slurm's `--requeue` with a
/// bounded `BatchStartTimeout`-style retry policy).
pub const DEFAULT_REQUEUE_BUDGET: u32 = 3;

/// The batch scheduler.
#[derive(Debug, Clone)]
pub struct BatchScheduler {
    allocator: NodeAllocator,
    pending: VecDeque<Job>,
    running: HashMap<JobId, RunningJob>,
    /// Running jobs ordered by expected end, for O(k) shadow computation.
    ends: BTreeSet<(SimTime, JobId)>,
    /// Which running job occupies each busy node.
    node_job: HashMap<NodeId, JobId>,
    /// Fault requeues consumed per job (absent = never killed).
    requeues: HashMap<JobId, u32>,
    requeue_budget: u32,
    meter: UtilizationMeter,
    stats: SchedulerStats,
}

impl BatchScheduler {
    /// A scheduler over `total_nodes` nodes, empty queue, with the
    /// [`DEFAULT_REQUEUE_BUDGET`].
    pub fn new(total_nodes: u32) -> Self {
        BatchScheduler {
            allocator: NodeAllocator::new(total_nodes),
            pending: VecDeque::new(),
            running: HashMap::new(),
            ends: BTreeSet::new(),
            node_job: HashMap::new(),
            requeues: HashMap::new(),
            requeue_budget: DEFAULT_REQUEUE_BUDGET,
            meter: UtilizationMeter::new(total_nodes),
            stats: SchedulerStats::default(),
        }
    }

    /// Set how many times a fault-killed job is requeued before it is
    /// dropped failed-terminal. 0 = abandon on the first kill.
    pub fn set_requeue_budget(&mut self, budget: u32) {
        self.requeue_budget = budget;
    }

    /// The requeue budget in force.
    pub fn requeue_budget(&self) -> u32 {
        self.requeue_budget
    }

    /// Submit a job to the queue.
    ///
    /// # Panics
    /// Panics if the job requests more nodes than the machine has — a real
    /// scheduler rejects those at submission.
    pub fn submit(&mut self, job: Job) {
        assert!(
            job.nodes <= self.allocator.total(),
            "{} requests {} nodes on a {}-node machine",
            job.id,
            job.nodes,
            self.allocator.total()
        );
        self.stats.submitted += 1;
        self.pending.push_back(job);
    }

    /// Run one scheduling pass at `now`, starting every job FCFS/backfill
    /// allows. Returns the placements made.
    pub fn schedule(&mut self, now: SimTime) -> Vec<Placement> {
        let mut placements = Vec::new();

        loop {
            // Phase 1: start queue-head jobs while they fit (pure FCFS).
            let mut progressed = false;
            while let Some(head) = self.pending.front() {
                if head.nodes <= self.allocator.free_count() {
                    let job = self.pending.pop_front().expect("head exists");
                    placements.push(self.start(job, now, false));
                    progressed = true;
                } else {
                    break;
                }
            }

            // Phase 2: EASY backfill around the (now stuck) head.
            let Some(head) = self.pending.front() else {
                break;
            };
            let (shadow_time, spare_at_shadow) = self.shadow(now, head.nodes);
            let free_now = self.allocator.free_count();

            // Find the first later job that can backfill.
            let mut picked: Option<usize> = None;
            for (i, job) in self.pending.iter().enumerate().skip(1) {
                if job.nodes > free_now {
                    continue;
                }
                let ends_by = now + job.requested_walltime;
                if ends_by <= shadow_time || job.nodes <= spare_at_shadow {
                    picked = Some(i);
                    break;
                }
            }
            match picked {
                Some(i) => {
                    let job = self.pending.remove(i).expect("index valid");
                    placements.push(self.start(job, now, true));
                    progressed = true;
                }
                None => {
                    if !progressed {
                        break;
                    }
                }
            }
            if !progressed {
                break;
            }
        }
        placements
    }

    /// Start a job (helper).
    fn start(&mut self, mut job: Job, now: SimTime, backfilled: bool) -> Placement {
        let nodes = self
            .allocator
            .allocate(job.nodes)
            .expect("caller checked capacity");
        job.state = hpc_workload::JobState::Running;
        self.stats.started += 1;
        self.stats.total_wait_s += now.saturating_since(job.submitted_at).as_secs();
        if backfilled {
            self.stats.backfilled += 1;
        }
        let expected_end = now + job.requested_walltime;
        let id = job.id;
        for &n in &nodes {
            self.node_job.insert(n, id);
        }
        self.ends.insert((expected_end, id));
        self.running.insert(
            id,
            RunningJob {
                job,
                nodes: nodes.clone(),
                started_at: now,
                expected_end,
            },
        );
        self.meter.set_busy(now, self.allocator.busy_count());
        Placement { job_id: id, nodes }
    }

    /// Earliest time at which `needed` nodes will be free if nothing new
    /// starts, plus the spare free nodes at that time (for backfill).
    ///
    /// Walks the end-ordered index, so the cost is O(k) in the number of
    /// completions needed to free the head job — small on a busy machine.
    fn shadow(&self, now: SimTime, needed: u32) -> (SimTime, u32) {
        let mut free = self.allocator.free_count();
        if free >= needed {
            return (now, free - needed);
        }
        for &(t, id) in &self.ends {
            let nodes = self.running.get(&id).expect("ends index consistent").job.nodes;
            free += nodes;
            if free >= needed {
                return (t, free - needed);
            }
        }
        // Unreachable in practice: submit() rejects jobs larger than the
        // machine, so all running + free always covers `needed`.
        (SimTime::from_unix(u64::MAX / 2), 0)
    }

    /// Complete a running job at `now`, releasing its nodes.
    ///
    /// # Panics
    /// Panics if the job is not running.
    pub fn complete(&mut self, id: JobId, now: SimTime) -> RunningJob {
        let mut entry = self.running.remove(&id).unwrap_or_else(|| panic!("{id} is not running"));
        self.ends.remove(&(entry.expected_end, id));
        for n in &entry.nodes {
            self.node_job.remove(n);
        }
        self.allocator.release(&entry.nodes);
        entry.job.state = hpc_workload::JobState::Completed;
        self.stats.completed += 1;
        self.requeues.remove(&id);
        self.meter.set_busy(now, self.allocator.busy_count());
        entry
    }

    /// A hardware failure on `node` at `now`.
    ///
    /// * If the node was running a job, the job is killed. While the job
    ///   has requeue budget left it is **requeued at the head** of the
    ///   pending queue with its submission time preserved (Slurm's
    ///   `--requeue` behaviour); once the budget is exhausted it is dropped
    ///   failed-terminal and counted in `stats.abandoned`. The killed
    ///   job's id is returned either way.
    /// * Either way the node goes offline until [`Self::repair_node`].
    ///
    /// Failing a node that is **already offline** is an explicit no-op
    /// returning `None` — correlated fault domains (a cabinet PSU trip
    /// overlapping a CDU drain) routinely fail the same node twice.
    pub fn fail_node(&mut self, node: NodeId, now: SimTime) -> Option<JobId> {
        if self.allocator.is_offline(node) {
            return None;
        }
        let victim = self.node_job.get(&node).copied();
        if let Some(id) = victim {
            let mut entry = self.running.remove(&id).expect("node_job index consistent");
            self.ends.remove(&(entry.expected_end, id));
            for n in &entry.nodes {
                self.node_job.remove(n);
            }
            // Release the healthy nodes; the failed one goes offline.
            let healthy: Vec<NodeId> = entry.nodes.iter().copied().filter(|&n| n != node).collect();
            self.allocator.release(&healthy);
            self.allocator.release(&[node]);
            self.stats.killed += 1;
            let used = self.requeues.entry(id).or_insert(0);
            if *used < self.requeue_budget {
                *used += 1;
                entry.job.state = hpc_workload::JobState::Pending;
                self.pending.push_front(entry.job);
            } else {
                self.requeues.remove(&id);
                self.stats.abandoned += 1;
            }
        }
        assert!(self.allocator.take_offline(node), "node must be free by now");
        self.meter.set_busy(now, self.allocator.busy_count());
        victim
    }

    /// Bring a previously failed node back into service. Repairing a node
    /// that was never failed (or was already repaired by an overlapping
    /// fault domain's recovery) is an explicit no-op returning `false`.
    pub fn repair_node(&mut self, node: NodeId, now: SimTime) -> bool {
        if !self.allocator.try_bring_online(node) {
            return false;
        }
        self.meter.set_busy(now, self.allocator.busy_count());
        true
    }

    /// Nodes currently offline.
    pub fn offline_nodes(&self) -> u32 {
        self.allocator.offline_count()
    }

    /// Is a specific node offline?
    pub fn is_node_offline(&self, node: NodeId) -> bool {
        self.allocator.is_offline(node)
    }

    /// The job currently occupying `node`, if any.
    pub fn job_on_node(&self, node: NodeId) -> Option<JobId> {
        self.node_job.get(&node).copied()
    }

    /// Advance the utilisation meter without a state change.
    pub fn advance_clock(&mut self, now: SimTime) {
        self.meter.advance(now);
    }

    /// Nodes currently busy.
    pub fn busy_nodes(&self) -> u32 {
        self.allocator.busy_count()
    }

    /// Nodes currently free.
    pub fn free_nodes(&self) -> u32 {
        self.allocator.free_count()
    }

    /// Jobs waiting.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Jobs running.
    pub fn running_count(&self) -> usize {
        self.running.len()
    }

    /// Iterate running jobs.
    pub fn running_jobs(&self) -> impl Iterator<Item = &RunningJob> {
        self.running.values()
    }

    /// Look up one running job.
    pub fn running_job(&self, id: JobId) -> Option<&RunningJob> {
        self.running.get(&id)
    }

    /// Scheduler statistics so far.
    pub fn stats(&self) -> SchedulerStats {
        self.stats
    }

    /// The utilisation meter.
    pub fn utilisation_meter(&self) -> &UtilizationMeter {
        &self.meter
    }

    /// Reset the utilisation window (measurement boundary).
    pub fn reset_utilisation_window(&mut self) {
        self.meter.reset_window();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpc_workload::{AppModel, ResearchArea};

    fn mk_job(id: u64, nodes: u32, walltime_h: u64, submitted: SimTime) -> Job {
        Job::new(
            JobId(id),
            AppModel::generic(ResearchArea::Other),
            nodes,
            SimDuration::from_hours(walltime_h),
            SimDuration::from_hours(walltime_h),
            submitted,
        )
    }

    #[test]
    fn fcfs_starts_in_order() {
        let mut s = BatchScheduler::new(10);
        let t0 = SimTime::EPOCH;
        s.submit(mk_job(1, 4, 1, t0));
        s.submit(mk_job(2, 4, 1, t0));
        s.submit(mk_job(3, 4, 1, t0)); // doesn't fit
        let placed = s.schedule(t0);
        let ids: Vec<u64> = placed.iter().map(|p| p.job_id.0).collect();
        assert_eq!(ids, vec![1, 2]);
        assert_eq!(s.busy_nodes(), 8);
        assert_eq!(s.pending_count(), 1);
    }

    #[test]
    fn completion_frees_nodes_and_lets_head_run() {
        let mut s = BatchScheduler::new(10);
        let t0 = SimTime::EPOCH;
        s.submit(mk_job(1, 8, 1, t0));
        s.submit(mk_job(2, 8, 1, t0));
        s.schedule(t0);
        assert_eq!(s.running_count(), 1);
        let t1 = t0 + SimDuration::from_hours(1);
        let done = s.complete(JobId(1), t1);
        assert_eq!(done.job.id, JobId(1));
        assert_eq!(done.job.state, hpc_workload::JobState::Completed);
        let placed = s.schedule(t1);
        assert_eq!(placed.len(), 1);
        assert_eq!(placed[0].job_id, JobId(2));
    }

    #[test]
    fn short_job_backfills_ahead_of_stuck_head() {
        let mut s = BatchScheduler::new(10);
        let t0 = SimTime::EPOCH;
        // Long 8-node job occupies most of the machine until t0+10h.
        s.submit(mk_job(1, 8, 10, t0));
        s.schedule(t0);
        // Head wants 6 nodes (stuck until the 8-node job ends).
        s.submit(mk_job(2, 6, 5, t0));
        // A 2-node 1-hour job fits now and ends before the shadow time.
        s.submit(mk_job(3, 2, 1, t0));
        let placed = s.schedule(t0);
        let ids: Vec<u64> = placed.iter().map(|p| p.job_id.0).collect();
        assert_eq!(ids, vec![3], "short job should backfill");
        assert_eq!(s.stats().backfilled, 1);
    }

    #[test]
    fn backfill_never_delays_the_head() {
        let mut s = BatchScheduler::new(10);
        let t0 = SimTime::EPOCH;
        s.submit(mk_job(1, 8, 10, t0)); // running until +10h
        s.schedule(t0);
        s.submit(mk_job(2, 6, 5, t0)); // head: needs the 8-node job's nodes
        // 2-node job lasting 20h would end after the shadow time AND uses
        // nodes the head needs (spare at shadow = 10-8... free_now=2,
        // at shadow free=2+8=10, spare=10-6=4 >= 2) — it CAN backfill on
        // spare nodes.
        s.submit(mk_job(3, 2, 20, t0));
        let placed = s.schedule(t0);
        assert_eq!(placed.len(), 1, "2 spare nodes at shadow allow this backfill");

        // But a 5-node 20-hour job would collide with the head's reservation.
        s.submit(mk_job(4, 5, 20, t0));
        // free_now = 0 so nothing happens; complete job 3 to free 2.
        let t1 = t0 + SimDuration::from_hours(1);
        s.complete(JobId(3), t1);
        let placed = s.schedule(t1);
        assert!(placed.is_empty(), "5-node long job must not steal reserved nodes");
    }

    #[test]
    fn spare_capacity_backfill_allows_long_small_jobs() {
        let mut s = BatchScheduler::new(10);
        let t0 = SimTime::EPOCH;
        s.submit(mk_job(1, 6, 10, t0));
        s.schedule(t0);
        s.submit(mk_job(2, 6, 5, t0)); // head stuck: needs 6, only 4 free
        // Long 3-node job: at shadow, free = 4+6 = 10, spare = 10-6 = 4 ≥ 3.
        s.submit(mk_job(3, 3, 50, t0));
        let placed = s.schedule(t0);
        assert_eq!(placed.len(), 1);
        assert_eq!(placed[0].job_id, JobId(3));
    }

    #[test]
    fn utilisation_tracks_busy_fraction() {
        let mut s = BatchScheduler::new(4);
        let t0 = SimTime::EPOCH;
        s.submit(mk_job(1, 4, 2, t0));
        s.schedule(t0);
        let t1 = t0 + SimDuration::from_hours(2);
        s.complete(JobId(1), t1);
        s.advance_clock(t1 + SimDuration::from_hours(2));
        // 2 h at 100 %, 2 h at 0 % = 50 %.
        assert!((s.utilisation_meter().utilisation() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn wait_time_recorded() {
        let mut s = BatchScheduler::new(4);
        let t0 = SimTime::EPOCH;
        s.submit(mk_job(1, 4, 1, t0));
        s.schedule(t0);
        s.submit(mk_job(2, 4, 1, t0));
        let t1 = t0 + SimDuration::from_hours(1);
        s.complete(JobId(1), t1);
        s.schedule(t1);
        assert_eq!(s.stats().started, 2);
        assert!((s.stats().mean_wait_hours() - 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "requests 20 nodes")]
    fn oversized_job_rejected_at_submit() {
        let mut s = BatchScheduler::new(10);
        s.submit(mk_job(1, 20, 1, SimTime::EPOCH));
    }

    #[test]
    #[should_panic(expected = "is not running")]
    fn completing_unknown_job_panics() {
        let mut s = BatchScheduler::new(10);
        s.complete(JobId(9), SimTime::EPOCH);
    }

    #[test]
    fn node_failure_kills_and_requeues_the_job() {
        let mut s = BatchScheduler::new(10);
        let t0 = SimTime::EPOCH;
        s.submit(mk_job(1, 4, 2, t0));
        let placed = s.schedule(t0);
        let victim_node = placed[0].nodes[1];
        assert_eq!(s.job_on_node(victim_node), Some(JobId(1)));

        let t1 = t0 + SimDuration::from_hours(1);
        let killed = s.fail_node(victim_node, t1);
        assert_eq!(killed, Some(JobId(1)));
        assert_eq!(s.running_count(), 0);
        assert_eq!(s.pending_count(), 1, "job requeued");
        assert_eq!(s.offline_nodes(), 1);
        assert_eq!(s.free_nodes(), 9);
        assert_eq!(s.stats().killed, 1);
        assert_eq!(s.stats().abandoned, 0);

        // The requeued job restarts on the healthy nodes.
        let placed = s.schedule(t1);
        assert_eq!(placed.len(), 1);
        assert!(!placed[0].nodes.contains(&victim_node));

        // Repair returns the node to service.
        let t2 = t1 + SimDuration::from_hours(4);
        s.repair_node(victim_node, t2);
        assert_eq!(s.offline_nodes(), 0);
        assert_eq!(s.free_nodes(), 6);
    }

    #[test]
    fn idle_node_failure_just_goes_offline() {
        let mut s = BatchScheduler::new(4);
        let killed = s.fail_node(NodeId(3), SimTime::EPOCH);
        assert_eq!(killed, None);
        assert_eq!(s.offline_nodes(), 1);
        // Failing it again is a no-op.
        assert_eq!(s.fail_node(NodeId(3), SimTime::EPOCH), None);
        assert_eq!(s.offline_nodes(), 1);
    }

    #[test]
    fn double_fail_and_double_restore_are_noops() {
        // Overlapping fault domains deliver duplicate transitions; neither
        // direction may panic or double-count.
        let mut s = BatchScheduler::new(4);
        let t0 = SimTime::EPOCH;
        // Restore of a never-failed node: explicit no-op.
        assert!(!s.repair_node(NodeId(1), t0));
        assert_eq!(s.free_nodes(), 4);
        // Fail twice, restore twice.
        assert_eq!(s.fail_node(NodeId(1), t0), None);
        assert_eq!(s.fail_node(NodeId(1), t0), None);
        assert_eq!(s.offline_nodes(), 1);
        assert!(s.repair_node(NodeId(1), t0));
        assert!(!s.repair_node(NodeId(1), t0), "second restore is a no-op");
        assert_eq!(s.offline_nodes(), 0);
        assert_eq!(s.free_nodes(), 4);
    }

    #[test]
    fn requeue_budget_exhaustion_abandons_the_job() {
        let mut s = BatchScheduler::new(4);
        s.set_requeue_budget(2);
        let t0 = SimTime::EPOCH;
        s.submit(mk_job(1, 2, 2, t0));
        let mut now = t0;
        for round in 0..3u64 {
            let placed = s.schedule(now);
            assert_eq!(placed.len(), 1, "round {round}: job restarts");
            let node = placed[0].nodes[0];
            now += SimDuration::from_hours(1);
            assert_eq!(s.fail_node(node, now), Some(JobId(1)));
            s.repair_node(node, now);
        }
        // Two requeues consumed, third kill drops the job terminal.
        assert_eq!(s.stats().killed, 3);
        assert_eq!(s.stats().abandoned, 1);
        assert_eq!(s.pending_count(), 0, "job is gone, not requeued");
        assert!(s.schedule(now).is_empty());
        // Accounting closes: submitted = completed + abandoned + in-flight.
        let st = s.stats();
        assert_eq!(
            st.submitted,
            st.completed + st.abandoned + s.running_count() as u64 + s.pending_count() as u64
        );
    }

    #[test]
    fn zero_budget_abandons_on_first_kill() {
        let mut s = BatchScheduler::new(4);
        s.set_requeue_budget(0);
        let t0 = SimTime::EPOCH;
        s.submit(mk_job(1, 1, 1, t0));
        let placed = s.schedule(t0);
        s.fail_node(placed[0].nodes[0], t0);
        assert_eq!(s.stats().killed, 1);
        assert_eq!(s.stats().abandoned, 1);
        assert_eq!(s.pending_count(), 0);
    }

    #[test]
    fn completion_resets_nothing_but_clears_requeue_state() {
        // A job that survives a kill and then completes must not leak
        // requeue accounting into stats.
        let mut s = BatchScheduler::new(4);
        s.set_requeue_budget(1);
        let t0 = SimTime::EPOCH;
        s.submit(mk_job(1, 1, 1, t0));
        let placed = s.schedule(t0);
        s.fail_node(placed[0].nodes[0], t0);
        let placed = s.schedule(t0);
        let t1 = t0 + SimDuration::from_hours(1);
        s.complete(JobId(1), t1);
        let st = s.stats();
        assert_eq!((st.killed, st.abandoned, st.completed), (1, 0, 1));
        assert_eq!(st.failed(), 1);
        assert_eq!(st.submitted, 1);
        let _ = placed;
    }

    #[test]
    fn requeued_job_keeps_fcfs_priority() {
        let mut s = BatchScheduler::new(4);
        let t0 = SimTime::EPOCH;
        s.submit(mk_job(1, 4, 2, t0));
        let placed = s.schedule(t0);
        s.submit(mk_job(2, 4, 2, t0));
        // Job 1 dies; it must restart before job 2.
        let t1 = t0 + SimDuration::from_hours(1);
        s.fail_node(placed[0].nodes[0], t1);
        s.repair_node(placed[0].nodes[0], t1);
        let placed = s.schedule(t1);
        assert_eq!(placed[0].job_id, JobId(1), "requeued job goes first");
    }

    #[test]
    fn queue_drains_over_time_with_high_utilisation() {
        // A small end-to-end smoke test: 64-node machine, stream of jobs,
        // run to completion via expected ends; utilisation should be high.
        let mut s = BatchScheduler::new(64);
        let mut now = SimTime::EPOCH;
        let mut next_id = 0u64;
        // Keep 50 jobs in the queue; run 200 completions.
        let mut completions = 0;
        while completions < 200 {
            while s.pending_count() < 50 {
                next_id += 1;
                let nodes = 1 + (next_id * 7 % 16) as u32;
                let hours = 1 + (next_id * 3 % 5);
                s.submit(mk_job(next_id, nodes, hours, now));
            }
            s.schedule(now);
            // Complete the earliest-expected-end running job.
            let next = s
                .running_jobs()
                .min_by_key(|r| r.expected_end)
                .map(|r| (r.job.id, r.expected_end))
                .expect("something is running");
            now = next.1;
            s.complete(next.0, now);
            completions += 1;
        }
        let util = s.utilisation_meter().utilisation();
        assert!(util > 0.85, "utilisation {util} should be high with a deep queue");
    }
}
