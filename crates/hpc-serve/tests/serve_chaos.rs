//! Chaos-path correctness: every fault the deterministic proxy injects
//! must surface as a typed error or a successful retry — never a hang,
//! never silent corruption. The strongest claim is bit-identity: replies
//! that survive the default storm are byte-for-byte the replies a clean
//! connection gets from the same frozen store.
//!
//! All fault schedules and retry jitter come from seeded generators
//! (`hpc_tsdb::faults::DetRng`); a failing seed replays exactly.

use hpc_serve::{
    AdmissionConfig, ChaosPlan, ChaosProxy, Client, ClientConfig, ErrorKind, Request, ResilientClient,
    ResilientError, Response, RetryPolicy, Server, ServerConfig, TimeoutConfig, WireOp,
    PROTOCOL_VERSION,
};
use hpc_tsdb::{SeriesMeta, TsdbStore};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// A frozen store: 300 minutes of facility power plus two cabinets.
fn frozen_store() -> TsdbStore {
    let store = TsdbStore::default();
    let fac = store.register(SeriesMeta {
        name: "facility".into(),
        unit: "kW".into(),
        interval_hint: 60,
    });
    for i in 0..300i64 {
        store.append(fac, i * 60, 1500.0 + (i % 7) as f64);
    }
    for cab in 0..2 {
        let id = store.register(SeriesMeta {
            name: format!("cabinet.{cab}"),
            unit: "kW".into(),
            interval_hint: 60,
        });
        for i in 0..300i64 {
            store.append(id, i * 60, 55.0 + (cab as f64) + (i % 5) as f64);
        }
    }
    store
}

/// Server with deadlines short enough that chaos-abandoned half-open
/// sessions are evicted quickly instead of pooling for a minute.
fn server() -> (Server, SocketAddr) {
    let config = ServerConfig {
        timeouts: TimeoutConfig {
            handshake_deadline: Duration::from_millis(800),
            idle_deadline: Duration::from_millis(800),
            write_timeout: Duration::from_secs(2),
            poll_tick: Duration::from_millis(10),
            drain_deadline: Duration::from_secs(1),
        },
        ..ServerConfig::default()
    };
    let server = Server::start(frozen_store(), config).unwrap();
    let addr = server.local_addr();
    (server, addr)
}

/// The query mix both arms of the bit-identity test run. Everything here
/// is a pure function of the frozen store, so replies are deterministic.
fn query_mix() -> Vec<Request> {
    (0..24)
        .map(|n| {
            let from = (n % 4) * 1800;
            let to = from + 7200;
            match n % 4 {
                0 => Request::Aggregate { series: "facility".into(), from, to, op: WireOp::Mean },
                1 => Request::Windows {
                    series: "facility".into(),
                    from,
                    to,
                    step: 3_600,
                    op: WireOp::Max,
                },
                2 => Request::Group {
                    series: vec!["cabinet.0".into(), "cabinet.1".into()],
                    from,
                    to,
                },
                _ => Request::Gap { series: "cabinet.1".into(), from, to },
            }
        })
        .collect()
}

/// Client socket deadlines tuned for chaos: long enough to sit out any
/// injected stall, short enough that truncation silence fails fast.
fn chaos_client_config() -> ClientConfig {
    ClientConfig {
        connect_timeout: Some(Duration::from_secs(2)),
        read_timeout: Some(Duration::from_secs(1)),
        write_timeout: Some(Duration::from_secs(2)),
    }
}

#[test]
fn storm_replies_are_bit_identical_to_the_clean_path() {
    let (server, addr) = server();
    let mix = query_mix();

    // Clean arm: a direct, unfaulted connection.
    let mut clean = Client::connect(addr, "clean").unwrap();
    let clean_replies: Vec<String> = mix
        .iter()
        .map(|req| serde_json::to_string(&clean.request(req).unwrap()).unwrap())
        .collect();

    // Chaos arm: the same mix through the default storm.
    let mut proxy = ChaosProxy::start(addr, ChaosPlan::storm(0xA2C4_E057)).unwrap();
    let policy = RetryPolicy {
        max_attempts: 10,
        base_backoff: Duration::from_millis(10),
        max_backoff: Duration::from_millis(200),
        request_deadline: Duration::from_secs(20),
        seed: 0xD15EA5E,
    };
    let mut chaotic =
        ResilientClient::with_policy(proxy.local_addr(), "chaos", chaos_client_config(), policy);
    for (req, want) in mix.iter().zip(&clean_replies) {
        let reply = chaotic
            .request(req)
            .unwrap_or_else(|e| panic!("storm request must succeed within policy: {e}"));
        let got = serde_json::to_string(&reply).unwrap();
        assert_eq!(&got, want, "chaos-path reply must be bit-identical to clean path");
    }

    let stats = chaotic.stats();
    assert_eq!(stats.succeeded, mix.len() as u64, "every request must succeed");
    let injected = proxy.stats().faults_injected();
    assert!(injected > 0, "the storm must actually have injected faults");
    proxy.shutdown();
    drop(server);
}

#[test]
fn disconnect_storm_yields_typed_errors_or_retried_success_never_hangs() {
    let (server, addr) = server();
    let mut proxy = ChaosProxy::start(addr, ChaosPlan::disconnect_storm(7)).unwrap();
    let policy = RetryPolicy {
        max_attempts: 3,
        base_backoff: Duration::from_millis(10),
        max_backoff: Duration::from_millis(50),
        request_deadline: Duration::from_secs(4),
        seed: 11,
    };
    let mut client =
        ResilientClient::with_policy(proxy.local_addr(), "doomed", chaos_client_config(), policy);

    for req in query_mix().into_iter().take(8) {
        let t = Instant::now();
        let result = client.request(&req);
        let elapsed = t.elapsed();
        assert!(
            elapsed < policy.request_deadline + Duration::from_secs(2),
            "request must resolve within its deadline (+slack), took {elapsed:?}"
        );
        match result {
            Ok(_) => {} // a retry slipped through before the cut — fine
            Err(
                ResilientError::AttemptsExhausted { .. } | ResilientError::DeadlineExceeded { .. },
            ) => {}
            Err(other) => panic!("expected a retriable-exhaustion error, got {other}"),
        }
    }
    assert!(proxy.stats().disconnected > 0, "the storm must have cut connections");

    // The server itself must be unscathed: a clean direct session works.
    let mut probe = Client::connect(addr, "probe").unwrap();
    assert!(matches!(probe.request(&Request::Ping).unwrap(), Response::Pong));
    proxy.shutdown();
    drop(server);
}

#[test]
fn truncation_silence_is_broken_by_deadlines_not_hangs() {
    let (server, addr) = server();
    let mut proxy = ChaosProxy::start(addr, ChaosPlan::truncate_storm(13)).unwrap();
    let policy = RetryPolicy {
        max_attempts: 3,
        base_backoff: Duration::from_millis(10),
        max_backoff: Duration::from_millis(50),
        request_deadline: Duration::from_secs(5),
        seed: 13,
    };
    let config = ClientConfig {
        read_timeout: Some(Duration::from_millis(400)),
        ..chaos_client_config()
    };
    let mut client = ResilientClient::with_policy(proxy.local_addr(), "trunc", config, policy);

    let t = Instant::now();
    for req in query_mix().into_iter().take(6) {
        match client.request(&req) {
            Ok(_) => {}
            Err(
                ResilientError::AttemptsExhausted { .. } | ResilientError::DeadlineExceeded { .. },
            ) => {}
            Err(other) => panic!("expected typed exhaustion, got {other}"),
        }
    }
    assert!(
        t.elapsed() < Duration::from_secs(40),
        "six truncated requests must resolve in bounded time"
    );
    assert!(proxy.stats().truncated > 0);

    let mut probe = Client::connect(addr, "probe").unwrap();
    assert!(matches!(probe.request(&Request::Ping).unwrap(), Response::Pong));
    proxy.shutdown();
    drop(server);
}

#[test]
fn stalls_shorter_than_client_patience_are_transparent() {
    let (server, addr) = server();
    let mut proxy = ChaosProxy::start(addr, ChaosPlan::stall_storm(17, (50, 150))).unwrap();
    let mut client = ResilientClient::with_policy(
        proxy.local_addr(),
        "patient",
        chaos_client_config(),
        RetryPolicy { seed: 17, ..RetryPolicy::default() },
    );
    for req in query_mix().into_iter().take(6) {
        client.request(&req).expect("a stall inside the read timeout must be invisible");
    }
    assert_eq!(client.stats().succeeded, 6);
    assert!(proxy.stats().stalled > 0, "the storm must have stalled connections");
    proxy.shutdown();
    drop(server);
}

#[test]
fn overloaded_hint_is_honoured_and_the_retry_wins_the_freed_slot() {
    let store = frozen_store();
    let config = ServerConfig {
        admission: AdmissionConfig {
            max_sessions: 1,
            retry_after_ms: 20,
            ..AdmissionConfig::default()
        },
        ..ServerConfig::default()
    };
    let server = Server::start(store, config).unwrap();
    let addr = server.local_addr();

    // One raw client squats on the only session slot, then leaves.
    let holder = Client::connect(addr, "holder").unwrap();
    let release = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(250));
        drop(holder);
    });

    let policy = RetryPolicy {
        max_attempts: 12,
        base_backoff: Duration::from_millis(15),
        max_backoff: Duration::from_millis(120),
        request_deadline: Duration::from_secs(8),
        seed: 23,
    };
    let mut client =
        ResilientClient::with_policy(addr, "queued", ClientConfig::default(), policy);
    let reply = client
        .request(&Request::Ping)
        .expect("the retry after the hint must win the freed session slot");
    assert!(matches!(reply, Response::Pong));
    let stats = client.stats();
    assert!(stats.honoured_retry_after >= 1, "the Overloaded hint must have been honoured");
    assert!(stats.retries >= 1, "at least one retry must have been needed");
    release.join().unwrap();
    drop(server);
}

#[test]
fn drain_tells_idle_sessions_with_a_typed_frame_and_counts_them() {
    let (mut server, addr) = server();

    // An idle, handshaken session awaiting its Draining notice.
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    hpc_serve::protocol::send_message(
        &mut stream,
        &Request::Hello { version: PROTOCOL_VERSION, tenant: "idler".into() },
    )
    .unwrap();
    let payload = hpc_serve::protocol::read_frame(&mut stream).unwrap();
    let ack: Response = serde_json::from_str(std::str::from_utf8(&payload).unwrap()).unwrap();
    assert!(matches!(ack, Response::HelloAck { .. }));

    let stats = server.drain(Duration::from_secs(2));
    assert_eq!(stats.sessions_at_drain, 1);
    assert_eq!(stats.drained, 1, "the idle session must drain, not be force-closed");
    assert_eq!(stats.force_closed, 0);

    stream.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
    let payload = hpc_serve::protocol::read_frame(&mut stream).unwrap();
    let notice: Response = serde_json::from_str(std::str::from_utf8(&payload).unwrap()).unwrap();
    match notice {
        Response::Error { kind: ErrorKind::Draining, retry_after_ms, .. } => {
            assert!(retry_after_ms.is_some(), "Draining must carry a reconnect hint");
        }
        other => panic!("expected a typed Draining frame, got {other:?}"),
    }

    // A resilient client against the dead server fails typed and bounded.
    let policy = RetryPolicy {
        max_attempts: 2,
        base_backoff: Duration::from_millis(10),
        max_backoff: Duration::from_millis(20),
        request_deadline: Duration::from_secs(3),
        seed: 29,
    };
    let mut late = ResilientClient::with_policy(addr, "late", ClientConfig::default(), policy);
    let t = Instant::now();
    match late.request(&Request::Ping) {
        Err(
            ResilientError::AttemptsExhausted { .. } | ResilientError::DeadlineExceeded { .. },
        ) => {}
        Ok(r) => panic!("drained server must not answer, got {r:?}"),
        Err(other) => panic!("expected typed exhaustion, got {other}"),
    }
    assert!(t.elapsed() < Duration::from_secs(5), "failure must be bounded, not a hang");
}
