//! Satellite invariant of the serving tier: answers served concurrently
//! off a live store are **bit-identical** to a sequential replay.
//!
//! Shape: ingest a prefix of samples up to a frozen horizon `T`, replay
//! exactly that prefix into a second, private store, then start the server
//! on the live store and keep ingesting strictly *past* `T` while N client
//! sessions hammer queries whose windows end at or before `T`. Every
//! served reply must equal — as serialized bytes, so every `f64` bit
//! pattern included — the reply computed sequentially from the frozen
//! replay. This is the claim that makes the serving tier trustworthy:
//! concurrent readers under live ingest never see torn or shifted data
//! for settled history.

use hpc_serve::{Client, Request, Response, Server, ServerConfig, WireOp};
use hpc_tsdb::faults::DetRng;
use hpc_tsdb::{
    fanout_group, store_aggregate, store_gap_aggregate, store_windows, SeriesId, SeriesMeta,
    TsdbStore,
};
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const INTERVAL: i64 = 60;
const READERS: usize = 8;

fn meta(i: usize) -> SeriesMeta {
    SeriesMeta { name: format!("cab.{i}"), unit: "kW".into(), interval_hint: INTERVAL }
}

/// Deterministic sample value for (seed, series, index): mostly plausible
/// cabinet power, with NaN payloads salted in so bit-transport is tested
/// on the values JSON cannot carry.
fn value(rng: &mut DetRng, i: usize) -> f64 {
    if i % 97 == 13 {
        f64::from_bits(0xFFF8_0000_0000_0001)
    } else {
        140.0 + rng.below(100_000) as f64 * 0.001
    }
}

/// Ingest `count` samples per series starting at sample index `from_idx`.
fn ingest(store: &TsdbStore, ids: &[SeriesId], seed: u64, from_idx: usize, count: usize) {
    for (s, &id) in ids.iter().enumerate() {
        let mut rng = DetRng::new(seed ^ (s as u64).wrapping_mul(0x5851_F42D_4C95_7F2D));
        // Burn the prefix draws so a suffix ingest continues the stream.
        for i in 0..from_idx {
            let _ = value(&mut rng, i);
        }
        for i in from_idx..from_idx + count {
            store.append(id, i as i64 * INTERVAL, value(&mut rng, i));
        }
    }
}

/// The sequential oracle: evaluate `req` in-process against the frozen
/// store, producing exactly the reply the server is specified to send.
fn oracle(store: &TsdbStore, ids: &[SeriesId], req: &Request) -> Response {
    match req {
        Request::Aggregate { series, from, to, op } => {
            let id = store.lookup(series).expect("oracle series");
            let (value, plan) = store_aggregate(store, id, *from, *to, (*op).into())
                .expect("oracle aggregate");
            Response::Aggregate { value_bits: value.to_bits(), plan: format!("{plan:?}") }
        }
        Request::Windows { series, from, to, step, op } => {
            let id = store.lookup(series).expect("oracle series");
            let windows = store_windows(store, id, *from, *to, *step, (*op).into())
                .expect("oracle windows");
            Response::Windows {
                windows: windows
                    .into_iter()
                    .map(|w| hpc_serve::WireWindow {
                        start: w.start,
                        value_bits: w.value.to_bits(),
                        count: w.count,
                    })
                    .collect(),
            }
        }
        Request::Group { from, to, .. } => {
            let g = fanout_group(store, ids, *from, *to);
            Response::Group(hpc_serve::WireGroup {
                series: g.series as u64,
                missing: g.missing as u64,
                sum_of_means_bits: g.sum_of_means.to_bits(),
                mean_of_means_bits: g.mean_of_means().to_bits(),
                total_count: g.total.count,
            })
        }
        Request::Gap { series, from, to } => {
            let id = store.lookup(series).expect("oracle series");
            let v = store_gap_aggregate(store, id, *from, *to).expect("oracle gap");
            Response::Gap(hpc_serve::WireGap {
                count: v.agg.count,
                mean_bits: v.agg.mean().to_bits(),
                expected: v.expected,
                coverage_bits: v.coverage.to_bits(),
                quarantined: v.quarantined,
            })
        }
        other => panic!("oracle cannot evaluate {other:?}"),
    }
}

/// Build a deterministic mixed query workload, every window inside
/// `[0, t_frozen]` (aligned bounds, so rollup planning gets exercised too).
fn build_queries(seed: u64, n_series: usize, t_frozen: i64) -> Vec<Request> {
    let mut rng = DetRng::new(seed ^ 0xC0FF_EE00);
    let ops = [WireOp::Mean, WireOp::Min, WireOp::Max, WireOp::Sum, WireOp::Count, WireOp::P95];
    let steps = [INTERVAL, 300, 900, 3600];
    let mut queries = Vec::new();
    for q in 0..24usize {
        let series = format!("cab.{}", rng.below(n_series as u64));
        let op = ops[rng.below(ops.len() as u64) as usize];
        // Aligned and unaligned bounds both, never past the frozen horizon.
        let align = [1, 60, 3600][rng.below(3) as usize];
        let hi = (t_frozen / align).max(1);
        let a = rng.below(hi as u64 + 1) as i64 * align;
        let b = rng.below(hi as u64 + 1) as i64 * align;
        let (from, to) = if a <= b { (a, b) } else { (b, a) };
        queries.push(match q % 4 {
            0 => Request::Aggregate { series, from, to, op },
            1 => Request::Windows {
                series,
                from,
                to,
                step: steps[rng.below(steps.len() as u64) as usize],
                op,
            },
            2 => Request::Group {
                series: (0..n_series).map(|i| format!("cab.{i}")).collect(),
                from,
                to,
            },
            _ => Request::Gap { series, from, to },
        });
    }
    queries
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn concurrent_reads_match_sequential_frozen_replay(
        seed in 0u64..1_000_000,
        n_series in 2usize..5,
        prefix_len in 120usize..400,
    ) {
        let t_frozen = prefix_len as i64 * INTERVAL;

        // Live store: the prefix now, the suffix while being served.
        let live = TsdbStore::default();
        let live_ids: Vec<SeriesId> = (0..n_series).map(|i| live.register(meta(i))).collect();
        ingest(&live, &live_ids, seed, 0, prefix_len);

        // Frozen store: exactly the prefix, replayed sequentially.
        let frozen = TsdbStore::default();
        let frozen_ids: Vec<SeriesId> =
            (0..n_series).map(|i| frozen.register(meta(i))).collect();
        ingest(&frozen, &frozen_ids, seed, 0, prefix_len);

        let queries = build_queries(seed, n_series, t_frozen);
        let expected: Vec<String> = queries
            .iter()
            .map(|q| serde_json::to_string(&oracle(&frozen, &frozen_ids, q)).unwrap())
            .collect();

        let mut server = Server::start(live.clone(), ServerConfig::default()).unwrap();
        let addr = server.local_addr();

        // Sustained ingest strictly past the frozen horizon.
        let stop = Arc::new(AtomicBool::new(false));
        let writer = {
            let live = live.clone();
            let ids = live_ids.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut at = prefix_len;
                while !stop.load(Ordering::Acquire) && at < prefix_len + 40_000 {
                    ingest(&live, &ids, seed, at, 16);
                    at += 16;
                }
            })
        };

        // N concurrent sessions, each replaying the workload from a
        // different starting offset so the interleaving varies.
        let readers: Vec<_> = (0..READERS)
            .map(|r| {
                let queries = queries.clone();
                let expected = expected.clone();
                std::thread::spawn(move || {
                    let mut client = Client::connect(addr, "prop").expect("connect");
                    for k in 0..queries.len() {
                        let i = (k + r * 3) % queries.len();
                        let reply = client.request(&queries[i]).expect("request");
                        let got = serde_json::to_string(&reply).unwrap();
                        assert_eq!(
                            got, expected[i],
                            "reader {r} query {i} diverged from frozen replay: {:?}",
                            queries[i]
                        );
                    }
                })
            })
            .collect();

        for r in readers {
            r.join().expect("reader thread panicked");
        }
        stop.store(true, Ordering::Release);
        writer.join().expect("writer thread panicked");

        // Every reply above was served (none rejected): generous default
        // budgets mean admission never fired in this test.
        let intro = server.introspect();
        let tenant = intro.tenants.iter().find(|t| t.tenant == "prop").expect("tenant");
        prop_assert_eq!(tenant.served, (READERS * queries.len()) as u64);
        prop_assert_eq!(tenant.rejected_overloaded + tenant.rejected_budget, 0);
        prop_assert_eq!(tenant.protocol_errors, 0);
        server.shutdown();
    }
}
