//! Protocol fault injection: hostile and broken clients must get typed
//! error frames or a clean close — never a panic, never a wedged server.
//!
//! Each scenario drives raw bytes at a live server, then proves the
//! server survived by opening a *fresh, well-behaved* session and
//! round-tripping a `Ping`. The random-bytes fuzz reuses the
//! deterministic generator from `hpc_tsdb::faults`, so a failing seed
//! reproduces exactly.

use hpc_serve::{
    Client, ErrorKind, Request, Response, Server, ServerConfig, TimeoutConfig, MAX_FRAME_LEN,
    PROTOCOL_VERSION,
};
use hpc_tsdb::faults::DetRng;
use hpc_tsdb::{SeriesMeta, TsdbStore};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

fn server() -> (Server, SocketAddr) {
    let store = TsdbStore::default();
    let id = store.register(SeriesMeta {
        name: "facility".into(),
        unit: "kW".into(),
        interval_hint: 60,
    });
    for i in 0..300i64 {
        store.append(id, i * 60, 1500.0 + (i % 7) as f64);
    }
    let server = Server::start(store, ServerConfig::default()).unwrap();
    let addr = server.local_addr();
    (server, addr)
}

/// The liveness probe every scenario ends with: a fresh session must
/// handshake and ping normally.
fn assert_alive(addr: SocketAddr) {
    let mut client = Client::connect(addr, "probe").expect("server must accept new sessions");
    match client.request(&Request::Ping).expect("ping after fault") {
        Response::Pong => {}
        other => panic!("expected Pong, got {other:?}"),
    }
}

/// Read one reply frame by hand and decode it as a `Response`.
fn read_response(stream: &mut TcpStream) -> Response {
    let payload = hpc_serve::protocol::read_frame(stream).expect("response frame");
    serde_json::from_str(std::str::from_utf8(&payload).unwrap()).expect("response JSON")
}

fn handshake_raw(addr: SocketAddr, tenant: &str) -> TcpStream {
    let mut stream = TcpStream::connect(addr).unwrap();
    hpc_serve::protocol::send_message(
        &mut stream,
        &Request::Hello { version: PROTOCOL_VERSION, tenant: tenant.into() },
    )
    .unwrap();
    match read_response(&mut stream) {
        Response::HelloAck { .. } => stream,
        other => panic!("handshake failed: {other:?}"),
    }
}

#[test]
fn truncated_frame_gets_typed_error_then_close() {
    let (server, addr) = server();
    let mut stream = handshake_raw(addr, "fuzz");
    // Declare 100 payload bytes, send 3, then disconnect the write half.
    stream.write_all(&100u32.to_be_bytes()).unwrap();
    stream.write_all(b"abc").unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    match read_response(&mut stream) {
        Response::Error { kind: ErrorKind::Protocol, .. } => {}
        other => panic!("expected Protocol error, got {other:?}"),
    }
    assert_alive(addr);
    drop(server);
}

#[test]
fn oversized_length_prefix_is_refused_without_allocation() {
    let (server, addr) = server();
    let mut stream = handshake_raw(addr, "fuzz");
    // A hostile length prefix (4 GiB-ish). The server must refuse from the
    // prefix alone — it never has the bytes to read anyway.
    stream.write_all(&(MAX_FRAME_LEN + 1).to_be_bytes()).unwrap();
    stream.flush().unwrap();
    match read_response(&mut stream) {
        Response::Error { kind: ErrorKind::Protocol, message, .. } => {
            assert!(message.contains("exceeds"), "unexpected message: {message}");
        }
        other => panic!("expected Protocol error, got {other:?}"),
    }
    assert_alive(addr);
    drop(server);
}

#[test]
fn garbage_json_and_wrong_shapes_get_typed_errors() {
    let (server, addr) = server();
    for payload in [
        b"}{ not json".as_slice(),
        b"\xff\xfe\x00invalid utf8".as_slice(),
        b"{\"NoSuchRequest\":{}}".as_slice(),
        b"[1,2,3]".as_slice(),
        b"42".as_slice(),
    ] {
        let mut stream = handshake_raw(addr, "fuzz");
        hpc_serve::protocol::write_frame(&mut stream, payload).unwrap();
        match read_response(&mut stream) {
            Response::Error { kind: ErrorKind::Protocol, .. } => {}
            other => panic!("payload {payload:?}: expected Protocol error, got {other:?}"),
        }
        assert_alive(addr);
    }
    drop(server);
}

#[test]
fn mid_request_disconnect_leaves_server_serving() {
    let (server, addr) = server();
    for _ in 0..8 {
        let mut stream = handshake_raw(addr, "fuzz");
        // Half a length prefix, then vanish.
        stream.write_all(&[0u8, 0]).unwrap();
        drop(stream);
    }
    // Sessions that disconnect before even the handshake.
    for _ in 0..8 {
        let stream = TcpStream::connect(addr).unwrap();
        drop(stream);
    }
    assert_alive(addr);
    drop(server);
}

#[test]
fn wrong_version_and_missing_handshake_are_typed() {
    let (server, addr) = server();

    let mut stream = TcpStream::connect(addr).unwrap();
    hpc_serve::protocol::send_message(
        &mut stream,
        &Request::Hello { version: PROTOCOL_VERSION + 1, tenant: "fuzz".into() },
    )
    .unwrap();
    match read_response(&mut stream) {
        Response::Error { kind: ErrorKind::UnsupportedVersion, .. } => {}
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }

    let mut stream = TcpStream::connect(addr).unwrap();
    hpc_serve::protocol::send_message(&mut stream, &Request::Ping).unwrap();
    match read_response(&mut stream) {
        Response::Error { kind: ErrorKind::BadRequest, .. } => {}
        other => panic!("expected BadRequest, got {other:?}"),
    }

    assert_alive(addr);
    drop(server);
}

#[test]
fn bad_query_shapes_are_rejected_and_session_survives() {
    let (server, addr) = server();
    let mut client = Client::connect(addr, "fuzz").unwrap();
    // Reversed range.
    match client
        .request(&Request::Aggregate {
            series: "facility".into(),
            from: 600,
            to: 0,
            op: hpc_serve::WireOp::Mean,
        })
        .unwrap()
    {
        Response::Error { kind: ErrorKind::BadRequest, .. } => {}
        other => panic!("expected BadRequest, got {other:?}"),
    }
    // Non-positive step (would panic `store_windows` if it got through).
    match client
        .request(&Request::Windows {
            series: "facility".into(),
            from: 0,
            to: 600,
            step: 0,
            op: hpc_serve::WireOp::Mean,
        })
        .unwrap()
    {
        Response::Error { kind: ErrorKind::BadRequest, .. } => {}
        other => panic!("expected BadRequest, got {other:?}"),
    }
    // Unknown series.
    match client
        .request(&Request::Gap { series: "nope".into(), from: 0, to: 600 })
        .unwrap()
    {
        Response::Error { kind: ErrorKind::UnknownSeries, .. } => {}
        other => panic!("expected UnknownSeries, got {other:?}"),
    }
    // The session survived all three rejections.
    match client.request(&Request::Ping).unwrap() {
        Response::Pong => {}
        other => panic!("expected Pong, got {other:?}"),
    }
    drop(server);
}

/// A server whose deadlines are short enough to test eviction quickly.
fn impatient_server() -> (Server, SocketAddr) {
    let store = TsdbStore::default();
    let id = store.register(SeriesMeta {
        name: "facility".into(),
        unit: "kW".into(),
        interval_hint: 60,
    });
    for i in 0..300i64 {
        store.append(id, i * 60, 1500.0 + (i % 7) as f64);
    }
    let config = ServerConfig {
        timeouts: TimeoutConfig {
            handshake_deadline: Duration::from_millis(400),
            idle_deadline: Duration::from_millis(400),
            write_timeout: Duration::from_secs(2),
            poll_tick: Duration::from_millis(10),
            drain_deadline: Duration::from_secs(1),
        },
        ..ServerConfig::default()
    };
    let server = Server::start(store, config).unwrap();
    let addr = server.local_addr();
    (server, addr)
}

/// Evictions counted by the server, read over the wire.
fn evicted(addr: SocketAddr) -> u64 {
    let mut client = Client::connect(addr, "probe").unwrap();
    match client.request(&Request::Introspect).unwrap() {
        Response::Stats(intro) => intro.sessions_evicted,
        other => panic!("expected Stats, got {other:?}"),
    }
}

#[test]
fn half_open_silent_clients_are_evicted_within_the_idle_deadline() {
    let (server, addr) = impatient_server();

    // Handshake, then go completely silent: the classic half-open session.
    let mut stream = handshake_raw(addr, "silent");
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    match read_response(&mut stream) {
        Response::Error { kind: ErrorKind::Timeout, message, .. } => {
            assert!(message.contains("evicted"), "unexpected message: {message}");
        }
        other => panic!("expected Timeout eviction, got {other:?}"),
    }

    // Connect and never even say Hello: the handshake deadline case.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    match read_response(&mut stream) {
        Response::Error { kind: ErrorKind::Timeout, .. } => {}
        other => panic!("expected handshake Timeout eviction, got {other:?}"),
    }

    assert_eq!(evicted(addr), 2, "both half-open sessions must be counted");
    assert_alive(addr);
    drop(server);
}

#[test]
fn one_byte_dribbler_cannot_hold_a_session_open() {
    let (server, addr) = impatient_server();
    let mut stream = handshake_raw(addr, "dribble");
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();

    // A valid Ping frame fed one byte per 100 ms: partial progress must
    // not reset the total-frame deadline (the slow-loris defence), so the
    // server evicts long before the frame completes.
    let payload = serde_json::to_string(&Request::Ping).unwrap().into_bytes();
    let mut frame = (payload.len() as u32).to_be_bytes().to_vec();
    frame.extend_from_slice(&payload);
    let mut evicted_frame = None;
    for byte in frame {
        if stream.write_all(&[byte]).is_err() {
            break; // already evicted and closed
        }
        std::thread::sleep(Duration::from_millis(100));
        // Peek for the eviction frame without blocking the dribble.
        stream.set_read_timeout(Some(Duration::from_millis(1))).unwrap();
        let mut prefix = [0u8; 1];
        match stream.peek(&mut prefix) {
            Ok(0) => break,
            Ok(_) => {
                stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
                evicted_frame = Some(read_response(&mut stream));
                break;
            }
            Err(_) => {}
        }
        stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    }
    match evicted_frame {
        Some(Response::Error { kind: ErrorKind::Timeout, .. }) => {}
        // A closed socket (write error / EOF before the frame arrived) is
        // also a valid eviction outcome — the frame is best-effort.
        None => {}
        Some(other) => panic!("expected Timeout eviction, got {other:?}"),
    }

    assert_eq!(evicted(addr), 1, "the dribbler must be counted as evicted");
    assert_alive(addr);
    drop(server);
}

#[test]
fn random_byte_fuzz_never_wedges_the_server() {
    let (server, addr) = server();
    let mut rng = DetRng::new(0xF022_5EED);
    for round in 0..64 {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        // Random length (sometimes valid, sometimes hostile) and random
        // payload bytes, straight onto the socket.
        let len = rng.below(1 << 12) as usize;
        let declared = if rng.below(4) == 0 {
            rng.next_u64() as u32 // usually hostile
        } else {
            len as u32
        };
        let mut payload = vec![0u8; len];
        for b in payload.iter_mut() {
            *b = rng.next_u64() as u8;
        }
        let _ = stream.write_all(&declared.to_be_bytes());
        let _ = stream.write_all(&payload);
        if rng.below(2) == 0 {
            let _ = stream.shutdown(std::net::Shutdown::Write);
            // The server must answer (typed error) or close cleanly; it
            // must never leave this read hanging past the timeout.
            let mut sink = Vec::new();
            let _ = stream.read_to_end(&mut sink);
        }
        drop(stream);
        if round % 16 == 15 {
            assert_alive(addr);
        }
    }
    assert_alive(addr);
    drop(server);
}
