//! Read-path scale-out invariants: the generation-keyed result cache,
//! single-flight coalescing, and the v3 `Batch` frame.
//!
//! The load-bearing claims, each tested here:
//!
//! - **Caching is invisible.** A cached reply is byte-identical to a
//!   fresh sequential replay, and a generation bump (ingest, seal,
//!   compaction) always invalidates — a client can never read retired
//!   data out of the cache (property test over interleaved mutations).
//! - **Tenant isolation.** Caches are per-tenant: a small-budget tenant
//!   asking the exact query a big-budget tenant just cached gets its own
//!   budget rejection, never the big tenant's reply.
//! - **Coalescing shares bytes, not errors.** Concurrent identical
//!   queries collapse onto one execution and all receive the same bytes.
//! - **Batch framing is exact.** A `Batch` reply is, at the raw-frame
//!   level, the single-query reply payloads spliced into the batch
//!   envelope — warm or cold — with typed per-entry errors for control
//!   frames and per-entry scan-budget billing.

use hpc_serve::protocol::{read_frame, send_message};
use hpc_serve::{
    Client, ErrorKind, Request, Response, Server, ServerConfig, TenantBudget, WireOp,
    MAX_BATCH_LEN, PROTOCOL_VERSION,
};
use hpc_tsdb::faults::DetRng;
use hpc_tsdb::{
    fanout_group, store_aggregate, store_gap_aggregate, store_windows, SeriesId, SeriesMeta,
    TsdbStore,
};
use proptest::prelude::*;
use std::net::TcpStream;
use std::sync::{Arc, Barrier};

const INTERVAL: i64 = 60;

fn meta(i: usize) -> SeriesMeta {
    SeriesMeta { name: format!("cab.{i}"), unit: "kW".into(), interval_hint: INTERVAL }
}

/// Deterministic sample value for (stream, index), NaN payloads included
/// so bit-identity is tested on values JSON cannot carry.
fn value(rng: &mut DetRng, i: usize) -> f64 {
    if i % 89 == 7 {
        f64::from_bits(0xFFF8_0000_0000_0001)
    } else {
        140.0 + rng.below(100_000) as f64 * 0.001
    }
}

/// Ingest `count` samples per series starting at sample index `from_idx`;
/// the rng is re-seeded and fast-forwarded so any prefix/suffix split
/// reproduces the same stream.
fn ingest(store: &TsdbStore, ids: &[SeriesId], seed: u64, from_idx: usize, count: usize) {
    for (s, &id) in ids.iter().enumerate() {
        let mut rng = DetRng::new(seed ^ (s as u64).wrapping_mul(0x5851_F42D_4C95_7F2D));
        for i in 0..from_idx {
            let _ = value(&mut rng, i);
        }
        for i in from_idx..from_idx + count {
            store.append(id, i as i64 * INTERVAL, value(&mut rng, i));
        }
    }
}

/// Sequential oracle: the reply the server is specified to send for
/// `req`, computed in-process against a private store.
fn oracle(store: &TsdbStore, ids: &[SeriesId], req: &Request) -> Response {
    match req {
        Request::Aggregate { series, from, to, op } => {
            let id = store.lookup(series).expect("oracle series");
            let (value, plan) =
                store_aggregate(store, id, *from, *to, (*op).into()).expect("oracle aggregate");
            Response::Aggregate { value_bits: value.to_bits(), plan: format!("{plan:?}") }
        }
        Request::Windows { series, from, to, step, op } => {
            let id = store.lookup(series).expect("oracle series");
            let windows =
                store_windows(store, id, *from, *to, *step, (*op).into()).expect("oracle windows");
            Response::Windows {
                windows: windows
                    .into_iter()
                    .map(|w| hpc_serve::WireWindow {
                        start: w.start,
                        value_bits: w.value.to_bits(),
                        count: w.count,
                    })
                    .collect(),
            }
        }
        Request::Group { from, to, .. } => {
            let g = fanout_group(store, ids, *from, *to);
            Response::Group(hpc_serve::WireGroup {
                series: g.series as u64,
                missing: g.missing as u64,
                sum_of_means_bits: g.sum_of_means.to_bits(),
                mean_of_means_bits: g.mean_of_means().to_bits(),
                total_count: g.total.count,
            })
        }
        Request::Gap { series, from, to } => {
            let id = store.lookup(series).expect("oracle series");
            let v = store_gap_aggregate(store, id, *from, *to).expect("oracle gap");
            Response::Gap(hpc_serve::WireGap {
                count: v.agg.count,
                mean_bits: v.agg.mean().to_bits(),
                expected: v.expected,
                coverage_bits: v.coverage.to_bits(),
                quarantined: v.quarantined,
            })
        }
        other => panic!("oracle cannot evaluate {other:?}"),
    }
}

/// A small mixed workload over `[0, horizon)`.
fn build_queries(n_series: usize, horizon: i64) -> Vec<Request> {
    let all: Vec<String> = (0..n_series).map(|i| format!("cab.{i}")).collect();
    vec![
        Request::Aggregate { series: "cab.0".into(), from: 0, to: horizon, op: WireOp::Mean },
        Request::Windows {
            series: "cab.1".into(),
            from: 0,
            to: horizon,
            step: 3600,
            op: WireOp::Max,
        },
        Request::Group { series: all, from: 0, to: horizon },
        Request::Gap { series: "cab.0".into(), from: 0, to: horizon },
        Request::Aggregate { series: "cab.1".into(), from: 60, to: horizon - 60, op: WireOp::P95 },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Rounds of mutation (ingest growing the series, seals as chunks
    /// fill, one compaction round) interleaved with repeated queries:
    /// after every mutation the served replies must equal a fresh
    /// sequential replay of the *current* data — i.e. a generation bump
    /// always invalidates the cache — while repeats within a quiet round
    /// must be served from cache (hits observed via introspection).
    #[test]
    fn generation_bump_always_invalidates(
        seed in 0u64..1_000_000,
        n_series in 2usize..5,
        prefix_len in 150usize..400,
        growth in 40usize..160,
    ) {
        let live = TsdbStore::default();
        let ids: Vec<SeriesId> = (0..n_series).map(|i| live.register(meta(i))).collect();
        ingest(&live, &ids, seed, 0, prefix_len);
        live.publish_view();

        let mut server = Server::start(live.clone(), ServerConfig::default()).unwrap();
        let mut client = Client::connect(server.local_addr(), "prop").expect("connect");

        let mut len = prefix_len;
        for round in 0..3usize {
            // Fresh replay of exactly the live store's current content.
            let frozen = TsdbStore::default();
            let frozen_ids: Vec<SeriesId> =
                (0..n_series).map(|i| frozen.register(meta(i))).collect();
            ingest(&frozen, &frozen_ids, seed, 0, len);

            let horizon = len as i64 * INTERVAL;
            for query in build_queries(n_series, horizon) {
                let want = serde_json::to_string(&oracle(&frozen, &frozen_ids, &query)).unwrap();
                // Twice: the first answer populates the cache, the second
                // must come out of it — both must match the fresh replay.
                for pass in 0..2 {
                    let reply = client.request(&query).expect("request");
                    let got = serde_json::to_string(&reply).unwrap();
                    prop_assert_eq!(
                        &got, &want,
                        "round {} pass {} diverged from fresh replay: {:?}",
                        round, pass, query
                    );
                }
            }

            // Mutate for the next round: more samples (sealing chunks as
            // they fill), and a compaction pass on the middle round.
            ingest(&live, &ids, seed, len, growth);
            len += growth;
            if round == 1 {
                live.compact();
            }
            live.publish_view();
        }

        // The repeats above were real cache hits, not re-executions.
        let intro = server.introspect();
        prop_assert!(intro.result_cache_hits > 0, "no cache hit was ever served");
        let t = intro.tenants.iter().find(|t| t.tenant == "prop").expect("tenant");
        prop_assert_eq!(t.rejected_overloaded + t.rejected_budget, 0);
        prop_assert_eq!(t.protocol_errors, 0);
        server.shutdown();
    }

    /// A tenant with a tiny scan budget issues the exact query a
    /// big-budget tenant just executed and cached. Caches are per-tenant:
    /// the small tenant must be billed against *its* budget and refused
    /// `Overloaded`, never handed the big tenant's cached bytes.
    #[test]
    fn cache_never_leaks_across_tenant_budgets(
        seed in 0u64..1_000_000,
        n_series in 2usize..4,
    ) {
        let len = 600usize;
        let live = TsdbStore::default();
        let ids: Vec<SeriesId> = (0..n_series).map(|i| live.register(meta(i))).collect();
        ingest(&live, &ids, seed, 0, len);
        live.publish_view();

        let mut config = ServerConfig::default();
        config.admission.tenant_budgets.push((
            "starved".into(),
            TenantBudget { max_samples_per_query: 8, ..TenantBudget::default() },
        ));
        let mut server = Server::start(live.clone(), config).unwrap();
        let addr = server.local_addr();

        // Unaligned bounds force a raw scan estimated far above 8 samples.
        let query = Request::Aggregate {
            series: "cab.0".into(),
            from: 1,
            to: len as i64 * INTERVAL - 1,
            op: WireOp::Mean,
        };

        let mut rich = Client::connect(addr, "rich").expect("connect rich");
        let first = rich.request(&query).expect("rich request");
        prop_assert!(matches!(first, Response::Aggregate { .. }), "rich got {first:?}");
        // Same query again: now served from rich's cache.
        let again = rich.request(&query).expect("rich repeat");
        prop_assert_eq!(
            serde_json::to_string(&again).unwrap(),
            serde_json::to_string(&first).unwrap()
        );

        let mut starved = Client::connect(addr, "starved").expect("connect starved");
        let refused = starved.request(&query).expect("starved request");
        match refused {
            Response::Error { kind: ErrorKind::Overloaded, retry_after_ms: None, .. } => {}
            other => prop_assert!(false, "starved tenant got {other:?} instead of a budget rejection"),
        }

        let intro = server.introspect();
        let rich_t = intro.tenants.iter().find(|t| t.tenant == "rich").expect("rich tenant");
        let starved_t =
            intro.tenants.iter().find(|t| t.tenant == "starved").expect("starved tenant");
        prop_assert_eq!(rich_t.served, 2);
        prop_assert_eq!(rich_t.result_cache_hits, 1);
        prop_assert_eq!(starved_t.served, 0);
        prop_assert_eq!(starved_t.rejected_budget, 1);
        prop_assert_eq!(starved_t.result_cache_hits, 0);
        server.shutdown();
    }
}

/// Concurrent identical queries on a cold key collapse onto one
/// execution (single-flight) and every session receives the same bytes.
/// Each round appends a sample first, bumping the generation so the key
/// is cold again; with several sessions racing a multi-series query on
/// the same key, coalescing fires within a few rounds.
#[test]
fn coalesced_followers_get_the_leaders_bytes() {
    const SESSIONS: usize = 6;
    let len = 2_000usize;
    let live = TsdbStore::default();
    let ids: Vec<SeriesId> = (0..4).map(|i| live.register(meta(i))).collect();
    ingest(&live, &ids, 42, 0, len);
    live.publish_view();

    let mut server = Server::start(live.clone(), ServerConfig::default()).unwrap();
    let addr = server.local_addr();
    let query = Request::Group {
        series: (0..4).map(|i| format!("cab.{i}")).collect(),
        from: 1,
        to: len as i64 * INTERVAL,
    };

    let mut rounds = 0usize;
    while server.introspect().coalesced_queries == 0 {
        rounds += 1;
        assert!(rounds <= 60, "coalescing never observed in {rounds} rounds");
        // Bump the generation: the next lookups are cold and must race.
        live.append(ids[0], (len + rounds) as i64 * INTERVAL, 1.0);
        let barrier = Arc::new(Barrier::new(SESSIONS));
        let replies: Vec<String> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..SESSIONS)
                .map(|_| {
                    let barrier = Arc::clone(&barrier);
                    let query = query.clone();
                    s.spawn(move || {
                        let mut client = Client::connect(addr, "herd").expect("connect");
                        barrier.wait();
                        let reply = client.request(&query).expect("request");
                        serde_json::to_string(&reply).unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("session panicked")).collect()
        });
        for r in &replies {
            assert_eq!(r, &replies[0], "concurrent identical queries diverged");
        }
    }

    let intro = server.introspect();
    assert!(intro.coalesced_queries > 0);
    // Every query was answered exactly once, whichever path served it.
    let t = intro.tenants.iter().find(|t| t.tenant == "herd").expect("tenant");
    assert_eq!(
        t.result_cache_hits + t.result_cache_misses + t.coalesced,
        t.served,
        "cache counters must partition served queries"
    );
    server.shutdown();
}

/// Raw-frame handshake helper for the splice tests: `Client` would parse
/// replies, and these tests must see the exact payload bytes.
fn raw_session(addr: std::net::SocketAddr, tenant: &str) -> TcpStream {
    let mut stream = TcpStream::connect(addr).expect("connect");
    send_message(&mut stream, &Request::Hello { version: PROTOCOL_VERSION, tenant: tenant.into() })
        .expect("hello");
    let ack = read_frame(&mut stream).expect("hello ack");
    assert!(
        std::str::from_utf8(&ack).unwrap().contains("HelloAck"),
        "handshake refused: {}",
        String::from_utf8_lossy(&ack)
    );
    stream
}

fn raw_request(stream: &mut TcpStream, req: &Request) -> Vec<u8> {
    send_message(stream, req).expect("send");
    read_frame(stream).expect("reply frame")
}

/// The batch envelope is exact splicing: a `Batch` reply payload must be
/// byte-for-byte the single-query reply payloads joined inside
/// `{"Batch":{"entries":[…]}}` — cold (every entry executes) and warm
/// (every entry comes out of the cache) alike. This pins the envelope the
/// server splices cached bytes into; if the serialized shape of
/// `Response::Batch` ever drifts, this test fails before a client does.
#[test]
fn batch_reply_is_exact_splice_of_single_replies() {
    let len = 500usize;
    let live = TsdbStore::default();
    let ids: Vec<SeriesId> = (0..3).map(|i| live.register(meta(i))).collect();
    ingest(&live, &ids, 7, 0, len);
    live.publish_view();

    let mut server = Server::start(live.clone(), ServerConfig::default()).unwrap();
    let queries = build_queries(3, len as i64 * INTERVAL);

    // Singles first on one tenant: these replies populate nothing the
    // batch tenant can see, so the batch below is a cold execution.
    let mut single = raw_session(server.local_addr(), "single");
    let singles: Vec<Vec<u8>> = queries.iter().map(|q| raw_request(&mut single, q)).collect();

    let mut spliced = b"{\"Batch\":{\"entries\":[".to_vec();
    for (i, payload) in singles.iter().enumerate() {
        if i > 0 {
            spliced.push(b',');
        }
        spliced.extend_from_slice(payload);
    }
    spliced.extend_from_slice(b"]}}");

    let mut batcher = raw_session(server.local_addr(), "batcher");
    let batch = Request::Batch { entries: queries.clone() };
    let cold = raw_request(&mut batcher, &batch);
    assert_eq!(
        cold,
        spliced,
        "cold batch frame is not the spliced singles:\n got {}\nwant {}",
        String::from_utf8_lossy(&cold),
        String::from_utf8_lossy(&spliced)
    );
    // Again on the now-warm cache: every entry is served as stored bytes.
    let warm = raw_request(&mut batcher, &batch);
    assert_eq!(warm, spliced, "warm batch frame diverged from the cold one");

    let intro = server.introspect();
    let t = intro.tenants.iter().find(|t| t.tenant == "batcher").expect("tenant");
    assert_eq!(t.result_cache_hits, queries.len() as u64);
    server.shutdown();
}

/// Control frames and nested batches inside a batch are refused per
/// entry with a typed `BadRequest` — the other entries still answer.
/// Empty and oversized batches are refused as a whole.
#[test]
fn batch_entry_errors_are_typed_and_isolated() {
    let len = 300usize;
    let live = TsdbStore::default();
    let ids: Vec<SeriesId> = (0..2).map(|i| live.register(meta(i))).collect();
    ingest(&live, &ids, 3, 0, len);
    live.publish_view();

    let mut server = Server::start(live.clone(), ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr(), "mixed").expect("connect");

    let good = Request::Aggregate {
        series: "cab.0".into(),
        from: 0,
        to: len as i64 * INTERVAL,
        op: WireOp::Mean,
    };
    let entries = client
        .request_batch(vec![
            good.clone(),
            Request::Ping,
            Request::Batch { entries: vec![good.clone()] },
            Request::ListSeries,
            good.clone(),
        ])
        .expect("batch reply");
    assert_eq!(entries.len(), 5);
    assert!(matches!(entries[0], Response::Aggregate { .. }));
    for bad in [&entries[1], &entries[2], &entries[3]] {
        match bad {
            Response::Error { kind: ErrorKind::BadRequest, .. } => {}
            other => panic!("control entry answered {other:?} instead of BadRequest"),
        }
    }
    // The two good entries are the same query: the second is a hit and
    // both carry identical bytes.
    assert_eq!(
        serde_json::to_string(&entries[0]).unwrap(),
        serde_json::to_string(&entries[4]).unwrap()
    );

    // Whole-frame refusals: empty and oversized.
    match client.request_batch(Vec::new()) {
        Err(boxed) => {
            assert!(matches!(*boxed, Response::Error { kind: ErrorKind::BadRequest, .. }))
        }
        Ok(entries) => panic!("empty batch answered {entries:?}"),
    }
    let oversized = vec![good; MAX_BATCH_LEN + 1];
    match client.request_batch(oversized) {
        Err(boxed) => {
            assert!(matches!(*boxed, Response::Error { kind: ErrorKind::BadRequest, .. }))
        }
        Ok(entries) => panic!("oversized batch answered {} entries", entries.len()),
    }
    server.shutdown();
}

/// Scan budgets are billed per batch entry: an entry estimated over the
/// tenant's budget is refused `Overloaded` in its slot while its
/// neighbours answer, and the tenant is billed one served per answered
/// entry and one budget rejection for the refused one.
#[test]
fn batch_entries_are_billed_individually() {
    let len = 2_000usize;
    let live = TsdbStore::default();
    let ids: Vec<SeriesId> = (0..2).map(|i| live.register(meta(i))).collect();
    ingest(&live, &ids, 11, 0, len);
    live.publish_view();

    let mut config = ServerConfig::default();
    // Enough for a short unaligned scan (estimates round up to chunk
    // granularity, ~512 here), nowhere near the full 2 000-sample range.
    config.admission.default_budget.max_samples_per_query = 1_000;
    let mut server = Server::start(live.clone(), config).unwrap();
    let mut client = Client::connect(server.local_addr(), "billed").expect("connect");

    let small = Request::Aggregate {
        series: "cab.0".into(),
        from: 1,
        to: 90 * INTERVAL + 1,
        op: WireOp::Mean,
    };
    // Per-minute windows over the whole range: the estimate is billed
    // the scan *plus* one slot per window, far past any rollup shortcut.
    let huge = Request::Windows {
        series: "cab.0".into(),
        from: 1,
        to: len as i64 * INTERVAL - 1,
        step: INTERVAL,
        op: WireOp::Mean,
    };
    let small2 = Request::Gap { series: "cab.1".into(), from: 1, to: 90 * INTERVAL + 1 };

    let entries = client
        .request_batch(vec![small, huge, small2])
        .expect("batch reply");
    assert!(matches!(entries[0], Response::Aggregate { .. }), "got {:?}", entries[0]);
    match &entries[1] {
        Response::Error { kind: ErrorKind::Overloaded, retry_after_ms: None, .. } => {}
        other => panic!("over-budget entry answered {other:?}"),
    }
    assert!(matches!(entries[2], Response::Gap(_)), "got {:?}", entries[2]);

    let intro = server.introspect();
    let t = intro.tenants.iter().find(|t| t.tenant == "billed").expect("tenant");
    assert_eq!(t.served, 2);
    assert_eq!(t.rejected_budget, 1);
    // All three entries were cold lookups (misses); the refused one was
    // then stopped by the budget check, so it counts a miss but no serve.
    assert_eq!(t.result_cache_misses, 3);
    server.shutdown();
}
