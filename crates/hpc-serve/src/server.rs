//! The serving loop: a TCP listener, one handler thread per connection,
//! handshake-first dispatch and admission-checked query execution against
//! a shared [`TsdbStore`] handle.
//!
//! The server owns a *clone* of the store handle, not the store — clones
//! share the underlying shards, so a campaign keeps ingesting through its
//! own handle while every session reads through this one. Store-level
//! queries are snapshot-isolated (shard locks are never held across chunk
//! decode), which is what makes many readers against a live writer safe.
//!
//! Dispatch order per request: frame decode → (handshake state) →
//! in-flight admission → parameter validation → series resolution →
//! result-cache lookup → scan-budget check → execution. Everything before
//! execution is O(1), so a rejected request costs the server almost
//! nothing — that is the point of admission control.
//!
//! ## Read-path scale-out
//!
//! Three mechanisms keep a query storm off the ingest path:
//!
//! * **Epoch-published snapshots** — store reads go through
//!   [`TsdbStore::with_series_read`], which evaluates against the last
//!   published immutable [`hpc_tsdb::ReadView`] whenever it is still at
//!   the current store generation, taking no shard lock at all. The
//!   serving campaign republishes the view each ingest step.
//! * **Generation-keyed result cache with single-flight** — each tenant
//!   caches finished data-query replies keyed by the request's canonical
//!   serialisation and stamped with the store generation; any mutation
//!   bumps the generation and the next lookup drops the lot. Identical
//!   concurrent queries coalesce behind one execution. A cache hit is
//!   answered from the *stored reply bytes*, so it is byte-identical to a
//!   fresh execution, skips the scan-budget estimate entirely (the same
//!   tenant already paid that check for the same bytes at the same
//!   generation), and costs the tenant no scan budget.
//! * **Pipelined batches** — a v3 [`Request::Batch`] carries up to
//!   [`MAX_BATCH_LEN`] data queries in one frame under a *single*
//!   in-flight admission slot; every entry is still billed (budget,
//!   served/rejected counters, cache) individually, and a failed entry is
//!   a typed [`Response::Error`] in its slot without poisoning the rest.
//!
//! ## Time-based defenses
//!
//! Every session read runs under [`TimeoutConfig`] deadlines via
//! [`read_frame_deadline`]: the handshake must complete within
//! `handshake_deadline`, each request frame within `idle_deadline`, and
//! partial progress never resets the clock — a slow-loris client
//! dribbling one byte per tick is evicted exactly like a silent one, with
//! a best-effort typed `Timeout` frame and a `sessions_evicted` count.
//! Reply writes carry a socket write timeout, so a session that stops
//! draining its replies is evicted too. Shutdown is a *drain*
//! ([`Server::drain`]): stop accepting, notify idle sessions with a typed
//! `Draining` frame, let in-flight requests finish up to a deadline, then
//! force-close the stragglers.

use crate::cache::{CachedReply, Lookup, FLIGHT_WAIT};
use crate::protocol::{
    decode_message, read_frame_deadline, send_message, write_frame, DeadlineRead, ErrorKind,
    FrameError, Introspection, Request, Response, WireGap, WireGroup, WireQueryStats, WireSeries,
    WireWindow, MAX_BATCH_LEN, PROTOCOL_VERSION,
};
use crate::session::{AdmissionConfig, GlobalAdmission, Reject, TenantState, TimeoutConfig};
use hpc_tsdb::{
    fanout_group, store_aggregate, store_gap_aggregate, store_windows, QueryStats, SeriesId,
    TsdbStore,
};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Live ingest-rejection probe: the server calls this on `Introspect` to
/// report the campaign-side rejected count without owning the pipeline.
pub type IngestProbe = Arc<dyn Fn() -> u64 + Send + Sync>;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Name echoed in `HelloAck` and `Introspect` replies.
    pub name: String,
    /// Admission caps and tenant budgets.
    pub admission: AdmissionConfig,
    /// Idle/handshake/write deadlines and drain behaviour.
    pub timeouts: TimeoutConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            name: "hpc-serve".into(),
            admission: AdmissionConfig::default(),
            timeouts: TimeoutConfig::default(),
        }
    }
}

/// What [`Server::drain`] accomplished before returning.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DrainStats {
    /// Sessions open when the drain began.
    pub sessions_at_drain: u64,
    /// Sessions that finished (or noticed the drain and left) within the
    /// deadline.
    pub drained: u64,
    /// Sessions force-closed at the deadline.
    pub force_closed: u64,
}

/// Shared server state, referenced by the accept loop and every handler.
struct Inner {
    store: TsdbStore,
    name: String,
    admission: AdmissionConfig,
    timeouts: TimeoutConfig,
    global: GlobalAdmission,
    tenants: Mutex<BTreeMap<String, Arc<TenantState>>>,
    ingest_probe: Mutex<Option<IngestProbe>>,
    /// Drain flag: stops the accept loop and is observed once per poll
    /// tick by every session waiting between frames.
    draining: AtomicBool,
    sessions_evicted: AtomicU64,
    conns: Mutex<HashMap<u64, TcpStream>>,
    handlers: Mutex<HashMap<u64, JoinHandle<()>>>,
    /// Conn ids whose handler thread has finished and can be joined
    /// without blocking — the reap queue.
    finished: Mutex<Vec<u64>>,
}

impl Inner {
    fn tenant(&self, name: &str) -> Arc<TenantState> {
        let mut tenants = self.tenants.lock();
        if let Some(t) = tenants.get(name) {
            return Arc::clone(t);
        }
        let budget = self
            .admission
            .tenant_budgets
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, b)| b)
            .unwrap_or(self.admission.default_budget);
        let t = Arc::new(TenantState::new(
            name.to_string(),
            budget,
            self.admission.result_cache_capacity,
        ));
        tenants.insert(name.to_string(), Arc::clone(&t));
        t
    }

    fn introspection(&self) -> Introspection {
        let ingest_rejected = self.ingest_probe.lock().as_ref().map_or(0, |p| p());
        let tenants: Vec<_> = self.tenants.lock().values().map(|t| t.snapshot()).collect();
        Introspection {
            server: self.name.clone(),
            protocol_version: PROTOCOL_VERSION,
            sessions_active: self.global.sessions_active(),
            sessions_rejected: self.global.sessions_rejected.load(Ordering::Relaxed),
            sessions_evicted: self.sessions_evicted.load(Ordering::Relaxed),
            draining: self.draining.load(Ordering::Acquire),
            ingest_rejected,
            result_cache_hits: tenants.iter().map(|t| t.result_cache_hits).sum(),
            result_cache_misses: tenants.iter().map(|t| t.result_cache_misses).sum(),
            coalesced_queries: tenants.iter().map(|t| t.coalesced).sum(),
            store: WireQueryStats::from(self.store.query_stats()),
            tenants,
        }
    }

    fn evict(&self, stream: &mut TcpStream, why: String) {
        self.sessions_evicted.fetch_add(1, Ordering::Relaxed);
        // Best-effort: a slow-loris peer may not even drain this frame.
        let _ = send_message(stream, &Response::error(ErrorKind::Timeout, why));
    }

    fn drain_notice(&self, stream: &mut TcpStream) {
        let _ = send_message(
            stream,
            &Response::retryable_error(
                ErrorKind::Draining,
                "server draining; reconnect to a live instance",
                self.timeouts.drain_deadline.as_millis() as u64,
            ),
        );
    }

    /// Join every handler thread whose session has already ended. Joining
    /// a finished thread is O(1); ids whose handle has not been registered
    /// yet (the spawn/finish race) are requeued for the next pass.
    fn reap_finished(&self) {
        let ids = std::mem::take(&mut *self.finished.lock());
        if ids.is_empty() {
            return;
        }
        let mut requeue = Vec::new();
        for id in ids {
            let handle = self.handlers.lock().remove(&id);
            match handle {
                Some(h) => {
                    let _ = h.join();
                }
                None => requeue.push(id),
            }
        }
        if !requeue.is_empty() {
            self.finished.lock().extend(requeue);
        }
    }
}

/// A running query service bound to a local TCP port.
///
/// Dropping the server shuts it down immediately (a zero-deadline
/// [`Server::drain`]): the listener stops accepting, every open connection
/// is closed, and all handler threads are joined. Handler threads do not
/// otherwise accumulate: each session pushes itself onto a reap queue as
/// it closes and the accept loop joins finished handles on every
/// iteration, so a long-running service holds O(live sessions) handles,
/// not O(all sessions ever).
pub struct Server {
    inner: Arc<Inner>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    stopped: bool,
}

impl Server {
    /// Bind `127.0.0.1:0` and start accepting sessions against `store`.
    ///
    /// `store` should be a [`TsdbStore::clone`] of the handle the ingest
    /// side keeps — the clone shares the shards, so queries see live data.
    pub fn start(store: TsdbStore, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let inner = Arc::new(Inner {
            store,
            name: config.name,
            global: GlobalAdmission::new(&config.admission),
            admission: config.admission,
            timeouts: config.timeouts,
            tenants: Mutex::new(BTreeMap::new()),
            ingest_probe: Mutex::new(None),
            draining: AtomicBool::new(false),
            sessions_evicted: AtomicU64::new(0),
            conns: Mutex::new(HashMap::new()),
            handlers: Mutex::new(HashMap::new()),
            finished: Mutex::new(Vec::new()),
        });
        let accept = {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || {
                let mut next_conn = 0u64;
                for stream in listener.incoming() {
                    if inner.draining.load(Ordering::Acquire) {
                        break;
                    }
                    inner.reap_finished();
                    let stream = match stream {
                        Ok(s) => s,
                        Err(_) => continue,
                    };
                    // Replies are single small frames; without this, Nagle
                    // vs. delayed-ACK adds ~40 ms to every round trip.
                    let _ = stream.set_nodelay(true);
                    let _ = stream.set_write_timeout(Some(inner.timeouts.write_timeout));
                    let conn_id = next_conn;
                    next_conn += 1;
                    if let Ok(clone) = stream.try_clone() {
                        inner.conns.lock().insert(conn_id, clone);
                    }
                    let inner2 = Arc::clone(&inner);
                    let handle = std::thread::spawn(move || {
                        handle_conn(&inner2, stream);
                        inner2.conns.lock().remove(&conn_id);
                        inner2.finished.lock().push(conn_id);
                    });
                    inner.handlers.lock().insert(conn_id, handle);
                }
            })
        };
        Ok(Server { inner, addr, accept: Some(accept), stopped: false })
    }

    /// The bound address clients connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Attach the live ingest-rejection probe reported by `Introspect`.
    pub fn set_ingest_probe(&self, probe: IngestProbe) {
        *self.inner.ingest_probe.lock() = Some(probe);
    }

    /// In-process observability snapshot (same data `Introspect` serves).
    pub fn introspect(&self) -> Introspection {
        self.inner.introspection()
    }

    /// Gracefully drain the server: stop accepting, tell idle sessions to
    /// reconnect elsewhere (a typed `Draining` frame with a retry hint),
    /// let in-flight requests finish for up to `deadline`, then
    /// force-close whatever remains and join every handler thread.
    /// Idempotent; [`Server::shutdown`] is a zero-deadline drain.
    pub fn drain(&mut self, deadline: Duration) -> DrainStats {
        if self.stopped {
            return DrainStats::default();
        }
        self.stopped = true;
        self.inner.draining.store(true, Ordering::Release);
        // Wake the blocking `accept` so the loop observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        let sessions_at_drain = self.inner.conns.lock().len() as u64;
        let started = Instant::now();
        let tick = self.inner.timeouts.poll_tick.max(Duration::from_millis(1));
        while started.elapsed() < deadline {
            if self.inner.conns.lock().is_empty() {
                break;
            }
            std::thread::sleep(tick.min(deadline - started.elapsed()));
        }
        let mut force_closed = 0u64;
        for (_, conn) in self.inner.conns.lock().drain() {
            let _ = conn.shutdown(Shutdown::Both);
            force_closed += 1;
        }
        let handlers = std::mem::take(&mut *self.inner.handlers.lock());
        for (_, h) in handlers {
            let _ = h.join();
        }
        self.inner.finished.lock().clear();
        DrainStats {
            sessions_at_drain,
            drained: sessions_at_drain - force_closed,
            force_closed,
        }
    }

    /// Stop accepting, close every open session and join all threads —
    /// a [`Server::drain`] with no grace period. Idempotent; runs on drop.
    pub fn shutdown(&mut self) {
        self.drain(Duration::ZERO);
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn error(kind: ErrorKind, message: impl Into<String>) -> Response {
    Response::error(kind, message)
}

/// A reply ready to go back to the peer. `Raw` carries the exact frame
/// payload a previous execution serialized — cache hits and coalesced
/// joins send it verbatim, which is what makes a cached reply
/// byte-identical to a fresh one *by construction* rather than by
/// re-serialisation luck. `Frame` is an already-assembled payload (a
/// batch reply spliced together from its entries' serialized bytes).
enum Reply {
    Msg(Response),
    Raw(Arc<CachedReply>),
    Frame(Vec<u8>),
}

impl Reply {
    fn write(&self, stream: &mut TcpStream) -> Result<(), FrameError> {
        match self {
            Reply::Msg(response) => send_message(stream, response),
            Reply::Raw(cached) => write_frame(stream, &cached.bytes),
            Reply::Frame(payload) => write_frame(stream, payload),
        }
    }
}

/// Receive one request frame under `deadline`, or decide the session's
/// fate: `Ok(None)` means the session should end (the peer closed, was
/// evicted, was told to drain, or poisoned the framing — any owed error
/// frame has already been sent).
fn recv_request(
    inner: &Inner,
    tenant: Option<&TenantState>,
    stream: &mut TcpStream,
    deadline: Duration,
) -> Option<Request> {
    let read = read_frame_deadline(stream, deadline, inner.timeouts.poll_tick, Some(&inner.draining));
    match read {
        Ok(DeadlineRead::Frame(payload)) => match decode_message::<Request>(&payload) {
            Ok(request) => Some(request),
            Err(e) => {
                // After a framing error the byte stream can no longer be
                // trusted to be frame-aligned: answer typed, then close.
                if let Some(t) = tenant {
                    t.record_protocol_error();
                }
                let _ = send_message(stream, &error(ErrorKind::Protocol, e.to_string()));
                None
            }
        },
        Ok(DeadlineRead::Aborted) => {
            inner.drain_notice(stream);
            None
        }
        Err(FrameError::Closed) => None,
        Err(FrameError::Timeout { waited_ms }) => {
            inner.evict(
                stream,
                format!(
                    "no complete frame within the {waited_ms} ms idle deadline; session evicted"
                ),
            );
            None
        }
        Err(e) => {
            if let Some(t) = tenant {
                t.record_protocol_error();
            }
            let _ = send_message(stream, &error(ErrorKind::Protocol, e.to_string()));
            None
        }
    }
}

/// One connection, handshake to close. Runs on its own thread.
fn handle_conn(inner: &Inner, mut stream: TcpStream) {
    // Handshake first: nothing else is admitted on a virgin session, and
    // a virgin session gets only `handshake_deadline` to speak.
    let tenant_name =
        match recv_request(inner, None, &mut stream, inner.timeouts.handshake_deadline) {
            Some(Request::Hello { version, tenant }) => {
                if version != PROTOCOL_VERSION {
                    let _ = send_message(
                        &mut stream,
                        &error(
                            ErrorKind::UnsupportedVersion,
                            format!("server speaks v{PROTOCOL_VERSION}, client sent v{version}"),
                        ),
                    );
                    return;
                }
                tenant
            }
            Some(_) => {
                let _ = send_message(
                    &mut stream,
                    &error(ErrorKind::BadRequest, "first frame must be Hello"),
                );
                return;
            }
            None => return,
        };

    let tenant = inner.tenant(&tenant_name);
    if !inner.global.try_open_session() {
        inner.global.sessions_rejected.fetch_add(1, Ordering::Relaxed);
        let _ = send_message(
            &mut stream,
            &Response::retryable_error(
                ErrorKind::Overloaded,
                "server session limit reached",
                inner.admission.retry_after_ms,
            ),
        );
        return;
    }
    if !tenant.try_open_session() {
        inner.global.close_session();
        inner.global.sessions_rejected.fetch_add(1, Ordering::Relaxed);
        let _ = send_message(
            &mut stream,
            &Response::retryable_error(
                ErrorKind::Overloaded,
                format!("tenant {tenant_name:?} session limit reached"),
                inner.admission.retry_after_ms,
            ),
        );
        return;
    }

    serve_session(inner, &tenant, &mut stream);

    tenant.close_session();
    inner.global.close_session();
}

/// The post-handshake request loop. Returns when the peer closes, a
/// deadline evicts it, a drain ends it, a protocol error poisons the
/// framing, or a write fails.
fn serve_session(inner: &Inner, tenant: &TenantState, stream: &mut TcpStream) {
    let ack =
        Response::HelloAck { version: PROTOCOL_VERSION, server: inner.name.clone() };
    if send_message(stream, &ack).is_err() {
        return;
    }
    loop {
        let Some(request) =
            recv_request(inner, Some(tenant), stream, inner.timeouts.idle_deadline)
        else {
            return;
        };
        let reply = dispatch(inner, tenant, request);
        match reply.write(stream) {
            Ok(()) => {}
            Err(FrameError::Timeout { .. }) => {
                // The peer stopped draining replies — a write-side
                // slow-loris. Count the eviction; nothing more can be sent.
                inner.sessions_evicted.fetch_add(1, Ordering::Relaxed);
                return;
            }
            Err(_) => return,
        }
    }
}

/// Route one post-handshake request. `Ping`, `ListSeries` and `Introspect`
/// bypass query admission — observability must keep answering precisely
/// when the server is saturated enough to reject real queries.
fn dispatch(inner: &Inner, tenant: &TenantState, request: Request) -> Reply {
    match request {
        Request::Hello { .. } => {
            Reply::Msg(error(ErrorKind::BadRequest, "session already completed its handshake"))
        }
        Request::Ping => Reply::Msg(Response::Pong),
        Request::ListSeries => {
            let entries = inner
                .store
                .series_catalog()
                .into_iter()
                .map(|(id, meta, samples)| WireSeries {
                    id: id.0,
                    name: meta.name,
                    unit: meta.unit,
                    interval_hint: meta.interval_hint,
                    samples,
                })
                .collect();
            Reply::Msg(Response::Series { entries })
        }
        Request::Introspect => Reply::Msg(Response::Stats(inner.introspection())),
        query => admit_and_run(inner, tenant, query),
    }
}

/// Take both in-flight slots, run the query (or the whole batch — a batch
/// frame occupies exactly one slot), release in reverse order.
fn admit_and_run(inner: &Inner, tenant: &TenantState, query: Request) -> Reply {
    if !inner.global.try_begin_query() {
        tenant.record_rejected(Reject::InFlight);
        return Reply::Msg(Response::retryable_error(
            ErrorKind::Overloaded,
            "server in-flight query limit reached",
            inner.admission.retry_after_ms,
        ));
    }
    if !tenant.try_begin_query() {
        inner.global.end_query();
        tenant.record_rejected(Reject::InFlight);
        return Reply::Msg(Response::retryable_error(
            ErrorKind::Overloaded,
            "tenant in-flight query limit reached",
            inner.admission.retry_after_ms,
        ));
    }
    let reply = match query {
        Request::Batch { entries } => run_batch(inner, tenant, entries),
        query => run_query(inner, tenant, query),
    };
    tenant.end_query();
    inner.global.end_query();
    reply
}

/// Run one admitted batch. The frame as a whole was admitted under one
/// in-flight slot; each entry is still billed individually — its own
/// scan-budget check, its own cache lookup, its own served/rejected
/// counters. Per-entry failures are typed errors in their slot; the
/// other entries still answer.
fn run_batch(inner: &Inner, tenant: &TenantState, entries: Vec<Request>) -> Reply {
    if entries.is_empty() {
        return Reply::Msg(error(ErrorKind::BadRequest, "batch must carry at least one query"));
    }
    if entries.len() > MAX_BATCH_LEN {
        return Reply::Msg(error(
            ErrorKind::BadRequest,
            format!("batch of {} entries exceeds the {MAX_BATCH_LEN}-entry limit", entries.len()),
        ));
    }
    let replies: Vec<Reply> = entries
        .into_iter()
        .map(|entry| match entry {
            Request::Aggregate { .. }
            | Request::Windows { .. }
            | Request::Group { .. }
            | Request::Gap { .. } => run_query(inner, tenant, entry),
            _ => Reply::Msg(error(
                ErrorKind::BadRequest,
                "batch entries must be data queries (Aggregate, Windows, Group or Gap)",
            )),
        })
        .collect();

    // Splice the reply frame straight from the entries' serialized bytes
    // (`serde_json::to_string` is compact and externally tagged, so
    // `{"Batch":{"entries":[a,b,…]}}` around entry payloads is exactly
    // what serialising `Response::Batch` would emit — asserted by the
    // batch-vs-singles byte-identity tests). A warm batch therefore never
    // re-serialises its cached entries.
    let mut payload = String::from("{\"Batch\":{\"entries\":[");
    for (i, reply) in replies.iter().enumerate() {
        if i > 0 {
            payload.push(',');
        }
        let entry_json = match reply {
            Reply::Raw(cached) => std::str::from_utf8(&cached.bytes).ok().map(String::from),
            Reply::Msg(response) => serde_json::to_string(response).ok(),
            Reply::Frame(_) => None, // nested batches are rejected above
        };
        match entry_json {
            Some(json) => payload.push_str(&json),
            // Unspliceable entries cannot occur (every payload came from
            // the serializer); if one does, surface it typed in its slot.
            None => payload.push_str(
                "{\"Error\":{\"kind\":\"Protocol\",\"message\":\
                 \"entry reply could not be serialised\",\"retry_after_ms\":null}}",
            ),
        }
    }
    payload.push_str("]}}");
    Reply::Frame(payload.into_bytes())
}

/// Estimated samples a `[from, to)` scan of `id` will touch, mirroring
/// the query planner ([`hpc_tsdb::estimate_scan`]): a rollup-served
/// window is costed in buckets, and a zone-map-covered raw aggregate is
/// costed at the chunks it will actually decode — not the full span. The
/// old cadence-hint heuristic billed a fully zone-pruned query as a raw
/// scan of every sample in the window, rejecting queries that would have
/// decoded nothing.
fn estimate_scan(
    store: &TsdbStore,
    id: SeriesId,
    from: i64,
    to: i64,
    op: hpc_tsdb::AggOp,
    allow_rollup: bool,
) -> u64 {
    store
        .with_series_read(id, |s| hpc_tsdb::estimate_scan(s, from, to, op, allow_rollup))
        .unwrap_or(0)
}

/// Validate one data query's shape and resolve its series names, with the
/// exact error replies the pre-cache dispatch produced. No cost is
/// estimated here — estimation belongs to execution, which a cache hit
/// skips entirely.
fn validate_resolve(store: &TsdbStore, query: &Request) -> Result<Vec<SeriesId>, Box<Response>> {
    // Validation first: `store_windows` panics on a bad step/range by
    // contract, so the server must refuse those shapes as `BadRequest`
    // before they reach the store.
    match query {
        Request::Aggregate { series, from, to, .. } | Request::Gap { series, from, to } => {
            if from > to {
                return Err(Box::new(error(ErrorKind::BadRequest, "window range reversed (from > to)")));
            }
            match store.lookup(series) {
                Some(id) => Ok(vec![id]),
                None => Err(Box::new(error(ErrorKind::UnknownSeries, format!("no series {series:?}")))),
            }
        }
        Request::Windows { series, from, to, step, .. } => {
            if *step <= 0 {
                return Err(Box::new(error(ErrorKind::BadRequest, "window step must be positive")));
            }
            if from > to {
                return Err(Box::new(error(ErrorKind::BadRequest, "window range reversed (from > to)")));
            }
            match store.lookup(series) {
                Some(id) => Ok(vec![id]),
                None => Err(Box::new(error(ErrorKind::UnknownSeries, format!("no series {series:?}")))),
            }
        }
        Request::Group { series, from, to } => {
            if from > to {
                return Err(Box::new(error(ErrorKind::BadRequest, "window range reversed (from > to)")));
            }
            // Unresolved names keep a sentinel id so the reply's `missing`
            // count matches an in-process evaluation of the same names.
            Ok(series.iter().map(|n| store.lookup(n).unwrap_or(SeriesId(u64::MAX))).collect())
        }
        _ => unreachable!("non-query requests are dispatched before admission"),
    }
}

/// Estimated samples an already-validated query will touch, mirroring the
/// query planner ([`hpc_tsdb::estimate_scan`]).
fn estimate_request(store: &TsdbStore, query: &Request, ids: &[SeriesId]) -> u64 {
    match query {
        Request::Aggregate { from, to, op, .. } => {
            estimate_scan(store, ids[0], *from, *to, (*op).into(), true)
        }
        // Gap queries need individual samples for coverage, so rollup
        // short-cuts (and zone pruning) never apply to them.
        Request::Gap { from, to, .. } => {
            estimate_scan(store, ids[0], *from, *to, hpc_tsdb::AggOp::Mean, false)
        }
        Request::Windows { from, to, step, op, .. } => {
            let windows = ((to - from) as u64).div_ceil(*step as u64);
            estimate_scan(store, ids[0], *from, *to, (*op).into(), true).saturating_add(windows)
        }
        Request::Group { from, to, .. } => ids.iter().fold(0u64, |acc, &id| {
            acc.saturating_add(estimate_scan(store, id, *from, *to, hpc_tsdb::AggOp::Mean, true))
        }),
        _ => unreachable!("non-query requests are dispatched before admission"),
    }
}

/// Run one admitted query end to end: validate, resolve, consult the
/// tenant's result cache, and — on a miss — budget-check, execute under
/// latency + `QueryStats` delta measurement, and fold the delta into the
/// tenant (saturating — see `QueryStats::delta_since`).
///
/// The cache lookup sits *after* validation and resolution (so malformed
/// requests keep their exact error replies and are never cached) and
/// *before* the scan-budget estimate (a hit executes nothing, so it
/// should cost nothing — the tenant already paid the budget check for
/// these bytes at this generation). Per-tenant caches make that sound:
/// a tenant can only ever hit entries its own budget admitted.
fn run_query(inner: &Inner, tenant: &TenantState, query: Request) -> Reply {
    let store = &inner.store;
    let started = Instant::now();
    let resolved = match validate_resolve(store, &query) {
        Ok(ids) => ids,
        Err(response) => return Reply::Msg(*response),
    };

    // The cache key is the request's canonical serialisation — the same
    // struct-shaped JSON the wire uses, so two requests share a key iff
    // they are the same query. The generation is sampled *before* the
    // lookup: if the store mutates after this point the bump makes the
    // entry we are about to read or write unreachable, never wrong.
    let generation = store.generation();
    let Ok(key) = serde_json::to_string(&query) else {
        // Unserialisable requests cannot exist (they just arrived as
        // JSON); if one does, serve it uncached.
        return execute_measured(inner, tenant, &resolved, query, started).0;
    };
    match tenant.cache.begin(generation, &key) {
        Lookup::Hit(reply) => {
            tenant.record_cache_hit();
            tenant.record_served(elapsed_us(started), &QueryStats::default());
            Reply::Raw(reply)
        }
        Lookup::Join(flight) => match flight.wait(FLIGHT_WAIT) {
            Some(reply) => {
                tenant.record_coalesced();
                tenant.record_served(elapsed_us(started), &QueryStats::default());
                Reply::Raw(reply)
            }
            // The leader timed out or had nothing shareable: execute for
            // ourselves, uncached. Coalescing is an optimisation, never a
            // correctness dependency.
            None => {
                tenant.record_cache_miss();
                execute_measured(inner, tenant, &resolved, query, started).0
            }
        },
        Lookup::Lead(flight) => {
            tenant.record_cache_miss();
            let (reply, shareable) = execute_measured(inner, tenant, &resolved, query, started);
            tenant.cache.complete(generation, &key, &flight, shareable);
            reply
        }
        Lookup::Bypass => {
            tenant.record_cache_miss();
            execute_measured(inner, tenant, &resolved, query, started).0
        }
    }
}

fn elapsed_us(started: Instant) -> f64 {
    started.elapsed().as_secs_f64() * 1e6
}

/// The uncached tail of `run_query`: scan-budget check, execution,
/// latency + stats accounting. Also returns the reply in shareable form
/// (`None` for budget rejections and error replies — those are never
/// cached and never handed to coalesced followers).
fn execute_measured(
    inner: &Inner,
    tenant: &TenantState,
    resolved: &[SeriesId],
    query: Request,
    started: Instant,
) -> (Reply, Option<Arc<CachedReply>>) {
    let store = &inner.store;
    let estimate = estimate_request(store, &query, resolved);
    if let Err(reject) = tenant.check_scan_budget(estimate) {
        tenant.record_rejected(reject);
        let Reject::ScanBudget { estimated, limit } = reject else { unreachable!() };
        // Deliberately no retry hint: the same query will cost the same
        // scan tomorrow — retrying cannot help.
        let response = error(
            ErrorKind::Overloaded,
            format!("estimated scan of {estimated} samples exceeds per-query budget {limit}"),
        );
        return (Reply::Msg(response), None);
    }

    let before = store.query_stats();
    let response = execute(store, resolved, query);
    let delta = store.query_stats().delta_since(&before);
    tenant.record_served(elapsed_us(started), &delta);
    if matches!(response, Response::Error { .. }) {
        return (Reply::Msg(response), None);
    }
    // Serialize once: these bytes are both this reply's frame payload and
    // the cached payload every later hit sends verbatim.
    match serde_json::to_string(&response) {
        Ok(json) => {
            let cached = Arc::new(CachedReply { bytes: Arc::new(json.into_bytes()) });
            (Reply::Raw(Arc::clone(&cached)), Some(cached))
        }
        Err(_) => (Reply::Msg(response), None),
    }
}

/// The store calls themselves. `ids` came from `run_query`'s resolution.
fn execute(store: &TsdbStore, ids: &[SeriesId], query: Request) -> Response {
    match query {
        Request::Aggregate { from, to, op, series } => {
            match store_aggregate(store, ids[0], from, to, op.into()) {
                Some((value, plan)) => Response::Aggregate {
                    value_bits: value.to_bits(),
                    plan: format!("{plan:?}"),
                },
                None => error(ErrorKind::UnknownSeries, format!("no series {series:?}")),
            }
        }
        Request::Windows { from, to, step, op, series } => {
            match store_windows(store, ids[0], from, to, step, op.into()) {
                Some(windows) => Response::Windows {
                    windows: windows
                        .into_iter()
                        .map(|w| WireWindow {
                            start: w.start,
                            value_bits: w.value.to_bits(),
                            count: w.count,
                        })
                        .collect(),
                },
                None => error(ErrorKind::UnknownSeries, format!("no series {series:?}")),
            }
        }
        Request::Group { from, to, .. } => {
            let g = fanout_group(store, ids, from, to);
            Response::Group(WireGroup {
                series: g.series as u64,
                missing: g.missing as u64,
                sum_of_means_bits: g.sum_of_means.to_bits(),
                mean_of_means_bits: g.mean_of_means().to_bits(),
                total_count: g.total.count,
            })
        }
        Request::Gap { from, to, series } => {
            match store_gap_aggregate(store, ids[0], from, to) {
                Some(v) => Response::Gap(WireGap {
                    count: v.agg.count,
                    mean_bits: v.agg.mean().to_bits(),
                    expected: v.expected,
                    coverage_bits: v.coverage.to_bits(),
                    quarantined: v.quarantined,
                }),
                None => error(ErrorKind::UnknownSeries, format!("no series {series:?}")),
            }
        }
        _ => unreachable!("non-query requests are dispatched before admission"),
    }
}
