//! Generation-keyed query result cache with single-flight coalescing.
//!
//! One cache per tenant (see [`crate::session::TenantState`]): the key is
//! the canonical serialisation of a validated data-query request, the
//! value the finished reply, and the whole cache is stamped with the store
//! generation it was filled at. Any store mutation bumps the generation
//! ([`hpc_tsdb::TsdbStore::generation`]), so the first lookup after a bump
//! clears the map — cached replies can never outlive the data they were
//! computed from. A reply is stored as its exact serialized frame payload:
//! a single-query hit writes those bytes to the socket verbatim and a
//! batch entry splices them into the batch frame, so a cached reply is
//! byte-identical to a fresh one *by construction*, and a warm hit never
//! pays serialisation again.
//!
//! **Single-flight**: the first session to miss on a key becomes the
//! *leader* and executes; identical concurrent requests *join* the
//! leader's [`Flight`] and wait (bounded) for its reply instead of
//! re-executing — the dashboard thundering herd costs one execution. A
//! follower whose wait expires, or whose leader declined to share (error
//! replies are never cached), simply executes for itself: coalescing is an
//! optimisation, never a correctness dependency. Caches are per-tenant by
//! construction, so a reply can never cross tenants — a tenant only ever
//! sees entries its own (identically-budgeted) queries created.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// How long a follower waits on a leader before executing for itself.
/// Generous against real query latencies (milliseconds); tight enough
/// that a stalled leader cannot wedge followers.
pub(crate) const FLIGHT_WAIT: Duration = Duration::from_secs(2);

/// A finished reply: the serialized `Response` frame payload, written
/// verbatim on a hit (and spliced verbatim into batch reply frames).
pub(crate) struct CachedReply {
    pub(crate) bytes: Arc<Vec<u8>>,
}

enum FlightState {
    Pending,
    /// Leader finished. `None` means it has nothing to share (the reply
    /// was an error, or the leader bailed) — followers execute themselves.
    Done(Option<Arc<CachedReply>>),
}

/// A single-flight slot: the leader executes and publishes, followers
/// wait here.
pub(crate) struct Flight {
    state: Mutex<FlightState>,
    cv: Condvar,
}

impl Flight {
    fn new() -> Self {
        Flight { state: Mutex::new(FlightState::Pending), cv: Condvar::new() }
    }

    fn publish(&self, reply: Option<Arc<CachedReply>>) {
        *self.state.lock().expect("flight lock") = FlightState::Done(reply);
        self.cv.notify_all();
    }

    /// Wait for the leader's reply up to `timeout`; `None` on timeout or
    /// when the leader had nothing to share.
    pub(crate) fn wait(&self, timeout: Duration) -> Option<Arc<CachedReply>> {
        let guard = self.state.lock().expect("flight lock");
        let (guard, _) = self
            .cv
            .wait_timeout_while(guard, timeout, |s| matches!(s, FlightState::Pending))
            .expect("flight lock");
        match &*guard {
            FlightState::Pending => None,
            FlightState::Done(reply) => reply.clone(),
        }
    }
}

enum Slot {
    Done(Arc<CachedReply>),
    Pending(Arc<Flight>),
}

struct CacheInner {
    generation: u64,
    entries: HashMap<String, Slot>,
}

/// What a cache lookup decided for this request.
pub(crate) enum Lookup {
    /// A finished reply at the current generation: serve it, execute
    /// nothing, estimate nothing.
    Hit(Arc<CachedReply>),
    /// An identical query is executing right now: wait on its flight.
    Join(Arc<Flight>),
    /// This caller leads: execute, then [`ResultCache::complete`].
    Lead(Arc<Flight>),
    /// Cache disabled or full: execute without caching.
    Bypass,
}

/// The per-tenant cache. All state behind one mutex held only for map
/// operations — never across an execution.
pub(crate) struct ResultCache {
    capacity: usize,
    inner: Mutex<CacheInner>,
}

impl ResultCache {
    pub(crate) fn new(capacity: usize) -> Self {
        ResultCache {
            capacity,
            inner: Mutex::new(CacheInner { generation: 0, entries: HashMap::new() }),
        }
    }

    /// Look `key` up at `generation`. The first lookup after a generation
    /// bump clears every entry (they were computed against retired data).
    pub(crate) fn begin(&self, generation: u64, key: &str) -> Lookup {
        if self.capacity == 0 {
            return Lookup::Bypass;
        }
        let mut inner = self.inner.lock().expect("result cache lock");
        if inner.generation != generation {
            inner.entries.clear();
            inner.generation = generation;
        }
        match inner.entries.get(key) {
            Some(Slot::Done(reply)) => Lookup::Hit(Arc::clone(reply)),
            Some(Slot::Pending(flight)) => Lookup::Join(Arc::clone(flight)),
            None => {
                if inner.entries.len() >= self.capacity {
                    return Lookup::Bypass;
                }
                let flight = Arc::new(Flight::new());
                inner.entries.insert(key.to_string(), Slot::Pending(Arc::clone(&flight)));
                Lookup::Lead(flight)
            }
        }
    }

    /// Leader completion: hand `reply` to waiting followers, and persist
    /// it only while the generation it was computed at is still current
    /// (otherwise the entry was already cleared — let it go). `None`
    /// un-publishes the pending slot: error replies are shared with
    /// nobody and cached nowhere.
    pub(crate) fn complete(
        &self,
        generation: u64,
        key: &str,
        flight: &Flight,
        reply: Option<Arc<CachedReply>>,
    ) {
        flight.publish(reply.clone());
        let mut inner = self.inner.lock().expect("result cache lock");
        if inner.generation == generation {
            match reply {
                Some(r) => inner.entries.insert(key.to_string(), Slot::Done(r)),
                None => inner.entries.remove(key),
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reply(tag: u64) -> Arc<CachedReply> {
        Arc::new(CachedReply { bytes: Arc::new(vec![tag as u8]) })
    }

    #[test]
    fn hit_after_lead_and_complete() {
        let cache = ResultCache::new(8);
        let flight = match cache.begin(1, "q") {
            Lookup::Lead(f) => f,
            _ => panic!("first lookup must lead"),
        };
        // A concurrent identical request joins the pending flight.
        assert!(matches!(cache.begin(1, "q"), Lookup::Join(_)));
        cache.complete(1, "q", &flight, Some(reply(7)));
        match cache.begin(1, "q") {
            Lookup::Hit(r) => assert_eq!(*r.bytes, vec![7u8]),
            _ => panic!("completed entry must hit"),
        }
        // The flight now answers followers instantly.
        assert!(flight.wait(Duration::from_millis(1)).is_some());
    }

    #[test]
    fn generation_bump_clears_everything() {
        let cache = ResultCache::new(8);
        let flight = match cache.begin(1, "q") {
            Lookup::Lead(f) => f,
            _ => panic!(),
        };
        cache.complete(1, "q", &flight, Some(reply(1)));
        assert!(matches!(cache.begin(1, "q"), Lookup::Hit(_)));
        // New generation: the entry is gone, the caller leads again.
        assert!(matches!(cache.begin(2, "q"), Lookup::Lead(_)));
    }

    #[test]
    fn stale_completion_is_not_persisted() {
        let cache = ResultCache::new(8);
        let flight = match cache.begin(1, "q") {
            Lookup::Lead(f) => f,
            _ => panic!(),
        };
        // The store moved on while the leader executed…
        assert!(matches!(cache.begin(2, "other"), Lookup::Lead(_)));
        cache.complete(1, "q", &flight, Some(reply(1)));
        // …followers still got the reply, but nothing was cached under
        // the retired generation.
        assert!(flight.wait(Duration::from_millis(1)).is_some());
        assert!(matches!(cache.begin(2, "q"), Lookup::Lead(_)));
    }

    #[test]
    fn error_replies_are_shared_with_nobody() {
        let cache = ResultCache::new(8);
        let flight = match cache.begin(1, "q") {
            Lookup::Lead(f) => f,
            _ => panic!(),
        };
        cache.complete(1, "q", &flight, None);
        assert!(flight.wait(Duration::from_millis(1)).is_none());
        assert!(matches!(cache.begin(1, "q"), Lookup::Lead(_)));
    }

    #[test]
    fn capacity_zero_disables_and_full_bypasses() {
        let cache = ResultCache::new(0);
        assert!(matches!(cache.begin(1, "q"), Lookup::Bypass));

        let cache = ResultCache::new(1);
        let flight = match cache.begin(1, "a") {
            Lookup::Lead(f) => f,
            _ => panic!(),
        };
        assert!(matches!(cache.begin(1, "b"), Lookup::Bypass));
        cache.complete(1, "a", &flight, Some(reply(1)));
        assert!(matches!(cache.begin(1, "a"), Lookup::Hit(_)));
    }
}
