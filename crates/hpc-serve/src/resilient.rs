//! Deadline-aware retrying client: the raw [`Client`] wrapped in
//! per-request deadlines, bounded retries with exponential backoff and
//! deterministic jitter, and automatic reconnect-and-rehandshake.
//!
//! ## Retry safety
//!
//! Every request in the serve catalogue is an idempotent read — replaying
//! one after an indeterminate transport failure (the reply may or may not
//! have been computed) cannot corrupt anything, so transport faults are
//! always retriable. Typed server refusals split by whether a retry *can*
//! succeed:
//!
//! | reply | retried? | why |
//! |---|---|---|
//! | transport fault (`Io`, `Closed`, `Truncated`, `Timeout`) | yes, on a fresh connection | queries are idempotent |
//! | `Overloaded` with `retry_after_ms` | yes, after the hint | the cap frees as other work completes |
//! | `Overloaded` without a hint | no | a scan-budget breach costs the same forever |
//! | `Draining` | yes, reconnecting | the drain hint says when |
//! | `Timeout` (server evicted us) | yes, reconnecting | the session is gone, not the server |
//! | `BadRequest`, `UnknownSeries`, `UnsupportedVersion`, `Protocol` | no | deterministic refusals |
//!
//! ## Determinism
//!
//! Backoff jitter comes from [`hpc_tsdb::faults::DetRng`], never from
//! wall-clock entropy: a [`RetryPolicy`] seed fixes the entire backoff
//! schedule, so a failing retry interleaving replays exactly. (Elapsed
//! *time* is still real — deadlines are measured with [`Instant`] — but
//! every *decision* is seed-derived.)

use crate::client::{Client, ClientConfig, ConnectError};
use crate::protocol::{ErrorKind, Request, Response};
use hpc_tsdb::faults::DetRng;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// Retry and deadline policy for a [`ResilientClient`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Attempts per request (first try included). At least 1.
    pub max_attempts: u32,
    /// Backoff before retry `n` grows as `base_backoff * 2^(n-1)`…
    pub base_backoff: Duration,
    /// …capped here. Jitter picks uniformly from the upper half of the
    /// capped interval, so consecutive retries never synchronise.
    pub max_backoff: Duration,
    /// Hard wall-clock ceiling for one `request` call, connects, backoff
    /// sleeps and all. Expiry returns [`ResilientError::DeadlineExceeded`].
    pub request_deadline: Duration,
    /// Seed for the deterministic jitter generator.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_secs(2),
            request_deadline: Duration::from_secs(10),
            seed: 0x5E11_D34D,
        }
    }
}

/// Why a [`ResilientClient::request`] gave up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResilientError {
    /// The per-request deadline expired before a reply was obtained.
    DeadlineExceeded {
        /// Milliseconds elapsed when the deadline fired.
        waited_ms: u64,
        /// Attempts made before giving up.
        attempts: u32,
        /// The last transport/refusal error observed.
        last: String,
    },
    /// Every attempt failed with a retriable error.
    AttemptsExhausted {
        /// Attempts made (= the policy's `max_attempts`).
        attempts: u32,
        /// The last error observed.
        last: String,
    },
    /// The server refused with a typed error a retry cannot fix.
    Refused {
        /// The server's error category.
        kind: ErrorKind,
        /// The server's message.
        message: String,
    },
}

impl std::fmt::Display for ResilientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResilientError::DeadlineExceeded { waited_ms, attempts, last } => write!(
                f,
                "request deadline expired after {waited_ms} ms ({attempts} attempts; last: {last})"
            ),
            ResilientError::AttemptsExhausted { attempts, last } => {
                write!(f, "all {attempts} attempts failed (last: {last})")
            }
            ResilientError::Refused { kind, message } => {
                write!(f, "refused ({kind:?}): {message}")
            }
        }
    }
}

impl std::error::Error for ResilientError {}

/// Counters a [`ResilientClient`] accumulates across its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// `request` calls made.
    pub requests: u64,
    /// Calls that returned a successful (non-`Refused`) reply.
    pub succeeded: u64,
    /// Extra attempts beyond each call's first (i.e. actual retries).
    pub retries: u64,
    /// Reconnect-and-rehandshake cycles performed.
    pub reconnects: u64,
    /// Total milliseconds spent in backoff sleeps.
    pub backoff_ms: u64,
    /// Calls that honoured a server `retry_after_ms` hint at least once.
    pub honoured_retry_after: u64,
    /// Calls that ended `DeadlineExceeded`.
    pub deadline_exceeded: u64,
    /// Calls that ended `AttemptsExhausted`.
    pub exhausted: u64,
    /// Calls that ended `Refused` (typed, non-retriable).
    pub refused: u64,
}

/// What one attempt produced, in retry-decision terms.
enum Attempt {
    /// Boxed so the error paths (`Retry`/`Fatal`) stay small — `Attempt`
    /// rides in `Result::Err` through `ensure_conn`.
    Done(Box<Response>),
    /// Retriable; `reconnect` says whether the connection must be
    /// discarded, `hint_ms` carries a server backoff hint.
    Retry { why: String, reconnect: bool, hint_ms: Option<u64> },
    Fatal { kind: ErrorKind, message: String },
}

/// A [`Client`] with a second life: deadlines, retries and reconnects.
///
/// Single-threaded like the raw client — one socket, one outstanding
/// request. Load generators hold one per session.
pub struct ResilientClient {
    addr: SocketAddr,
    tenant: String,
    config: ClientConfig,
    policy: RetryPolicy,
    rng: DetRng,
    conn: Option<Client>,
    stats: RetryStats,
}

impl ResilientClient {
    /// Wrap `addr` with default socket deadlines and retry policy.
    pub fn new(addr: SocketAddr, tenant: &str) -> ResilientClient {
        Self::with_policy(addr, tenant, ClientConfig::default(), RetryPolicy::default())
    }

    /// Full-control constructor. The connection is opened lazily on the
    /// first request (and re-opened whenever a fault kills it).
    pub fn with_policy(
        addr: SocketAddr,
        tenant: &str,
        config: ClientConfig,
        policy: RetryPolicy,
    ) -> ResilientClient {
        assert!(policy.max_attempts >= 1, "max_attempts must be at least 1");
        ResilientClient {
            addr,
            tenant: tenant.to_string(),
            config,
            policy,
            rng: DetRng::derive(policy.seed, 0),
            conn: None,
            stats: RetryStats::default(),
        }
    }

    /// Lifetime counters.
    pub fn stats(&self) -> RetryStats {
        self.stats
    }

    /// Whether a live (last known good) connection is held.
    pub fn is_connected(&self) -> bool {
        self.conn.is_some()
    }

    /// Drop the held connection (if any); the next request redials and
    /// rehandshakes. Useful for connection cycling — rebalancing across a
    /// restarted server, or resampling a chaos plan that draws per
    /// connection.
    pub fn disconnect(&mut self) {
        self.conn = None;
    }

    /// Backoff before retry `attempt` (1-based): exponential growth capped
    /// at `max_backoff`, jittered into the upper half of the interval by
    /// the deterministic generator.
    fn backoff(&mut self, attempt: u32) -> Duration {
        let base = self.policy.base_backoff.as_millis() as u64;
        let cap = self.policy.max_backoff.as_millis() as u64;
        let exp = base.saturating_mul(1u64 << attempt.saturating_sub(1).min(20)).min(cap).max(1);
        Duration::from_millis(self.rng.range(exp.div_ceil(2), exp))
    }

    /// Sleep `want` clipped to the remaining deadline; `false` when the
    /// deadline has no room left and the caller should give up.
    fn backoff_sleep(&mut self, want: Duration, started: Instant) -> bool {
        let elapsed = started.elapsed();
        if elapsed >= self.policy.request_deadline {
            return false;
        }
        let slept = want.min(self.policy.request_deadline - elapsed);
        self.stats.backoff_ms += slept.as_millis() as u64;
        std::thread::sleep(slept);
        started.elapsed() < self.policy.request_deadline
    }

    /// A connection, reusing the held one or dialing fresh under the
    /// remaining deadline.
    fn ensure_conn(&mut self, remaining: Duration) -> Result<&mut Client, Attempt> {
        if self.conn.is_none() {
            let mut config = self.config;
            config.connect_timeout =
                Some(config.connect_timeout.unwrap_or(remaining).min(remaining));
            config.read_timeout = Some(config.read_timeout.unwrap_or(remaining).min(remaining));
            match Client::try_connect(self.addr, &self.tenant, &config) {
                Ok(client) => {
                    self.stats.reconnects += 1;
                    self.conn = Some(client);
                }
                Err(ConnectError::Transport(e)) => {
                    return Err(Attempt::Retry {
                        why: format!("connect: {e}"),
                        reconnect: true,
                        hint_ms: None,
                    });
                }
                Err(ConnectError::Refused { kind, message, retry_after_ms }) => {
                    return Err(classify_refusal(kind, message, retry_after_ms));
                }
            }
        }
        Ok(self.conn.as_mut().expect("just ensured"))
    }

    /// Issue `request`, retrying per policy until a reply, a fatal typed
    /// refusal, attempt exhaustion, or the request deadline.
    pub fn request(&mut self, request: &Request) -> Result<Response, ResilientError> {
        self.stats.requests += 1;
        let started = Instant::now();
        let deadline = self.policy.request_deadline;
        let mut attempts = 0u32;
        let mut last = String::from("never attempted");
        loop {
            let elapsed = started.elapsed();
            if elapsed >= deadline {
                self.stats.deadline_exceeded += 1;
                return Err(ResilientError::DeadlineExceeded {
                    waited_ms: elapsed.as_millis() as u64,
                    attempts,
                    last,
                });
            }
            if attempts >= self.policy.max_attempts {
                self.stats.exhausted += 1;
                return Err(ResilientError::AttemptsExhausted { attempts, last });
            }
            attempts += 1;
            if attempts > 1 {
                self.stats.retries += 1;
            }

            let outcome = match self.ensure_conn(deadline - elapsed) {
                Ok(client) => match client.request(request) {
                    Ok(Response::Error { kind, message, retry_after_ms }) => {
                        classify_refusal(kind, message, retry_after_ms)
                    }
                    Ok(reply) => Attempt::Done(Box::new(reply)),
                    Err(e) => Attempt::Retry {
                        why: e.to_string(),
                        reconnect: true,
                        hint_ms: None,
                    },
                },
                Err(attempt) => attempt,
            };

            match outcome {
                Attempt::Done(reply) => {
                    self.stats.succeeded += 1;
                    return Ok(*reply);
                }
                Attempt::Fatal { kind, message } => {
                    self.stats.refused += 1;
                    return Err(ResilientError::Refused { kind, message });
                }
                Attempt::Retry { why, reconnect, hint_ms } => {
                    last = why;
                    if reconnect {
                        // The connection (or its framing) is unusable:
                        // drop it so the next attempt rehandshakes.
                        self.conn = None;
                    }
                    let mut wait = self.backoff(attempts);
                    if let Some(hint) = hint_ms {
                        self.stats.honoured_retry_after += 1;
                        wait = wait.max(Duration::from_millis(hint));
                    }
                    if !self.backoff_sleep(wait, started) {
                        self.stats.deadline_exceeded += 1;
                        return Err(ResilientError::DeadlineExceeded {
                            waited_ms: started.elapsed().as_millis() as u64,
                            attempts,
                            last,
                        });
                    }
                }
            }
        }
    }

    /// Run `entries` as one pipelined [`Request::Batch`] frame under the
    /// full retry machinery, unwrapping the per-entry replies.
    ///
    /// Retry safety: every batchable entry is a read-only data query, so
    /// re-sending the whole frame is as safe as re-sending one query.
    /// Whole-frame refusals (`Overloaded` with a hint, `Draining`,
    /// eviction) retry exactly like single requests; *per-entry* typed
    /// errors are results, not refusals — they come back in their slot
    /// and are never retried here.
    pub fn request_batch(
        &mut self,
        entries: Vec<Request>,
    ) -> Result<Vec<Response>, ResilientError> {
        match self.request(&Request::Batch { entries })? {
            Response::Batch { entries } => Ok(entries),
            other => Err(ResilientError::Refused {
                kind: ErrorKind::Protocol,
                message: format!("expected a Batch reply, got {other:?}"),
            }),
        }
    }
}

/// Sort one typed server refusal into the retry-safety matrix.
fn classify_refusal(kind: ErrorKind, message: String, retry_after_ms: Option<u64>) -> Attempt {
    match kind {
        // Transient: the session cap / in-flight cap / drain frees up.
        // Overloaded *without* a hint is a scan-budget breach — permanent
        // for this request shape.
        ErrorKind::Overloaded => match retry_after_ms {
            Some(hint) => Attempt::Retry {
                why: format!("overloaded: {message}"),
                reconnect: false,
                hint_ms: Some(hint),
            },
            None => Attempt::Fatal { kind, message },
        },
        ErrorKind::Draining => Attempt::Retry {
            why: format!("draining: {message}"),
            reconnect: true,
            hint_ms: retry_after_ms,
        },
        // The server evicted this session for slowness; the server itself
        // is alive, so reconnect and try again.
        ErrorKind::Timeout => Attempt::Retry {
            why: format!("evicted: {message}"),
            reconnect: true,
            hint_ms: retry_after_ms,
        },
        ErrorKind::BadRequest
        | ErrorKind::UnknownSeries
        | ErrorKind::UnsupportedVersion
        | ErrorKind::Protocol => Attempt::Fatal { kind, message },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let addr: SocketAddr = "127.0.0.1:9".parse().unwrap();
        let mk = || ResilientClient::new(addr, "t");
        let (mut a, mut b) = (mk(), mk());
        for attempt in 1..8 {
            let (x, y) = (a.backoff(attempt), b.backoff(attempt));
            assert_eq!(x, y, "same seed, same schedule");
            let cap = a.policy.max_backoff;
            assert!(x <= cap, "attempt {attempt}: {x:?} over cap");
            assert!(x >= Duration::from_millis(1));
        }
        // A different seed gives a different schedule.
        let mut c = ResilientClient::with_policy(
            addr,
            "t",
            ClientConfig::default(),
            RetryPolicy { seed: 99, ..RetryPolicy::default() },
        );
        let mut a2 = mk();
        assert!(
            (1..8).any(|n| c.backoff(n) != a2.backoff(n)),
            "distinct seeds should decorrelate jitter"
        );
    }

    #[test]
    fn refusal_classification_matches_the_matrix() {
        assert!(matches!(
            classify_refusal(ErrorKind::Overloaded, "caps".into(), Some(10)),
            Attempt::Retry { reconnect: false, hint_ms: Some(10), .. }
        ));
        assert!(matches!(
            classify_refusal(ErrorKind::Overloaded, "budget".into(), None),
            Attempt::Fatal { .. }
        ));
        assert!(matches!(
            classify_refusal(ErrorKind::Draining, "bye".into(), Some(50)),
            Attempt::Retry { reconnect: true, .. }
        ));
        assert!(matches!(
            classify_refusal(ErrorKind::Timeout, "slow".into(), None),
            Attempt::Retry { reconnect: true, .. }
        ));
        for kind in [
            ErrorKind::BadRequest,
            ErrorKind::UnknownSeries,
            ErrorKind::UnsupportedVersion,
            ErrorKind::Protocol,
        ] {
            assert!(matches!(
                classify_refusal(kind, "no".into(), Some(1)),
                Attempt::Fatal { .. }
            ));
        }
    }
}
