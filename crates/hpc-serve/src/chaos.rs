//! A deterministic chaos proxy: a TCP man-in-the-middle that injects
//! network weather — latency, mid-frame stalls, partial frames followed
//! by silence, byte truncation and mid-request disconnects — between a
//! client and an `hpc-serve` server.
//!
//! Every fault decision is drawn from a seeded
//! [`hpc_tsdb::faults::DetRng`] keyed by the connection's accept
//! index: equal `(plan, connection order)` gives equal fault schedules,
//! so a failing chaos interleaving replays exactly. No wall-clock
//! randomness anywhere — the only real time in the proxy is the injected
//! delays themselves.
//!
//! The proxy is a *test harness*, but a production-shaped one: it speaks
//! raw TCP, never inspects payloads, and forwards byte streams through
//! two pump threads per connection. Faults are applied to one direction
//! of one connection:
//!
//! | fault | what the victim sees |
//! |---|---|
//! | `Delay` | every forwarded chunk arrives late |
//! | `Stall` | a frame freezes mid-byte for a while, then completes |
//! | `Truncate` | a frame's tail never arrives (silence, not close) |
//! | `Disconnect` | the connection dies mid-request |
//!
//! `Truncate` is the cruellest: the receiver holds a partial frame and an
//! open, silent socket — exactly the shape the server's idle deadline and
//! the client's read timeout exist to kill.

use hpc_tsdb::faults::DetRng;
use parking_lot::Mutex;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Granularity of stop-flag polling in pumps and injected sleeps.
const TICK: Duration = Duration::from_millis(20);

/// A seeded description of the network weather to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosPlan {
    /// Seed for every fault decision.
    pub seed: u64,
    /// Percent of connections that receive a fault (0 = a clean proxy).
    pub fault_pct: u64,
    /// Relative weight of latency faults.
    pub delay_weight: u64,
    /// Relative weight of mid-frame stall faults.
    pub stall_weight: u64,
    /// Relative weight of partial-frame-then-silence faults.
    pub truncate_weight: u64,
    /// Relative weight of mid-request disconnect faults.
    pub disconnect_weight: u64,
    /// Injected latency per forwarded chunk, `[lo, hi]` ms.
    pub delay_ms: (u64, u64),
    /// Mid-frame stall duration, `[lo, hi]` ms.
    pub stall_ms: (u64, u64),
    /// Byte offset at which a stall/truncate/disconnect triggers,
    /// `[lo, hi]` — small values hit handshakes, larger ones requests.
    pub fault_after_bytes: (u64, u64),
}

impl ChaosPlan {
    /// The default storm: just under half of all connections faulted,
    /// all four fault kinds equally likely, stalls short enough that a
    /// patient client survives them and truncates/disconnects that force
    /// a retry.
    pub fn storm(seed: u64) -> ChaosPlan {
        ChaosPlan {
            seed,
            fault_pct: 45,
            delay_weight: 1,
            stall_weight: 1,
            truncate_weight: 1,
            disconnect_weight: 1,
            delay_ms: (5, 40),
            stall_ms: (120, 350),
            fault_after_bytes: (1, 160),
        }
    }

    /// A transparent proxy: no faults at all (the control arm).
    pub fn clean(seed: u64) -> ChaosPlan {
        ChaosPlan { fault_pct: 0, ..ChaosPlan::storm(seed) }
    }

    /// Every connection dies mid-request.
    pub fn disconnect_storm(seed: u64) -> ChaosPlan {
        ChaosPlan {
            fault_pct: 100,
            delay_weight: 0,
            stall_weight: 0,
            truncate_weight: 0,
            disconnect_weight: 1,
            ..ChaosPlan::storm(seed)
        }
    }

    /// Every connection loses a frame tail to silence.
    pub fn truncate_storm(seed: u64) -> ChaosPlan {
        ChaosPlan {
            fault_pct: 100,
            delay_weight: 0,
            stall_weight: 0,
            truncate_weight: 1,
            disconnect_weight: 0,
            ..ChaosPlan::storm(seed)
        }
    }

    /// Every connection stalls mid-frame for `stall_ms`.
    pub fn stall_storm(seed: u64, stall_ms: (u64, u64)) -> ChaosPlan {
        ChaosPlan {
            fault_pct: 100,
            delay_weight: 0,
            stall_weight: 1,
            truncate_weight: 0,
            disconnect_weight: 0,
            stall_ms,
            ..ChaosPlan::storm(seed)
        }
    }

    /// The deterministic fault decision for connection `conn` (by accept
    /// order): which fault, with what parameters, in which direction.
    fn draw(&self, conn: u64) -> (Fault, Direction) {
        let mut rng = DetRng::derive(self.seed, conn);
        // Fixed draw order keeps schedules aligned across plan tweaks.
        let faulted = rng.chance_pct(self.fault_pct);
        let total = self.delay_weight
            + self.stall_weight
            + self.truncate_weight
            + self.disconnect_weight;
        if !faulted || total == 0 {
            return (Fault::None, Direction::ClientToServer);
        }
        let pick = rng.below(total);
        let after = rng.range(self.fault_after_bytes.0, self.fault_after_bytes.1);
        let delay = rng.range(self.delay_ms.0, self.delay_ms.1);
        let stall = rng.range(self.stall_ms.0, self.stall_ms.1);
        let dir = if rng.below(2) == 0 {
            Direction::ClientToServer
        } else {
            Direction::ServerToClient
        };
        let fault = if pick < self.delay_weight {
            Fault::Delay { ms: delay }
        } else if pick < self.delay_weight + self.stall_weight {
            Fault::Stall { after_bytes: after, ms: stall }
        } else if pick < self.delay_weight + self.stall_weight + self.truncate_weight {
            Fault::Truncate { after_bytes: after }
        } else {
            Fault::Disconnect { after_bytes: after }
        };
        (fault, dir)
    }
}

/// One injected fault, fully parameterised.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fault {
    None,
    Delay { ms: u64 },
    Stall { after_bytes: u64, ms: u64 },
    Truncate { after_bytes: u64 },
    Disconnect { after_bytes: u64 },
}

/// Which byte stream of a proxied connection carries the fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    ClientToServer,
    ServerToClient,
}

/// Counters the proxy accumulates; faults are counted when *assigned*
/// (deterministic), bytes when forwarded.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Connections proxied.
    pub connections: u64,
    /// Connections assigned no fault.
    pub clean: u64,
    /// Connections assigned a latency fault.
    pub delayed: u64,
    /// Connections assigned a mid-frame stall.
    pub stalled: u64,
    /// Connections assigned a partial-frame truncation.
    pub truncated: u64,
    /// Connections assigned a mid-request disconnect.
    pub disconnected: u64,
    /// Total payload bytes forwarded (both directions).
    pub bytes_forwarded: u64,
}

impl ChaosStats {
    /// Connections that carried any fault.
    pub fn faults_injected(&self) -> u64 {
        self.delayed + self.stalled + self.truncated + self.disconnected
    }
}

#[derive(Default)]
struct AtomicStats {
    connections: AtomicU64,
    clean: AtomicU64,
    delayed: AtomicU64,
    stalled: AtomicU64,
    truncated: AtomicU64,
    disconnected: AtomicU64,
    bytes_forwarded: AtomicU64,
}

struct ProxyInner {
    upstream: SocketAddr,
    plan: ChaosPlan,
    stopping: AtomicBool,
    stats: AtomicStats,
    /// Socket clones for force-close at shutdown (client and upstream
    /// halves of every live connection).
    socks: Mutex<Vec<TcpStream>>,
    pumps: Mutex<Vec<JoinHandle<()>>>,
}

/// A running chaos proxy bound to a local TCP port.
///
/// Dropping it closes every proxied connection and joins all threads.
pub struct ChaosProxy {
    inner: Arc<ProxyInner>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Bind `127.0.0.1:0` and start proxying to `upstream` under `plan`.
    pub fn start(upstream: SocketAddr, plan: ChaosPlan) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let inner = Arc::new(ProxyInner {
            upstream,
            plan,
            stopping: AtomicBool::new(false),
            stats: AtomicStats::default(),
            socks: Mutex::new(Vec::new()),
            pumps: Mutex::new(Vec::new()),
        });
        let accept = {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || {
                let mut conn = 0u64;
                for stream in listener.incoming() {
                    if inner.stopping.load(Ordering::Acquire) {
                        break;
                    }
                    let client = match stream {
                        Ok(s) => s,
                        Err(_) => continue,
                    };
                    let id = conn;
                    conn += 1;
                    proxy_conn(&inner, client, id);
                }
            })
        };
        Ok(ChaosProxy { inner, addr, accept: Some(accept) })
    }

    /// The address clients should connect to instead of the server.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ChaosStats {
        let s = &self.inner.stats;
        ChaosStats {
            connections: s.connections.load(Ordering::Relaxed),
            clean: s.clean.load(Ordering::Relaxed),
            delayed: s.delayed.load(Ordering::Relaxed),
            stalled: s.stalled.load(Ordering::Relaxed),
            truncated: s.truncated.load(Ordering::Relaxed),
            disconnected: s.disconnected.load(Ordering::Relaxed),
            bytes_forwarded: s.bytes_forwarded.load(Ordering::Relaxed),
        }
    }

    /// Stop accepting, sever every proxied connection, join all threads.
    /// Idempotent; runs on drop.
    pub fn shutdown(&mut self) {
        if self.inner.stopping.swap(true, Ordering::AcqRel) {
            return;
        }
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for sock in self.inner.socks.lock().drain(..) {
            let _ = sock.shutdown(Shutdown::Both);
        }
        let pumps = std::mem::take(&mut *self.inner.pumps.lock());
        for p in pumps {
            let _ = p.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Accept-side setup for one proxied connection: dial upstream, draw the
/// fault, spawn the two pumps.
fn proxy_conn(inner: &Arc<ProxyInner>, client: TcpStream, id: u64) {
    inner.stats.connections.fetch_add(1, Ordering::Relaxed);
    let (fault, dir) = inner.plan.draw(id);
    match fault {
        Fault::None => inner.stats.clean.fetch_add(1, Ordering::Relaxed),
        Fault::Delay { .. } => inner.stats.delayed.fetch_add(1, Ordering::Relaxed),
        Fault::Stall { .. } => inner.stats.stalled.fetch_add(1, Ordering::Relaxed),
        Fault::Truncate { .. } => inner.stats.truncated.fetch_add(1, Ordering::Relaxed),
        Fault::Disconnect { .. } => inner.stats.disconnected.fetch_add(1, Ordering::Relaxed),
    };
    let upstream = match TcpStream::connect_timeout(&inner.upstream, Duration::from_secs(5)) {
        Ok(s) => s,
        Err(_) => {
            // Upstream gone (drained/stopped): sever the client side so it
            // sees a clean close, not a hang.
            let _ = client.shutdown(Shutdown::Both);
            return;
        }
    };
    let _ = client.set_nodelay(true);
    let _ = upstream.set_nodelay(true);
    for s in [&client, &upstream] {
        let _ = s.set_read_timeout(Some(TICK));
        let _ = s.set_write_timeout(Some(Duration::from_secs(5)));
    }
    {
        let mut socks = inner.socks.lock();
        if let Ok(c) = client.try_clone() {
            socks.push(c);
        }
        if let Ok(u) = upstream.try_clone() {
            socks.push(u);
        }
    }
    let (c2s_fault, s2c_fault) = match dir {
        Direction::ClientToServer => (fault, Fault::None),
        Direction::ServerToClient => (Fault::None, fault),
    };
    let mut pumps = inner.pumps.lock();
    for (src, dst, fault) in [
        (client.try_clone(), upstream.try_clone(), c2s_fault),
        (upstream.try_clone(), client.try_clone(), s2c_fault),
    ] {
        let (Ok(src), Ok(dst)) = (src, dst) else {
            let _ = client.shutdown(Shutdown::Both);
            let _ = upstream.shutdown(Shutdown::Both);
            return;
        };
        let inner = Arc::clone(inner);
        pumps.push(std::thread::spawn(move || pump(&inner, src, dst, fault)));
    }
}

/// Sleep `ms` in stop-aware ticks.
fn chaos_sleep(inner: &ProxyInner, ms: u64) {
    let mut left = Duration::from_millis(ms);
    while !left.is_zero() && !inner.stopping.load(Ordering::Acquire) {
        let step = left.min(TICK);
        std::thread::sleep(step);
        left -= step;
    }
}

/// Forward `src` → `dst` applying `fault`. Exits when either side closes,
/// the proxy stops, or the fault severs the stream.
fn pump(inner: &ProxyInner, mut src: TcpStream, mut dst: TcpStream, fault: Fault) {
    let mut buf = [0u8; 4096];
    let mut sent = 0u64;
    let mut stalled = false;
    let mut blackhole = false;
    loop {
        if inner.stopping.load(Ordering::Acquire) {
            break;
        }
        let n = match src.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
                ) =>
            {
                continue;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        };
        let chunk = &buf[..n];
        if blackhole {
            // Partial-frame silence: keep reading so the sender never
            // blocks, deliver nothing.
            continue;
        }
        match fault {
            Fault::None => {
                if forward(inner, &mut dst, chunk).is_err() {
                    break;
                }
            }
            Fault::Delay { ms } => {
                chaos_sleep(inner, ms);
                if forward(inner, &mut dst, chunk).is_err() {
                    break;
                }
            }
            Fault::Stall { after_bytes, ms } => {
                if !stalled && sent + n as u64 > after_bytes {
                    // Deliver up to the stall point, freeze mid-frame,
                    // then complete.
                    let split = (after_bytes.saturating_sub(sent)) as usize;
                    if forward(inner, &mut dst, &chunk[..split]).is_err() {
                        break;
                    }
                    chaos_sleep(inner, ms);
                    stalled = true;
                    if forward(inner, &mut dst, &chunk[split..]).is_err() {
                        break;
                    }
                } else if forward(inner, &mut dst, chunk).is_err() {
                    break;
                }
            }
            Fault::Truncate { after_bytes } => {
                let allow = (after_bytes.saturating_sub(sent)) as usize;
                if allow > 0 && forward(inner, &mut dst, &chunk[..allow.min(n)]).is_err() {
                    break;
                }
                if sent + n as u64 >= after_bytes {
                    blackhole = true;
                }
            }
            Fault::Disconnect { after_bytes } => {
                let allow = (after_bytes.saturating_sub(sent)) as usize;
                if allow > 0 && forward(inner, &mut dst, &chunk[..allow.min(n)]).is_err() {
                    break;
                }
                if sent + n as u64 >= after_bytes {
                    let _ = src.shutdown(Shutdown::Both);
                    let _ = dst.shutdown(Shutdown::Both);
                    return;
                }
            }
        }
        sent += n as u64;
    }
    // One side is done: sever both so the peer pump exits too.
    let _ = src.shutdown(Shutdown::Both);
    let _ = dst.shutdown(Shutdown::Both);
}

/// Write a chunk counting forwarded bytes.
fn forward(inner: &ProxyInner, dst: &mut TcpStream, chunk: &[u8]) -> std::io::Result<()> {
    if chunk.is_empty() {
        return Ok(());
    }
    dst.write_all(chunk)?;
    inner.stats.bytes_forwarded.fetch_add(chunk.len() as u64, Ordering::Relaxed);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_draws_are_deterministic_and_respect_weights() {
        let plan = ChaosPlan::storm(0xC4A0_5EED);
        for conn in 0..64 {
            assert_eq!(plan.draw(conn), plan.draw(conn), "conn {conn} draw must be stable");
        }
        let clean = ChaosPlan::clean(1);
        assert!((0..64).all(|c| matches!(clean.draw(c).0, Fault::None)));
        let disco = ChaosPlan::disconnect_storm(2);
        assert!((0..64).all(|c| matches!(disco.draw(c).0, Fault::Disconnect { .. })));
        let trunc = ChaosPlan::truncate_storm(3);
        assert!((0..64).all(|c| matches!(trunc.draw(c).0, Fault::Truncate { .. })));
        let stall = ChaosPlan::stall_storm(4, (10, 20));
        assert!((0..64).all(|c| match stall.draw(c).0 {
            Fault::Stall { ms, .. } => (10..=20).contains(&ms),
            _ => false,
        }));
        // The storm actually mixes kinds.
        let storm = ChaosPlan::storm(5);
        let kinds: std::collections::HashSet<_> = (0..256)
            .map(|c| std::mem::discriminant(&storm.draw(c).0))
            .collect();
        assert!(kinds.len() >= 4, "a 256-connection storm should show >= 4 fault kinds");
    }
}
