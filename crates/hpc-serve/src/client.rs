//! A small blocking client: connect, handshake, then request/response.
//!
//! The client is deliberately thin — one socket, one outstanding request —
//! because the concurrency story lives server-side. Load generators open
//! many `Client`s, one per simulated session.
//!
//! Every socket operation is bounded: [`ClientConfig`] carries connect,
//! read and write timeouts (defaulted — a raw `Client` can no longer hang
//! forever on a dead or stalled server), and an expired deadline surfaces
//! as a typed [`FrameError::Timeout`]. Callers that genuinely want an
//! unbounded wait must opt in explicitly via [`ClientConfig::unbounded`].
//! Retry/backoff policy deliberately does *not* live here — that is
//! [`ResilientClient`](crate::resilient::ResilientClient)'s job.

use crate::protocol::{
    recv_message, send_message, ErrorKind, FrameError, Request, Response, WireWindow,
    PROTOCOL_VERSION,
};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Socket deadlines for one client connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientConfig {
    /// TCP connect deadline. `None` = OS default (minutes — opt-in only).
    pub connect_timeout: Option<Duration>,
    /// Deadline for one reply frame to *begin* arriving. `None` = forever.
    pub read_timeout: Option<Duration>,
    /// Deadline for a request frame write to drain. `None` = forever.
    pub write_timeout: Option<Duration>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Some(Duration::from_secs(5)),
            read_timeout: Some(Duration::from_secs(10)),
            write_timeout: Some(Duration::from_secs(10)),
        }
    }
}

impl ClientConfig {
    /// The pre-timeout behaviour: block forever on connect, read and
    /// write. The escape hatch for debuggers and soak tests.
    pub fn unbounded() -> Self {
        ClientConfig { connect_timeout: None, read_timeout: None, write_timeout: None }
    }
}

/// Why [`Client::try_connect`] failed: the transport broke, or the server
/// answered the handshake with a typed refusal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConnectError {
    /// The socket or framing layer failed before a typed reply arrived.
    Transport(FrameError),
    /// The server refused the handshake with a typed error frame
    /// (wrong version, session caps, draining, …).
    Refused {
        /// The server's error category.
        kind: ErrorKind,
        /// The server's message.
        message: String,
        /// Back-off hint for transient refusals.
        retry_after_ms: Option<u64>,
    },
}

impl std::fmt::Display for ConnectError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConnectError::Transport(e) => write!(f, "connect failed: {e}"),
            ConnectError::Refused { kind, message, .. } => {
                write!(f, "handshake refused ({kind:?}): {message}")
            }
        }
    }
}

impl std::error::Error for ConnectError {}

/// A connected, handshaken session.
pub struct Client {
    stream: TcpStream,
    server: String,
}

fn io_err(e: std::io::Error) -> FrameError {
    match e.kind() {
        std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => {
            FrameError::Timeout { waited_ms: 0 }
        }
        _ => FrameError::Io(e.to_string()),
    }
}

/// Open a TCP connection under `config.connect_timeout`, trying every
/// resolved address in order.
fn open_stream(addr: impl ToSocketAddrs, config: &ClientConfig) -> Result<TcpStream, FrameError> {
    let addrs: Vec<SocketAddr> =
        addr.to_socket_addrs().map_err(|e| FrameError::Io(e.to_string()))?.collect();
    if addrs.is_empty() {
        return Err(FrameError::Io("address resolved to nothing".into()));
    }
    let mut last = FrameError::Io("unreachable".into());
    for a in addrs {
        let attempt = match config.connect_timeout {
            Some(t) => TcpStream::connect_timeout(&a, t),
            None => TcpStream::connect(a),
        };
        match attempt {
            Ok(stream) => {
                stream.set_nodelay(true).map_err(io_err)?;
                stream.set_read_timeout(config.read_timeout).map_err(io_err)?;
                stream.set_write_timeout(config.write_timeout).map_err(io_err)?;
                return Ok(stream);
            }
            Err(e) => last = io_err(e),
        }
    }
    Err(last)
}

impl Client {
    /// Connect to `addr` under [`ClientConfig::default`] deadlines and
    /// complete the version handshake as `tenant`.
    ///
    /// A typed server-side refusal (wrong version, session caps) surfaces
    /// as [`FrameError::Malformed`] carrying the server's message; use
    /// [`Client::try_connect`] to receive the refusal typed.
    pub fn connect(addr: impl ToSocketAddrs, tenant: &str) -> Result<Client, FrameError> {
        Self::connect_with(addr, tenant, &ClientConfig::default())
    }

    /// [`Client::connect`] with explicit deadlines.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        tenant: &str,
        config: &ClientConfig,
    ) -> Result<Client, FrameError> {
        Self::try_connect(addr, tenant, config).map_err(|e| match e {
            ConnectError::Transport(e) => e,
            ConnectError::Refused { kind, message, .. } => {
                FrameError::Malformed(format!("handshake refused ({kind:?}): {message}"))
            }
        })
    }

    /// Connect and handshake, keeping a typed refusal distinguishable
    /// from a transport failure — the entry point retry layers need.
    pub fn try_connect(
        addr: impl ToSocketAddrs,
        tenant: &str,
        config: &ClientConfig,
    ) -> Result<Client, ConnectError> {
        let mut stream = open_stream(addr, config).map_err(ConnectError::Transport)?;
        send_message(
            &mut stream,
            &Request::Hello { version: PROTOCOL_VERSION, tenant: tenant.to_string() },
        )
        .map_err(ConnectError::Transport)?;
        match recv_message::<Response>(&mut stream).map_err(ConnectError::Transport)? {
            Response::HelloAck { server, .. } => Ok(Client { stream, server }),
            Response::Error { kind, message, retry_after_ms } => {
                Err(ConnectError::Refused { kind, message, retry_after_ms })
            }
            other => Err(ConnectError::Transport(FrameError::Malformed(format!(
                "unexpected handshake reply: {other:?}"
            )))),
        }
    }

    /// The server name reported during the handshake.
    pub fn server_name(&self) -> &str {
        &self.server
    }

    /// Send one request and wait for its reply. A stalled server surfaces
    /// as [`FrameError::Timeout`] once the read deadline expires.
    pub fn request(&mut self, request: &Request) -> Result<Response, FrameError> {
        send_message(&mut self.stream, request)?;
        recv_message(&mut self.stream)
    }

    /// Pipeline `requests` on this session: write every frame
    /// back-to-back, then collect the replies in order. The server
    /// processes a session's frames sequentially, so pipelining changes
    /// *when* frames travel (one write burst, one read burst — a single
    /// round trip of latency for N requests) but not what they return.
    ///
    /// Any transport error abandons the remaining replies: after a torn
    /// read the stream is no longer frame-aligned and the session should
    /// be dropped, exactly as for [`Client::request`].
    pub fn request_pipelined(
        &mut self,
        requests: &[Request],
    ) -> Result<Vec<Response>, FrameError> {
        for request in requests {
            send_message(&mut self.stream, request)?;
        }
        let mut replies = Vec::with_capacity(requests.len());
        for _ in requests {
            replies.push(recv_message(&mut self.stream)?);
        }
        Ok(replies)
    }

    /// Run `entries` as one [`Request::Batch`] frame and unwrap the
    /// per-entry replies. The outer reply is an `Err` when it was not a
    /// `Batch` — a whole-frame refusal (`Overloaded`, `BadRequest` for an
    /// empty or oversized batch) or a protocol failure.
    pub fn request_batch(&mut self, entries: Vec<Request>) -> Result<Vec<Response>, Box<Response>> {
        match self.request(&Request::Batch { entries }) {
            Ok(Response::Batch { entries }) => Ok(entries),
            Ok(other) => Err(Box::new(other)),
            Err(e) => Err(Box::new(Response::error(
                crate::protocol::ErrorKind::Protocol,
                e.to_string(),
            ))),
        }
    }

    /// `Windows` convenience: returns the window list, or the reply that
    /// was not one (typed errors included) as the `Err` side.
    pub fn windows(
        &mut self,
        series: &str,
        from: i64,
        to: i64,
        step: i64,
        op: crate::protocol::WireOp,
    ) -> Result<Vec<WireWindow>, Box<Response>> {
        match self.request(&Request::Windows { series: series.to_string(), from, to, step, op }) {
            Ok(Response::Windows { windows }) => Ok(windows),
            Ok(other) => Err(Box::new(other)),
            Err(e) => Err(Box::new(Response::error(
                crate::protocol::ErrorKind::Protocol,
                e.to_string(),
            ))),
        }
    }
}
