//! A small blocking client: connect, handshake, then request/response.
//!
//! The client is deliberately thin — one socket, one outstanding request —
//! because the concurrency story lives server-side. Load generators open
//! many `Client`s, one per simulated session.

use crate::protocol::{
    recv_message, send_message, FrameError, Request, Response, WireWindow, PROTOCOL_VERSION,
};
use std::net::{TcpStream, ToSocketAddrs};

/// A connected, handshaken session.
pub struct Client {
    stream: TcpStream,
    server: String,
}

impl Client {
    /// Connect to `addr` and complete the version handshake as `tenant`.
    ///
    /// A typed server-side refusal (wrong version, session caps) surfaces
    /// as [`FrameError::Malformed`] carrying the server's message.
    pub fn connect(addr: impl ToSocketAddrs, tenant: &str) -> Result<Client, FrameError> {
        let mut stream = TcpStream::connect(addr).map_err(|e| FrameError::Io(e.to_string()))?;
        stream.set_nodelay(true).map_err(|e| FrameError::Io(e.to_string()))?;
        send_message(
            &mut stream,
            &Request::Hello { version: PROTOCOL_VERSION, tenant: tenant.to_string() },
        )?;
        match recv_message::<Response>(&mut stream)? {
            Response::HelloAck { server, .. } => Ok(Client { stream, server }),
            Response::Error { kind, message } => {
                Err(FrameError::Malformed(format!("handshake refused ({kind:?}): {message}")))
            }
            other => Err(FrameError::Malformed(format!("unexpected handshake reply: {other:?}"))),
        }
    }

    /// The server name reported during the handshake.
    pub fn server_name(&self) -> &str {
        &self.server
    }

    /// Send one request and wait for its reply.
    pub fn request(&mut self, request: &Request) -> Result<Response, FrameError> {
        send_message(&mut self.stream, request)?;
        recv_message(&mut self.stream)
    }

    /// `Windows` convenience: returns the window list, or the reply that
    /// was not one (typed errors included) as the `Err` side.
    pub fn windows(
        &mut self,
        series: &str,
        from: i64,
        to: i64,
        step: i64,
        op: crate::protocol::WireOp,
    ) -> Result<Vec<WireWindow>, Box<Response>> {
        match self.request(&Request::Windows { series: series.to_string(), from, to, step, op }) {
            Ok(Response::Windows { windows }) => Ok(windows),
            Ok(other) => Err(Box::new(other)),
            Err(e) => Err(Box::new(Response::Error {
                kind: crate::protocol::ErrorKind::Protocol,
                message: e.to_string(),
            })),
        }
    }
}
