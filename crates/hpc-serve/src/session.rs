//! Session admission and per-tenant budgets.
//!
//! Admission happens at two points. **Session admission** runs once per
//! connection after the handshake: the global and per-tenant session caps
//! are checked, and a refused connection gets one typed
//! [`ErrorKind::Overloaded`](crate::protocol::ErrorKind::Overloaded) frame
//! and a close. **Query admission** runs per request: the global and
//! per-tenant in-flight caps bound concurrency (backpressure by rejection,
//! never by unbounded queueing — a client that wants to queue holds its own
//! queue), and the per-query scan budget rejects requests whose estimated
//! sample cost exceeds the tenant's ceiling *before* any chunk is decoded.
//!
//! Every rejection is graceful: a typed `Overloaded` response on an
//! otherwise healthy session, which stays open for cheaper queries.

use crate::cache::ResultCache;
use crate::protocol::{TenantSnapshot, WireQueryStats};
use hpc_tsdb::QueryStats;
use parking_lot::Mutex;
use sim_core::stats::Histogram;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::time::Duration;

/// Time-based defenses for one server: how long a session may sit idle,
/// how long a frame may take to arrive, and how shutdown drains.
///
/// All deadlines are enforced with a polling read whose granularity is
/// [`TimeoutConfig::poll_tick`] — a deadline is therefore honoured to
/// within one tick, and partial frame progress never resets it (the
/// slow-loris defense: a client dribbling one byte per interval is
/// evicted just like a silent one).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimeoutConfig {
    /// A virgin connection must complete its `Hello` within this.
    pub handshake_deadline: Duration,
    /// A handshaken session must deliver each complete request frame
    /// within this, measured from when the server starts waiting for it.
    /// Sessions over the deadline are evicted with a typed `Timeout`
    /// error frame (best-effort) and counted in `sessions_evicted`.
    pub idle_deadline: Duration,
    /// Socket write deadline for reply frames; a session that stops
    /// draining its replies is evicted when a write blocks this long.
    pub write_timeout: Duration,
    /// Granularity of the deadline polling read (and of drain checks).
    pub poll_tick: Duration,
    /// Grace period [`Server::drain`](crate::server::Server::drain) waits
    /// for in-flight sessions before force-closing them; also the
    /// `retry_after_ms` hint carried by `Draining` error frames.
    pub drain_deadline: Duration,
}

impl Default for TimeoutConfig {
    fn default() -> Self {
        TimeoutConfig {
            handshake_deadline: Duration::from_secs(10),
            idle_deadline: Duration::from_secs(60),
            write_timeout: Duration::from_secs(10),
            poll_tick: Duration::from_millis(25),
            drain_deadline: Duration::from_secs(5),
        }
    }
}

/// Per-tenant resource ceilings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantBudget {
    /// Concurrent sessions (connections) the tenant may hold.
    pub max_sessions: u32,
    /// Concurrent queries the tenant may have executing.
    pub max_in_flight: u32,
    /// Estimated samples one query may scan; a request estimated above
    /// this is rejected `Overloaded` before any decode happens.
    pub max_samples_per_query: u64,
}

impl Default for TenantBudget {
    fn default() -> Self {
        TenantBudget { max_sessions: 64, max_in_flight: 16, max_samples_per_query: 50_000_000 }
    }
}

/// Server-wide admission configuration.
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Concurrent sessions across every tenant.
    pub max_sessions: u32,
    /// Concurrent queries across every tenant.
    pub max_in_flight: u32,
    /// Budget for tenants without an explicit entry.
    pub default_budget: TenantBudget,
    /// Per-tenant overrides as `(tenant, budget)` pairs.
    pub tenant_budgets: Vec<(String, TenantBudget)>,
    /// Back-off hint (`retry_after_ms`) carried by *transient*
    /// `Overloaded` rejections — session and in-flight caps, which free up
    /// as other work completes. Scan-budget rejections carry no hint:
    /// retrying the identical query can never succeed.
    pub retry_after_ms: u64,
    /// Distinct data-query results each tenant's result cache may hold at
    /// one generation. `0` disables result caching (and with it
    /// single-flight coalescing) entirely.
    pub result_cache_capacity: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_sessions: 256,
            max_in_flight: 64,
            default_budget: TenantBudget::default(),
            tenant_budgets: Vec::new(),
            retry_after_ms: 25,
            result_cache_capacity: 256,
        }
    }
}

/// Latency histogram shape: 5 µs bins to 100 ms, overflow clamped above.
/// Percentiles come from [`Histogram::quantile`], so a tenant's replies
/// cost O(1) memory no matter how many queries it issues.
const LATENCY_HI_US: f64 = 100_000.0;
const LATENCY_BINS: usize = 20_000;

/// Why query admission refused a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reject {
    /// The global or tenant in-flight cap is saturated.
    InFlight,
    /// The estimated scan cost exceeds the tenant's per-query budget.
    ScanBudget {
        /// The estimate that tripped the ceiling.
        estimated: u64,
        /// The tenant's ceiling.
        limit: u64,
    },
}

/// Mutable per-tenant state: admission counters, served/rejected totals,
/// the latency histogram and the folded per-tenant [`QueryStats`].
pub(crate) struct TenantState {
    name: String,
    budget: TenantBudget,
    sessions: AtomicU32,
    in_flight: AtomicU32,
    served: AtomicU64,
    rejected_overloaded: AtomicU64,
    rejected_budget: AtomicU64,
    protocol_errors: AtomicU64,
    result_cache_hits: AtomicU64,
    result_cache_misses: AtomicU64,
    coalesced: AtomicU64,
    latency_us: Mutex<Histogram>,
    query: Mutex<QueryStats>,
    /// Generation-keyed result cache; per-tenant, so cached replies can
    /// never cross tenant (and therefore budget) boundaries.
    pub(crate) cache: ResultCache,
}

impl TenantState {
    pub(crate) fn new(name: String, budget: TenantBudget, cache_capacity: usize) -> Self {
        TenantState {
            name,
            budget,
            sessions: AtomicU32::new(0),
            in_flight: AtomicU32::new(0),
            served: AtomicU64::new(0),
            rejected_overloaded: AtomicU64::new(0),
            rejected_budget: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
            result_cache_hits: AtomicU64::new(0),
            result_cache_misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            latency_us: Mutex::new(Histogram::new(0.0, LATENCY_HI_US, LATENCY_BINS)),
            query: Mutex::new(QueryStats::default()),
            cache: ResultCache::new(cache_capacity),
        }
    }

    /// Try to open a session; `false` leaves no state to undo.
    pub(crate) fn try_open_session(&self) -> bool {
        bounded_increment(&self.sessions, self.budget.max_sessions)
    }

    pub(crate) fn close_session(&self) {
        self.sessions.fetch_sub(1, Ordering::AcqRel);
    }

    /// Try to start a query under the tenant's in-flight cap.
    pub(crate) fn try_begin_query(&self) -> bool {
        bounded_increment(&self.in_flight, self.budget.max_in_flight)
    }

    pub(crate) fn end_query(&self) {
        self.in_flight.fetch_sub(1, Ordering::AcqRel);
    }

    /// Check an estimated scan cost against the per-query budget.
    pub(crate) fn check_scan_budget(&self, estimated: u64) -> Result<(), Reject> {
        let limit = self.budget.max_samples_per_query;
        if estimated > limit {
            Err(Reject::ScanBudget { estimated, limit })
        } else {
            Ok(())
        }
    }

    pub(crate) fn record_served(&self, latency_us: f64, delta: &QueryStats) {
        self.served.fetch_add(1, Ordering::Relaxed);
        self.latency_us.lock().push(latency_us);
        // Saturating merge: deltas computed from relaxed store counters are
        // not a consistent cut under concurrency (see
        // `QueryStats::delta_since`), so the fold must never wrap.
        self.query.lock().merge(delta);
    }

    pub(crate) fn record_rejected(&self, reject: Reject) {
        match reject {
            Reject::InFlight => self.rejected_overloaded.fetch_add(1, Ordering::Relaxed),
            Reject::ScanBudget { .. } => self.rejected_budget.fetch_add(1, Ordering::Relaxed),
        };
    }

    pub(crate) fn record_protocol_error(&self) {
        self.protocol_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// A data query answered from the result cache (no execution, no
    /// scan-budget charge).
    pub(crate) fn record_cache_hit(&self) {
        self.result_cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// A data query that had to execute (cache miss, bypass, or a join
    /// whose leader had nothing to share).
    pub(crate) fn record_cache_miss(&self) {
        self.result_cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// A data query that joined an in-flight identical execution and was
    /// served the leader's reply.
    pub(crate) fn record_coalesced(&self) {
        self.coalesced.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> TenantSnapshot {
        let (p50, p95, p99) = {
            let h = self.latency_us.lock();
            (
                h.quantile(0.50).unwrap_or(0.0) as u64,
                h.quantile(0.95).unwrap_or(0.0) as u64,
                h.quantile(0.99).unwrap_or(0.0) as u64,
            )
        };
        TenantSnapshot {
            tenant: self.name.clone(),
            sessions: u64::from(self.sessions.load(Ordering::Acquire)),
            in_flight: u64::from(self.in_flight.load(Ordering::Acquire)),
            served: self.served.load(Ordering::Relaxed),
            rejected_overloaded: self.rejected_overloaded.load(Ordering::Relaxed),
            rejected_budget: self.rejected_budget.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            result_cache_hits: self.result_cache_hits.load(Ordering::Relaxed),
            result_cache_misses: self.result_cache_misses.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            p50_us: p50,
            p95_us: p95,
            p99_us: p99,
            query: WireQueryStats::from(*self.query.lock()),
        }
    }
}

/// CAS-increment `counter` only while it is below `cap`; `false` when
/// saturated. This is the lock-free "try-acquire" both admission layers
/// use — there is deliberately no blocking acquire, because backpressure
/// here means *reject*, not *queue*.
fn bounded_increment(counter: &AtomicU32, cap: u32) -> bool {
    let mut current = counter.load(Ordering::Acquire);
    loop {
        if current >= cap {
            return false;
        }
        match counter.compare_exchange_weak(
            current,
            current + 1,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => return true,
            Err(seen) => current = seen,
        }
    }
}

/// Global (cross-tenant) admission counters.
pub(crate) struct GlobalAdmission {
    max_sessions: u32,
    max_in_flight: u32,
    sessions: AtomicU32,
    in_flight: AtomicU32,
    pub(crate) sessions_rejected: AtomicU64,
}

impl GlobalAdmission {
    pub(crate) fn new(config: &AdmissionConfig) -> Self {
        GlobalAdmission {
            max_sessions: config.max_sessions,
            max_in_flight: config.max_in_flight,
            sessions: AtomicU32::new(0),
            in_flight: AtomicU32::new(0),
            sessions_rejected: AtomicU64::new(0),
        }
    }

    pub(crate) fn try_open_session(&self) -> bool {
        bounded_increment(&self.sessions, self.max_sessions)
    }

    pub(crate) fn close_session(&self) {
        self.sessions.fetch_sub(1, Ordering::AcqRel);
    }

    pub(crate) fn try_begin_query(&self) -> bool {
        bounded_increment(&self.in_flight, self.max_in_flight)
    }

    pub(crate) fn end_query(&self) {
        self.in_flight.fetch_sub(1, Ordering::AcqRel);
    }

    pub(crate) fn sessions_active(&self) -> u64 {
        u64::from(self.sessions.load(Ordering::Acquire))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_increment_stops_at_cap() {
        let c = AtomicU32::new(0);
        assert!(bounded_increment(&c, 2));
        assert!(bounded_increment(&c, 2));
        assert!(!bounded_increment(&c, 2));
        c.fetch_sub(1, Ordering::AcqRel);
        assert!(bounded_increment(&c, 2));
    }

    #[test]
    fn tenant_admission_and_counters() {
        let t = TenantState::new(
            "acme".into(),
            TenantBudget { max_sessions: 1, max_in_flight: 2, max_samples_per_query: 100 },
            8,
        );
        assert!(t.try_open_session());
        assert!(!t.try_open_session(), "session cap is 1");
        assert!(t.try_begin_query());
        assert!(t.try_begin_query());
        assert!(!t.try_begin_query(), "in-flight cap is 2");
        t.end_query();
        assert!(t.try_begin_query());

        assert_eq!(t.check_scan_budget(100), Ok(()));
        let rej = t.check_scan_budget(101).unwrap_err();
        assert_eq!(rej, Reject::ScanBudget { estimated: 101, limit: 100 });
        t.record_rejected(rej);
        t.record_rejected(Reject::InFlight);
        t.record_served(250.0, &QueryStats { queries: 1, samples_scanned: 40, ..QueryStats::default() });
        t.record_served(750.0, &QueryStats { queries: 1, samples_scanned: 60, ..QueryStats::default() });

        let snap = t.snapshot();
        assert_eq!(snap.served, 2);
        assert_eq!(snap.rejected_budget, 1);
        assert_eq!(snap.rejected_overloaded, 1);
        assert_eq!(snap.query.queries, 2);
        assert_eq!(snap.query.samples_scanned, 100);
        assert!(snap.p50_us >= 250 && snap.p50_us <= 255, "p50 {}", snap.p50_us);
        assert!(snap.p95_us >= 750, "p95 {}", snap.p95_us);
        t.close_session();
        assert!(t.try_open_session());
    }
}
