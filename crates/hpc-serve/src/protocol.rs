//! The wire protocol: length-prefixed JSON frames, the request/response
//! catalogue, typed error frames and the version handshake.
//!
//! ## Frame layout
//!
//! Every message in either direction is one frame:
//!
//! ```text
//! ┌────────────────┬──────────────────────────────┐
//! │ length: u32 BE │ payload: `length` bytes JSON │
//! └────────────────┴──────────────────────────────┘
//! ```
//!
//! The length counts payload bytes only and must not exceed
//! [`MAX_FRAME_LEN`]; a larger prefix is refused *before* any payload is
//! read, so a hostile length cannot make the server allocate. The payload
//! is the externally-tagged JSON encoding of [`Request`] or [`Response`].
//!
//! ## Handshake
//!
//! The first client frame must be [`Request::Hello`] carrying
//! [`PROTOCOL_VERSION`] and a tenant name; the server answers
//! [`Response::HelloAck`] or a typed [`Response::Error`] and closes. Any
//! other first frame is a [`ErrorKind::BadRequest`].
//!
//! ## Value encoding
//!
//! Query results carry `f64` values as their IEEE-754 bit patterns in
//! `u64` fields (`*_bits`). JSON has no NaN/Inf and decimal round trips
//! invite drift; bit patterns make every served answer comparable
//! bit-for-bit against an in-process evaluation — the identity the
//! concurrency suite asserts.

use serde::{Deserialize, Serialize};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Protocol version spoken by this build; bumped on any wire change.
/// v2 added `retry_after_ms` to error frames and the `Timeout` /
/// `Draining` error kinds. v3 added the [`Request::Batch`] /
/// [`Response::Batch`] pipelined frames and the per-tenant result-cache
/// counters in [`TenantSnapshot`] / [`Introspection`].
pub const PROTOCOL_VERSION: u32 = 3;

/// Hard ceiling on a frame's payload length, in bytes. A length prefix
/// above this is a protocol error and the frame is never read.
pub const MAX_FRAME_LEN: u32 = 1 << 20;

/// Hard ceiling on sub-queries in one [`Request::Batch`] frame. Keeps a
/// single frame from monopolising its in-flight admission slot and bounds
/// the reply frame against [`MAX_FRAME_LEN`].
pub const MAX_BATCH_LEN: usize = 256;

/// Why a frame could not be read or written.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The peer closed the connection cleanly between frames.
    Closed,
    /// EOF arrived inside a frame (torn length prefix or short payload).
    Truncated {
        /// Bytes the frame still owed.
        expected: usize,
        /// Bytes that actually arrived.
        got: usize,
    },
    /// The length prefix exceeds [`MAX_FRAME_LEN`].
    TooLarge {
        /// The declared payload length.
        len: u32,
    },
    /// The payload was not valid JSON, or not a valid message shape.
    Malformed(String),
    /// An underlying socket error.
    Io(String),
    /// An i/o deadline expired: connect, whole-frame read, or write.
    /// `waited_ms` is how long the caller waited before giving up (0 when
    /// a socket-level timeout fired and the exact wait is unknown).
    Timeout {
        /// Milliseconds waited before the deadline fired.
        waited_ms: u64,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Truncated { expected, got } => {
                write!(f, "frame truncated: wanted {expected} more bytes, got {got}")
            }
            FrameError::TooLarge { len } => {
                write!(f, "frame length {len} exceeds the {MAX_FRAME_LEN}-byte limit")
            }
            FrameError::Malformed(m) => write!(f, "malformed frame: {m}"),
            FrameError::Io(m) => write!(f, "i/o error: {m}"),
            FrameError::Timeout { waited_ms: 0 } => write!(f, "i/o deadline expired"),
            FrameError::Timeout { waited_ms } => {
                write!(f, "i/o deadline expired after {waited_ms} ms")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Map an [`std::io::Error`] to the frame-error taxonomy: a socket-level
/// timeout (`TimedOut` on Unix, `WouldBlock` where `SO_RCVTIMEO` reports
/// it that way) becomes [`FrameError::Timeout`], everything else
/// [`FrameError::Io`].
fn io_error(e: std::io::Error) -> FrameError {
    match e.kind() {
        std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => {
            FrameError::Timeout { waited_ms: 0 }
        }
        _ => FrameError::Io(e.to_string()),
    }
}

/// Read exactly `buf.len()` bytes, distinguishing a clean EOF at a frame
/// boundary (`Closed` when `at_boundary`) from a torn frame (`Truncated`).
fn read_full(r: &mut impl Read, buf: &mut [u8], at_boundary: bool) -> Result<(), FrameError> {
    let mut got = 0;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => {
                return Err(if at_boundary && got == 0 {
                    FrameError::Closed
                } else {
                    FrameError::Truncated { expected: buf.len() - got, got }
                });
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(io_error(e)),
        }
    }
    Ok(())
}

/// Read one raw frame payload.
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, FrameError> {
    let mut prefix = [0u8; 4];
    read_full(r, &mut prefix, true)?;
    let len = u32::from_be_bytes(prefix);
    if len > MAX_FRAME_LEN {
        return Err(FrameError::TooLarge { len });
    }
    let mut payload = vec![0u8; len as usize];
    read_full(r, &mut payload, false)?;
    Ok(payload)
}

/// Write one raw frame (length prefix + payload).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), FrameError> {
    if payload.len() as u64 > u64::from(MAX_FRAME_LEN) {
        return Err(FrameError::TooLarge { len: payload.len() as u32 });
    }
    let len = (payload.len() as u32).to_be_bytes();
    w.write_all(&len).map_err(io_error)?;
    w.write_all(payload).map_err(io_error)?;
    w.flush().map_err(io_error)?;
    Ok(())
}

/// Serialise a message into a frame and write it.
pub fn send_message<T: Serialize>(w: &mut impl Write, msg: &T) -> Result<(), FrameError> {
    let json = serde_json::to_string(msg).map_err(|e| FrameError::Malformed(e.to_string()))?;
    write_frame(w, json.as_bytes())
}

/// Deserialise one frame payload as `T`.
pub fn decode_message<T: Deserialize>(payload: &[u8]) -> Result<T, FrameError> {
    let text = std::str::from_utf8(payload).map_err(|e| FrameError::Malformed(e.to_string()))?;
    serde_json::from_str(text).map_err(|e| FrameError::Malformed(e.to_string()))
}

/// Read a frame and deserialise it as `T`.
pub fn recv_message<T: Deserialize>(r: &mut impl Read) -> Result<T, FrameError> {
    let payload = read_frame(r)?;
    decode_message(&payload)
}

/// Outcome of a deadline-bounded frame read.
#[derive(Debug)]
pub enum DeadlineRead {
    /// A complete frame arrived within the deadline.
    Frame(Vec<u8>),
    /// The abort flag was observed while waiting *between* frames (no byte
    /// of the next frame had arrived), so the caller can end the session
    /// gracefully without tearing a request in half.
    Aborted,
}

/// Read one frame with a hard total deadline, polling the socket at `tick`
/// granularity.
///
/// The clock starts at call time: the wait for the frame to begin and the
/// frame's completion (prefix and payload) share the one deadline. A peer
/// that dribbles one byte per interval therefore cannot hold the session
/// open indefinitely: partial progress never resets the deadline (the
/// slow-loris defense).
///
/// `abort`, when set, is sampled once per tick. Observing it between
/// frames yields [`DeadlineRead::Aborted`]; observing it mid-frame lets
/// the frame finish under the remaining deadline, so an in-flight request
/// is either served whole or timed out — never half-read.
///
/// The socket's read timeout is set to `tick` and left that way.
pub fn read_frame_deadline(
    stream: &mut TcpStream,
    deadline: Duration,
    tick: Duration,
    abort: Option<&AtomicBool>,
) -> Result<DeadlineRead, FrameError> {
    stream
        .set_read_timeout(Some(tick.max(Duration::from_millis(1))))
        .map_err(io_error)?;
    let start = Instant::now();
    let mut prefix = [0u8; 4];
    let mut payload: Option<Vec<u8>> = None;
    let mut got = 0usize;
    loop {
        let (buf, at_boundary): (&mut [u8], bool) = match payload {
            None => (&mut prefix, true),
            Some(ref mut p) => (p.as_mut_slice(), false),
        };
        while got < buf.len() {
            // Checked only while bytes are still owed, so a frame whose
            // last byte lands exactly at the deadline is still returned.
            if start.elapsed() >= deadline {
                return Err(FrameError::Timeout {
                    waited_ms: start.elapsed().as_millis() as u64,
                });
            }
            match stream.read(&mut buf[got..]) {
                Ok(0) => {
                    return Err(if at_boundary && got == 0 {
                        FrameError::Closed
                    } else {
                        FrameError::Truncated { expected: buf.len() - got, got }
                    });
                }
                Ok(n) => got += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
                    ) =>
                {
                    if let Some(flag) = abort {
                        if flag.load(Ordering::Acquire) && at_boundary && got == 0 {
                            return Ok(DeadlineRead::Aborted);
                        }
                    }
                }
                Err(e) => return Err(io_error(e)),
            }
        }
        match payload {
            None => {
                let len = u32::from_be_bytes(prefix);
                if len > MAX_FRAME_LEN {
                    return Err(FrameError::TooLarge { len });
                }
                payload = Some(vec![0u8; len as usize]);
                got = 0;
            }
            Some(p) => return Ok(DeadlineRead::Frame(p)),
        }
    }
}

/// Aggregation operator on the wire, mirroring [`hpc_tsdb::AggOp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WireOp {
    /// Arithmetic mean.
    Mean,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Sum.
    Sum,
    /// Sample count.
    Count,
    /// 95th percentile (forces a raw scan server-side).
    P95,
}

impl From<WireOp> for hpc_tsdb::AggOp {
    fn from(op: WireOp) -> Self {
        match op {
            WireOp::Mean => hpc_tsdb::AggOp::Mean,
            WireOp::Min => hpc_tsdb::AggOp::Min,
            WireOp::Max => hpc_tsdb::AggOp::Max,
            WireOp::Sum => hpc_tsdb::AggOp::Sum,
            WireOp::Count => hpc_tsdb::AggOp::Count,
            WireOp::P95 => hpc_tsdb::AggOp::P95,
        }
    }
}

/// A client request. The first request on a session must be `Hello`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Request {
    /// Version handshake; `tenant` names the budget bucket this session
    /// draws from.
    Hello {
        /// Client's [`PROTOCOL_VERSION`].
        version: u32,
        /// Tenant the session belongs to.
        tenant: String,
    },
    /// Liveness probe.
    Ping,
    /// One aggregate of one series over `[from, to)`.
    Aggregate {
        /// Series name (e.g. `"facility"`, `"cabinet.3"`).
        series: String,
        /// Window start (inclusive), unix seconds.
        from: i64,
        /// Window end (exclusive), unix seconds.
        to: i64,
        /// Operator.
        op: WireOp,
    },
    /// Aligned `step`-second windows over `[from, to)`.
    Windows {
        /// Series name.
        series: String,
        /// Range start (inclusive).
        from: i64,
        /// Range end (exclusive).
        to: i64,
        /// Window width, seconds (must be positive).
        step: i64,
        /// Operator.
        op: WireOp,
    },
    /// Grouped reduction across many series over one window (the
    /// "all cabinets → facility" shape).
    Group {
        /// Series names to reduce.
        series: Vec<String>,
        /// Window start (inclusive).
        from: i64,
        /// Window end (exclusive).
        to: i64,
    },
    /// Gap-aware aggregate: moments over present samples plus the
    /// coverage fraction against the series' cadence hint.
    Gap {
        /// Series name.
        series: String,
        /// Window start (inclusive).
        from: i64,
        /// Window end (exclusive).
        to: i64,
    },
    /// Enumerate registered series.
    ListSeries,
    /// Server-side observability: per-tenant counters, latency
    /// percentiles, store query stats, live ingest rejection count.
    Introspect,
    /// v3: several data queries in one frame. Entries must be data-query
    /// shapes (`Aggregate`, `Windows`, `Group`, `Gap`) — control frames
    /// and nested batches are refused per entry with a typed error, never
    /// by killing the whole frame. The batch occupies **one** in-flight
    /// admission slot (it executes sequentially server-side) while every
    /// entry is billed individually: per-entry scan-budget checks,
    /// per-entry served/latency accounting, per-entry typed errors in the
    /// matching [`Response::Batch`] slot. At most [`MAX_BATCH_LEN`]
    /// entries; an empty batch is a `BadRequest`.
    Batch {
        /// Sub-queries, answered in order.
        entries: Vec<Request>,
    },
}

/// One aligned window on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireWindow {
    /// Window start (inclusive).
    pub start: i64,
    /// Aggregated value as IEEE-754 bits (NaN-safe).
    pub value_bits: u64,
    /// Samples inside the window.
    pub count: u64,
}

/// Grouped-reduction result on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireGroup {
    /// Series that resolved and contributed.
    pub series: u64,
    /// Names that did not resolve.
    pub missing: u64,
    /// Sum of per-series window means, as bits.
    pub sum_of_means_bits: u64,
    /// Mean of per-series means, as bits (NaN when nothing resolved).
    pub mean_of_means_bits: u64,
    /// Total samples across every resolved series.
    pub total_count: u64,
}

/// Gap-aware aggregate on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireGap {
    /// Present samples in the window.
    pub count: u64,
    /// Mean over present samples, as bits (NaN when all gap).
    pub mean_bits: u64,
    /// Samples the cadence hint expected.
    pub expected: u64,
    /// `count / expected` clamped to `[0, 1]`, as bits.
    pub coverage_bits: u64,
    /// Quarantined samples in the window.
    pub quarantined: u64,
}

/// One catalog entry from `ListSeries`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireSeries {
    /// Store-assigned series id.
    pub id: u64,
    /// Series name.
    pub name: String,
    /// Unit label.
    pub unit: String,
    /// Expected cadence, seconds (0 = unknown).
    pub interval_hint: i64,
    /// Stored samples at catalog time.
    pub samples: u64,
}

/// [`hpc_tsdb::QueryStats`] on the wire.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireQueryStats {
    /// Store-level query evaluations.
    pub queries: u64,
    /// Windows served from 1-hour rollups.
    pub plans_hour: u64,
    /// Windows served from 1-minute rollups.
    pub plans_minute: u64,
    /// Windows served by raw chunk scans.
    pub plans_raw: u64,
    /// Sealed chunks Gorilla-decoded.
    pub chunks_decoded: u64,
    /// Sealed-chunk reads served from the decoded-chunk cache.
    pub chunk_cache_hits: u64,
    /// Decoded samples iterated by raw scans.
    pub samples_scanned: u64,
    /// Zone-map blocks answered without decoding sample data.
    pub blocks_pruned: u64,
    /// Sealed chunks rewritten by compaction passes.
    pub chunks_compacted: u64,
    /// Wall nanoseconds inside store-level query entry points.
    pub wall_nanos: u64,
}

impl From<hpc_tsdb::QueryStats> for WireQueryStats {
    fn from(s: hpc_tsdb::QueryStats) -> Self {
        WireQueryStats {
            queries: s.queries,
            plans_hour: s.plans_hour,
            plans_minute: s.plans_minute,
            plans_raw: s.plans_raw,
            chunks_decoded: s.chunks_decoded,
            chunk_cache_hits: s.chunk_cache_hits,
            samples_scanned: s.samples_scanned,
            blocks_pruned: s.blocks_pruned,
            chunks_compacted: s.chunks_compacted,
            wall_nanos: s.wall_nanos,
        }
    }
}

/// Per-tenant counters in an [`Introspection`] reply.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantSnapshot {
    /// Tenant name.
    pub tenant: String,
    /// Sessions currently open.
    pub sessions: u64,
    /// Queries currently executing.
    pub in_flight: u64,
    /// Queries answered successfully.
    pub served: u64,
    /// Queries refused because an in-flight limit was hit.
    pub rejected_overloaded: u64,
    /// Queries refused by the per-query scan budget.
    pub rejected_budget: u64,
    /// Frames from this tenant that failed to parse.
    pub protocol_errors: u64,
    /// Median served-query latency, microseconds (0 when none served).
    pub p50_us: u64,
    /// 95th-percentile latency, microseconds.
    pub p95_us: u64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: u64,
    /// Queries answered from this tenant's generation-keyed result cache
    /// (no execution, no scan-budget estimate).
    pub result_cache_hits: u64,
    /// Queries that executed and (where cacheable) populated the cache.
    pub result_cache_misses: u64,
    /// Queries that joined an identical in-flight execution and shared
    /// its reply (single-flight coalescing).
    pub coalesced: u64,
    /// Store work attributed to this tenant (chunks decoded vs cache
    /// hits, samples scanned), folded total-order-safely from per-query
    /// deltas.
    pub query: WireQueryStats,
}

/// The `Introspect` reply: a self-describing snapshot of the server.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Introspection {
    /// Server name from its config.
    pub server: String,
    /// Protocol version the server speaks.
    pub protocol_version: u32,
    /// Sessions currently open, across all tenants.
    pub sessions_active: u64,
    /// Connections refused at admission (session caps).
    pub sessions_rejected: u64,
    /// Sessions evicted for blowing an i/o deadline: handshake or idle
    /// frame deadlines (slow-loris) and reply-write timeouts.
    pub sessions_evicted: u64,
    /// Whether the server is draining for shutdown.
    pub draining: bool,
    /// Live rejected-ingest count from the attached probe (0 without one).
    pub ingest_rejected: u64,
    /// Result-cache hits summed across every tenant.
    pub result_cache_hits: u64,
    /// Result-cache misses summed across every tenant.
    pub result_cache_misses: u64,
    /// Single-flight coalesced queries summed across every tenant.
    pub coalesced_queries: u64,
    /// Store-wide query counters since server start.
    pub store: WireQueryStats,
    /// Per-tenant breakdown, sorted by tenant name.
    pub tenants: Vec<TenantSnapshot>,
}

/// Machine-readable error category carried by [`Response::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorKind {
    /// Handshake version is not [`PROTOCOL_VERSION`].
    UnsupportedVersion,
    /// The request was well-framed but invalid (bad params, missing
    /// handshake, repeated handshake).
    BadRequest,
    /// The named series is not registered.
    UnknownSeries,
    /// Admission control refused the work: a session/in-flight cap or the
    /// per-query scan budget. When the refusal is transient the error
    /// frame carries a `retry_after_ms` hint; without one, retrying the
    /// same request cannot succeed (e.g. a scan-budget breach).
    Overloaded,
    /// The frame could not be parsed (bad length, bad JSON, bad shape).
    Protocol,
    /// The server evicted this session for blowing an i/o deadline: the
    /// handshake or a request frame did not complete within the idle
    /// deadline (slow-loris defense), or the session stopped draining its
    /// replies. Reconnect to continue.
    Timeout,
    /// The server is draining for shutdown and refuses new sessions and
    /// new requests; in-flight requests were allowed to finish. Retry
    /// against the replacement instance after `retry_after_ms`.
    Draining,
}

/// A server reply.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Response {
    /// Successful handshake.
    HelloAck {
        /// Server's [`PROTOCOL_VERSION`].
        version: u32,
        /// Server name from its config.
        server: String,
    },
    /// Reply to `Ping`.
    Pong,
    /// Reply to `Aggregate`.
    Aggregate {
        /// The value as IEEE-754 bits.
        value_bits: u64,
        /// Which plan served it (`"HourRollup"`, `"MinuteRollup"`,
        /// `"RawScan"`).
        plan: String,
    },
    /// Reply to `Windows`.
    Windows {
        /// One entry per aligned window, in time order.
        windows: Vec<WireWindow>,
    },
    /// Reply to `Group`.
    Group(WireGroup),
    /// Reply to `Gap`.
    Gap(WireGap),
    /// Reply to `ListSeries`.
    Series {
        /// Catalog entries sorted by id.
        entries: Vec<WireSeries>,
    },
    /// Reply to `Introspect`.
    Stats(Introspection),
    /// Reply to `Batch`: one entry per sub-query, in request order. A
    /// failed entry is a [`Response::Error`] in its slot; the other
    /// entries still carry their answers.
    Batch {
        /// Per-entry replies, aligned with the request's entries.
        entries: Vec<Response>,
    },
    /// Typed failure; the session stays open except for handshake,
    /// protocol, timeout-eviction and draining errors.
    Error {
        /// Category.
        kind: ErrorKind,
        /// Human-readable detail.
        message: String,
        /// For transient refusals (`Overloaded`, `Draining`): how long a
        /// well-behaved client should back off before retrying. `None`
        /// means a retry of the identical request cannot succeed.
        retry_after_ms: Option<u64>,
    },
}

impl Response {
    /// Build an error reply with no retry hint.
    pub fn error(kind: ErrorKind, message: impl Into<String>) -> Response {
        Response::Error { kind, message: message.into(), retry_after_ms: None }
    }

    /// Build a transient error reply carrying a retry hint.
    pub fn retryable_error(
        kind: ErrorKind,
        message: impl Into<String>,
        retry_after_ms: u64,
    ) -> Response {
        Response::Error { kind, message: message.into(), retry_after_ms: Some(retry_after_ms) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"{\"x\":1}").unwrap();
        assert_eq!(&buf[..4], &7u32.to_be_bytes());
        let got = read_frame(&mut buf.as_slice()).unwrap();
        assert_eq!(got, b"{\"x\":1}");
    }

    #[test]
    fn eof_between_frames_is_closed_inside_is_truncated() {
        let empty: &[u8] = &[];
        assert_eq!(read_frame(&mut { empty }), Err(FrameError::Closed));
        // Torn length prefix.
        let torn: &[u8] = &[0, 0];
        assert!(matches!(read_frame(&mut { torn }), Err(FrameError::Truncated { .. })));
        // Full prefix, short payload.
        let mut buf = Vec::new();
        write_frame(&mut buf, b"abcdef").unwrap();
        buf.truncate(7);
        assert!(matches!(read_frame(&mut buf.as_slice()), Err(FrameError::Truncated { .. })));
    }

    #[test]
    fn oversized_prefix_is_refused_before_payload() {
        let mut buf = Vec::from((MAX_FRAME_LEN + 1).to_be_bytes());
        buf.extend_from_slice(&[0u8; 16]);
        assert_eq!(
            read_frame(&mut buf.as_slice()),
            Err(FrameError::TooLarge { len: MAX_FRAME_LEN + 1 })
        );
    }

    #[test]
    fn messages_round_trip_including_nan_bits() {
        let mut buf = Vec::new();
        let req = Request::Windows {
            series: "cabinet.7".into(),
            from: -60,
            to: 86_400,
            step: 900,
            op: WireOp::P95,
        };
        send_message(&mut buf, &req).unwrap();
        let back: Request = recv_message(&mut buf.as_slice()).unwrap();
        match back {
            Request::Windows { series, from, to, step, op } => {
                assert_eq!(series, "cabinet.7");
                assert_eq!((from, to, step), (-60, 86_400, 900));
                assert_eq!(op, WireOp::P95);
            }
            other => panic!("wrong variant: {other:?}"),
        }

        // NaN survives as bits where JSON floats could not.
        let resp = Response::Aggregate {
            value_bits: f64::NAN.to_bits(),
            plan: "RawScan".into(),
        };
        let mut buf = Vec::new();
        send_message(&mut buf, &resp).unwrap();
        let back: Response = recv_message(&mut buf.as_slice()).unwrap();
        match back {
            Response::Aggregate { value_bits, .. } => {
                assert!(f64::from_bits(value_bits).is_nan());
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn batch_frames_round_trip() {
        let req = Request::Batch {
            entries: vec![
                Request::Aggregate { series: "facility".into(), from: 0, to: 3600, op: WireOp::Mean },
                Request::Gap { series: "cabinet.3".into(), from: 0, to: 900 },
            ],
        };
        let mut buf = Vec::new();
        send_message(&mut buf, &req).unwrap();
        match recv_message::<Request>(&mut buf.as_slice()).unwrap() {
            Request::Batch { entries } => {
                assert_eq!(entries.len(), 2);
                assert!(matches!(entries[0], Request::Aggregate { .. }));
                assert!(matches!(entries[1], Request::Gap { .. }));
            }
            other => panic!("wrong variant: {other:?}"),
        }

        let resp = Response::Batch {
            entries: vec![
                Response::Aggregate { value_bits: 42u64, plan: "HourRollup".into() },
                Response::error(ErrorKind::UnknownSeries, "unknown series \"nope\""),
            ],
        };
        let mut buf = Vec::new();
        send_message(&mut buf, &resp).unwrap();
        match recv_message::<Response>(&mut buf.as_slice()).unwrap() {
            Response::Batch { entries } => {
                assert!(matches!(entries[0], Response::Aggregate { value_bits: 42, .. }));
                assert!(matches!(
                    entries[1],
                    Response::Error { kind: ErrorKind::UnknownSeries, .. }
                ));
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn garbage_json_is_malformed() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"not json at all").unwrap();
        assert!(matches!(
            recv_message::<Request>(&mut buf.as_slice()),
            Err(FrameError::Malformed(_))
        ));
        // Valid JSON, wrong shape.
        let mut buf = Vec::new();
        write_frame(&mut buf, b"{\"NoSuchVariant\":{}}").unwrap();
        assert!(matches!(
            recv_message::<Request>(&mut buf.as_slice()),
            Err(FrameError::Malformed(_))
        ));
    }
}
