//! # hpc-serve
//!
//! A concurrent telemetry query service over a live [`hpc_tsdb`] store:
//! the serving tier that turns the embedded TSDB into something many
//! operators can query *while the facility campaign is still ingesting*.
//!
//! Three layers:
//!
//! - [`protocol`] — length-prefixed JSON frames over TCP, a
//!   version-checked handshake, the request/response catalogue and typed
//!   error frames. `f64` results travel as IEEE-754 bit patterns so
//!   served answers are comparable bit-for-bit with in-process queries.
//! - [`session`] — admission control: global and per-tenant session caps,
//!   in-flight query caps and per-query scan budgets. Overload is met
//!   with a typed `Overloaded` rejection, never an unbounded queue.
//! - [`server`] / [`client`] — the thread-per-connection serving loop
//!   over a shared [`hpc_tsdb::TsdbStore`] handle (clones share shards,
//!   so reads run against live ingest), and a thin blocking client.
//!
//! Observability is first-class: every tenant accumulates served/rejected
//! counters, latency percentiles from [`sim_core::stats::Histogram`], and
//! store-work attribution ([`hpc_tsdb::QueryStats`] deltas folded with
//! saturating arithmetic), all served back over the wire by `Introspect`.
//!
//! Resilience is layered on top (protocol v2):
//!
//! - [`session::TimeoutConfig`] — server-side handshake/idle deadlines with
//!   slow-client eviction (slow-loris defence) and polling reads, plus a
//!   graceful [`server::Server::drain`] that lets in-flight work finish
//!   before force-closing stragglers.
//! - [`resilient`] — a deadline-aware retrying client: bounded attempts,
//!   exponential backoff with deterministic seeded jitter, automatic
//!   reconnect, and a retry-safety matrix that refuses to retry what
//!   retrying cannot fix.
//! - [`chaos`] — a deterministic TCP man-in-the-middle injecting latency,
//!   stalls, partial frames and disconnects from a seeded fault plan, so
//!   the resilience claims above are *tested*, not asserted.
//!
//! Read-path scale-out (protocol v3):
//!
//! - **Epoch-published snapshots** — query evaluation goes through the
//!   store's immutable [`hpc_tsdb::ReadView`] whenever it is current, so
//!   a query storm takes no shard locks against the live writer.
//! - **Generation-keyed result cache with single-flight** — per-tenant
//!   reply caching invalidated by every store mutation, with identical
//!   concurrent queries coalescing behind one execution (see
//!   `server`-internal machinery; counters surface per tenant in
//!   [`TenantSnapshot`] and in aggregate in [`Introspection`]).
//! - **Pipelined batches** — [`Request::Batch`] runs many data queries
//!   under one admission slot and one round trip;
//!   [`Client::request_pipelined`] overlaps whole frames on one session.
//!
//! Every cached, coalesced or batched reply is byte-identical to what the
//! uncached sequential path would have produced — caches store the exact
//! serialized frame payload, and the proptests in `tests/serve_cache.rs`
//! hold that equivalence as the oracle.

#![warn(missing_docs)]

mod cache;
pub mod chaos;
pub mod client;
pub mod protocol;
pub mod resilient;
pub mod server;
pub mod session;

pub use chaos::{ChaosPlan, ChaosProxy, ChaosStats};
pub use client::{Client, ClientConfig, ConnectError};
pub use protocol::{
    DeadlineRead, ErrorKind, FrameError, Introspection, Request, Response, TenantSnapshot,
    WireGap, WireGroup, WireOp, WireQueryStats, WireSeries, WireWindow, MAX_BATCH_LEN,
    MAX_FRAME_LEN, PROTOCOL_VERSION,
};
pub use resilient::{ResilientClient, ResilientError, RetryPolicy, RetryStats};
pub use server::{DrainStats, IngestProbe, Server, ServerConfig};
pub use session::{AdmissionConfig, Reject, TenantBudget, TimeoutConfig};
