//! The event queue: a time-ordered priority queue with deterministic
//! tie-breaking.
//!
//! Determinism note: `BinaryHeap` is not stable for equal keys, so events
//! scheduled for the same instant carry a monotonically increasing sequence
//! number. Two runs with the same seed therefore pop events in exactly the
//! same order, which the reproducibility tests in `archer2-core` rely on.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event of payload type `E` scheduled at a particular instant.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub at: SimTime,
    /// Insertion order; breaks ties between events at the same instant.
    pub seq: u64,
    /// The payload.
    pub payload: E,
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for ScheduledEvent<E> {}

impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for ScheduledEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Time-ordered queue of events.
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<ScheduledEvent<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// Empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Empty queue with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
        }
    }

    /// Schedule `payload` at instant `at`. Events at equal instants fire in
    /// insertion order.
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent { at, seq, payload });
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        self.heap.pop()
    }

    /// Instant of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drop all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        let t0 = SimTime::EPOCH;
        q.schedule(t0 + SimDuration::from_secs(30), "c");
        q.schedule(t0 + SimDuration::from_secs(10), "a");
        q.schedule(t0 + SimDuration::from_secs(20), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_unix(100);
        for i in 0..50 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_ties_and_times() {
        let mut q = EventQueue::new();
        let t1 = SimTime::from_unix(1);
        let t2 = SimTime::from_unix(2);
        q.schedule(t2, "t2-first");
        q.schedule(t1, "t1-first");
        q.schedule(t2, "t2-second");
        q.schedule(t1, "t1-second");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, ["t1-first", "t1-second", "t2-first", "t2-second"]);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_unix(5), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_unix(5)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }
}
