//! The simulation driver: a clock, an event queue and a [`World`] that
//! handles events.
//!
//! The split between driver and world keeps domain crates (`hpc-sched`,
//! `archer2-core`) free of queue mechanics: they implement [`World::handle`]
//! and schedule follow-on events through the [`Scheduler`] handle they are
//! given.

use crate::event::EventQueue;
use crate::time::SimTime;

/// Handle through which a [`World`] schedules future events during
/// [`World::handle`]. Wraps the queue so worlds cannot pop or reorder.
pub struct Scheduler<'a, E> {
    now: SimTime,
    queue: &'a mut EventQueue<E>,
}

impl<E> Scheduler<'_, E> {
    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule an event at an absolute instant.
    ///
    /// # Panics
    /// Panics if `at` is in the simulated past — causality violations are
    /// always bugs in the world implementation.
    pub fn at(&mut self, at: SimTime, payload: E) {
        assert!(at >= self.now, "cannot schedule into the past: {at:?} < {:?}", self.now);
        self.queue.schedule(at, payload);
    }

    /// Schedule an event `delay` after now.
    pub fn after(&mut self, delay: crate::time::SimDuration, payload: E) {
        self.queue.schedule(self.now + delay, payload);
    }
}

/// A simulated world: consumes events, mutates itself, schedules more.
pub trait World {
    /// Event payload type.
    type Event;

    /// Handle `event` firing at `sched.now()`.
    fn handle(&mut self, event: Self::Event, sched: &mut Scheduler<'_, Self::Event>);
}

/// Outcome of driving the simulation one step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// An event was processed at the contained time.
    Advanced(SimTime),
    /// No events remain.
    Exhausted,
    /// The next event lies beyond the supplied horizon; nothing was processed.
    ReachedHorizon,
}

/// The simulation: owns the clock, the queue and the world.
#[derive(Debug)]
pub struct Simulation<W: World> {
    now: SimTime,
    queue: EventQueue<W::Event>,
    world: W,
    processed: u64,
}

impl<W: World> Simulation<W> {
    /// Create a simulation starting at `start`.
    pub fn new(start: SimTime, world: W) -> Self {
        Simulation {
            now: start,
            queue: EventQueue::new(),
            world,
            processed: 0,
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Immutable access to the world.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Mutable access to the world (for between-run reconfiguration such as
    /// the paper's BIOS and frequency changes).
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Consume the simulation and return the world.
    pub fn into_world(self) -> W {
        self.world
    }

    /// Number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Number of events currently pending.
    pub fn events_pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedule an initial/external event.
    ///
    /// # Panics
    /// Panics if `at` is before the current simulation time.
    pub fn schedule(&mut self, at: SimTime, payload: W::Event) {
        assert!(at >= self.now, "cannot schedule into the past");
        self.queue.schedule(at, payload);
    }

    /// Process the single earliest event, if it fires at or before `horizon`.
    pub fn step(&mut self, horizon: SimTime) -> StepOutcome {
        match self.queue.peek_time() {
            None => StepOutcome::Exhausted,
            Some(t) if t > horizon => StepOutcome::ReachedHorizon,
            Some(_) => {
                let ev = self.queue.pop().expect("peeked event vanished");
                self.now = ev.at;
                let mut sched = Scheduler {
                    now: self.now,
                    queue: &mut self.queue,
                };
                self.world.handle(ev.payload, &mut sched);
                self.processed += 1;
                StepOutcome::Advanced(self.now)
            }
        }
    }

    /// Run until the queue is exhausted or the next event is beyond
    /// `horizon`; the clock is then advanced to `horizon`.
    ///
    /// Returns the number of events processed.
    pub fn run_until(&mut self, horizon: SimTime) -> u64 {
        let before = self.processed;
        while let StepOutcome::Advanced(_) = self.step(horizon) {}
        if horizon > self.now {
            self.now = horizon;
        }
        self.processed - before
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    /// A toy world: a ping-pong process that counts bounces.
    struct PingPong {
        bounces: u32,
        limit: u32,
        log: Vec<(SimTime, &'static str)>,
    }

    #[derive(Debug)]
    enum PpEvent {
        Ping,
        Pong,
    }

    impl World for PingPong {
        type Event = PpEvent;

        fn handle(&mut self, event: PpEvent, sched: &mut Scheduler<'_, PpEvent>) {
            match event {
                PpEvent::Ping => {
                    self.log.push((sched.now(), "ping"));
                    if self.bounces < self.limit {
                        sched.after(SimDuration::from_secs(1), PpEvent::Pong);
                    }
                }
                PpEvent::Pong => {
                    self.log.push((sched.now(), "pong"));
                    self.bounces += 1;
                    sched.after(SimDuration::from_secs(1), PpEvent::Ping);
                }
            }
        }
    }

    #[test]
    fn ping_pong_terminates_and_orders() {
        let world = PingPong {
            bounces: 0,
            limit: 3,
            log: vec![],
        };
        let mut sim = Simulation::new(SimTime::EPOCH, world);
        sim.schedule(SimTime::EPOCH, PpEvent::Ping);
        let n = sim.run_until(SimTime::from_unix(1000));
        // ping@0, pong@1, ping@2, pong@3, ping@4, pong@5, ping@6 => 7 events.
        assert_eq!(n, 7);
        let w = sim.world();
        assert_eq!(w.bounces, 3);
        assert_eq!(w.log.len(), 7);
        for (i, (t, _)) in w.log.iter().enumerate() {
            assert_eq!(t.as_unix(), i as u64);
        }
    }

    #[test]
    fn horizon_stops_processing_and_advances_clock() {
        let world = PingPong {
            bounces: 0,
            limit: u32::MAX,
            log: vec![],
        };
        let mut sim = Simulation::new(SimTime::EPOCH, world);
        sim.schedule(SimTime::EPOCH, PpEvent::Ping);
        let horizon = SimTime::from_unix(10);
        sim.run_until(horizon);
        assert_eq!(sim.now(), horizon);
        // Events at t=0..=10 processed: 11 of them.
        assert_eq!(sim.events_processed(), 11);
        assert!(sim.events_pending() > 0);
        // Continue: processing resumes where it left off.
        sim.run_until(SimTime::from_unix(20));
        assert_eq!(sim.events_processed(), 21);
    }

    #[test]
    fn exhausted_queue_reports_and_clock_moves_to_horizon() {
        let world = PingPong {
            bounces: 0,
            limit: 0,
            log: vec![],
        };
        let mut sim = Simulation::new(SimTime::EPOCH, world);
        assert_eq!(sim.step(SimTime::from_unix(100)), StepOutcome::Exhausted);
        sim.run_until(SimTime::from_unix(50));
        assert_eq!(sim.now(), SimTime::from_unix(50));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let world = PingPong {
            bounces: 0,
            limit: 0,
            log: vec![],
        };
        let mut sim = Simulation::new(SimTime::from_unix(100), world);
        sim.schedule(SimTime::from_unix(50), PpEvent::Ping);
    }
}
