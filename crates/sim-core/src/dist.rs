//! Random distributions built on the [`crate::rng`] generators.
//!
//! The workload generator draws job sizes, walltimes and inter-arrival gaps
//! from these; the power model draws per-chip silicon quality. Everything is
//! implemented by inverse transform or Box–Muller so the stream of raw `u64`
//! draws (and therefore the whole simulation) is deterministic.

use crate::rng::Rng;

/// A distribution over `f64` values (or indices, for [`Categorical`]).
pub trait Distribution {
    /// The sample type.
    type Output;

    /// Draw one sample.
    fn sample<R: Rng>(&self, rng: &mut R) -> Self::Output;

    /// The distribution mean, where defined (used by tests and by load
    /// calculations that need expected values without sampling).
    fn mean(&self) -> f64;
}

/// Continuous uniform on `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Create a uniform distribution on `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo > hi` or either bound is non-finite.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo.is_finite() && hi.is_finite() && lo <= hi, "invalid uniform bounds [{lo}, {hi})");
        Uniform { lo, hi }
    }
}

impl Distribution for Uniform {
    type Output = f64;

    fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        self.lo + (self.hi - self.lo) * rng.next_f64()
    }

    fn mean(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }
}

/// Exponential with rate `lambda` (mean `1/lambda`); inter-arrival gaps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    lambda: f64,
}

impl Exponential {
    /// Create from rate `lambda > 0`.
    ///
    /// # Panics
    /// Panics on a non-positive or non-finite rate.
    pub fn new(lambda: f64) -> Self {
        assert!(lambda.is_finite() && lambda > 0.0, "invalid exponential rate {lambda}");
        Exponential { lambda }
    }

    /// Create from the mean (`1/lambda`).
    pub fn from_mean(mean: f64) -> Self {
        Exponential::new(1.0 / mean)
    }
}

impl Distribution for Exponential {
    type Output = f64;

    fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        // Inverse transform; 1 - u avoids ln(0).
        -(1.0 - rng.next_f64()).ln() / self.lambda
    }

    fn mean(&self) -> f64 {
        1.0 / self.lambda
    }
}

/// Normal via Box–Muller (both variates used, cached — but statelessly we
/// draw a fresh pair per sample to stay `&self`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mu: f64,
    sigma: f64,
}

impl Normal {
    /// Create from mean `mu` and standard deviation `sigma >= 0`.
    ///
    /// # Panics
    /// Panics on non-finite parameters or negative `sigma`.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(mu.is_finite() && sigma.is_finite() && sigma >= 0.0, "invalid normal ({mu}, {sigma})");
        Normal { mu, sigma }
    }

    /// Standard normal draw used internally by `Normal` and `LogNormal`.
    fn standard<R: Rng>(rng: &mut R) -> f64 {
        // Box–Muller, using one variate of the pair.
        let u1 = 1.0 - rng.next_f64(); // (0, 1]
        let u2 = rng.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

impl Distribution for Normal {
    type Output = f64;

    fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        self.mu + self.sigma * Normal::standard(rng)
    }

    fn mean(&self) -> f64 {
        self.mu
    }
}

/// Log-normal: `exp(N(mu, sigma))`. Job walltimes and silicon leakage factors
/// are classically log-normal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Create from the parameters of the underlying normal.
    ///
    /// # Panics
    /// Panics on non-finite parameters or negative `sigma`.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(mu.is_finite() && sigma.is_finite() && sigma >= 0.0, "invalid lognormal ({mu}, {sigma})");
        LogNormal { mu, sigma }
    }

    /// Create from the desired *distribution* mean and the sigma of the
    /// underlying normal — convenient for "mean 1.0, 5% spread" silicon
    /// quality factors.
    pub fn from_mean(mean: f64, sigma: f64) -> Self {
        assert!(mean > 0.0, "lognormal mean must be positive, got {mean}");
        // E[X] = exp(mu + sigma^2/2)  =>  mu = ln(mean) - sigma^2/2.
        LogNormal::new(mean.ln() - 0.5 * sigma * sigma, sigma)
    }
}

impl Distribution for LogNormal {
    type Output = f64;

    fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * Normal::standard(rng)).exp()
    }

    fn mean(&self) -> f64 {
        (self.mu + 0.5 * self.sigma * self.sigma).exp()
    }
}

/// Weibull with shape `k` and scale `lambda`; heavy-ish tailed job runtimes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weibull {
    shape: f64,
    scale: f64,
}

impl Weibull {
    /// Create from shape `k > 0` and scale `lambda > 0`.
    ///
    /// # Panics
    /// Panics on non-positive or non-finite parameters.
    pub fn new(shape: f64, scale: f64) -> Self {
        assert!(
            shape.is_finite() && scale.is_finite() && shape > 0.0 && scale > 0.0,
            "invalid weibull (k={shape}, lambda={scale})"
        );
        Weibull { shape, scale }
    }
}

impl Distribution for Weibull {
    type Output = f64;

    fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        let u = 1.0 - rng.next_f64(); // (0, 1]
        self.scale * (-u.ln()).powf(1.0 / self.shape)
    }

    fn mean(&self) -> f64 {
        self.scale * gamma(1.0 + 1.0 / self.shape)
    }
}

/// Categorical distribution over `0..n` with given weights, using Vose's
/// alias method for O(1) sampling — the research-area workload mix is drawn
/// millions of times per campaign.
#[derive(Debug, Clone)]
pub struct Categorical {
    prob: Vec<f64>,
    alias: Vec<usize>,
    weights: Vec<f64>,
    total: f64,
}

impl Categorical {
    /// Build the alias table from non-negative weights (at least one positive).
    ///
    /// # Panics
    /// Panics if `weights` is empty, contains a negative or non-finite value,
    /// or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "categorical needs at least one weight");
        for &w in weights {
            assert!(w.is_finite() && w >= 0.0, "invalid categorical weight {w}");
        }
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "categorical weights sum to zero");

        let n = weights.len();
        let mut prob = vec![0.0; n];
        let mut alias = vec![0usize; n];
        let scaled: Vec<f64> = weights.iter().map(|w| w * n as f64 / total).collect();
        let mut small: Vec<usize> = Vec::with_capacity(n);
        let mut large: Vec<usize> = Vec::with_capacity(n);
        for (i, &p) in scaled.iter().enumerate() {
            if p < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        let mut scaled = scaled;
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            prob[s] = scaled[s];
            alias[s] = l;
            scaled[l] = (scaled[l] + scaled[s]) - 1.0;
            if scaled[l] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        for &l in &large {
            prob[l] = 1.0;
        }
        for &s in &small {
            prob[s] = 1.0;
        }
        Categorical {
            prob,
            alias,
            weights: weights.to_vec(),
            total,
        }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True if there is exactly zero categories (never: constructor forbids).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Probability of category `i`.
    pub fn probability(&self, i: usize) -> f64 {
        self.weights[i] / self.total
    }
}

impl Distribution for Categorical {
    type Output = usize;

    fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let i = rng.index(self.prob.len());
        if rng.next_f64() < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }

    fn mean(&self) -> f64 {
        self.weights
            .iter()
            .enumerate()
            .map(|(i, w)| i as f64 * w / self.total)
            .sum()
    }
}

/// Lanczos approximation of the gamma function, used for the Weibull mean.
fn gamma(x: f64) -> f64 {
    // g = 7, n = 9 Lanczos coefficients.
    const G: f64 = 7.0;
    const C: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        std::f64::consts::PI / ((std::f64::consts::PI * x).sin() * gamma(1.0 - x))
    } else {
        let x = x - 1.0;
        let mut a = C[0];
        let t = x + G + 0.5;
        for (i, &c) in C.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        std::f64::consts::TAU.sqrt() * t.powf(x + 0.5) * (-t).exp() * a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256StarStar;
    use crate::stats::OnlineStats;

    fn sample_stats<D: Distribution<Output = f64>>(d: &D, n: usize, seed: u64) -> OnlineStats {
        let mut rng = Xoshiro256StarStar::seeded(seed);
        let mut st = OnlineStats::new();
        for _ in 0..n {
            st.push(d.sample(&mut rng));
        }
        st
    }

    #[test]
    fn gamma_known_values() {
        assert!((gamma(1.0) - 1.0).abs() < 1e-10);
        assert!((gamma(2.0) - 1.0).abs() < 1e-10);
        assert!((gamma(3.0) - 2.0).abs() < 1e-9);
        assert!((gamma(4.0) - 6.0).abs() < 1e-9);
        assert!((gamma(0.5) - std::f64::consts::PI.sqrt()).abs() < 1e-9);
        assert!((gamma(1.5) - 0.5 * std::f64::consts::PI.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn uniform_bounds_and_mean() {
        let d = Uniform::new(2.0, 6.0);
        let st = sample_stats(&d, 50_000, 1);
        assert!(st.min() >= 2.0 && st.max() < 6.0);
        assert!((st.mean() - d.mean()).abs() < 0.05, "mean {}", st.mean());
    }

    #[test]
    fn exponential_mean_matches() {
        let d = Exponential::from_mean(120.0);
        let st = sample_stats(&d, 100_000, 2);
        assert!((st.mean() - 120.0).abs() < 2.0, "mean {}", st.mean());
        assert!(st.min() >= 0.0);
    }

    #[test]
    fn normal_moments_match() {
        let d = Normal::new(5.0, 2.0);
        let st = sample_stats(&d, 200_000, 3);
        assert!((st.mean() - 5.0).abs() < 0.03, "mean {}", st.mean());
        assert!((st.std_dev() - 2.0).abs() < 0.03, "sd {}", st.std_dev());
    }

    #[test]
    fn lognormal_from_mean_hits_target_mean() {
        let d = LogNormal::from_mean(1.0, 0.05);
        let st = sample_stats(&d, 200_000, 4);
        assert!((st.mean() - 1.0).abs() < 0.002, "mean {}", st.mean());
        assert!(st.min() > 0.0);
        assert!((d.mean() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weibull_mean_matches_analytic() {
        let d = Weibull::new(1.5, 3600.0);
        let st = sample_stats(&d, 200_000, 5);
        let analytic = d.mean();
        // Gamma(1 + 1/1.5) = Gamma(5/3) ~ 0.902745.
        assert!((analytic - 3600.0 * 0.902_745).abs() < 1.0, "analytic {analytic}");
        assert!((st.mean() - analytic).abs() < 0.01 * analytic, "mean {}", st.mean());
    }

    #[test]
    fn weibull_shape_one_is_exponential() {
        let w = Weibull::new(1.0, 100.0);
        assert!((w.mean() - 100.0).abs() < 1e-6);
    }

    #[test]
    fn categorical_frequencies_match_weights() {
        let d = Categorical::new(&[1.0, 2.0, 3.0, 4.0]);
        let mut rng = Xoshiro256StarStar::seeded(6);
        let n = 200_000;
        let mut counts = [0u32; 4];
        for _ in 0..n {
            counts[d.sample(&mut rng)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let p = d.probability(i);
            let expect = p * n as f64;
            let sigma = (n as f64 * p * (1.0 - p)).sqrt();
            assert!((c as f64 - expect).abs() < 5.0 * sigma, "cat {i}: {c} vs {expect}");
        }
    }

    #[test]
    fn categorical_single_category() {
        let d = Categorical::new(&[3.0]);
        let mut rng = Xoshiro256StarStar::seeded(7);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut rng), 0);
        }
        assert_eq!(d.len(), 1);
        assert!((d.probability(0) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn categorical_zero_weight_category_never_drawn() {
        let d = Categorical::new(&[1.0, 0.0, 1.0]);
        let mut rng = Xoshiro256StarStar::seeded(8);
        for _ in 0..50_000 {
            assert_ne!(d.sample(&mut rng), 1);
        }
    }

    #[test]
    #[should_panic(expected = "sum to zero")]
    fn categorical_all_zero_rejected() {
        let _ = Categorical::new(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "invalid uniform bounds")]
    fn uniform_reversed_bounds_rejected() {
        let _ = Uniform::new(2.0, 1.0);
    }

    #[test]
    fn deterministic_across_runs() {
        let d = LogNormal::from_mean(1.0, 0.1);
        let mut a = Xoshiro256StarStar::seeded(99);
        let mut b = Xoshiro256StarStar::seeded(99);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut a).to_bits(), d.sample(&mut b).to_bits());
        }
    }
}
