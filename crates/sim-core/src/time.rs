//! Simulation time: integer seconds with calendar helpers.
//!
//! The paper's measurement windows are calendar months (Figure 1: Dec 2021 –
//! Apr 2022; Figure 2: Apr – May 2022; Figure 3: Nov – Dec 2022). To label
//! simulated series the same way, [`SimTime`] counts whole seconds from the
//! Unix epoch and converts to/from a proleptic Gregorian [`Stamp`] without
//! pulling in a date-time dependency. Leap seconds are ignored, exactly as in
//! Unix time.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A span of simulated time, in whole seconds.
///
/// Kept separate from [`SimTime`] so that the type system rules out adding
/// two absolute instants together.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(u64);

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs)
    }

    /// Construct from whole minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * 60)
    }

    /// Construct from whole hours.
    pub const fn from_hours(hours: u64) -> Self {
        SimDuration(hours * 3600)
    }

    /// Construct from whole days.
    pub const fn from_days(days: u64) -> Self {
        SimDuration(days * 86_400)
    }

    /// The span in whole seconds.
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// The span in (fractional) hours; convenient for kWh arithmetic.
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 3600.0
    }

    /// The span in (fractional) days.
    pub fn as_days_f64(self) -> f64 {
        self.0 as f64 / 86_400.0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiply the duration by an integer factor.
    pub const fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }

    /// True if the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.0;
        let (d, rem) = (s / 86_400, s % 86_400);
        let (h, rem) = (rem / 3600, rem % 3600);
        let (m, sec) = (rem / 60, rem % 60);
        if d > 0 {
            write!(f, "{d}d{h:02}h{m:02}m{sec:02}s")
        } else if h > 0 {
            write!(f, "{h}h{m:02}m{sec:02}s")
        } else if m > 0 {
            write!(f, "{m}m{sec:02}s")
        } else {
            write!(f, "{sec}s")
        }
    }
}

/// An absolute simulated instant: whole seconds since 1970-01-01T00:00:00.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

impl SimTime {
    /// The epoch, 1970-01-01T00:00:00.
    pub const EPOCH: SimTime = SimTime(0);

    /// Construct from seconds since the epoch.
    pub const fn from_unix(secs: u64) -> Self {
        SimTime(secs)
    }

    /// Seconds since the epoch.
    pub const fn as_unix(self) -> u64 {
        self.0
    }

    /// Construct from a calendar date (midnight UTC).
    ///
    /// # Panics
    /// Panics if the date is invalid or earlier than 1970.
    pub fn from_ymd(year: i32, month: u32, day: u32) -> Self {
        let stamp = Stamp {
            year,
            month,
            day,
            hour: 0,
            minute: 0,
            second: 0,
        };
        stamp.to_sim_time()
    }

    /// Construct from a calendar date and time of day (UTC).
    pub fn from_ymd_hms(year: i32, month: u32, day: u32, hour: u32, minute: u32, second: u32) -> Self {
        Stamp {
            year,
            month,
            day,
            hour,
            minute,
            second,
        }
        .to_sim_time()
    }

    /// Break this instant into calendar components.
    pub fn stamp(self) -> Stamp {
        Stamp::from_sim_time(self)
    }

    /// Duration since an earlier instant.
    ///
    /// # Panics
    /// Panics in debug builds if `earlier` is after `self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(earlier.0 <= self.0, "since() called with a later instant");
        SimDuration(self.0 - earlier.0)
    }

    /// Saturating duration since another instant (zero if `other` is later).
    pub fn saturating_since(self, other: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Fractional hour-of-day in `[0, 24)`; used by diurnal models.
    pub fn hour_of_day_f64(self) -> f64 {
        (self.0 % 86_400) as f64 / 3600.0
    }

    /// Day-of-year in `[0, 365/366)`, fractional; used by seasonal models.
    pub fn day_of_year_f64(self) -> f64 {
        let stamp = self.stamp();
        let jan1 = SimTime::from_ymd(stamp.year, 1, 1);
        self.since(jan1).as_days_f64()
    }

    /// Whole days since the epoch.
    pub const fn days_since_epoch(self) -> u64 {
        self.0 / 86_400
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign<SimDuration> for SimTime {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.stamp())
    }
}

/// Broken-down calendar representation of a [`SimTime`] (UTC, proleptic
/// Gregorian, no leap seconds — i.e. ordinary Unix time semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stamp {
    /// Calendar year, e.g. `2022`.
    pub year: i32,
    /// Month `1..=12`.
    pub month: u32,
    /// Day of month `1..=31`.
    pub day: u32,
    /// Hour `0..=23`.
    pub hour: u32,
    /// Minute `0..=59`.
    pub minute: u32,
    /// Second `0..=59`.
    pub second: u32,
}

/// Is `year` a Gregorian leap year?
pub fn is_leap_year(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

/// Days in the given month of the given year.
///
/// # Panics
/// Panics if `month` is not in `1..=12`.
pub fn days_in_month(year: i32, month: u32) -> u32 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap_year(year) {
                29
            } else {
                28
            }
        }
        _ => panic!("invalid month {month}"),
    }
}

/// Days from 1970-01-01 to `year`-01-01 (years ≥ 1970 only).
fn days_to_year(year: i32) -> u64 {
    assert!(year >= 1970, "SimTime only supports years >= 1970, got {year}");
    let mut days = 0u64;
    for y in 1970..year {
        days += if is_leap_year(y) { 366 } else { 365 };
    }
    days
}

impl Stamp {
    /// Convert to an absolute instant.
    ///
    /// # Panics
    /// Panics if the components do not form a valid date-time in or after 1970.
    pub fn to_sim_time(self) -> SimTime {
        assert!((1..=12).contains(&self.month), "invalid month {}", self.month);
        assert!(
            self.day >= 1 && self.day <= days_in_month(self.year, self.month),
            "invalid day {} for {}-{:02}",
            self.day,
            self.year,
            self.month
        );
        assert!(self.hour < 24 && self.minute < 60 && self.second < 60, "invalid time of day");
        let mut days = days_to_year(self.year);
        for m in 1..self.month {
            days += days_in_month(self.year, m) as u64;
        }
        days += (self.day - 1) as u64;
        let secs = days * 86_400 + (self.hour as u64) * 3600 + (self.minute as u64) * 60 + self.second as u64;
        SimTime::from_unix(secs)
    }

    /// Break an absolute instant into calendar components.
    pub fn from_sim_time(t: SimTime) -> Stamp {
        let mut days = t.as_unix() / 86_400;
        let rem = t.as_unix() % 86_400;
        let mut year = 1970;
        loop {
            let ydays = if is_leap_year(year) { 366 } else { 365 };
            if days < ydays {
                break;
            }
            days -= ydays;
            year += 1;
        }
        let mut month = 1;
        loop {
            let mdays = days_in_month(year, month) as u64;
            if days < mdays {
                break;
            }
            days -= mdays;
            month += 1;
        }
        Stamp {
            year,
            month,
            day: days as u32 + 1,
            hour: (rem / 3600) as u32,
            minute: ((rem % 3600) / 60) as u32,
            second: (rem % 60) as u32,
        }
    }

    /// English month abbreviation ("Jan", …, "Dec").
    pub fn month_abbrev(&self) -> &'static str {
        const NAMES: [&str; 12] = [
            "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
        ];
        NAMES[(self.month - 1) as usize]
    }
}

impl fmt::Display for Stamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:04}-{:02}-{:02}T{:02}:{:02}:{:02}Z",
            self.year, self.month, self.day, self.hour, self.minute, self.second
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_roundtrip() {
        let t = SimTime::EPOCH;
        let s = t.stamp();
        assert_eq!((s.year, s.month, s.day), (1970, 1, 1));
        assert_eq!(s.to_sim_time(), t);
    }

    #[test]
    fn paper_window_dates_roundtrip() {
        // The measurement windows used in the paper's figures.
        for (y, m, d) in [
            (2021, 12, 1),
            (2022, 4, 1),
            (2022, 5, 15),
            (2022, 11, 1),
            (2022, 12, 31),
        ] {
            let t = SimTime::from_ymd(y, m, d);
            let s = t.stamp();
            assert_eq!((s.year, s.month, s.day), (y, m, d));
            assert_eq!((s.hour, s.minute, s.second), (0, 0, 0));
        }
    }

    #[test]
    fn known_unix_timestamps() {
        // 2021-12-01T00:00:00Z == 1638316800 (independently known value).
        assert_eq!(SimTime::from_ymd(2021, 12, 1).as_unix(), 1_638_316_800);
        // 2022-05-01T00:00:00Z == 1651363200.
        assert_eq!(SimTime::from_ymd(2022, 5, 1).as_unix(), 1_651_363_200);
        // 2000-02-29 existed (leap year divisible by 400).
        assert_eq!(SimTime::from_ymd(2000, 3, 1).as_unix() - SimTime::from_ymd(2000, 2, 29).as_unix(), 86_400);
    }

    #[test]
    fn leap_year_rules() {
        assert!(is_leap_year(2000));
        assert!(!is_leap_year(1900));
        assert!(is_leap_year(2024));
        assert!(!is_leap_year(2023));
        assert_eq!(days_in_month(2024, 2), 29);
        assert_eq!(days_in_month(2023, 2), 28);
    }

    #[test]
    fn duration_arithmetic() {
        let start = SimTime::from_ymd(2022, 4, 1);
        let end = start + SimDuration::from_days(30);
        let s = end.stamp();
        assert_eq!((s.year, s.month, s.day), (2022, 5, 1));
        assert_eq!(end.since(start).as_days_f64(), 30.0);
        assert_eq!(start.saturating_since(end), SimDuration::ZERO);
    }

    #[test]
    fn duration_display() {
        assert_eq!(SimDuration::from_secs(42).to_string(), "42s");
        assert_eq!(SimDuration::from_mins(5).to_string(), "5m00s");
        assert_eq!(SimDuration::from_hours(2).to_string(), "2h00m00s");
        assert_eq!(
            (SimDuration::from_days(1) + SimDuration::from_hours(1)).to_string(),
            "1d01h00m00s"
        );
    }

    #[test]
    fn hour_of_day_and_day_of_year() {
        let t = SimTime::from_ymd_hms(2022, 1, 1, 6, 0, 0);
        assert!((t.hour_of_day_f64() - 6.0).abs() < 1e-12);
        assert!((t.day_of_year_f64() - 0.25).abs() < 1e-12);
        let t2 = SimTime::from_ymd(2022, 2, 1);
        assert!((t2.day_of_year_f64() - 31.0).abs() < 1e-12);
    }

    #[test]
    fn display_formats() {
        let t = SimTime::from_ymd_hms(2022, 12, 24, 18, 30, 5);
        assert_eq!(t.to_string(), "2022-12-24T18:30:05Z");
        assert_eq!(t.stamp().month_abbrev(), "Dec");
    }

    #[test]
    #[should_panic(expected = "invalid day")]
    fn invalid_date_panics() {
        let _ = SimTime::from_ymd(2022, 2, 30);
    }

    #[test]
    fn stamp_roundtrip_dense_sweep() {
        // Every 8191 seconds across several years, the roundtrip must hold.
        let start = SimTime::from_ymd(2020, 1, 1).as_unix();
        let end = SimTime::from_ymd(2025, 1, 1).as_unix();
        let mut t = start;
        while t < end {
            let st = SimTime::from_unix(t);
            assert_eq!(st.stamp().to_sim_time(), st);
            t += 8191;
        }
    }
}
