//! Deterministic pseudo-random number generation.
//!
//! Reproducibility of the experiment campaign is a hard requirement (the
//! `EXPERIMENTS.md` numbers must regenerate exactly), so the generators are
//! implemented here from their published reference algorithms rather than
//! taken from an external crate whose stream might change across versions:
//!
//! * [`SplitMix64`] — Steele, Lea & Flood (2014). Used to expand a single
//!   `u64` seed into generator state and to derive independent per-component
//!   substreams (one per node, per job source, …).
//! * [`Xoshiro256StarStar`] — Blackman & Vigna (2018). The workhorse
//!   generator: fast, 256-bit state, passes BigCrush.
//!
//! Both are tested against published reference vectors below.

/// Minimal random-source trait used throughout the workspace.
///
/// Deliberately much smaller than `rand::RngCore`: simulation code only ever
/// needs raw `u64`s and the float helpers built on top.
pub trait Rng {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)`, using the top 53 bits.
    fn next_f64(&mut self) -> f64 {
        // 53 high bits -> [0,1) with full double precision.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` via Lemire's multiply-shift rejection
    /// method (unbiased).
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below(0)");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound {
                return (m >> 64) as u64;
            }
            // Rejection zone: only reached with probability < bound / 2^64.
            let threshold = bound.wrapping_neg() % bound;
            if low >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `usize` index in `[0, len)`.
    fn index(&mut self, len: usize) -> usize {
        self.next_below(len as u64) as usize
    }

    /// Bernoulli draw with probability `p` (clamped to `[0,1]`).
    fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle of a slice.
    fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }
}

/// SplitMix64: tiny 64-bit-state generator, primarily used for seeding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256**: the main simulation generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Seed via SplitMix64 expansion, per the authors' recommendation.
    pub fn seeded(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // All-zero state is invalid (fixed point); SplitMix64 cannot produce
        // four consecutive zeros, but guard anyway for from_state parity.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Xoshiro256StarStar { s }
    }

    /// Construct directly from raw state (must not be all-zero).
    ///
    /// # Panics
    /// Panics if `state` is all zeros.
    pub fn from_state(state: [u64; 4]) -> Self {
        assert!(state != [0; 4], "xoshiro256** state must be non-zero");
        Xoshiro256StarStar { s: state }
    }

    /// Derive an independent substream for component `tag`.
    ///
    /// Substreams are produced by hashing `(root seed material, tag)` through
    /// SplitMix64, which is how per-node and per-source generators stay
    /// decorrelated while remaining a pure function of the campaign seed.
    pub fn substream(&self, tag: u64) -> Self {
        let mix = self.s[0] ^ self.s[1].rotate_left(17) ^ self.s[2].rotate_left(34) ^ self.s[3].rotate_left(51);
        Xoshiro256StarStar::seeded(mix ^ tag.wrapping_mul(0xD6E8_FEB8_6659_FD93))
    }

    /// Equivalent to 2^128 `next_u64` calls; yields non-overlapping sequences.
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180E_C6D3_3CFD_0ABA,
            0xD5A6_1266_F0C9_392C,
            0xA958_2618_E03F_C9AA,
            0x39AB_DC45_29B1_661C,
        ];
        let mut t = [0u64; 4];
        for j in JUMP {
            for b in 0..64 {
                if (j & (1u64 << b)) != 0 {
                    for (ti, si) in t.iter_mut().zip(self.s.iter()) {
                        *ti ^= *si;
                    }
                }
                let _ = self.next_u64();
            }
        }
        self.s = t;
    }
}

impl Rng for Xoshiro256StarStar {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix64_reference_vector() {
        // Reference: output of the C reference implementation for seed 1234567.
        let mut rng = SplitMix64::new(1234567);
        let expected = [
            6_457_827_717_110_365_317u64,
            3_203_168_211_198_807_973,
            9_817_491_932_198_370_423,
            4_593_380_528_125_082_431,
            16_408_922_859_458_223_821,
        ];
        for e in expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn xoshiro_reference_vector() {
        // Reference vector from the rand_xoshiro crate's test (state 1,2,3,4).
        let mut rng = Xoshiro256StarStar::from_state([1, 2, 3, 4]);
        let expected = [
            11_520u64,
            0,
            1_509_978_240,
            1_215_971_899_390_074_240,
            1_216_172_134_540_287_360,
            607_988_272_756_665_600,
            16_172_922_978_634_559_625,
            8_476_171_486_693_032_832,
            10_595_114_339_597_558_777,
            2_904_607_092_377_533_576,
        ];
        for e in expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Xoshiro256StarStar::seeded(42);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x), "x = {x}");
        }
    }

    #[test]
    fn next_below_is_in_range_and_covers() {
        let mut rng = Xoshiro256StarStar::seeded(7);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let v = rng.next_below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear in 10k draws");
    }

    #[test]
    fn next_below_approximately_uniform() {
        let mut rng = Xoshiro256StarStar::seeded(99);
        let n = 100_000;
        let k = 7u64;
        let mut counts = [0u32; 7];
        for _ in 0..n {
            counts[rng.next_below(k) as usize] += 1;
        }
        let expect = n as f64 / k as f64;
        for c in counts {
            // 5-sigma band for a binomial with p = 1/7.
            let sigma = (n as f64 * (1.0 / 7.0) * (6.0 / 7.0)).sqrt();
            assert!((c as f64 - expect).abs() < 5.0 * sigma, "count {c} vs {expect}");
        }
    }

    #[test]
    fn substreams_are_decorrelated() {
        let root = Xoshiro256StarStar::seeded(2022);
        let mut a = root.substream(1);
        let mut b = root.substream(2);
        let mut same = 0;
        for _ in 0..1000 {
            if a.next_u64() == b.next_u64() {
                same += 1;
            }
        }
        assert_eq!(same, 0, "distinct substreams should not collide");
    }

    #[test]
    fn substreams_are_reproducible() {
        let root = Xoshiro256StarStar::seeded(2022);
        let mut a1 = root.substream(77);
        let mut a2 = root.substream(77);
        for _ in 0..100 {
            assert_eq!(a1.next_u64(), a2.next_u64());
        }
    }

    #[test]
    fn jump_produces_disjoint_streams() {
        let mut a = Xoshiro256StarStar::seeded(5);
        let mut b = a.clone();
        b.jump();
        let head_a: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let head_b: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_ne!(head_a, head_b);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Xoshiro256StarStar::seeded(3);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle of 100 items should move something");
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_state_rejected() {
        let _ = Xoshiro256StarStar::from_state([0; 4]);
    }
}
