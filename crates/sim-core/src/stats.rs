//! Online statistics: Welford accumulators, fixed-bin histograms, EWMA and a
//! P² streaming quantile estimator.
//!
//! A five-month campaign at 15-minute sampling produces ~14k cabinet power
//! samples per component stream and millions of per-job records; everything
//! here is O(1) memory per stream so whole-facility instrumentation stays
//! cheap.

/// Welford online mean/variance accumulator with min/max tracking.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Reconstruct an accumulator from externally computed moments — the
    /// bridge from pre-aggregated storage (e.g. `hpc-tsdb` rollup buckets,
    /// which carry the same Welford moments) back into the stats API.
    /// An `n` of zero ignores the other arguments and yields `new()`.
    pub fn from_moments(n: u64, mean: f64, m2: f64, min: f64, max: f64) -> Self {
        if n == 0 {
            return OnlineStats::new();
        }
        OnlineStats { n, mean, m2, min, max }
    }

    /// Add one observation.
    ///
    /// # Panics
    /// Panics in debug builds on a non-finite observation; power and energy
    /// samples must always be finite.
    pub fn push(&mut self, x: f64) {
        debug_assert!(x.is_finite(), "non-finite observation {x}");
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge another accumulator into this one (parallel reduction, per
    /// Chan et al.'s pairwise update).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 for fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample variance, Bessel-corrected (0 for fewer than 2 observations).
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.n as f64
    }
}

/// Exponentially weighted moving average.
#[derive(Debug, Clone, PartialEq)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Create with smoothing factor `alpha` in `(0, 1]`.
    ///
    /// # Panics
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "EWMA alpha must be in (0,1], got {alpha}");
        Ewma { alpha, value: None }
    }

    /// Feed one observation and return the updated average.
    pub fn push(&mut self, x: f64) -> f64 {
        let v = match self.value {
            None => x,
            Some(prev) => prev + self.alpha * (x - prev),
        };
        self.value = Some(v);
        v
    }

    /// Current average, if any observation has been fed.
    pub fn value(&self) -> Option<f64> {
        self.value
    }
}

/// Fixed-bin histogram over `[lo, hi)` with under/overflow bins.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Create with `nbins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `nbins == 0` or the bounds are invalid.
    pub fn new(lo: f64, hi: f64, nbins: usize) -> Self {
        assert!(nbins > 0, "histogram needs at least one bin");
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "invalid histogram range [{lo}, {hi})");
        Histogram {
            lo,
            hi,
            bins: vec![0; nbins],
            underflow: 0,
            overflow: 0,
            count: 0,
        }
    }

    /// Record one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = ((x - self.lo) / w) as usize;
            // Floating-point edge: clamp the final representable value.
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Raw in-range bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Count below `lo`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Count at or above `hi`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations, including out-of-range.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Midpoint of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        self.lo + (i as f64 + 0.5) * w
    }

    /// Approximate quantile `q` in `[0,1]` by scanning the CDF of in-range
    /// bins (out-of-range counts are clamped to the bounds).
    ///
    /// Returns `None` when the histogram is empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // The target is the 1-indexed rank of the wanted observation, so it
        // is at least 1: a `ceil(0) = 0` target matched the empty prefix
        // and reported the centre of bin 0 whether or not it held anything.
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cum = self.underflow;
        if cum >= target {
            return Some(self.lo);
        }
        for (i, &b) in self.bins.iter().enumerate() {
            if b == 0 {
                continue;
            }
            cum += b;
            if cum >= target {
                // q = 0 asks for the minimum; the bin's low edge is the
                // tightest bound the histogram can give.
                let w = (self.hi - self.lo) / self.bins.len() as f64;
                return Some(if q == 0.0 {
                    self.lo + i as f64 * w
                } else {
                    self.bin_center(i)
                });
            }
        }
        Some(self.hi)
    }
}

/// Streaming quantile tracker using the P² algorithm (Jain & Chlamtac 1985)
/// for a single target quantile — O(1) memory, no sample retention.
#[derive(Debug, Clone, PartialEq)]
pub struct Quantiles {
    p: f64,
    // Marker heights and positions; first 5 observations fill `init`.
    q: [f64; 5],
    n: [f64; 5],
    np: [f64; 5],
    dn: [f64; 5],
    init: Vec<f64>,
}

impl Quantiles {
    /// Track quantile `p` in `(0, 1)`.
    ///
    /// # Panics
    /// Panics if `p` is outside `(0, 1)`.
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p < 1.0, "quantile must be in (0,1), got {p}");
        Quantiles {
            p,
            q: [0.0; 5],
            n: [0.0; 5],
            np: [0.0; 5],
            dn: [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
            init: Vec::with_capacity(5),
        }
    }

    /// Feed one observation.
    pub fn push(&mut self, x: f64) {
        if self.init.len() < 5 {
            self.init.push(x);
            if self.init.len() == 5 {
                self.init.sort_by(|a, b| a.partial_cmp(b).expect("NaN observation"));
                for i in 0..5 {
                    self.q[i] = self.init[i];
                    self.n[i] = (i + 1) as f64;
                }
                self.np = [
                    1.0,
                    1.0 + 2.0 * self.p,
                    1.0 + 4.0 * self.p,
                    3.0 + 2.0 * self.p,
                    5.0,
                ];
            }
            return;
        }

        // Find cell k containing x, adjusting extreme markers.
        let k = if x < self.q[0] {
            self.q[0] = x;
            0
        } else if x >= self.q[4] {
            self.q[4] = x;
            3
        } else {
            let mut k = 0;
            for i in 0..4 {
                if x >= self.q[i] && x < self.q[i + 1] {
                    k = i;
                    break;
                }
            }
            k
        };

        for i in (k + 1)..5 {
            self.n[i] += 1.0;
        }
        for i in 0..5 {
            self.np[i] += self.dn[i];
        }

        // Adjust interior markers with parabolic interpolation.
        for i in 1..4 {
            let d = self.np[i] - self.n[i];
            if (d >= 1.0 && self.n[i + 1] - self.n[i] > 1.0) || (d <= -1.0 && self.n[i - 1] - self.n[i] < -1.0) {
                let d = d.signum();
                let qn = self.parabolic(i, d);
                self.q[i] = if self.q[i - 1] < qn && qn < self.q[i + 1] {
                    qn
                } else {
                    self.linear(i, d)
                };
                self.n[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let q = &self.q;
        let n = &self.n;
        q[i] + d / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.q[i] + d * (self.q[j] - self.q[i]) / (self.n[j] - self.n[i])
    }

    /// Current estimate, or `None` before any observation.
    pub fn estimate(&self) -> Option<f64> {
        if self.init.len() < 5 {
            if self.init.is_empty() {
                return None;
            }
            // Small-sample fallback: nearest-rank on the buffered values.
            let mut v = self.init.clone();
            v.sort_by(|a, b| a.partial_cmp(b).expect("NaN observation"));
            let idx = ((self.p * v.len() as f64).ceil() as usize).clamp(1, v.len()) - 1;
            return Some(v[idx]);
        }
        Some(self.q[2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Distribution, Normal, Uniform};
    use crate::rng::Xoshiro256StarStar;

    #[test]
    fn online_stats_basics() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!((s.sum() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn online_stats_empty() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..1000).map(|i| ((i * 37) % 113) as f64 * 0.5).collect();
        let mut whole = OnlineStats::new();
        for &x in &data {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &data[..400] {
            a.push(x);
        }
        for &x in &data[400..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn from_moments_roundtrips_accumulator() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        let rebuilt =
            OnlineStats::from_moments(s.count(), s.mean(), s.variance() * s.count() as f64, s.min(), s.max());
        assert_eq!(rebuilt.count(), s.count());
        assert!((rebuilt.mean() - s.mean()).abs() < 1e-12);
        assert!((rebuilt.variance() - s.variance()).abs() < 1e-12);
        assert_eq!(rebuilt.min(), s.min());
        assert_eq!(rebuilt.max(), s.max());
        assert_eq!(OnlineStats::from_moments(0, 9.9, 9.9, 9.9, 9.9), OnlineStats::new());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(3.0);
        let before = a.clone();
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);

        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn ewma_converges_to_constant() {
        let mut e = Ewma::new(0.3);
        assert_eq!(e.value(), None);
        for _ in 0..100 {
            e.push(10.0);
        }
        assert!((e.value().unwrap() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn ewma_first_value_passthrough() {
        let mut e = Ewma::new(0.1);
        assert_eq!(e.push(42.0), 42.0);
    }

    #[test]
    fn histogram_binning() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.push(i as f64 + 0.5);
        }
        h.push(-1.0);
        h.push(10.0);
        assert_eq!(h.bins(), &[1; 10]);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.count(), 12);
        assert!((h.bin_center(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_quantile_uniform() {
        let d = Uniform::new(0.0, 100.0);
        let mut rng = Xoshiro256StarStar::seeded(11);
        let mut h = Histogram::new(0.0, 100.0, 200);
        for _ in 0..100_000 {
            h.push(d.sample(&mut rng));
        }
        let med = h.quantile(0.5).unwrap();
        assert!((med - 50.0).abs() < 1.0, "median {med}");
        let p90 = h.quantile(0.9).unwrap();
        assert!((p90 - 90.0).abs() < 1.0, "p90 {p90}");
    }

    #[test]
    fn histogram_empty_quantile_none() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn histogram_quantile_extremes() {
        // All mass in a high bin: q=0 must not report empty bin 0.
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.push(7.5);
        h.push(7.6);
        // q=0 → low edge of the first occupied bin, not bin_center(0)=0.5.
        assert_eq!(h.quantile(0.0), Some(7.0));
        // q=1 → the occupied bin's centre, not the histogram's upper bound.
        assert_eq!(h.quantile(1.0), Some(7.5));
        // Out-of-range q values clamp.
        assert_eq!(h.quantile(-3.0), Some(7.0));
        assert_eq!(h.quantile(2.0), Some(7.5));
        // Underflow mass clamps to the lower bound for small q...
        let mut u = Histogram::new(0.0, 10.0, 10);
        u.push(-5.0);
        u.push(8.5);
        assert_eq!(u.quantile(0.0), Some(0.0));
        // ...and overflow mass clamps to the upper bound for q=1.
        let mut o = Histogram::new(0.0, 10.0, 10);
        o.push(2.5);
        o.push(99.0);
        assert_eq!(o.quantile(1.0), Some(10.0));
    }

    #[test]
    fn p2_median_of_normal() {
        let d = Normal::new(100.0, 15.0);
        let mut rng = Xoshiro256StarStar::seeded(12);
        let mut q = Quantiles::new(0.5);
        for _ in 0..100_000 {
            q.push(d.sample(&mut rng));
        }
        let est = q.estimate().unwrap();
        assert!((est - 100.0).abs() < 0.5, "median estimate {est}");
    }

    #[test]
    fn p2_tail_quantile_of_uniform() {
        let d = Uniform::new(0.0, 1.0);
        let mut rng = Xoshiro256StarStar::seeded(13);
        let mut q = Quantiles::new(0.95);
        for _ in 0..100_000 {
            q.push(d.sample(&mut rng));
        }
        let est = q.estimate().unwrap();
        assert!((est - 0.95).abs() < 0.01, "p95 estimate {est}");
    }

    #[test]
    fn p2_small_sample_fallback() {
        let mut q = Quantiles::new(0.5);
        assert_eq!(q.estimate(), None);
        q.push(3.0);
        q.push(1.0);
        q.push(2.0);
        // nearest-rank median of {1,2,3} = 2.
        assert_eq!(q.estimate(), Some(2.0));
    }
}
