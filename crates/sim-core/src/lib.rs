//! # sim-core
//!
//! Deterministic discrete-event simulation (DES) engine used by every other
//! crate in the `archer2-repro` workspace.
//!
//! The ARCHER2 reproduction simulates a 5,860-node facility over calendar
//! months, so the engine is built around three requirements:
//!
//! 1. **Determinism** — the same seed must produce bit-identical results on
//!    every platform and every run, so experiments in `EXPERIMENTS.md` are
//!    reproducible. All randomness flows through the [`rng`] module
//!    (SplitMix64 / xoshiro256**) rather than platform RNGs, and the event
//!    queue breaks timestamp ties with a monotone sequence number.
//! 2. **Calendar awareness** — the paper's figures are labelled with real
//!    months (Dec 2021 – Apr 2022, etc.). [`time::SimTime`] is an integer
//!    second count with calendar helpers so simulated series can be labelled
//!    the same way.
//! 3. **Cheap statistics** — months of 15-minute power samples are summarised
//!    online ([`stats`]) without storing gigabytes of state.
//!
//! The engine is deliberately free of I/O, threads and interior mutability:
//! a simulation is a value you step, which keeps property-based testing
//! (proptest) straightforward.

#![warn(missing_docs)]

pub mod dist;
pub mod event;
pub mod rng;
pub mod sim;
pub mod stats;
pub mod time;

pub use dist::{Categorical, Distribution, Exponential, LogNormal, Normal, Uniform, Weibull};
pub use event::{EventQueue, ScheduledEvent};
pub use rng::{Rng, SplitMix64, Xoshiro256StarStar};
pub use sim::{Simulation, StepOutcome, World};
pub use stats::{Ewma, Histogram, OnlineStats, Quantiles};
pub use time::{SimDuration, SimTime, Stamp};
