//! # hpc-grid
//!
//! The electricity-grid side of the reproduction: carbon-intensity signals
//! for scope-2 emissions accounting (§2 of the paper) and capacity/
//! curtailment signals for the "good grid citizen" narrative (§3, §5 — the
//! work was done "specifically within the context of reducing the power
//! draw of ARCHER2 during Winter 2022/2023 when there were concerns about
//! power shortages on the UK power grid").

#![warn(missing_docs)]

pub mod capacity;
pub mod carbon_aware;
pub mod intensity;

pub use capacity::{CurtailmentRequest, GridCapacityModel};
pub use carbon_aware::{optimal_shift, ShiftOutcome};
pub use intensity::{CarbonIntensityModel, IntensityScenario};
