//! Grid capacity and demand-response signals.
//!
//! Winter 2022/2023 context (§3): the UK grid operator was concerned about
//! capacity shortfalls on cold, still evenings. [`GridCapacityModel`]
//! synthesises a headroom signal with exactly that shape — tight on winter
//! weekday evenings — and emits [`CurtailmentRequest`]s when headroom falls
//! below a threshold, which the facility campaign can respond to by
//! dropping the CPU frequency (the paper's §4.2 change freed 480 kW of grid
//! capacity precisely for such periods).

use serde::{Deserialize, Serialize};
use sim_core::rng::{Rng, Xoshiro256StarStar};
use sim_core::time::{SimDuration, SimTime};

/// A request from the grid operator to shed load.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CurtailmentRequest {
    /// When the curtailment window starts.
    pub start: SimTime,
    /// Window length.
    pub duration: SimDuration,
    /// Severity in `[0, 1]`: 1 = worst headroom observed.
    pub severity: f64,
}

/// Synthesises grid headroom and curtailment requests.
#[derive(Debug, Clone)]
pub struct GridCapacityModel {
    /// Mean headroom as a fraction of peak demand (UK margin ≈ 10-15 %).
    pub mean_headroom: f64,
    /// Headroom below this fraction triggers a curtailment request.
    pub alert_threshold: f64,
    rng: Xoshiro256StarStar,
}

impl GridCapacityModel {
    /// UK-winter-like defaults.
    pub fn new(seed: u64) -> Self {
        GridCapacityModel {
            mean_headroom: 0.12,
            alert_threshold: 0.04,
            rng: Xoshiro256StarStar::seeded(seed),
        }
    }

    /// Deterministic expected headroom fraction at `t`.
    ///
    /// Tightest on winter weekday evenings (17:00-20:00), loosest on summer
    /// nights.
    pub fn expected_headroom(&self, t: SimTime) -> f64 {
        let seasonal = 1.0 - 0.45 * (std::f64::consts::TAU * t.day_of_year_f64() / 365.25).cos();
        // seasonal ∈ [0.55 (New Year) , 1.45 (midsummer)].
        let h = t.hour_of_day_f64();
        // Evening demand peak 17:00-20:00 knocks ~50 % off headroom.
        let evening = if (17.0..20.0).contains(&h) { 0.5 } else { 1.0 };
        // 1970-01-01 was a Thursday; (days + 4) % 7 gives 0 = Sunday.
        let dow = (t.days_since_epoch() + 4) % 7;
        let weekday = if (1..=5).contains(&dow) { 0.9 } else { 1.1 };
        self.mean_headroom * seasonal * evening * weekday
    }

    /// Scan `[start, end)` at interval `dt` and return the curtailment
    /// requests a grid operator would issue (consecutive alert samples are
    /// merged into one request).
    pub fn curtailment_requests(
        &mut self,
        start: SimTime,
        end: SimTime,
        dt: SimDuration,
    ) -> Vec<CurtailmentRequest> {
        let mut requests: Vec<CurtailmentRequest> = Vec::new();
        let mut open: Option<(SimTime, f64)> = None;
        let mut t = start;
        while t < end {
            // Mild noise on top of the deterministic shape.
            let noise = 1.0 + 0.25 * (self.rng.next_f64() - 0.5);
            let headroom = self.expected_headroom(t) * noise;
            if headroom < self.alert_threshold {
                let sev = (1.0 - headroom / self.alert_threshold).clamp(0.0, 1.0);
                open = match open {
                    None => Some((t, sev)),
                    Some((s, prev)) => Some((s, prev.max(sev))),
                };
            } else if let Some((s, sev)) = open.take() {
                requests.push(CurtailmentRequest {
                    start: s,
                    duration: t.since(s),
                    severity: sev,
                });
            }
            t += dt;
        }
        if let Some((s, sev)) = open {
            requests.push(CurtailmentRequest {
                start: s,
                duration: end.since(s),
                severity: sev,
            });
        }
        requests
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn winter_evening_tighter_than_summer_night() {
        let m = GridCapacityModel::new(1);
        let winter_evening = m.expected_headroom(SimTime::from_ymd_hms(2022, 12, 12, 18, 0, 0));
        let summer_night = m.expected_headroom(SimTime::from_ymd_hms(2022, 6, 21, 2, 0, 0));
        assert!(
            winter_evening < 0.5 * summer_night,
            "winter evening {winter_evening} vs summer night {summer_night}"
        );
    }

    #[test]
    fn weekends_are_looser() {
        let m = GridCapacityModel::new(1);
        // 2022-12-12 is a Monday; 2022-12-17 a Saturday.
        let monday = m.expected_headroom(SimTime::from_ymd_hms(2022, 12, 12, 18, 0, 0));
        let saturday = m.expected_headroom(SimTime::from_ymd_hms(2022, 12, 17, 18, 0, 0));
        assert!(saturday > monday);
    }

    #[test]
    fn winter_produces_curtailment_requests_summer_does_not() {
        let mut m = GridCapacityModel::new(2);
        let winter = m.curtailment_requests(
            SimTime::from_ymd(2022, 12, 1),
            SimTime::from_ymd(2023, 1, 1),
            SimDuration::from_mins(30),
        );
        assert!(!winter.is_empty(), "December should trigger alerts");

        let mut m = GridCapacityModel::new(2);
        let summer = m.curtailment_requests(
            SimTime::from_ymd(2022, 6, 1),
            SimTime::from_ymd(2022, 7, 1),
            SimDuration::from_mins(30),
        );
        assert!(summer.is_empty(), "June should not trigger alerts, got {}", summer.len());
    }

    #[test]
    fn requests_are_merged_windows_in_evening_hours() {
        let mut m = GridCapacityModel::new(3);
        let reqs = m.curtailment_requests(
            SimTime::from_ymd(2022, 12, 1),
            SimTime::from_ymd(2022, 12, 15),
            SimDuration::from_mins(30),
        );
        for r in &reqs {
            assert!(r.duration.as_secs() >= 1800, "windows are at least one sample long");
            assert!((0.0..=1.0).contains(&r.severity));
            let h = r.start.hour_of_day_f64();
            assert!((16.5..20.0).contains(&h), "alerts cluster in the evening peak, got {h}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = GridCapacityModel::new(42);
        let mut b = GridCapacityModel::new(42);
        let (s, e) = (SimTime::from_ymd(2022, 12, 1), SimTime::from_ymd(2022, 12, 8));
        assert_eq!(
            a.curtailment_requests(s, e, SimDuration::from_mins(30)),
            b.curtailment_requests(s, e, SimDuration::from_mins(30))
        );
    }
}
