//! Grid carbon-intensity models (gCO₂/kWh).
//!
//! §2 of the paper divides the emissions-efficiency question into three
//! regimes by the carbon intensity (CI) of the electricity supply:
//!
//! * CI < 30 gCO₂/kWh — scope-3 (embodied) emissions dominate;
//! * 30–100 gCO₂/kWh — scope 2 and scope 3 contribute roughly equally;
//! * CI > 100 gCO₂/kWh — scope-2 (operational) emissions dominate.
//!
//! [`IntensityScenario`] provides the deterministic component — flat test
//! values, a UK-2022-like seasonal/diurnal shape, and multi-year
//! decarbonisation trajectories for the lifetime scenario modelling the
//! paper flags as future work. [`CarbonIntensityModel`] adds autocorrelated
//! wind-driven noise on top to synthesise realistic half-hourly traces.

use serde::{Deserialize, Serialize};
use sim_core::rng::{Rng, Xoshiro256StarStar};
use sim_core::time::{SimDuration, SimTime};

/// Deterministic carbon-intensity scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum IntensityScenario {
    /// A constant intensity — used for the §2 regime sweep.
    Flat(f64),
    /// UK-2022-like: annual mean ≈ 200 gCO₂/kWh, winter ≈ +25 %, a diurnal
    /// swing peaking in the evening, minimum in the small hours.
    UkGrid2022,
    /// Linear decarbonisation from `start_g` to `end_g` between two years
    /// (lifetime scenario modelling).
    Decarbonising {
        /// Intensity at `start_year` (gCO₂/kWh).
        start_g: f64,
        /// Intensity at `end_year` (gCO₂/kWh).
        end_g: f64,
        /// First year of the trajectory.
        start_year: i32,
        /// Last year of the trajectory.
        end_year: i32,
    },
}

impl IntensityScenario {
    /// Deterministic expected intensity at an instant (no noise).
    pub fn expected(&self, t: SimTime) -> f64 {
        match *self {
            IntensityScenario::Flat(g) => g,
            IntensityScenario::UkGrid2022 => {
                let mean = 200.0;
                // Seasonal: cosine peaking at New Year (day 0) — winter-high.
                let seasonal = 1.0 + 0.22 * (std::f64::consts::TAU * t.day_of_year_f64() / 365.25).cos();
                // Diurnal: evening peak (~18:00), overnight trough (~03:00).
                let h = t.hour_of_day_f64();
                let diurnal = 1.0 + 0.15 * (std::f64::consts::TAU * (h - 12.0) / 24.0).sin();
                mean * seasonal * diurnal
            }
            IntensityScenario::Decarbonising {
                start_g,
                end_g,
                start_year,
                end_year,
            } => {
                let y0 = SimTime::from_ymd(start_year, 1, 1).as_unix() as f64;
                let y1 = SimTime::from_ymd(end_year, 12, 31).as_unix() as f64;
                let frac = ((t.as_unix() as f64 - y0) / (y1 - y0)).clamp(0.0, 1.0);
                (start_g + (end_g - start_g) * frac).max(0.0)
            }
        }
    }

    /// The paper's regime classification of an intensity value.
    pub fn regime_of(ci: f64) -> EmissionRegime {
        if ci < 30.0 {
            EmissionRegime::EmbodiedDominated
        } else if ci <= 100.0 {
            EmissionRegime::Balanced
        } else {
            EmissionRegime::OperationalDominated
        }
    }
}

/// Which emissions source dominates at a given carbon intensity (§2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EmissionRegime {
    /// CI < 30 gCO₂/kWh: scope 3 dominates — optimise application
    /// performance irrespective of energy efficiency.
    EmbodiedDominated,
    /// 30–100 gCO₂/kWh: scope 2 ≈ scope 3 — balance performance and energy.
    Balanced,
    /// CI > 100 gCO₂/kWh: scope 2 dominates — optimise energy efficiency
    /// even at some performance cost.
    OperationalDominated,
}

impl std::fmt::Display for EmissionRegime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EmissionRegime::EmbodiedDominated => write!(f, "embodied-dominated (<30 g/kWh)"),
            EmissionRegime::Balanced => write!(f, "balanced (30-100 g/kWh)"),
            EmissionRegime::OperationalDominated => write!(f, "operational-dominated (>100 g/kWh)"),
        }
    }
}

/// A stochastic intensity model: scenario shape × AR(1) wind noise.
#[derive(Debug, Clone)]
pub struct CarbonIntensityModel {
    scenario: IntensityScenario,
    /// AR(1) coefficient per step (wind persistence).
    rho: f64,
    /// Noise magnitude as a fraction of the expected value.
    sigma: f64,
    state: f64,
    rng: Xoshiro256StarStar,
}

impl CarbonIntensityModel {
    /// Build with UK-like noise defaults.
    pub fn new(scenario: IntensityScenario, seed: u64) -> Self {
        CarbonIntensityModel {
            scenario,
            rho: 0.97,
            sigma: 0.20,
            state: 0.0,
            rng: Xoshiro256StarStar::seeded(seed),
        }
    }

    /// The underlying deterministic scenario.
    pub fn scenario(&self) -> IntensityScenario {
        self.scenario
    }

    /// Generate a half-open trace `[start, start + steps·dt)` sampled every
    /// `dt`. Values are clamped at a 10 gCO₂/kWh floor (even a windy night
    /// has residual gas and imports on the UK grid).
    pub fn trace(&mut self, start: SimTime, dt: SimDuration, steps: usize) -> Vec<(SimTime, f64)> {
        let mut out = Vec::with_capacity(steps);
        let mut t = start;
        for _ in 0..steps {
            // AR(1): state' = rho·state + N(0, sqrt(1-rho²)) keeps unit var.
            let innov = standard_normal(&mut self.rng) * (1.0 - self.rho * self.rho).sqrt();
            self.state = self.rho * self.state + innov;
            let expected = self.scenario.expected(t);
            let v = (expected * (1.0 + self.sigma * self.state)).max(10.0);
            out.push((t, v));
            t += dt;
        }
        out
    }
}

fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
    let u1 = 1.0 - rng.next_f64();
    let u2 = rng.next_f64();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_scenario_is_constant() {
        let s = IntensityScenario::Flat(55.0);
        assert_eq!(s.expected(SimTime::from_ymd(2022, 1, 1)), 55.0);
        assert_eq!(s.expected(SimTime::from_ymd(2022, 7, 1)), 55.0);
    }

    #[test]
    fn uk_grid_winter_higher_than_summer() {
        let s = IntensityScenario::UkGrid2022;
        let winter = s.expected(SimTime::from_ymd_hms(2022, 1, 15, 12, 0, 0));
        let summer = s.expected(SimTime::from_ymd_hms(2022, 7, 15, 12, 0, 0));
        assert!(winter > summer * 1.2, "winter {winter} vs summer {summer}");
    }

    #[test]
    fn uk_grid_evening_peak() {
        let s = IntensityScenario::UkGrid2022;
        let evening = s.expected(SimTime::from_ymd_hms(2022, 3, 1, 18, 0, 0));
        let night = s.expected(SimTime::from_ymd_hms(2022, 3, 1, 3, 0, 0));
        assert!(evening > night, "evening {evening} vs night {night}");
    }

    #[test]
    fn uk_grid_annual_mean_near_200() {
        let s = IntensityScenario::UkGrid2022;
        let mut sum = 0.0;
        let mut n = 0;
        let mut t = SimTime::from_ymd(2022, 1, 1);
        let end = SimTime::from_ymd(2023, 1, 1);
        while t < end {
            sum += s.expected(t);
            n += 1;
            t += SimDuration::from_hours(3);
        }
        let mean = sum / n as f64;
        assert!((mean - 200.0).abs() < 10.0, "annual mean {mean}");
    }

    #[test]
    fn decarbonising_trajectory_interpolates() {
        let s = IntensityScenario::Decarbonising {
            start_g: 200.0,
            end_g: 20.0,
            start_year: 2022,
            end_year: 2031,
        };
        assert!((s.expected(SimTime::from_ymd(2022, 1, 1)) - 200.0).abs() < 1.0);
        assert!((s.expected(SimTime::from_ymd(2031, 12, 31)) - 20.0).abs() < 1.0);
        let mid = s.expected(SimTime::from_ymd(2027, 1, 1));
        assert!((80.0..=130.0).contains(&mid), "midpoint {mid}");
        // Clamped outside the trajectory.
        assert!((s.expected(SimTime::from_ymd(2040, 1, 1)) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn regime_boundaries_match_paper() {
        use EmissionRegime::*;
        assert_eq!(IntensityScenario::regime_of(10.0), EmbodiedDominated);
        assert_eq!(IntensityScenario::regime_of(29.9), EmbodiedDominated);
        assert_eq!(IntensityScenario::regime_of(30.0), Balanced);
        assert_eq!(IntensityScenario::regime_of(100.0), Balanced);
        assert_eq!(IntensityScenario::regime_of(100.1), OperationalDominated);
        assert_eq!(IntensityScenario::regime_of(300.0), OperationalDominated);
    }

    #[test]
    fn trace_is_positive_and_tracks_scenario() {
        let mut m = CarbonIntensityModel::new(IntensityScenario::UkGrid2022, 7);
        let trace = m.trace(SimTime::from_ymd(2022, 1, 1), SimDuration::from_mins(30), 2000);
        assert_eq!(trace.len(), 2000);
        let mean: f64 = trace.iter().map(|(_, v)| v).sum::<f64>() / 2000.0;
        // January mean should be well above the annual 200 (winter + noise).
        assert!(mean > 180.0 && mean < 320.0, "january mean {mean}");
        for (_, v) in &trace {
            assert!(*v >= 10.0, "floor violated: {v}");
        }
    }

    #[test]
    fn trace_is_autocorrelated() {
        let mut m = CarbonIntensityModel::new(IntensityScenario::Flat(100.0), 9);
        let trace = m.trace(SimTime::EPOCH, SimDuration::from_mins(30), 5000);
        let vals: Vec<f64> = trace.iter().map(|(_, v)| *v).collect();
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        let var: f64 = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>();
        let cov: f64 = vals.windows(2).map(|w| (w[0] - mean) * (w[1] - mean)).sum::<f64>();
        let lag1 = cov / var;
        assert!(lag1 > 0.8, "lag-1 autocorrelation {lag1} should be strong");
    }

    #[test]
    fn trace_deterministic_per_seed() {
        let mut a = CarbonIntensityModel::new(IntensityScenario::UkGrid2022, 42);
        let mut b = CarbonIntensityModel::new(IntensityScenario::UkGrid2022, 42);
        let ta = a.trace(SimTime::EPOCH, SimDuration::from_hours(1), 100);
        let tb = b.trace(SimTime::EPOCH, SimDuration::from_hours(1), 100);
        assert_eq!(ta, tb);
    }
}
