//! Carbon-aware load shifting — the demand-response flip side of §2.
//!
//! The paper treats the frequency lever as a facility-wide knob; grid-aware
//! operators can do better by *timing* flexible work to low-carbon hours
//! (the UK grid swings 3× between a windy night and a still evening). This
//! module quantifies the ceiling of that policy: given an hourly carbon-
//! intensity trace, a fraction of the facility load that is deferrable, and
//! a maximum deferral, how many tonnes of scope-2 emissions does optimal
//! shifting avoid?
//!
//! The shift model is conservative: energy is conserved (deferred work runs
//! in full), capacity is respected (a receiving hour cannot absorb more
//! than the facility's headroom), and only the flexible share moves.

use crate::intensity::IntensityScenario;
use serde::{Deserialize, Serialize};
use sim_core::time::{SimDuration, SimTime};

/// Result of a shifting analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShiftOutcome {
    /// Scope-2 emissions without shifting (tCO₂e).
    pub baseline_t: f64,
    /// Scope-2 emissions with optimal shifting (tCO₂e).
    pub shifted_t: f64,
    /// Energy moved (MWh).
    pub moved_mwh: f64,
    /// Fraction of hours that donated load.
    pub donor_hour_fraction: f64,
}

impl ShiftOutcome {
    /// Emissions avoided (tCO₂e).
    pub fn saved_t(&self) -> f64 {
        self.baseline_t - self.shifted_t
    }

    /// Relative saving.
    pub fn saved_fraction(&self) -> f64 {
        if self.baseline_t == 0.0 {
            0.0
        } else {
            self.saved_t() / self.baseline_t
        }
    }
}

/// Greedy optimal single-commodity shift: for each hour (dirtiest first),
/// move its flexible energy to the cleanest hour within the deferral
/// window that still has headroom.
///
/// * `scenario` — the deterministic CI signal (forecast-perfect analysis);
/// * `start`, `hours` — the analysis horizon;
/// * `base_power_kw` — steady facility draw;
/// * `flexible_fraction` — share of each hour's energy that may move;
/// * `headroom_fraction` — how much extra load a receiving hour can take
///   (grid connection / cooling limits);
/// * `max_delay` — deferral bound.
///
/// # Panics
/// Panics on nonsensical fractions or an empty horizon.
pub fn optimal_shift(
    scenario: IntensityScenario,
    start: SimTime,
    hours: usize,
    base_power_kw: f64,
    flexible_fraction: f64,
    headroom_fraction: f64,
    max_delay: SimDuration,
) -> ShiftOutcome {
    assert!(hours > 0, "empty horizon");
    assert!((0.0..=1.0).contains(&flexible_fraction), "flexible fraction");
    assert!((0.0..=1.0).contains(&headroom_fraction), "headroom fraction");

    let ci: Vec<f64> = (0..hours)
        .map(|h| scenario.expected(start + SimDuration::from_hours(h as u64)))
        .collect();
    let hour_kwh = base_power_kw; // 1-hour buckets

    let baseline_g: f64 = ci.iter().map(|c| c * hour_kwh).sum();

    // Donors sorted dirtiest-first.
    let mut order: Vec<usize> = (0..hours).collect();
    order.sort_by(|&a, &b| ci[b].partial_cmp(&ci[a]).expect("finite CI"));

    let window = (max_delay.as_secs() / 3600) as usize;
    let mut extra_kwh = vec![0.0f64; hours]; // received load per hour
    let mut moved_kwh_total = 0.0;
    let mut donors = 0usize;
    let headroom_kwh = hour_kwh * headroom_fraction;
    let mut shifted_g = baseline_g;

    for &h in &order {
        let movable = hour_kwh * flexible_fraction;
        if movable <= 0.0 || window == 0 {
            break;
        }
        // Cleanest receiving hour within [h+1, h+window].
        let lo = h + 1;
        let hi = (h + window).min(hours - 1);
        if lo > hi {
            continue;
        }
        let mut best: Option<usize> = None;
        for r in lo..=hi {
            if extra_kwh[r] >= headroom_kwh {
                continue;
            }
            if best.is_none_or(|b| ci[r] < ci[b]) {
                best = Some(r);
            }
        }
        let Some(r) = best else { continue };
        if ci[r] >= ci[h] {
            continue; // no cleaner hour in reach
        }
        let take = movable.min(headroom_kwh - extra_kwh[r]);
        extra_kwh[r] += take;
        moved_kwh_total += take;
        donors += 1;
        shifted_g -= take * (ci[h] - ci[r]);
    }

    ShiftOutcome {
        baseline_t: baseline_g / 1e6,
        shifted_t: shifted_g / 1e6,
        moved_mwh: moved_kwh_total / 1000.0,
        donor_hour_fraction: donors as f64 / hours as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(flex: f64, delay_h: u64) -> ShiftOutcome {
        optimal_shift(
            IntensityScenario::UkGrid2022,
            SimTime::from_ymd(2022, 11, 1),
            24 * 30,
            3000.0,
            flex,
            0.10,
            SimDuration::from_hours(delay_h),
        )
    }

    #[test]
    fn shifting_saves_emissions() {
        let out = run(0.10, 12);
        assert!(out.saved_t() > 0.0, "saved {}", out.saved_t());
        assert!(out.moved_mwh > 0.0);
        assert!(out.shifted_t < out.baseline_t);
        // With 10 % flexibility over a 30 % diurnal swing, savings land in
        // the low single-digit per cent.
        let frac = out.saved_fraction();
        assert!((0.002..=0.05).contains(&frac), "saved fraction {frac}");
    }

    #[test]
    fn flat_grid_offers_nothing() {
        let out = optimal_shift(
            IntensityScenario::Flat(150.0),
            SimTime::from_ymd(2022, 11, 1),
            24 * 7,
            3000.0,
            0.2,
            0.2,
            SimDuration::from_hours(12),
        );
        assert_eq!(out.saved_t(), 0.0);
        assert_eq!(out.moved_mwh, 0.0);
    }

    #[test]
    fn more_flexibility_saves_more() {
        let a = run(0.05, 12);
        let b = run(0.20, 12);
        assert!(b.saved_t() > a.saved_t(), "{} vs {}", b.saved_t(), a.saved_t());
    }

    #[test]
    fn longer_deferral_saves_at_least_as_much() {
        let short = run(0.10, 4);
        let long = run(0.10, 24);
        assert!(long.saved_t() >= short.saved_t() * 0.999);
    }

    #[test]
    fn zero_delay_moves_nothing() {
        let out = run(0.10, 0);
        assert_eq!(out.moved_mwh, 0.0);
        assert_eq!(out.saved_t(), 0.0);
    }

    #[test]
    fn energy_is_conserved() {
        // Shifted emissions are a re-weighting, never below the horizon's
        // cleanest-possible bound.
        let out = run(0.5, 48);
        let min_possible = out.baseline_t * 0.5; // crude floor
        assert!(out.shifted_t > min_possible);
    }

    #[test]
    #[should_panic(expected = "flexible fraction")]
    fn bad_fraction_rejected() {
        let _ = run(1.5, 12);
    }
}
