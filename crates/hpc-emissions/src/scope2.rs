//! Scope-2 (operational) emissions: power × grid carbon intensity,
//! integrated over time.

use hpc_grid::IntensityScenario;
use hpc_telemetry::TimeSeries;
use serde::{Deserialize, Serialize};
use sim_core::time::{SimDuration, SimTime};

/// Integrates a facility power series against a carbon-intensity signal.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Scope2Accountant {
    /// The carbon-intensity scenario to integrate against.
    pub intensity: IntensityScenario,
}

impl Scope2Accountant {
    /// Build for a scenario.
    pub fn new(intensity: IntensityScenario) -> Self {
        Scope2Accountant { intensity }
    }

    /// Emissions (tCO₂e) of a power time series in **kW**.
    ///
    /// Each sample contributes `P·dt·CI(t)`; the intensity is evaluated at
    /// the sample instant (piecewise-constant, like half-hourly settlement
    /// data).
    ///
    /// # Panics
    /// Panics if the series unit is not `"kW"` — emissions arithmetic is
    /// too easy to get wrong by a factor of 1,000 to skip the check.
    pub fn emissions_t(&self, power_kw: &TimeSeries) -> f64 {
        assert_eq!(power_kw.unit, "kW", "scope-2 accounting expects a kW series");
        let dt_h = power_kw.interval().as_hours_f64();
        let mut grams = 0.0;
        for (i, &p) in power_kw.values().iter().enumerate() {
            let ci = self.intensity.expected(power_kw.time_at(i));
            grams += p * dt_h * ci; // kW·h·g/kWh = g
        }
        grams / 1e6
    }

    /// Emissions (tCO₂e) of running at constant `power_kw` from `start` for
    /// `span`, sampling the intensity hourly.
    pub fn emissions_constant_t(&self, power_kw: f64, start: SimTime, span: SimDuration) -> f64 {
        let hours = span.as_hours_f64().ceil() as usize;
        let mut grams = 0.0;
        let mut t = start;
        let mut remaining = span.as_hours_f64();
        for _ in 0..hours {
            let step = remaining.min(1.0);
            grams += power_kw * step * self.intensity.expected(t);
            remaining -= step;
            t += SimDuration::from_hours(1);
        }
        grams / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_intensity_closed_form() {
        // 1,000 kW for 1,000 h at 200 g/kWh = 200 tCO₂e.
        let acc = Scope2Accountant::new(IntensityScenario::Flat(200.0));
        let t = acc.emissions_constant_t(1000.0, SimTime::from_ymd(2022, 1, 1), SimDuration::from_hours(1000));
        assert!((t - 200.0).abs() < 1e-9, "emissions {t}");
    }

    #[test]
    fn series_and_constant_agree_for_flat_signal() {
        let acc = Scope2Accountant::new(IntensityScenario::Flat(100.0));
        let start = SimTime::from_ymd(2022, 3, 1);
        let mut s = TimeSeries::new(start, SimDuration::from_mins(15), "kW");
        for _ in 0..(4 * 24) {
            s.push(2500.0);
        }
        let from_series = acc.emissions_t(&s);
        let from_const = acc.emissions_constant_t(2500.0, start, SimDuration::from_hours(24));
        assert!((from_series - from_const).abs() < 1e-9);
    }

    #[test]
    fn uk_grid_winter_day_costs_more_than_summer_day() {
        let acc = Scope2Accountant::new(IntensityScenario::UkGrid2022);
        let winter = acc.emissions_constant_t(3000.0, SimTime::from_ymd(2022, 1, 10), SimDuration::from_days(1));
        let summer = acc.emissions_constant_t(3000.0, SimTime::from_ymd(2022, 7, 10), SimDuration::from_days(1));
        assert!(winter > summer * 1.2, "winter {winter} vs summer {summer}");
    }

    #[test]
    fn archer2_annual_scope2_magnitude() {
        // 3,220 kW × 1 year × ~200 g/kWh ≈ 5.6 ktCO₂e — the order of
        // magnitude that makes the §2 regime arithmetic work.
        let acc = Scope2Accountant::new(IntensityScenario::UkGrid2022);
        let t = acc.emissions_constant_t(3220.0, SimTime::from_ymd(2022, 1, 1), SimDuration::from_days(365));
        assert!((4500.0..=7000.0).contains(&t), "annual scope 2 {t} t");
    }

    #[test]
    fn partial_hour_handled() {
        let acc = Scope2Accountant::new(IntensityScenario::Flat(100.0));
        let t = acc.emissions_constant_t(1000.0, SimTime::EPOCH, SimDuration::from_mins(90));
        // 1 MW × 1.5 h × 100 g/kWh = 150 kg.
        assert!((t - 0.15).abs() < 1e-9, "emissions {t}");
    }

    #[test]
    #[should_panic(expected = "expects a kW series")]
    fn wrong_unit_rejected() {
        let acc = Scope2Accountant::new(IntensityScenario::Flat(100.0));
        let s = TimeSeries::new(SimTime::EPOCH, SimDuration::from_hours(1), "MW");
        let _ = acc.emissions_t(&s);
    }
}
