//! Scope-3 (embodied) emissions: manufacture, shipping, decommissioning.
//!
//! The paper's detailed ARCHER2 audit was "the subject of a future paper";
//! what §2 fixes is the *ratio* of embodied to operational emissions — the
//! two are roughly equal when grid carbon intensity sits in the
//! 30–100 gCO₂/kWh band. The default total below is therefore chosen to
//! make that statement true for an ARCHER2-scale facility (≈3.2 MW mean
//! draw over a six-year service life ⇒ ≈169 GWh lifetime energy ⇒ embodied
//! ≈ 169 GWh × 65 g/kWh ≈ 11 ktCO₂e), and the breakdown follows the usual
//! IT-hardware split (compute dominates, then fabric and storage).

use serde::{Deserialize, Serialize};
use sim_core::time::SimDuration;

/// Component breakdown of embodied emissions, in tCO₂e.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EmbodiedBreakdown {
    /// Compute nodes (boards, CPUs, DIMMs).
    pub compute_t: f64,
    /// Interconnect (switches, cables, optics).
    pub network_t: f64,
    /// Storage systems.
    pub storage_t: f64,
    /// Cabinets, cooling plant, installation.
    pub facility_t: f64,
    /// Shipping/transport.
    pub shipping_t: f64,
    /// End-of-life decommissioning and disposal.
    pub decommissioning_t: f64,
}

impl EmbodiedBreakdown {
    /// Total embodied emissions (tCO₂e).
    pub fn total_t(&self) -> f64 {
        self.compute_t
            + self.network_t
            + self.storage_t
            + self.facility_t
            + self.shipping_t
            + self.decommissioning_t
    }
}

/// Embodied emissions with an amortisation schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EmbodiedEmissions {
    /// The component breakdown.
    pub breakdown: EmbodiedBreakdown,
    /// Planned service life.
    pub service_life: SimDuration,
    /// Node count the compute share is amortised over.
    pub nodes: u32,
}

impl EmbodiedEmissions {
    /// ARCHER2-scale defaults (see module docs for the calibration).
    pub fn archer2_scale() -> Self {
        EmbodiedEmissions {
            breakdown: EmbodiedBreakdown {
                compute_t: 7_700.0,
                network_t: 1_100.0,
                storage_t: 1_100.0,
                facility_t: 550.0,
                shipping_t: 330.0,
                decommissioning_t: 220.0,
            },
            service_life: SimDuration::from_days(6 * 365),
            nodes: 5_860,
        }
    }

    /// Total embodied emissions (tCO₂e).
    pub fn total_t(&self) -> f64 {
        self.breakdown.total_t()
    }

    /// Straight-line amortisation rate for the whole facility, in
    /// gCO₂e per hour of service.
    pub fn facility_rate_g_per_hour(&self) -> f64 {
        self.total_t() * 1e6 / self.service_life.as_hours_f64()
    }

    /// Straight-line amortisation per node-hour, in gCO₂e — the quantity
    /// the §2 trade-off compares against operational gCO₂e per node-hour.
    pub fn rate_g_per_node_hour(&self) -> f64 {
        self.facility_rate_g_per_hour() / self.nodes as f64
    }

    /// Embodied emissions attributed to a span of facility operation (tCO₂e).
    pub fn amortised_over(&self, span: SimDuration) -> f64 {
        self.total_t() * span.as_hours_f64() / self.service_life.as_hours_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_sums() {
        let e = EmbodiedEmissions::archer2_scale();
        assert!((e.total_t() - 11_000.0).abs() < 1.0, "total {}", e.total_t());
        assert!(e.breakdown.compute_t / e.total_t() > 0.6, "compute share dominates");
    }

    #[test]
    fn per_node_hour_rate() {
        let e = EmbodiedEmissions::archer2_scale();
        let rate = e.rate_g_per_node_hour();
        // 11,000 t over 5,860 nodes × 6 years ≈ 36 g/node-hour.
        assert!((30.0..=42.0).contains(&rate), "rate {rate}");
    }

    #[test]
    fn amortisation_is_linear_and_total_over_life() {
        let e = EmbodiedEmissions::archer2_scale();
        let one_year = e.amortised_over(SimDuration::from_days(365));
        assert!((one_year - e.total_t() / 6.0).abs() < 1.0);
        let life = e.amortised_over(e.service_life);
        assert!((life - e.total_t()).abs() < 1e-6);
    }

    #[test]
    fn facility_rate_consistent_with_node_rate() {
        let e = EmbodiedEmissions::archer2_scale();
        assert!(
            (e.facility_rate_g_per_hour() - e.rate_g_per_node_hour() * e.nodes as f64).abs() < 1e-6
        );
    }
}
