//! The §2 regime analysis: how the scope-2/scope-3 balance — and therefore
//! the right operating policy — depends on grid carbon intensity.
//!
//! For each carbon intensity in a sweep, the analysis computes the share of
//! lifetime emissions that is embodied vs operational, classifies the
//! regime, and decides which operating point minimises **emissions per unit
//! of science output** (a work unit = what one node-hour accomplishes at
//! the reference operating point):
//!
//! ```text
//! g/work-unit(op) = t_rel(op) · [ P_node(op)·CI + embodied_rate ]
//! ```
//!
//! Slowing the clock reduces the energy term but inflates the amortised
//! embodied term (the job occupies its nodes longer) — exactly the §2
//! trade-off: "when scope 3 emissions dominate, optimise for application
//! performance irrespective of energy efficiency; when scope 2 emissions
//! dominate, optimise for energy efficiency".

use crate::scope3::EmbodiedEmissions;
use hpc_grid::intensity::EmissionRegime;
use hpc_grid::IntensityScenario;
use serde::{Deserialize, Serialize};

/// An operating point reduced to what the emissions trade-off needs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OperatingChoice {
    /// Label, e.g. `"2.0 GHz"`.
    pub label: String,
    /// Mean node power at this point (kW).
    pub node_power_kw: f64,
    /// Runtime relative to the reference point (≥ 1 when slower).
    pub runtime_ratio: f64,
}

impl OperatingChoice {
    /// Emissions per work unit (gCO₂e) at carbon intensity `ci` given the
    /// embodied amortisation rate (g per node-hour).
    pub fn emissions_per_work_unit(&self, ci_g_per_kwh: f64, embodied_rate_g_per_nodeh: f64) -> f64 {
        self.runtime_ratio * (self.node_power_kw * ci_g_per_kwh + embodied_rate_g_per_nodeh)
    }

    /// Energy per work unit (kWh).
    pub fn energy_per_work_unit_kwh(&self) -> f64 {
        self.runtime_ratio * self.node_power_kw
    }
}

/// One row of the regime table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegimeRow {
    /// Carbon intensity (gCO₂/kWh).
    pub ci: f64,
    /// Paper-band classification at this intensity.
    pub regime: EmissionRegime,
    /// Fraction of lifetime emissions that is embodied, in `[0, 1]`.
    pub embodied_share: f64,
    /// Label of the operating choice minimising emissions per work unit.
    pub best_choice: String,
    /// Emissions per work unit for each choice (g), in input order.
    pub per_work_unit_g: Vec<f64>,
}

/// The full sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegimeAnalysis {
    /// Sweep rows, ascending in carbon intensity.
    pub rows: Vec<RegimeRow>,
    /// Intensity at which embodied and operational lifetime emissions are
    /// equal (the centre of the paper's "balanced" band).
    pub parity_ci: f64,
}

impl RegimeAnalysis {
    /// Run the sweep.
    ///
    /// * `embodied` — the facility's scope-3 model;
    /// * `mean_facility_power_kw` — lifetime-mean facility power draw;
    /// * `choices` — candidate operating points (first = reference);
    /// * `ci_values` — intensities to sweep (must be non-empty, ascending).
    ///
    /// # Panics
    /// Panics on an empty sweep or empty choice list.
    pub fn run(
        embodied: &EmbodiedEmissions,
        mean_facility_power_kw: f64,
        choices: &[OperatingChoice],
        ci_values: &[f64],
    ) -> Self {
        assert!(!choices.is_empty(), "need at least one operating choice");
        assert!(!ci_values.is_empty(), "need at least one CI value");

        let lifetime_kwh = mean_facility_power_kw * embodied.service_life.as_hours_f64();
        let embodied_g = embodied.total_t() * 1e6;
        // Parity: lifetime_kwh · CI = embodied_g.
        let parity_ci = embodied_g / lifetime_kwh;
        let rate = embodied.rate_g_per_node_hour();

        let rows = ci_values
            .iter()
            .map(|&ci| {
                let scope2_g = lifetime_kwh * ci;
                let embodied_share = embodied_g / (embodied_g + scope2_g);
                let per: Vec<f64> = choices
                    .iter()
                    .map(|c| c.emissions_per_work_unit(ci, rate))
                    .collect();
                let best = per
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite emissions"))
                    .map(|(i, _)| choices[i].label.clone())
                    .expect("non-empty choices");
                RegimeRow {
                    ci,
                    regime: IntensityScenario::regime_of(ci),
                    embodied_share,
                    best_choice: best,
                    per_work_unit_g: per,
                }
            })
            .collect();

        RegimeAnalysis { rows, parity_ci }
    }

    /// The lowest swept CI at which `label` becomes the best choice, if any.
    pub fn crossover_to(&self, label: &str) -> Option<f64> {
        self.rows.iter().find(|r| r.best_choice == label).map(|r| r.ci)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn choices() -> Vec<OperatingChoice> {
        vec![
            OperatingChoice {
                label: "2.25 GHz+turbo".into(),
                node_power_kw: 0.49,
                runtime_ratio: 1.0,
            },
            OperatingChoice {
                label: "2.0 GHz".into(),
                node_power_kw: 0.38,
                runtime_ratio: 1.12,
            },
        ]
    }

    fn sweep() -> Vec<f64> {
        (0..=60).map(|i| 5.0 * i as f64).collect() // 0..300
    }

    #[test]
    fn parity_lands_in_paper_band() {
        // The paper: scope 2 ≈ scope 3 when CI is 30-100 g/kWh.
        let emb = EmbodiedEmissions::archer2_scale();
        let a = RegimeAnalysis::run(&emb, 3220.0, &choices(), &sweep());
        assert!(
            (30.0..=100.0).contains(&a.parity_ci),
            "parity CI {} outside the paper's balanced band",
            a.parity_ci
        );
    }

    #[test]
    fn embodied_share_monotonically_falls_with_ci() {
        let emb = EmbodiedEmissions::archer2_scale();
        let a = RegimeAnalysis::run(&emb, 3220.0, &choices(), &sweep());
        for w in a.rows.windows(2) {
            assert!(w[1].embodied_share <= w[0].embodied_share);
        }
        // At zero CI everything is embodied.
        assert!((a.rows[0].embodied_share - 1.0).abs() < 1e-12);
    }

    #[test]
    fn performance_wins_at_low_ci_efficiency_at_high_ci() {
        // §2's headline: at low CI run fast; at high CI run efficient.
        let emb = EmbodiedEmissions::archer2_scale();
        let a = RegimeAnalysis::run(&emb, 3220.0, &choices(), &sweep());
        assert_eq!(a.rows[0].best_choice, "2.25 GHz+turbo", "zero CI favours performance");
        assert_eq!(
            a.rows.last().unwrap().best_choice,
            "2.0 GHz",
            "300 g/kWh favours energy efficiency"
        );
    }

    #[test]
    fn crossover_is_in_or_near_balanced_band() {
        let emb = EmbodiedEmissions::archer2_scale();
        let a = RegimeAnalysis::run(&emb, 3220.0, &choices(), &sweep());
        let cross = a.crossover_to("2.0 GHz").expect("2.0 GHz must win somewhere");
        assert!(
            (20.0..=120.0).contains(&cross),
            "frequency-cap crossover at {cross} g/kWh"
        );
    }

    #[test]
    fn per_work_unit_formula() {
        let c = &choices()[1];
        // 1.12 × (0.38·100 + 35) = 1.12 × 73 = 81.76.
        let g = c.emissions_per_work_unit(100.0, 35.0);
        assert!((g - 81.76).abs() < 1e-9);
        assert!((c.energy_per_work_unit_kwh() - 0.4256).abs() < 1e-9);
    }

    #[test]
    fn regime_labels_follow_bands() {
        let emb = EmbodiedEmissions::archer2_scale();
        let a = RegimeAnalysis::run(&emb, 3220.0, &choices(), &[10.0, 65.0, 200.0]);
        assert_eq!(a.rows[0].regime, EmissionRegime::EmbodiedDominated);
        assert_eq!(a.rows[1].regime, EmissionRegime::Balanced);
        assert_eq!(a.rows[2].regime, EmissionRegime::OperationalDominated);
    }
}
