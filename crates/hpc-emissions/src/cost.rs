//! Total-cost-of-ownership model.
//!
//! §1 of the paper: "Historically, the cost of large scale HPC systems was
//! dominated by the capital cost with the operational electricity costs a
//! small component. This is no longer true, with lifetime electricity
//! costs now matching or even exceeding the capital costs for large scale
//! HPC systems in many countries." This module quantifies that statement
//! and prices the paper's 690 kW saving.

use serde::{Deserialize, Serialize};
use sim_core::time::SimDuration;

/// Facility cost parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Capital cost: hardware, installation, hosting fit-out (million GBP).
    pub capital_mgbp: f64,
    /// Service life.
    pub service_life: SimDuration,
    /// Mean facility power draw (kW).
    pub mean_power_kw: f64,
    /// Electricity price (GBP per kWh).
    pub electricity_gbp_per_kwh: f64,
}

impl CostModel {
    /// ARCHER2-like figures: ~£79M capital, six-year life, ~3.5 MW facility
    /// draw at pre-crisis prices.
    pub fn archer2(electricity_gbp_per_kwh: f64) -> Self {
        CostModel {
            capital_mgbp: 79.0,
            service_life: SimDuration::from_days(6 * 365),
            mean_power_kw: 3_500.0,
            electricity_gbp_per_kwh,
        }
    }

    /// Lifetime electricity use (kWh).
    pub fn lifetime_kwh(&self) -> f64 {
        self.mean_power_kw * self.service_life.as_hours_f64()
    }

    /// Lifetime electricity cost (million GBP).
    pub fn lifetime_electricity_mgbp(&self) -> f64 {
        self.lifetime_kwh() * self.electricity_gbp_per_kwh / 1e6
    }

    /// Electricity share of total lifetime cost, in `[0, 1]`.
    pub fn electricity_share(&self) -> f64 {
        let e = self.lifetime_electricity_mgbp();
        e / (e + self.capital_mgbp)
    }

    /// Electricity price (GBP/kWh) at which lifetime electricity equals the
    /// capital cost — the §1 crossover.
    pub fn crossover_price_gbp_per_kwh(&self) -> f64 {
        self.capital_mgbp * 1e6 / self.lifetime_kwh()
    }

    /// Annual cost (million GBP) of `kw` of continuous power draw.
    pub fn annual_cost_of_kw(&self, kw: f64) -> f64 {
        kw * 8_766.0 * self.electricity_gbp_per_kwh / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn historic_prices_capital_dominated() {
        // ~£0.10/kWh (pre-2021): electricity well under half the TCO.
        let m = CostModel::archer2(0.10);
        assert!(m.electricity_share() < 0.30, "share {}", m.electricity_share());
    }

    #[test]
    fn crisis_prices_match_or_exceed_capital() {
        // Winter 2022 non-domestic rates (~£0.30/kWh and above): the
        // paper's claim — electricity matches or exceeds capital.
        let m = CostModel::archer2(0.45);
        assert!(m.electricity_share() > 0.5, "share {}", m.electricity_share());
        let at_crossover = CostModel::archer2(m.crossover_price_gbp_per_kwh());
        assert!((at_crossover.electricity_share() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn crossover_price_is_plausible() {
        // 184 GWh lifetime, £79M capital: crossover ≈ £0.43/kWh — reached
        // during the 2022 crisis, exactly the paper's point.
        let m = CostModel::archer2(0.30);
        let x = m.crossover_price_gbp_per_kwh();
        assert!((0.30..=0.60).contains(&x), "crossover {x} GBP/kWh");
    }

    #[test]
    fn lifetime_energy_magnitude() {
        let m = CostModel::archer2(0.30);
        let gwh = m.lifetime_kwh() / 1e6;
        assert!((160.0..=200.0).contains(&gwh), "lifetime {gwh} GWh");
    }

    #[test]
    fn paper_saving_priced() {
        // The 690 kW saving at £0.30/kWh ≈ £1.8M/year.
        let m = CostModel::archer2(0.30);
        let annual = m.annual_cost_of_kw(690.0);
        assert!((1.6..=2.1).contains(&annual), "annual saving {annual} M GBP");
    }
}
