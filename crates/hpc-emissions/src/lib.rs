//! # hpc-emissions
//!
//! Emissions accounting for a large-scale HPC facility, implementing §2 of
//! the paper:
//!
//! * **Scope 2** (operational): electricity use × grid carbon intensity,
//!   integrated over telemetry ([`scope2`]).
//! * **Scope 3** (embodied): manufacture, shipping and decommissioning,
//!   amortised over the service lifetime ([`scope3`]).
//! * **Regimes** ([`regimes`]): the paper's three-band decision framework —
//!   below ~30 gCO₂/kWh embodied emissions dominate (optimise application
//!   performance), above ~100 gCO₂/kWh operational emissions dominate
//!   (optimise energy efficiency), in between balance the two.
//! * **Scenarios** ([`scenario`]): lifetime emissions under different grid
//!   trajectories and operating points — the "future paper" §2 promises,
//!   built here as an extension experiment.

#![warn(missing_docs)]

pub mod cost;
pub mod regimes;
pub mod scenario;
pub mod scope2;
pub mod scope3;

pub use cost::CostModel;
pub use regimes::{OperatingChoice, RegimeAnalysis, RegimeRow};
pub use scenario::{LifetimeScenario, ScenarioOutcome};
pub use scope2::Scope2Accountant;
pub use scope3::{EmbodiedBreakdown, EmbodiedEmissions};
