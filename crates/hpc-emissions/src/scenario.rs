//! Lifetime emissions scenarios.
//!
//! §2 (and §5's future-work list) frame the operator's real question: over
//! the whole service life, under an assumed grid trajectory, what do the
//! operating choices cost in total emissions and in science output? A
//! [`LifetimeScenario`] integrates scope 2 over the trajectory, adds the
//! full scope 3, and reports both totals and per-work-unit figures.

use crate::regimes::OperatingChoice;
use crate::scope2::Scope2Accountant;
use crate::scope3::EmbodiedEmissions;
use hpc_grid::IntensityScenario;
use serde::{Deserialize, Serialize};
use sim_core::time::SimTime;

/// A lifetime scenario: grid trajectory × facility shape.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LifetimeScenario {
    /// Grid carbon-intensity trajectory.
    pub intensity: IntensityScenario,
    /// Service start.
    pub start: SimTime,
    /// Embodied-emissions model (also fixes the service life and node count).
    pub embodied: EmbodiedEmissions,
    /// Mean facility power per *busy node-hour equivalent* is derived from
    /// the operating choice; this is the non-compute overhead added on top
    /// (switches, CDUs, cabinet overheads, filesystems), in kW.
    pub overhead_kw: f64,
    /// Mean utilisation over the life (ARCHER2: > 0.9).
    pub utilisation: f64,
}

/// Outcome of evaluating one operating choice under a scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioOutcome {
    /// Operating choice label.
    pub label: String,
    /// Scope-2 total over the service life (tCO₂e).
    pub scope2_t: f64,
    /// Scope-3 total (tCO₂e).
    pub scope3_t: f64,
    /// Lifetime science output in reference node-hour work units.
    pub work_units: f64,
    /// Total emissions per work unit (gCO₂e).
    pub g_per_work_unit: f64,
    /// Lifetime electricity use (GWh).
    pub energy_gwh: f64,
}

impl ScenarioOutcome {
    /// Total lifetime emissions (tCO₂e).
    pub fn total_t(&self) -> f64 {
        self.scope2_t + self.scope3_t
    }
}

impl LifetimeScenario {
    /// Evaluate one operating choice.
    pub fn evaluate(&self, choice: &OperatingChoice) -> ScenarioOutcome {
        let nodes = self.embodied.nodes as f64;
        let busy_nodes = nodes * self.utilisation;
        let facility_kw = busy_nodes * choice.node_power_kw + self.overhead_kw;

        let acc = Scope2Accountant::new(self.intensity);
        let scope2_t = acc.emissions_constant_t(facility_kw, self.start, self.embodied.service_life);
        let scope3_t = self.embodied.total_t();

        // Work: busy node-hours ÷ runtime ratio (slower clock ⇒ fewer work
        // units per node-hour).
        let life_h = self.embodied.service_life.as_hours_f64();
        let work_units = busy_nodes * life_h / choice.runtime_ratio;
        let total_g = (scope2_t + scope3_t) * 1e6;

        ScenarioOutcome {
            label: choice.label.clone(),
            scope2_t,
            scope3_t,
            work_units,
            g_per_work_unit: total_g / work_units,
            energy_gwh: facility_kw * life_h / 1e6,
        }
    }

    /// Evaluate a set of choices and return outcomes in input order.
    pub fn compare(&self, choices: &[OperatingChoice]) -> Vec<ScenarioOutcome> {
        choices.iter().map(|c| self.evaluate(c)).collect()
    }
}

/// Convenience: an ARCHER2-scale scenario starting at service start
/// (Nov 2021) under the given trajectory.
pub fn archer2_scenario(intensity: IntensityScenario) -> LifetimeScenario {
    LifetimeScenario {
        intensity,
        start: SimTime::from_ymd(2021, 11, 1),
        embodied: EmbodiedEmissions::archer2_scale(),
        overhead_kw: 500.0, // switches + CDUs + cabinet overheads + storage
        utilisation: 0.92,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn choices() -> Vec<OperatingChoice> {
        vec![
            OperatingChoice {
                label: "reference".into(),
                node_power_kw: 0.49,
                runtime_ratio: 1.0,
            },
            OperatingChoice {
                label: "2.0 GHz".into(),
                node_power_kw: 0.38,
                runtime_ratio: 1.12,
            },
        ]
    }

    #[test]
    fn magnitudes_are_archer2_like() {
        let sc = archer2_scenario(IntensityScenario::Flat(200.0));
        let out = sc.evaluate(&choices()[0]);
        // Facility ≈ 3.14 MW → ≈165 GWh over 6 years → ≈33 kt scope 2.
        assert!((140.0..=200.0).contains(&out.energy_gwh), "energy {} GWh", out.energy_gwh);
        assert!((25_000.0..=40_000.0).contains(&out.scope2_t), "scope2 {} t", out.scope2_t);
        assert!((out.scope3_t - 11_000.0).abs() < 1.0);
        assert!(out.total_t() > out.scope2_t);
    }

    #[test]
    fn high_ci_favours_low_frequency() {
        let sc = archer2_scenario(IntensityScenario::Flat(250.0));
        let outs = sc.compare(&choices());
        assert!(
            outs[1].g_per_work_unit < outs[0].g_per_work_unit,
            "at 250 g/kWh the 2.0 GHz point should win: {} vs {}",
            outs[1].g_per_work_unit,
            outs[0].g_per_work_unit
        );
    }

    #[test]
    fn zero_ci_favours_performance() {
        let sc = archer2_scenario(IntensityScenario::Flat(0.0));
        let outs = sc.compare(&choices());
        assert!(
            outs[0].g_per_work_unit < outs[1].g_per_work_unit,
            "with zero-carbon power the fast point should win"
        );
        // With zero CI all emissions are embodied.
        assert!(outs[0].scope2_t.abs() < 1e-9);
    }

    #[test]
    fn decarbonising_grid_sits_between_flat_extremes() {
        let traj = IntensityScenario::Decarbonising {
            start_g: 200.0,
            end_g: 20.0,
            start_year: 2021,
            end_year: 2027,
        };
        let sc = archer2_scenario(traj);
        let out = sc.evaluate(&choices()[0]);
        let hi = archer2_scenario(IntensityScenario::Flat(200.0)).evaluate(&choices()[0]);
        let lo = archer2_scenario(IntensityScenario::Flat(20.0)).evaluate(&choices()[0]);
        assert!(out.scope2_t < hi.scope2_t && out.scope2_t > lo.scope2_t);
    }

    #[test]
    fn work_units_shrink_when_slower() {
        let sc = archer2_scenario(IntensityScenario::Flat(100.0));
        let outs = sc.compare(&choices());
        assert!(outs[1].work_units < outs[0].work_units);
        let ratio = outs[0].work_units / outs[1].work_units;
        assert!((ratio - 1.12).abs() < 1e-9);
    }
}
