//! Regular-interval time series.
//!
//! The facility's cabinet power telemetry samples on a fixed cadence
//! (15 minutes in the campaign runner). Since the `hpc-tsdb` migration a
//! `TimeSeries` is a thin view over a compressed tsdb series: appends go
//! into Gorilla-compressed chunks (and the rollup cascade), and windowed
//! statistics are answered by the tsdb query planner — rollup buckets when
//! the window is aligned, chunk scans otherwise. A dense `Vec<f64>` mirror
//! can be kept so the original `values()` slice API stays borrow-cheap —
//! but it is **opt-out**: per-node-scale callers (the campaign's cabinet
//! series, anything sized like `hpc_tsdb::TsdbStore` workloads) build with
//! [`TimeSeries::new_compact`] and hold only the compressed chunks, with
//! `values()` decoding on demand. Without the opt-out the mirror costs
//! 8 bytes/sample and silently erases the compression win.

use hpc_tsdb::series::{Series, SeriesMeta};
use serde::{DeError, Deserialize, Serialize, Value};
use sim_core::stats::OnlineStats;
use sim_core::time::{SimDuration, SimTime};
use std::borrow::Cow;

/// A dense, regular-interval `f64` time series backed by compressed
/// tsdb storage.
#[derive(Debug, Clone)]
pub struct TimeSeries {
    start_unix: u64,
    interval_s: u64,
    /// Authoritative compressed storage + rollups.
    store: Series,
    /// Optional dense mirror for the borrowed-slice API (`values()`);
    /// `None` for compact series, which decode on demand.
    mirror: Option<Vec<f64>>,
    /// Unit label carried through to CSV/plots (e.g. `"kW"`).
    pub unit: String,
}

impl PartialEq for TimeSeries {
    fn eq(&self, other: &Self) -> bool {
        self.start_unix == other.start_unix
            && self.interval_s == other.interval_s
            && self.unit == other.unit
            && self.values() == other.values()
    }
}

impl TimeSeries {
    /// Create an empty series starting at `start` with the given sampling
    /// interval, keeping a dense mirror so `values()` borrows.
    ///
    /// # Panics
    /// Panics if the interval is zero.
    pub fn new(start: SimTime, interval: SimDuration, unit: impl Into<String>) -> Self {
        Self::build(start, interval, unit.into(), true)
    }

    /// Create an empty **compact** series: only the compressed chunks are
    /// held (no dense mirror), and `values()` decodes on demand. Use this
    /// at per-node scale where the mirror would dominate memory.
    ///
    /// # Panics
    /// Panics if the interval is zero.
    pub fn new_compact(start: SimTime, interval: SimDuration, unit: impl Into<String>) -> Self {
        Self::build(start, interval, unit.into(), false)
    }

    fn build(start: SimTime, interval: SimDuration, unit: String, mirrored: bool) -> Self {
        assert!(!interval.is_zero(), "sampling interval must be positive");
        TimeSeries {
            start_unix: start.as_unix(),
            interval_s: interval.as_secs(),
            store: Series::new(SeriesMeta {
                name: String::new(),
                unit: unit.clone(),
                interval_hint: interval.as_secs() as i64,
            }),
            mirror: mirrored.then(Vec::new),
            unit,
        }
    }

    /// Rebuild a series from `(unix timestamp, value)` samples recovered
    /// out of a [`hpc_tsdb::TsdbStore`] snapshot — the resume path of a
    /// checkpointed campaign. Samples must sit exactly on the
    /// `start + k·interval` grid with no gaps (the campaign records on a
    /// fixed cadence, so recovered telemetry always does); values are
    /// re-encoded through the lossless codec, so the rebuilt series is
    /// bit-identical to the one that was checkpointed.
    ///
    /// # Errors
    /// Returns a description of the first off-grid timestamp.
    pub fn from_tsdb_samples(
        start: SimTime,
        interval: SimDuration,
        unit: impl Into<String>,
        samples: &[(i64, f64)],
        mirrored: bool,
    ) -> Result<Self, String> {
        let mut s = Self::build(start, interval, unit.into(), mirrored);
        for (i, &(ts, v)) in samples.iter().enumerate() {
            let expect = (s.start_unix + i as u64 * s.interval_s) as i64;
            if ts != expect {
                return Err(format!(
                    "sample {i} at unix {ts}, expected {expect} (start + {i}·interval)"
                ));
            }
            s.push(v);
        }
        Ok(s)
    }

    /// Whether this series keeps the dense mirror (`false` for
    /// [`new_compact`](TimeSeries::new_compact) series).
    pub fn has_mirror(&self) -> bool {
        self.mirror.is_some()
    }

    /// Start instant.
    pub fn start(&self) -> SimTime {
        SimTime::from_unix(self.start_unix)
    }

    /// Sampling interval.
    pub fn interval(&self) -> SimDuration {
        SimDuration::from_secs(self.interval_s)
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.store.len() as usize
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// The raw samples: borrowed from the dense mirror when one is kept,
    /// decoded from the compressed chunks otherwise (lossless either way).
    pub fn values(&self) -> Cow<'_, [f64]> {
        match &self.mirror {
            Some(v) => Cow::Borrowed(v.as_slice()),
            None => Cow::Owned(self.decoded()),
        }
    }

    fn decoded(&self) -> Vec<f64> {
        self.store.scan(i64::MIN, i64::MAX).into_iter().map(|(_, v)| v).collect()
    }

    /// The compressed tsdb series behind this view (chunks + rollups).
    pub fn tsdb(&self) -> &Series {
        &self.store
    }

    /// Compressed size of the backing storage in bytes.
    pub fn compressed_bytes(&self) -> usize {
        self.store.size_bytes()
    }

    /// Append the next sample (implicitly at `start + len·interval`).
    ///
    /// # Panics
    /// Panics on non-finite values.
    pub fn push(&mut self, value: f64) {
        assert!(value.is_finite(), "non-finite sample {value}");
        let ts = self.start_unix + self.store.len() * self.interval_s;
        self.store.append(ts as i64, value);
        if let Some(mirror) = &mut self.mirror {
            mirror.push(value);
        }
    }

    /// Timestamp of sample `i`.
    pub fn time_at(&self, i: usize) -> SimTime {
        SimTime::from_unix(self.start_unix + i as u64 * self.interval_s)
    }

    /// Timestamp one interval past the final sample (exclusive end).
    pub fn end(&self) -> SimTime {
        self.time_at(self.len())
    }

    /// Index of the first sample at or after `t` (clamped to `len`).
    pub fn index_at(&self, t: SimTime) -> usize {
        let t = t.as_unix();
        if t <= self.start_unix {
            return 0;
        }
        (t - self.start_unix).div_ceil(self.interval_s).min(self.store.len()) as usize
    }

    /// Mean of all samples (0 for an empty series).
    pub fn mean(&self) -> f64 {
        self.window_stats(self.start(), self.end()).mean()
    }

    /// Summary statistics over the half-open window `[from, to)`, answered
    /// by the tsdb query planner (rollup buckets when aligned, compressed
    /// chunk scans otherwise). The window is first snapped to the sample
    /// grid exactly as the dense implementation did.
    pub fn window_stats(&self, from: SimTime, to: SimTime) -> OnlineStats {
        let i0 = self.index_at(from);
        let i1 = self.index_at(to);
        if i0 >= i1 {
            return OnlineStats::new();
        }
        let from_ts = (self.start_unix + i0 as u64 * self.interval_s) as i64;
        let to_ts = (self.start_unix + i1 as u64 * self.interval_s) as i64;
        let agg = hpc_tsdb::window_aggregate(&self.store, from_ts, to_ts);
        OnlineStats::from_moments(agg.count, agg.mean, agg.m2, agg.min, agg.max)
    }

    /// Mean over the half-open window `[from, to)` (0 when empty).
    pub fn window_mean(&self, from: SimTime, to: SimTime) -> f64 {
        self.window_stats(from, to).mean()
    }

    /// Downsample by averaging consecutive blocks of `k` samples (the tail
    /// partial block is averaged too). Used to render daily means from
    /// 15-minute telemetry.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn block_means(&self, k: usize) -> TimeSeries {
        assert!(k > 0, "block size must be positive");
        let mut out = TimeSeries::new(
            self.start(),
            SimDuration::from_secs(self.interval_s * k as u64),
            self.unit.clone(),
        );
        let values = self.values();
        for chunk in values.chunks(k) {
            let mean = chunk.iter().sum::<f64>() / chunk.len() as f64;
            out.push(mean);
        }
        out
    }

    /// Integrate the series as a power signal (in the series' unit) over its
    /// whole span, returning unit-hours (e.g. kW series → kWh).
    pub fn integral_unit_hours(&self) -> f64 {
        let h = self.interval_s as f64 / 3600.0;
        self.store.total_aggregate().sum * h
    }
}

// The backing tsdb series is reconstructed from the dense samples, so the
// serialised form is exactly the pre-migration one: start, interval,
// samples, unit. Compact series decode their samples for serialisation —
// the codec is bit-lossless, so mirrored and compact series serialise
// identically.
impl Serialize for TimeSeries {
    fn to_value(&self) -> Value {
        let samples = match &self.mirror {
            Some(v) => v.to_value(),
            None => self.decoded().to_value(),
        };
        Value::Map(vec![
            ("start_unix".into(), self.start_unix.to_value()),
            ("interval_s".into(), self.interval_s.to_value()),
            ("samples".into(), samples),
            ("unit".into(), self.unit.to_value()),
        ])
    }
}

impl Deserialize for TimeSeries {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let map = v.as_map().ok_or_else(|| DeError::msg("TimeSeries: expected object"))?;
        let field = |k: &str| {
            serde::value::map_get(map, k)
                .ok_or_else(|| DeError::msg(format!("TimeSeries: missing field {k}")))
        };
        let start_unix = u64::from_value(field("start_unix")?)?;
        let interval_s = u64::from_value(field("interval_s")?)?;
        let samples = Vec::<f64>::from_value(field("samples")?)?;
        let unit = String::from_value(field("unit")?)?;
        if interval_s == 0 {
            return Err(DeError::msg("TimeSeries: zero interval"));
        }
        let mut s = TimeSeries::new(
            SimTime::from_unix(start_unix),
            SimDuration::from_secs(interval_s),
            unit,
        );
        for v in samples {
            s.push(v);
        }
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series_with(vals: &[f64]) -> TimeSeries {
        let mut s = TimeSeries::new(SimTime::from_unix(0), SimDuration::from_mins(15), "kW");
        for &v in vals {
            s.push(v);
        }
        s
    }

    #[test]
    fn timestamps_follow_interval() {
        let s = series_with(&[1.0, 2.0, 3.0]);
        assert_eq!(s.time_at(0).as_unix(), 0);
        assert_eq!(s.time_at(2).as_unix(), 1800);
        assert_eq!(s.end().as_unix(), 2700);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn index_at_rounds_up_to_next_sample() {
        let s = series_with(&[0.0; 10]);
        assert_eq!(s.index_at(SimTime::from_unix(0)), 0);
        assert_eq!(s.index_at(SimTime::from_unix(1)), 1);
        assert_eq!(s.index_at(SimTime::from_unix(900)), 1);
        assert_eq!(s.index_at(SimTime::from_unix(901)), 2);
        assert_eq!(s.index_at(SimTime::from_unix(1_000_000)), 10);
    }

    #[test]
    fn window_mean_half_open() {
        let s = series_with(&[10.0, 20.0, 30.0, 40.0]);
        // [t0, t2) covers samples 0 and 1.
        let m = s.window_mean(s.time_at(0), s.time_at(2));
        assert!((m - 15.0).abs() < 1e-12);
        assert!((s.mean() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn window_beyond_range_is_empty() {
        let s = series_with(&[1.0, 2.0]);
        let st = s.window_stats(SimTime::from_unix(10_000), SimTime::from_unix(20_000));
        assert_eq!(st.count(), 0);
    }

    #[test]
    fn block_means_downsample() {
        let s = series_with(&[1.0, 3.0, 5.0, 7.0, 9.0]);
        let d = s.block_means(2);
        assert_eq!(&d.values()[..], &[2.0, 6.0, 9.0]);
        assert_eq!(d.interval().as_secs(), 1800);
    }

    #[test]
    fn integral_converts_to_unit_hours() {
        // Four 15-minute samples at 1000 kW = 1 hour at 1000 kW = 1000 kWh.
        let s = series_with(&[1000.0; 4]);
        assert!((s.integral_unit_hours() - 1000.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_sample_panics() {
        let mut s = series_with(&[]);
        s.push(f64::NAN);
    }

    #[test]
    fn rebuild_from_tsdb_samples_is_bit_identical() {
        let original = series_with(&[3220.0, 3010.5, 2530.25, 2531.0]);
        let samples = original.tsdb().scan(i64::MIN, i64::MAX);
        let rebuilt = TimeSeries::from_tsdb_samples(
            original.start(),
            original.interval(),
            "kW",
            &samples,
            true,
        )
        .unwrap();
        assert_eq!(rebuilt, original);
        assert_eq!(rebuilt.compressed_bytes(), original.compressed_bytes());
        // Off-grid samples are refused, not silently shifted.
        let err = TimeSeries::from_tsdb_samples(
            original.start(),
            original.interval(),
            "kW",
            &[(0, 1.0), (901, 2.0)],
            false,
        );
        assert!(err.is_err());
    }

    #[test]
    fn serde_roundtrip() {
        let s = series_with(&[1.0, 2.0]);
        let json = serde_json::to_string(&s).unwrap();
        let back: TimeSeries = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn dense_view_and_compressed_store_agree() {
        // Enough samples to span several tsdb chunks.
        let vals: Vec<f64> = (0..1500).map(|i| 2800.0 + f64::from(i % 37) * 3.5).collect();
        let s = series_with(&vals);
        assert_eq!(s.values(), &vals[..]);
        let decoded = s.tsdb().scan(i64::MIN, i64::MAX);
        assert_eq!(decoded.len(), vals.len());
        for (i, &(ts, v)) in decoded.iter().enumerate() {
            assert_eq!(ts, i as i64 * 900);
            assert_eq!(v.to_bits(), vals[i].to_bits());
        }
        // Compression actually compresses: 12 bytes/sample raw → well under.
        assert!(
            s.compressed_bytes() < vals.len() * 8,
            "no compression win: {} bytes for {} samples",
            s.compressed_bytes(),
            vals.len()
        );
    }

    #[test]
    fn compact_series_agrees_with_mirrored() {
        let vals: Vec<f64> = (0..1500).map(|i| 2800.0 + f64::from(i % 37) * 3.5).collect();
        let mirrored = series_with(&vals);
        let mut compact =
            TimeSeries::new_compact(SimTime::from_unix(0), SimDuration::from_mins(15), "kW");
        for &v in &vals {
            compact.push(v);
        }
        assert!(!compact.has_mirror());
        assert!(mirrored.has_mirror());
        assert_eq!(compact.len(), vals.len());
        assert_eq!(compact.end(), mirrored.end());
        // values() decodes losslessly.
        let decoded = compact.values();
        for (d, v) in decoded.iter().zip(&vals) {
            assert_eq!(d.to_bits(), v.to_bits());
        }
        assert_eq!(compact, mirrored);
        // Window stats flow through the same tsdb planner either way.
        let a = mirrored.window_stats(mirrored.time_at(13), mirrored.time_at(509));
        let b = compact.window_stats(compact.time_at(13), compact.time_at(509));
        assert_eq!(a.count(), b.count());
        assert!((a.mean() - b.mean()).abs() < 1e-12);
        // And the memory story is real: no 8 B/sample mirror.
        assert!(compact.compressed_bytes() < vals.len() * 8);
        let down = compact.block_means(96);
        assert_eq!(down.len(), vals.len().div_ceil(96));
    }

    #[test]
    fn compact_series_serializes_identically() {
        let vals = [3220.0, 3010.0, 2530.0, 2530.5];
        let mirrored = series_with(&vals);
        let mut compact =
            TimeSeries::new_compact(SimTime::from_unix(0), SimDuration::from_mins(15), "kW");
        for &v in &vals {
            compact.push(v);
        }
        let a = serde_json::to_string(&mirrored).unwrap();
        let b = serde_json::to_string(&compact).unwrap();
        assert_eq!(a, b, "serialised form must not leak the mirror flag");
        let back: TimeSeries = serde_json::from_str(&b).unwrap();
        assert_eq!(back, compact);
    }

    #[test]
    fn window_stats_match_dense_reference() {
        // Windows at awkward offsets: compare the tsdb-backed answer
        // against a straightforward dense computation.
        let vals: Vec<f64> = (0..700).map(|i| (f64::from(i) * 0.37).cos() * 120.0 + 3000.0).collect();
        let s = series_with(&vals);
        for (a, b) in [(0usize, 700usize), (1, 699), (13, 509), (255, 256), (699, 700), (300, 300)] {
            let st = s.window_stats(s.time_at(a), s.time_at(b));
            let mut reference = OnlineStats::new();
            for &v in &vals[a..b] {
                reference.push(v);
            }
            assert_eq!(st.count(), reference.count(), "window [{a}, {b})");
            if !vals[a..b].is_empty() {
                assert!((st.mean() - reference.mean()).abs() < 1e-9, "window [{a}, {b})");
                assert!((st.std_dev() - reference.std_dev()).abs() < 1e-6);
                assert_eq!(st.min(), reference.min());
                assert_eq!(st.max(), reference.max());
            }
        }
    }
}
