//! Segment statistics around operational change points.
//!
//! Figures 1–3 of the paper annotate power time series with the mean power
//! before and after each operational change (the orange lines): 3,220 kW
//! baseline, 3,010 kW after the BIOS change, 2,530 kW after the frequency
//! change. [`SegmentSummary`] computes exactly those per-segment means from
//! a series plus a list of change instants.

use crate::series::TimeSeries;
use serde::{Deserialize, Serialize};
use sim_core::stats::OnlineStats;
use sim_core::time::SimTime;

/// A labelled operational change instant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChangePoint {
    /// When the change took effect.
    pub at_unix: u64,
    /// Human-readable label, e.g. `"BIOS: performance determinism"`.
    pub label: String,
}

impl ChangePoint {
    /// Create a change point.
    pub fn new(at: SimTime, label: impl Into<String>) -> Self {
        ChangePoint {
            at_unix: at.as_unix(),
            label: label.into(),
        }
    }

    /// The instant.
    pub fn at(&self) -> SimTime {
        SimTime::from_unix(self.at_unix)
    }
}

/// Per-segment summary of a series cut at change points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SegmentSummary {
    /// Segment labels: `"baseline"` then each change label.
    pub labels: Vec<String>,
    /// Mean of each segment.
    pub means: Vec<f64>,
    /// Sample count of each segment.
    pub counts: Vec<u64>,
    /// Standard deviation of each segment.
    pub std_devs: Vec<f64>,
}

impl SegmentSummary {
    /// Cut `series` at the given change points (must be time-ordered) and
    /// summarise each resulting segment.
    ///
    /// # Panics
    /// Panics if change points are not strictly increasing in time.
    pub fn compute(series: &TimeSeries, changes: &[ChangePoint]) -> Self {
        for w in changes.windows(2) {
            assert!(w[0].at_unix < w[1].at_unix, "change points must be strictly increasing");
        }
        let mut bounds = Vec::with_capacity(changes.len() + 2);
        bounds.push(series.start());
        for c in changes {
            bounds.push(c.at());
        }
        bounds.push(series.end());

        let mut labels = Vec::with_capacity(changes.len() + 1);
        labels.push("baseline".to_string());
        labels.extend(changes.iter().map(|c| c.label.clone()));

        let mut means = Vec::new();
        let mut counts = Vec::new();
        let mut std_devs = Vec::new();
        for w in bounds.windows(2) {
            let st: OnlineStats = series.window_stats(w[0], w[1]);
            means.push(st.mean());
            counts.push(st.count());
            std_devs.push(st.std_dev());
        }
        SegmentSummary {
            labels,
            means,
            counts,
            std_devs,
        }
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        self.means.len()
    }

    /// True when the summary has no segments (never happens via `compute`).
    pub fn is_empty(&self) -> bool {
        self.means.is_empty()
    }

    /// Relative drop of segment `i` versus segment `j` (e.g. `drop(2, 0)` =
    /// total reduction vs. baseline).
    ///
    /// # Panics
    /// Panics if either index is out of range or the reference mean is zero.
    pub fn drop_vs(&self, i: usize, j: usize) -> f64 {
        let reference = self.means[j];
        assert!(reference != 0.0, "reference segment mean is zero");
        (reference - self.means[i]) / reference
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::time::SimDuration;

    fn step_series() -> (TimeSeries, Vec<ChangePoint>) {
        // 100 samples at 3220, then 100 at 3010, then 100 at 2530 — the
        // paper's three operating regimes in miniature.
        let mut s = TimeSeries::new(SimTime::from_unix(0), SimDuration::from_hours(1), "kW");
        for _ in 0..100 {
            s.push(3220.0);
        }
        for _ in 0..100 {
            s.push(3010.0);
        }
        for _ in 0..100 {
            s.push(2530.0);
        }
        let changes = vec![
            ChangePoint::new(s.time_at(100), "BIOS: performance determinism"),
            ChangePoint::new(s.time_at(200), "default frequency 2.0 GHz"),
        ];
        (s, changes)
    }

    #[test]
    fn segments_recover_the_paper_means() {
        let (s, changes) = step_series();
        let sum = SegmentSummary::compute(&s, &changes);
        assert_eq!(sum.len(), 3);
        assert_eq!(sum.labels[0], "baseline");
        assert!((sum.means[0] - 3220.0).abs() < 1e-9);
        assert!((sum.means[1] - 3010.0).abs() < 1e-9);
        assert!((sum.means[2] - 2530.0).abs() < 1e-9);
        assert_eq!(sum.counts, vec![100, 100, 100]);
    }

    #[test]
    fn drops_match_paper_percentages() {
        let (s, changes) = step_series();
        let sum = SegmentSummary::compute(&s, &changes);
        // BIOS change: 6.5 % vs baseline; both changes: 21 % vs baseline.
        assert!((sum.drop_vs(1, 0) - 0.0652).abs() < 0.001);
        assert!((sum.drop_vs(2, 0) - 0.2143).abs() < 0.001);
    }

    #[test]
    fn no_changes_is_single_segment() {
        let (s, _) = step_series();
        let sum = SegmentSummary::compute(&s, &[]);
        assert_eq!(sum.len(), 1);
        assert_eq!(sum.counts[0], 300);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unordered_changes_rejected() {
        let (s, mut changes) = step_series();
        changes.swap(0, 1);
        let _ = SegmentSummary::compute(&s, &changes);
    }

    #[test]
    fn std_dev_zero_for_constant_segments() {
        let (s, changes) = step_series();
        let sum = SegmentSummary::compute(&s, &changes);
        for sd in sum.std_devs {
            assert!(sd.abs() < 1e-9);
        }
    }
}
