//! Calendar-month aggregation — the granularity of service reports (and of
//! the paper's own narrative: "the change was implemented across all
//! compute nodes during May 2022").

use crate::series::TimeSeries;
use serde::{Deserialize, Serialize};
use sim_core::time::{days_in_month, SimTime};

/// One calendar month of a power series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonthSummary {
    /// Calendar year.
    pub year: i32,
    /// Month `1..=12`.
    pub month: u32,
    /// Samples in the month.
    pub samples: u64,
    /// Mean of the series over the month.
    pub mean: f64,
    /// Minimum sample.
    pub min: f64,
    /// Maximum sample.
    pub max: f64,
    /// Integral over the month in unit-hours (kW series → kWh).
    pub unit_hours: f64,
}

impl MonthSummary {
    /// `"May 2022"`-style label.
    pub fn label(&self) -> String {
        let stamp = SimTime::from_ymd(self.year, self.month, 1).stamp();
        format!("{} {}", stamp.month_abbrev(), self.year)
    }
}

/// Split a series into calendar months and summarise each.
///
/// Months with no samples are omitted; partial first/last months are
/// summarised over the samples they have.
pub fn monthly_summaries(series: &TimeSeries) -> Vec<MonthSummary> {
    if series.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    let first = series.start().stamp();
    let (mut year, mut month) = (first.year, first.month);
    let end = series.end();

    loop {
        let month_start = SimTime::from_ymd(year, month, 1);
        if month_start >= end {
            break;
        }
        let (ny, nm) = if month == 12 { (year + 1, 1) } else { (year, month + 1) };
        let month_end = SimTime::from_ymd(ny, nm, 1);

        let stats = series.window_stats(month_start, month_end);
        if stats.count() > 0 {
            let hours_per_sample = series.interval().as_hours_f64();
            out.push(MonthSummary {
                year,
                month,
                samples: stats.count(),
                mean: stats.mean(),
                min: stats.min(),
                max: stats.max(),
                unit_hours: stats.sum() * hours_per_sample,
            });
        }
        year = ny;
        month = nm;
    }
    out
}

/// Render the monthly table as aligned text.
pub fn render_monthly(series: &TimeSeries) -> String {
    let months = monthly_summaries(series);
    let mut out = String::new();
    out.push_str(&format!(
        "{:<10} {:>9} {:>10} {:>10} {:>10} {:>14}\n",
        "month", "samples", "mean", "min", "max", "energy"
    ));
    for m in months {
        out.push_str(&format!(
            "{:<10} {:>9} {:>10.0} {:>10.0} {:>10.0} {:>11.0} {}h\n",
            m.label(),
            m.samples,
            m.mean,
            m.min,
            m.max,
            m.unit_hours,
            series.unit
        ));
    }
    out
}

/// Sanity helper: expected sample count for a full month at the series'
/// cadence.
pub fn full_month_samples(series: &TimeSeries, year: i32, month: u32) -> u64 {
    days_in_month(year, month) as u64 * 86_400 / series.interval().as_secs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::time::SimDuration;

    fn three_month_series() -> TimeSeries {
        // Dec 2021 at 3200, Jan 2022 at 3300, Feb 2022 at 3100; hourly.
        let mut s = TimeSeries::new(SimTime::from_ymd(2021, 12, 1), SimDuration::from_hours(1), "kW");
        for _ in 0..(31 * 24) {
            s.push(3200.0);
        }
        for _ in 0..(31 * 24) {
            s.push(3300.0);
        }
        for _ in 0..(28 * 24) {
            s.push(3100.0);
        }
        s
    }

    #[test]
    fn months_split_correctly() {
        let s = three_month_series();
        let months = monthly_summaries(&s);
        assert_eq!(months.len(), 3);
        assert_eq!((months[0].year, months[0].month), (2021, 12));
        assert_eq!((months[1].year, months[1].month), (2022, 1));
        assert_eq!((months[2].year, months[2].month), (2022, 2));
        assert_eq!(months[0].samples, 31 * 24);
        assert_eq!(months[2].samples, 28 * 24);
        assert!((months[0].mean - 3200.0).abs() < 1e-9);
        assert!((months[1].mean - 3300.0).abs() < 1e-9);
        assert!((months[2].mean - 3100.0).abs() < 1e-9);
    }

    #[test]
    fn energy_integral_per_month() {
        let s = three_month_series();
        let months = monthly_summaries(&s);
        // December: 3,200 kW × 744 h = 2,380,800 kWh.
        assert!((months[0].unit_hours - 3200.0 * 744.0).abs() < 1e-6);
    }

    #[test]
    fn partial_month_summarised() {
        let mut s = TimeSeries::new(SimTime::from_ymd(2022, 3, 15), SimDuration::from_hours(1), "kW");
        for _ in 0..500 {
            s.push(10.0);
        }
        let months = monthly_summaries(&s);
        assert_eq!(months.len(), 2, "spills into April: {months:?}");
        assert_eq!(months[0].samples + months[1].samples, 500);
        // March 15 00:00 to April 1 00:00 is 17 days = 408 hourly samples.
        assert_eq!(months[0].samples, 408);
    }

    #[test]
    fn labels_and_render() {
        let s = three_month_series();
        let months = monthly_summaries(&s);
        assert_eq!(months[0].label(), "Dec 2021");
        let text = render_monthly(&s);
        assert!(text.contains("Dec 2021"));
        assert!(text.contains("Jan 2022"));
        assert!(text.contains("3300"));
    }

    #[test]
    fn empty_series_no_months() {
        let s = TimeSeries::new(SimTime::EPOCH, SimDuration::from_hours(1), "kW");
        assert!(monthly_summaries(&s).is_empty());
    }

    #[test]
    fn full_month_sample_count() {
        let s = three_month_series();
        assert_eq!(full_month_samples(&s, 2021, 12), 744);
        assert_eq!(full_month_samples(&s, 2022, 2), 672);
    }
}
