//! # hpc-telemetry
//!
//! Facility telemetry: regular-interval time series, recorders that sample a
//! simulated facility, segment statistics (the before/after means drawn as
//! orange lines in the paper's Figures 1-3), CSV export and ASCII rendering
//! for terminal-friendly figure output.

#![warn(missing_docs)]

pub mod ascii;
pub mod csv;
pub mod monthly;
pub mod segment;
pub mod series;

pub use ascii::AsciiPlot;
pub use monthly::{monthly_summaries, render_monthly, MonthSummary};
pub use segment::{ChangePoint, SegmentSummary};
pub use series::TimeSeries;
