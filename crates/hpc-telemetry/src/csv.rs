//! CSV export/import for time series.
//!
//! Kept dependency-free (a series is two columns); the format is
//! `timestamp,value` with an ISO-8601 header row, matching what facility
//! telemetry exports look like in practice.

use crate::series::TimeSeries;
use sim_core::time::{SimDuration, SimTime};

/// Render a series to CSV with an ISO-8601 timestamp column.
pub fn to_csv(series: &TimeSeries) -> String {
    let mut out = String::with_capacity(series.len() * 32 + 32);
    out.push_str(&format!("timestamp,{}\n", series.unit));
    for (i, v) in series.values().iter().enumerate() {
        out.push_str(&format!("{},{v}\n", series.time_at(i)));
    }
    out
}

/// Errors from [`from_csv`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvError {
    /// The input had no header row.
    MissingHeader,
    /// A row was malformed (line number, content).
    BadRow(usize, String),
    /// Timestamps were not evenly spaced.
    IrregularInterval(usize),
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::MissingHeader => write!(f, "missing CSV header"),
            CsvError::BadRow(n, row) => write!(f, "bad CSV row {n}: {row:?}"),
            CsvError::IrregularInterval(n) => write!(f, "irregular interval at row {n}"),
        }
    }
}

impl std::error::Error for CsvError {}

/// Parse a two-column CSV produced by [`to_csv`] back into a series.
///
/// The unit is taken from the header's second column. Timestamps must be
/// the `YYYY-MM-DDTHH:MM:SSZ` form and evenly spaced.
pub fn from_csv(text: &str) -> Result<TimeSeries, CsvError> {
    let mut lines = text.lines();
    let header = lines.next().ok_or(CsvError::MissingHeader)?;
    let unit = header.split(',').nth(1).ok_or(CsvError::MissingHeader)?.to_string();

    let mut times: Vec<u64> = Vec::new();
    let mut values: Vec<f64> = Vec::new();
    for (i, line) in lines.enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let (ts, val) = line.split_once(',').ok_or_else(|| CsvError::BadRow(i + 2, line.to_string()))?;
        let t = parse_iso8601(ts).ok_or_else(|| CsvError::BadRow(i + 2, line.to_string()))?;
        let v: f64 = val.trim().parse().map_err(|_| CsvError::BadRow(i + 2, line.to_string()))?;
        times.push(t.as_unix());
        values.push(v);
    }

    let (start, interval) = match times.len() {
        0 => (SimTime::EPOCH, SimDuration::from_secs(1)),
        1 => (SimTime::from_unix(times[0]), SimDuration::from_secs(1)),
        _ => {
            let dt = times[1] - times[0];
            for (i, w) in times.windows(2).enumerate() {
                if w[1] - w[0] != dt {
                    return Err(CsvError::IrregularInterval(i + 3));
                }
            }
            (SimTime::from_unix(times[0]), SimDuration::from_secs(dt))
        }
    };

    let mut s = TimeSeries::new(start, interval, unit);
    for v in values {
        s.push(v);
    }
    Ok(s)
}

/// Parse `YYYY-MM-DDTHH:MM:SSZ`.
fn parse_iso8601(s: &str) -> Option<SimTime> {
    let s = s.trim();
    let bytes = s.as_bytes();
    if bytes.len() != 20 || bytes[4] != b'-' || bytes[7] != b'-' || bytes[10] != b'T'
        || bytes[13] != b':' || bytes[16] != b':' || bytes[19] != b'Z'
    {
        return None;
    }
    let year: i32 = s[0..4].parse().ok()?;
    let month: u32 = s[5..7].parse().ok()?;
    let day: u32 = s[8..10].parse().ok()?;
    let hour: u32 = s[11..13].parse().ok()?;
    let minute: u32 = s[14..16].parse().ok()?;
    let second: u32 = s[17..19].parse().ok()?;
    if year < 1970 || !(1..=12).contains(&month) || day == 0 || day > sim_core::time::days_in_month(year, month)
        || hour > 23 || minute > 59 || second > 59
    {
        return None;
    }
    Some(SimTime::from_ymd_hms(year, month, day, hour, minute, second))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_series() -> TimeSeries {
        let mut s = TimeSeries::new(
            SimTime::from_ymd(2021, 12, 1),
            SimDuration::from_mins(15),
            "kW",
        );
        for v in [3200.0, 3250.5, 3190.25] {
            s.push(v);
        }
        s
    }

    #[test]
    fn roundtrip() {
        let s = sample_series();
        let csv = to_csv(&s);
        let back = from_csv(&csv).unwrap();
        assert_eq!(back.start(), s.start());
        assert_eq!(back.interval(), s.interval());
        assert_eq!(back.values(), s.values());
        assert_eq!(back.unit, "kW");
    }

    #[test]
    fn header_and_timestamps_rendered() {
        let csv = to_csv(&sample_series());
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), "timestamp,kW");
        assert!(lines.next().unwrap().starts_with("2021-12-01T00:00:00Z,"));
        assert!(lines.next().unwrap().starts_with("2021-12-01T00:15:00Z,"));
    }

    #[test]
    fn bad_rows_reported_with_line_numbers() {
        let err = from_csv("timestamp,kW\nnot-a-time,1.0\n").unwrap_err();
        assert!(matches!(err, CsvError::BadRow(2, _)));
        let err = from_csv("timestamp,kW\n2021-12-01T00:00:00Z,abc\n").unwrap_err();
        assert!(matches!(err, CsvError::BadRow(2, _)));
    }

    #[test]
    fn irregular_interval_detected() {
        let text = "timestamp,kW\n2021-12-01T00:00:00Z,1\n2021-12-01T00:15:00Z,2\n2021-12-01T00:45:00Z,3\n";
        let err = from_csv(text).unwrap_err();
        assert!(matches!(err, CsvError::IrregularInterval(_)));
    }

    #[test]
    fn empty_body_is_empty_series() {
        let s = from_csv("timestamp,kW\n").unwrap();
        assert!(s.is_empty());
        assert_eq!(s.unit, "kW");
    }

    #[test]
    fn missing_header_detected() {
        assert_eq!(from_csv("").unwrap_err(), CsvError::MissingHeader);
        assert_eq!(from_csv("justonecolumn").unwrap_err(), CsvError::MissingHeader);
    }
}
