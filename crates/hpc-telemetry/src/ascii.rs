//! ASCII rendering of time series — the terminal stand-in for the paper's
//! figures.
//!
//! The examples and benches print Figures 1–3 as fixed-width charts with a
//! labelled value axis, month tick marks and horizontal mean lines (the
//! paper's orange annotations become `-` rules labelled with the segment
//! mean).

use crate::segment::SegmentSummary;
use crate::series::TimeSeries;

/// Plot configuration.
#[derive(Debug, Clone)]
pub struct AsciiPlot {
    /// Plot width in character columns (time axis resolution).
    pub width: usize,
    /// Plot height in character rows (value axis resolution).
    pub height: usize,
    /// Chart title.
    pub title: String,
}

impl AsciiPlot {
    /// A plot sized for a terminal.
    pub fn new(title: impl Into<String>) -> Self {
        AsciiPlot {
            width: 100,
            height: 20,
            title: title.into(),
        }
    }

    /// Render the series, optionally overlaying per-segment mean lines.
    ///
    /// Returns a multi-line string; empty series render a placeholder.
    pub fn render(&self, series: &TimeSeries, segments: Option<&SegmentSummary>) -> String {
        if series.is_empty() {
            return format!("{}\n(empty series)\n", self.title);
        }
        let w = self.width.max(10);
        let h = self.height.max(5);

        // Downsample to one column per character cell.
        let cols = column_means(&series.values(), w);
        let (mut lo, mut hi) = value_range(&cols);
        if let Some(seg) = segments {
            for &m in &seg.means {
                lo = lo.min(m);
                hi = hi.max(m);
            }
        }
        if (hi - lo).abs() < 1e-12 {
            hi = lo + 1.0;
        }
        // Pad the value axis a little.
        let pad = 0.05 * (hi - lo);
        let (lo, hi) = (lo - pad, hi + pad);

        let row_of = |v: f64| -> usize {
            let frac = (v - lo) / (hi - lo);
            let r = ((1.0 - frac) * (h - 1) as f64).round();
            (r.max(0.0) as usize).min(h - 1)
        };

        let mut grid = vec![vec![' '; w]; h];
        // Mean lines first so data overdraws them.
        if let Some(seg) = segments {
            for &m in &seg.means {
                let r = row_of(m);
                for cell in &mut grid[r] {
                    *cell = '-';
                }
            }
        }
        for (c, &v) in cols.iter().enumerate() {
            grid[row_of(v)][c] = '*';
        }

        let mut out = String::new();
        out.push_str(&format!("{}\n", self.title));
        let label_w = 10;
        for (r, row) in grid.iter().enumerate() {
            let v = hi - (hi - lo) * r as f64 / (h - 1) as f64;
            let label = if r % 4 == 0 || r == h - 1 {
                format!("{v:>9.0} ")
            } else {
                " ".repeat(label_w)
            };
            out.push_str(&label);
            out.push('|');
            out.extend(row.iter());
            out.push('\n');
        }
        out.push_str(&" ".repeat(label_w));
        out.push('+');
        out.push_str(&"-".repeat(w));
        out.push('\n');

        // Time axis: first, middle and last timestamps.
        let t0 = series.start().stamp();
        let tm = series.time_at(series.len() / 2).stamp();
        let t1 = series.time_at(series.len().saturating_sub(1)).stamp();
        let left = format!("{} {}", t0.month_abbrev(), t0.year);
        let mid = format!("{} {}", tm.month_abbrev(), tm.year);
        let right = format!("{} {}", t1.month_abbrev(), t1.year);
        let mut axis = " ".repeat(label_w + 1);
        axis.push_str(&left);
        let mid_pos = label_w + 1 + w / 2 - mid.len() / 2;
        while axis.len() < mid_pos {
            axis.push(' ');
        }
        axis.push_str(&mid);
        let right_pos = (label_w + 1 + w).saturating_sub(right.len());
        while axis.len() < right_pos {
            axis.push(' ');
        }
        axis.push_str(&right);
        out.push_str(&axis);
        out.push('\n');

        if let Some(seg) = segments {
            for (label, mean) in seg.labels.iter().zip(&seg.means) {
                out.push_str(&format!("  mean [{}] = {:.0} {}\n", label, mean, series.unit));
            }
        }
        out
    }
}

/// Average `values` into exactly `w` columns (or fewer if there are fewer
/// samples than columns).
fn column_means(values: &[f64], w: usize) -> Vec<f64> {
    if values.len() <= w {
        return values.to_vec();
    }
    let mut out = Vec::with_capacity(w);
    for c in 0..w {
        let i0 = c * values.len() / w;
        let i1 = ((c + 1) * values.len() / w).max(i0 + 1);
        let slice = &values[i0..i1.min(values.len())];
        out.push(slice.iter().sum::<f64>() / slice.len() as f64);
    }
    out
}

fn value_range(values: &[f64]) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &v in values {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::ChangePoint;
    use sim_core::time::{SimDuration, SimTime};

    fn step_series() -> TimeSeries {
        let mut s = TimeSeries::new(SimTime::from_ymd(2021, 12, 1), SimDuration::from_hours(6), "kW");
        for _ in 0..200 {
            s.push(3220.0);
        }
        for _ in 0..200 {
            s.push(2530.0);
        }
        s
    }

    #[test]
    fn renders_title_axis_and_data() {
        let s = step_series();
        let plot = AsciiPlot::new("Figure 1: power draw");
        let out = plot.render(&s, None);
        assert!(out.starts_with("Figure 1: power draw\n"));
        assert!(out.contains('*'), "must plot data points");
        assert!(out.contains("Dec 2021"), "must label the time axis");
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines.len() >= plot.height + 2);
    }

    #[test]
    fn mean_lines_and_legend_present() {
        let s = step_series();
        let seg = SegmentSummary::compute(&s, &[ChangePoint::new(s.time_at(200), "change")]);
        let out = AsciiPlot::new("t").render(&s, Some(&seg));
        assert!(out.contains('-'), "mean rule lines must be drawn");
        assert!(out.contains("mean [baseline] = 3220 kW"));
        assert!(out.contains("mean [change] = 2530 kW"));
    }

    #[test]
    fn empty_series_placeholder() {
        let s = TimeSeries::new(SimTime::EPOCH, SimDuration::from_secs(1), "kW");
        let out = AsciiPlot::new("empty").render(&s, None);
        assert!(out.contains("(empty series)"));
    }

    #[test]
    fn step_visible_in_plot() {
        // The high segment's '*' marks must appear in higher rows than the
        // low segment's.
        let s = step_series();
        let out = AsciiPlot::new("t").render(&s, None);
        let rows: Vec<&str> = out.lines().skip(1).take(20).collect();
        let first_star_row = rows.iter().position(|r| r.contains('*')).unwrap();
        let last_star_row = rows.iter().rposition(|r| r.contains('*')).unwrap();
        assert!(last_star_row > first_star_row, "step should span rows");
    }

    #[test]
    fn column_means_preserves_mean() {
        let values: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let cols = column_means(&values, 100);
        assert_eq!(cols.len(), 100);
        let orig_mean = values.iter().sum::<f64>() / 1000.0;
        let col_mean = cols.iter().sum::<f64>() / 100.0;
        assert!((orig_mean - col_mean).abs() < 1.0);
    }

    #[test]
    fn short_series_not_padded() {
        let cols = column_means(&[1.0, 2.0, 3.0], 100);
        assert_eq!(cols, vec![1.0, 2.0, 3.0]);
    }
}
