//! Real-kernel roofline benchmarks: the measurable ground truth for the
//! memory-bound / compute-bound dichotomy that drives §4.2 of the paper.
//!
//! Prints each kernel's operational intensity and classification against an
//! ARCHER2-node roofline, then times the parallel implementations.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hpc_kernels::{CsrMatrix, Dgemm, Jacobi3d, MachineBalance, NBody, Triad};
use std::hint::black_box;

fn print_roofline() {
    let m = MachineBalance::archer2_node();
    println!("\nARCHER2-node roofline: {:.0} GFLOP/s, {:.0} GB/s, ridge {:.1} flops/byte", m.peak_gflops, m.peak_gbs, m.balance());
    let triad = Triad::new(1 << 20);
    let gemm = Dgemm::new(512);
    let stencil = Jacobi3d::new(64);
    let nbody = NBody::new(2048);
    let spmv = CsrMatrix::laplacian_2d(256);
    for (name, counts) in [
        ("STREAM triad", triad.counts()),
        ("DGEMM 512", gemm.counts()),
        ("Jacobi3D 64", stencil.counts()),
        ("n-body 2048", nbody.counts()),
        ("SpMV laplacian 256", spmv.counts()),
    ] {
        println!(
            "  {:<20} intensity {:>8.3} flops/byte -> {:?}, implied beta {:.2}",
            name,
            counts.intensity(),
            m.classify(&counts),
            m.beta(&counts)
        );
    }
    println!();
}

fn bench_triad(c: &mut Criterion) {
    print_roofline();
    let mut t = Triad::new(1 << 22);
    let mut g = c.benchmark_group("kernel_triad");
    g.throughput(Throughput::Bytes(t.counts().bytes as u64));
    g.bench_function("parallel_4M", |b| b.iter(|| t.run(black_box(3.0))));
    g.finish();
}

fn bench_dgemm(c: &mut Criterion) {
    let mut d = Dgemm::new(512);
    let mut g = c.benchmark_group("kernel_dgemm");
    g.throughput(Throughput::Elements(d.counts().flops as u64));
    g.bench_function("blocked_parallel_512", |b| b.iter(|| d.run()));
    g.finish();
}

fn bench_stencil(c: &mut Criterion) {
    let mut j = Jacobi3d::new(128);
    let mut g = c.benchmark_group("kernel_jacobi3d");
    g.throughput(Throughput::Bytes(j.counts().bytes as u64));
    g.bench_function("parallel_128cubed", |b| b.iter(|| j.step()));
    g.finish();
}

fn bench_nbody(c: &mut Criterion) {
    let mut n = NBody::new(4096);
    let mut g = c.benchmark_group("kernel_nbody");
    g.throughput(Throughput::Elements(n.counts().flops as u64));
    g.bench_function("parallel_4096", |b| b.iter(|| n.step(black_box(1e-3))));
    g.finish();
}

fn bench_spmv(c: &mut Criterion) {
    let m = CsrMatrix::laplacian_2d(512);
    let x = vec![1.0; m.cols()];
    let mut y = vec![0.0; m.rows()];
    let mut g = c.benchmark_group("kernel_spmv");
    g.throughput(Throughput::Bytes(m.counts().bytes as u64));
    g.bench_function("laplacian_512", |b| b.iter(|| m.spmv(black_box(&x), &mut y)));
    g.finish();
}

criterion_group!(kernels, bench_triad, bench_dgemm, bench_stencil, bench_nbody, bench_spmv);
criterion_main!(kernels);
