//! Regenerates the §2 emissions analysis (regime sweep + lifetime
//! scenarios) and benchmarks it.

use archer2_core::experiment;
use criterion::{criterion_group, criterion_main, Criterion};
use hpc_emissions::scenario::archer2_scenario;
use hpc_emissions::OperatingChoice;
use hpc_grid::IntensityScenario;
use std::hint::black_box;

const SEED: u64 = 2022;

fn bench_regimes(c: &mut Criterion) {
    let a = experiment::emissions_regimes(SEED);
    println!("\n{}", experiment::render_regimes(&a));
    println!("scope2 = scope3 parity at {:.0} g/kWh (paper band: 30-100)\n", a.parity_ci);
    c.bench_function("section2_regime_sweep", |b| {
        b.iter(|| black_box(experiment::emissions_regimes(black_box(SEED))))
    });
}

fn bench_lifetime_scenarios(c: &mut Criterion) {
    let choices = vec![
        OperatingChoice {
            label: "2.25 GHz+turbo".into(),
            node_power_kw: 0.49,
            runtime_ratio: 1.0,
        },
        OperatingChoice {
            label: "2.0 GHz".into(),
            node_power_kw: 0.39,
            runtime_ratio: 1.11,
        },
    ];
    let sc = archer2_scenario(IntensityScenario::UkGrid2022);
    for out in sc.compare(&choices) {
        println!(
            "lifetime {}: scope2 {:.0} t + scope3 {:.0} t = {:.0} tCO2e",
            out.label,
            out.scope2_t,
            out.scope3_t,
            out.total_t()
        );
    }
    c.bench_function("lifetime_scenario_uk_grid", |b| {
        b.iter(|| {
            let sc = archer2_scenario(IntensityScenario::UkGrid2022);
            black_box(sc.compare(black_box(&choices)))
        })
    });
}

criterion_group! {
    name = emissions;
    config = Criterion::default().sample_size(10);
    targets = bench_regimes, bench_lifetime_scenarios
}
criterion_main!(emissions);
