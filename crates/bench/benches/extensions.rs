//! Benchmarks for the §5 future-work extensions: toolchain sweep, AI
//! surrogate, carbon-aware shifting, cooling/PUE and the TCO model.

use archer2_core::experiment;
use criterion::{criterion_group, criterion_main, Criterion};
use hpc_emissions::CostModel;
use hpc_grid::{optimal_shift, IntensityScenario};
use hpc_power::CoolingPlant;
use sim_core::{SimDuration, SimTime};
use std::hint::black_box;

const SEED: u64 = 2022;

fn bench_toolchain(c: &mut Criterion) {
    println!("\n=== Toolchain sweep (energy per work unit at 2.0 GHz, vs baseline@ref) ===");
    for row in experiment::toolchain_sweep(SEED) {
        println!(
            "{:<24} {:<11} perf(2.0) {:.2}  E/work(2.0) {:.3}",
            row.benchmark, row.variant, row.perf_ratio_20, row.energy_per_work_20
        );
    }
    c.bench_function("ext_toolchain_sweep", |b| {
        b.iter(|| black_box(experiment::toolchain_sweep(black_box(SEED))))
    });
}

fn bench_ai_surrogate(c: &mut Criterion) {
    println!("\n=== AI surrogate (8x node-hour speedup) ===");
    for row in experiment::ai_surrogate(SEED, 8.0) {
        println!(
            "CI {:>3.0} g/kWh: classical {:>6.1} g/unit, surrogate {:>5.1} g/unit ({:.1}x less)",
            row.ci, row.classical_g, row.surrogate_g, row.reduction
        );
    }
    c.bench_function("ext_ai_surrogate", |b| {
        b.iter(|| black_box(experiment::ai_surrogate(black_box(SEED), black_box(8.0))))
    });
}

fn bench_carbon_shift(c: &mut Criterion) {
    let run = || {
        optimal_shift(
            IntensityScenario::UkGrid2022,
            SimTime::from_ymd(2022, 11, 1),
            24 * 30,
            3000.0,
            0.10,
            0.10,
            SimDuration::from_hours(12),
        )
    };
    let out = run();
    println!(
        "\ncarbon-aware shifting: {:.1} t baseline -> {:.1} t shifted ({:.2}% saved, {:.0} MWh moved)",
        out.baseline_t,
        out.shifted_t,
        out.saved_fraction() * 100.0,
        out.moved_mwh
    );
    c.bench_function("ext_carbon_shift_30d", |b| b.iter(|| black_box(run())));
}

fn bench_cooling(c: &mut Criterion) {
    let plant = CoolingPlant::default();
    println!(
        "\ncooling: annual PUE {:.3} at 3.22 MW IT, {:.3} at 2.53 MW IT",
        plant.annual_mean_pue(3.22e6, 2022),
        plant.annual_mean_pue(2.53e6, 2022)
    );
    c.bench_function("ext_annual_pue", |b| {
        b.iter(|| black_box(plant.annual_mean_pue(black_box(3.22e6), 2022)))
    });
}

fn bench_tco(c: &mut Criterion) {
    let m = CostModel::archer2(0.30);
    println!(
        "\nTCO: electricity share {:.0}% at GBP 0.30/kWh; crossover at GBP {:.2}/kWh",
        m.electricity_share() * 100.0,
        m.crossover_price_gbp_per_kwh()
    );
    c.bench_function("ext_tco_model", |b| {
        b.iter(|| {
            let m = CostModel::archer2(black_box(0.30));
            black_box((m.electricity_share(), m.crossover_price_gbp_per_kwh()))
        })
    });
}

fn bench_power_cap(c: &mut Criterion) {
    println!("\n=== Power-cap menu (busy fleet, throughput-optimal mixes) ===");
    for row in experiment::power_cap_sweep(SEED) {
        println!(
            "cap {:>5.0} kW: [1.5: {:>4.0}%, 2.0: {:>4.0}%, turbo: {:>4.0}%] -> throughput {:.2}",
            row.cap_kw,
            row.fractions[0] * 100.0,
            row.fractions[1] * 100.0,
            row.fractions[2] * 100.0,
            row.throughput
        );
    }
    c.bench_function("ext_power_cap_sweep", |b| {
        b.iter(|| black_box(experiment::power_cap_sweep(black_box(SEED))))
    });
}

fn bench_grid_aware(c: &mut Criterion) {
    let r = experiment::grid_aware_december(SEED, 10);
    println!(
        "\ngrid-aware December: fast {:.0} kW / aware {:.0} kW / capped {:.0} kW; scope-2 {:?} t; shed {:.0}% of hours",
        r.static_fast_kw,
        r.grid_aware_kw,
        r.static_slow_kw,
        r.scope2_t.map(|t| t.round()),
        r.shed_fraction * 100.0
    );
    c.bench_function("ext_grid_aware_december", |b| {
        b.iter(|| black_box(experiment::grid_aware_december(black_box(SEED), black_box(10))))
    });
}

criterion_group! {
    name = extensions;
    config = Criterion::default().sample_size(10);
    targets = bench_toolchain, bench_ai_surrogate, bench_carbon_shift, bench_cooling, bench_tco,
              bench_power_cap, bench_grid_aware
}
criterion_main!(extensions);
