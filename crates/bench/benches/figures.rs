//! Regenerates every *figure* of the paper (the campaign simulations) and
//! benchmarks the regeneration.
//!
//! Default scale is 1/10 of the facility (composition-preserving; reported
//! kilowatts are full-facility). Set `ARCHER2_BENCH_SCALE=1` to simulate
//! all 5,860 nodes.

use archer2_core::experiment;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const SEED: u64 = 2022;

fn scale() -> u32 {
    std::env::var("ARCHER2_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10)
}

fn bench_figure1(c: &mut Criterion) {
    let fig = experiment::figure1(SEED, scale());
    println!("\n{}", fig.render());
    println!(
        "baseline mean {:.0} kW (paper: 3,220 kW), utilisation {:.1}%\n",
        fig.summary.means[0],
        fig.utilisation * 100.0
    );
    c.bench_function("figure1_baseline_campaign", |b| {
        b.iter(|| black_box(experiment::figure1(black_box(SEED), black_box(scale()))))
    });
}

fn bench_figure2(c: &mut Criterion) {
    let fig = experiment::figure2(SEED, scale());
    println!("\n{}", fig.render());
    println!(
        "settled means {:.0} -> {:.0} kW (paper: 3,220 -> 3,010 kW)\n",
        fig.settled_means_kw[0], fig.settled_means_kw[1]
    );
    c.bench_function("figure2_bios_change_campaign", |b| {
        b.iter(|| black_box(experiment::figure2(black_box(SEED), black_box(scale()))))
    });
}

fn bench_figure3(c: &mut Criterion) {
    let fig = experiment::figure3(SEED, scale());
    println!("\n{}", fig.render());
    println!(
        "settled means {:.0} -> {:.0} kW (paper: 3,010 -> 2,530 kW)\n",
        fig.settled_means_kw[0], fig.settled_means_kw[1]
    );
    c.bench_function("figure3_frequency_change_campaign", |b| {
        b.iter(|| black_box(experiment::figure3(black_box(SEED), black_box(scale()))))
    });
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10);
    targets = bench_figure1, bench_figure2, bench_figure3
}
criterion_main!(figures);
