//! Regenerates every *table* of the paper and benchmarks the regeneration.
//!
//! Run with `cargo bench -p archer2-bench --bench tables`. Each bench first
//! prints the reproduced table (paper vs model) once, then times the
//! closed-form regeneration.

use archer2_core::experiment;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const SEED: u64 = 2022;

fn bench_table1(c: &mut Criterion) {
    println!("\n=== Table 1: ARCHER2 hardware summary ===\n{}\n", experiment::table1());
    c.bench_function("table1_hardware_summary", |b| {
        b.iter(|| black_box(experiment::table1()))
    });
}

fn bench_table2(c: &mut Criterion) {
    let t = experiment::table2(SEED);
    println!("\n=== Table 2: component power decomposition ===\n{}", t.render());
    println!(
        "paper: idle 1,800 kW / loaded 3,500 kW; model: idle {:.0} kW / loaded {:.0} kW\n",
        t.idle_total_kw, t.loaded_total_kw
    );
    c.bench_function("table2_power_decomposition", |b| {
        b.iter(|| black_box(experiment::table2(black_box(SEED))))
    });
}

fn bench_table3(c: &mut Criterion) {
    let t = experiment::table3(SEED);
    println!("\n=== {} ===", t.render());
    println!("max |model - paper| = {:.4}\n", t.max_abs_error());
    c.bench_function("table3_determinism_ratios", |b| {
        b.iter(|| black_box(experiment::table3(black_box(SEED))))
    });
}

fn bench_table4(c: &mut Criterion) {
    let t = experiment::table4(SEED);
    println!("\n=== {} ===", t.render());
    println!("max |model - paper| = {:.4}\n", t.max_abs_error());
    c.bench_function("table4_frequency_ratios", |b| {
        b.iter(|| black_box(experiment::table4(black_box(SEED))))
    });
}

criterion_group! {
    name = tables;
    config = Criterion::default().sample_size(10);
    targets = bench_table1, bench_table2, bench_table3, bench_table4
}
criterion_main!(tables);
