//! Benchmarks for the extension/ablation experiments in DESIGN.md:
//! utilisation sweep, full frequency sweep, frequency-policy comparison.

use archer2_core::experiment;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const SEED: u64 = 2022;

fn bench_utilisation_sweep(c: &mut Criterion) {
    println!("\n=== Energy efficiency vs utilisation (§5) ===");
    for row in experiment::utilisation_sweep(SEED) {
        println!(
            "utilisation {:>4.0}%: facility {:>5.0} kW, {:.3} kWh per busy node-hour",
            row.utilisation * 100.0,
            row.facility_kw,
            row.kwh_per_busy_node_hour
        );
    }
    c.bench_function("ablation_utilisation_sweep", |b| {
        b.iter(|| black_box(experiment::utilisation_sweep(black_box(SEED))))
    });
}

fn bench_frequency_sweep(c: &mut Criterion) {
    println!("\n=== Full frequency sweep (1.5 / 2.0 / 2.25+turbo) ===");
    for row in experiment::frequency_sweep(SEED) {
        println!(
            "{:<24} perf {:?}  energy {:?}",
            row.benchmark,
            row.perf.map(|v| (v * 100.0).round() / 100.0),
            row.energy.map(|v| (v * 100.0).round() / 100.0)
        );
    }
    c.bench_function("ablation_frequency_sweep", |b| {
        b.iter(|| black_box(experiment::frequency_sweep(black_box(SEED))))
    });
}

fn bench_policy(c: &mut Criterion) {
    println!("\n=== Frequency-policy ablation (14 simulated days) ===");
    for row in experiment::policy_ablation(SEED, 10) {
        println!(
            "{:<26} mean {:>5.0} kW, reverted {:.1}%",
            row.policy,
            row.mean_kw,
            row.revert_fraction * 100.0
        );
    }
    c.bench_function("ablation_frequency_policy", |b| {
        b.iter(|| black_box(experiment::policy_ablation(black_box(SEED), black_box(10))))
    });
}

criterion_group! {
    name = ablations;
    config = Criterion::default().sample_size(10);
    targets = bench_utilisation_sweep, bench_frequency_sweep, bench_policy
}
criterion_main!(ablations);
