//! Query engine: time-range scans, aligned window aggregations,
//! change-point segment means and multi-series fan-out, with rollup-aware
//! planning, a decoded-chunk cache and per-store instrumentation.
//!
//! Planning rule: an aggregation whose window is aligned to a rollup
//! level's grid is served from that level's buckets — coarsest level
//! first — because bucket aggregates compose exactly (they carry
//! count/sum/min/max/m2, not means). Percentiles need the raw
//! distribution, so `P95` always plans a raw scan.
//!
//! ## Locking discipline (store-level queries)
//!
//! Store-level entry points ([`store_aggregate`], [`store_windows`], the
//! `fanout_*` family) evaluate in two phases. The planning/snapshot phase
//! reads the series through [`TsdbStore::with_series_read`]: when the
//! store's published [`ReadView`](crate::ReadView) is still at the current
//! generation, it runs against the frozen series with **no shard lock at
//! all**; otherwise it falls back to a **short shard read lock** to plan,
//! compose rollup buckets, clone the handles of the sealed chunks a raw
//! scan needs (an `O(1)` refcount bump per chunk) and copy out the small
//! active chunk. Either way the second phase — all Gorilla decode, the
//! expensive part — runs lock-free against immutable sealed chunks,
//! through the store's [`ChunkCache`](crate::cache::ChunkCache). A query
//! therefore never holds a shard lock across a decode; against a fresh
//! view it never takes one, and against a stale view concurrent writers
//! are stalled only for the snapshot instant.

use crate::chunk::Chunk;
use crate::rollup::Aggregate;
use crate::series::{fold_chunk_aggregate, Series};
use crate::store::{SeriesId, TsdbStore};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Aggregation operators over a time window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggOp {
    /// Arithmetic mean.
    Mean,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Sum.
    Sum,
    /// Sample count.
    Count,
    /// 95th percentile (nearest-rank); forces a raw scan.
    P95,
}

/// Where the planner sourced an answer from (exposed for tests and
/// instrumentation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Plan {
    /// Served by composing 1-hour buckets.
    HourRollup,
    /// Served by composing 1-minute buckets.
    MinuteRollup,
    /// Served by decoding chunks (with whole-chunk aggregate shortcuts).
    RawScan,
}

/// One aligned aggregation window result.
#[derive(Debug, Clone, Copy)]
pub struct WindowValue {
    /// Window start (inclusive).
    pub start: i64,
    /// Aggregated value. NaN for an empty window under every operator
    /// except [`AggOp::Count`], which reports `0.0` — an empty window
    /// genuinely holds zero samples, while "the sum of no samples" is
    /// undefined and must stay distinguishable from an all-zero window.
    pub value: f64,
    /// Samples inside the window.
    pub count: u64,
}

/// Pick the cheapest correct source for an aggregate over `[from, to)`.
pub fn plan_aggregate(series: &Series, from: i64, to: i64, op: AggOp) -> Plan {
    if op == AggOp::P95 {
        return Plan::RawScan;
    }
    if series.hours().covers_aligned(from, to) {
        Plan::HourRollup
    } else if series.minutes().covers_aligned(from, to) {
        Plan::MinuteRollup
    } else {
        Plan::RawScan
    }
}

fn rollup_window(series: &Series, from: i64, to: i64, plan: Plan) -> Aggregate {
    let level = match plan {
        Plan::HourRollup => series.hours(),
        Plan::MinuteRollup => series.minutes(),
        Plan::RawScan => unreachable!("rollup_window called with a raw plan"),
    };
    let mut agg = Aggregate::new();
    for b in level.buckets_in(from, to) {
        agg.merge(&b.agg);
    }
    // The hour level receives minute buckets only when they seal, so the
    // minute bucket still filling has not cascaded yet — complete the tail
    // from it. (The minute level itself is fed per raw sample, so it is
    // always complete.)
    if plan == Plan::HourRollup {
        if let Some(open) = series.minutes().open() {
            if open.start < to && open.start + series.minutes().resolution() > from {
                agg.merge(&open.agg);
            }
        }
    }
    agg
}

/// Project an [`Aggregate`] onto one operator. Empty-window contract:
/// every value-typed operator (`Mean`/`Min`/`Max`/`Sum`) answers NaN when
/// the window holds no samples — `Sum` included, so an empty window is
/// never mistaken for an all-zero one — while `Count` answers `0.0`,
/// which *is* the true count.
fn finish(op: AggOp, agg: &Aggregate) -> f64 {
    if agg.count == 0 && op != AggOp::Count {
        return f64::NAN;
    }
    match op {
        AggOp::Mean => agg.mean(),
        AggOp::Min => agg.min,
        AggOp::Max => agg.max,
        AggOp::Sum => agg.sum,
        AggOp::Count => agg.count as f64,
        AggOp::P95 => unreachable!("P95 is not an Aggregate-backed op"),
    }
}

/// Nearest-rank p-th percentile of a sample set (p in [0, 100]).
fn percentile(mut values: Vec<f64>, p: f64) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    values.sort_by(f64::total_cmp);
    let rank = ((p / 100.0) * values.len() as f64).ceil() as usize;
    values[rank.clamp(1, values.len()) - 1]
}

/// Full-moment aggregate over `[from, to)` with rollup-aware planning:
/// served from the coarsest aligned rollup level, falling back to a raw
/// scan. This is the primitive `aggregate` and `aligned_windows` build on,
/// and what `hpc-telemetry` windows map to.
pub fn window_aggregate(series: &Series, from: i64, to: i64) -> Aggregate {
    match plan_aggregate(series, from, to, AggOp::Mean) {
        Plan::RawScan => series.scan_aggregate(from, to),
        rollup => rollup_window(series, from, to, rollup),
    }
}

/// Aggregate one series over `[from, to)` with rollup-aware planning.
/// Returns the value and the plan that produced it.
pub fn aggregate(series: &Series, from: i64, to: i64, op: AggOp) -> (f64, Plan) {
    let plan = plan_aggregate(series, from, to, op);
    let value = if op == AggOp::P95 {
        let vals: Vec<f64> = series.scan(from, to).into_iter().map(|(_, v)| v).collect();
        percentile(vals, 95.0)
    } else {
        let agg = match plan {
            Plan::RawScan => series.scan_aggregate(from, to),
            rollup => rollup_window(series, from, to, rollup),
        };
        finish(op, &agg)
    };
    (value, plan)
}

/// Split `[from, to)` into consecutive `step`-second windows and aggregate
/// each (windows aligned to `from`).
///
/// # Panics
/// Panics if `step <= 0` or `from > to`.
pub fn aligned_windows(
    series: &Series,
    from: i64,
    to: i64,
    step: i64,
    op: AggOp,
) -> Vec<WindowValue> {
    assert!(step > 0, "window step must be positive");
    assert!(from <= to, "window range reversed");
    let mut out = Vec::new();
    let mut start = from;
    while start < to {
        let end = (start + step).min(to);
        let (value, count) = if op == AggOp::P95 {
            // One raw scan yields both the percentile and the count; the
            // former `window_aggregate` + `aggregate` pair scanned each
            // window twice.
            let vals: Vec<f64> = series.scan(start, end).into_iter().map(|(_, v)| v).collect();
            let count = vals.len() as u64;
            (percentile(vals, 95.0), count)
        } else {
            let agg = window_aggregate(series, start, end);
            (finish(op, &agg), agg.count)
        };
        out.push(WindowValue { start, value, count });
        start = end;
    }
    out
}

/// Mean of each segment between consecutive change points: boundaries
/// `[b₀, b₁, …, bₙ]` produce n segment means over `[bᵢ, bᵢ₊₁)`.
///
/// # Panics
/// Panics if fewer than two boundaries are given or they are not sorted.
pub fn segment_means(series: &Series, boundaries: &[i64]) -> Vec<f64> {
    assert!(boundaries.len() >= 2, "need at least two boundaries");
    boundaries
        .windows(2)
        .map(|w| {
            assert!(w[0] <= w[1], "boundaries must be sorted");
            aggregate(series, w[0], w[1], AggOp::Mean).0
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Query observability
// ---------------------------------------------------------------------------

/// Snapshot of a store's query counters (see [`TsdbStore::query_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Store-level query evaluations (one per series per call; a fan-out
    /// over N series counts N).
    pub queries: u64,
    /// Windows answered from 1-hour rollup buckets.
    pub plans_hour: u64,
    /// Windows answered from 1-minute rollup buckets.
    pub plans_minute: u64,
    /// Windows answered by raw chunk scans.
    pub plans_raw: u64,
    /// Sealed chunks Gorilla-decoded (cache misses + uncached decodes).
    pub chunks_decoded: u64,
    /// Sealed-chunk reads served from the decoded-chunk cache.
    pub chunk_cache_hits: u64,
    /// Decoded samples iterated by raw scans.
    pub samples_scanned: u64,
    /// Blocks answered without touching sample data during raw-plan
    /// aggregates: zone-map entries of compacted chunks (and whole
    /// zone-less chunks, counted as one block each) that were either
    /// outside the window or served from their pre-computed aggregate.
    pub blocks_pruned: u64,
    /// Source chunks rewritten by compaction passes ([`TsdbStore::compact`]).
    pub chunks_compacted: u64,
    /// Wall-clock time spent inside store-level query entry points, in
    /// nanoseconds (fan-out counts once per call, not per worker).
    pub wall_nanos: u64,
}

impl QueryStats {
    /// Fraction of sealed-chunk reads served from cache (0 when no chunk
    /// was ever read).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.chunks_decoded + self.chunk_cache_hits;
        if total == 0 {
            0.0
        } else {
            self.chunk_cache_hits as f64 / total as f64
        }
    }

    /// Wall-clock milliseconds spent in store-level queries.
    pub fn wall_millis(&self) -> f64 {
        self.wall_nanos as f64 / 1e6
    }

    /// Merge another snapshot into this one, saturating on overflow. This
    /// is the reduction a multi-worker server uses to fold per-query
    /// deltas into one per-tenant aggregate; saturating arithmetic keeps
    /// the fold safe no matter how many worker threads contribute.
    pub fn merge(&mut self, other: &QueryStats) {
        self.queries = self.queries.saturating_add(other.queries);
        self.plans_hour = self.plans_hour.saturating_add(other.plans_hour);
        self.plans_minute = self.plans_minute.saturating_add(other.plans_minute);
        self.plans_raw = self.plans_raw.saturating_add(other.plans_raw);
        self.chunks_decoded = self.chunks_decoded.saturating_add(other.chunks_decoded);
        self.chunk_cache_hits = self.chunk_cache_hits.saturating_add(other.chunk_cache_hits);
        self.samples_scanned = self.samples_scanned.saturating_add(other.samples_scanned);
        self.blocks_pruned = self.blocks_pruned.saturating_add(other.blocks_pruned);
        self.chunks_compacted = self.chunks_compacted.saturating_add(other.chunks_compacted);
        self.wall_nanos = self.wall_nanos.saturating_add(other.wall_nanos);
    }

    /// Field-wise difference `self − earlier`, saturating at zero.
    ///
    /// The store's counters are independent relaxed atomics, so two
    /// [`TsdbStore::query_stats`] snapshots taken around a query on one
    /// thread are **not** a consistent cut while other threads also query:
    /// a field can appear to run backwards between the two reads. A raw
    /// subtraction would wrap to ~`u64::MAX` and poison every aggregate it
    /// is merged into; saturation makes the attribution total-order safe —
    /// a racing delta may under-report, but it can never explode.
    pub fn delta_since(&self, earlier: &QueryStats) -> QueryStats {
        QueryStats {
            queries: self.queries.saturating_sub(earlier.queries),
            plans_hour: self.plans_hour.saturating_sub(earlier.plans_hour),
            plans_minute: self.plans_minute.saturating_sub(earlier.plans_minute),
            plans_raw: self.plans_raw.saturating_sub(earlier.plans_raw),
            chunks_decoded: self.chunks_decoded.saturating_sub(earlier.chunks_decoded),
            chunk_cache_hits: self.chunk_cache_hits.saturating_sub(earlier.chunk_cache_hits),
            samples_scanned: self.samples_scanned.saturating_sub(earlier.samples_scanned),
            blocks_pruned: self.blocks_pruned.saturating_sub(earlier.blocks_pruned),
            chunks_compacted: self.chunks_compacted.saturating_sub(earlier.chunks_compacted),
            wall_nanos: self.wall_nanos.saturating_sub(earlier.wall_nanos),
        }
    }
}

/// Lock-free counters behind [`QueryStats`], owned by the store and bumped
/// by every store-level query path.
#[derive(Debug, Default)]
pub(crate) struct QueryCounters {
    queries: AtomicU64,
    plans_hour: AtomicU64,
    plans_minute: AtomicU64,
    plans_raw: AtomicU64,
    chunks_decoded: AtomicU64,
    chunk_cache_hits: AtomicU64,
    samples_scanned: AtomicU64,
    blocks_pruned: AtomicU64,
    chunks_compacted: AtomicU64,
    wall_nanos: AtomicU64,
}

impl QueryCounters {
    fn record_query(&self) {
        self.queries.fetch_add(1, Ordering::Relaxed);
    }

    fn record_plan(&self, plan: Plan) {
        let c = match plan {
            Plan::HourRollup => &self.plans_hour,
            Plan::MinuteRollup => &self.plans_minute,
            Plan::RawScan => &self.plans_raw,
        };
        c.fetch_add(1, Ordering::Relaxed);
    }

    fn record_chunk(&self, cache_hit: bool) {
        let c = if cache_hit { &self.chunk_cache_hits } else { &self.chunks_decoded };
        c.fetch_add(1, Ordering::Relaxed);
    }

    fn add_samples(&self, n: u64) {
        self.samples_scanned.fetch_add(n, Ordering::Relaxed);
    }

    fn add_blocks_pruned(&self, n: u64) {
        self.blocks_pruned.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn add_chunks_compacted(&self, n: u64) {
        self.chunks_compacted.fetch_add(n, Ordering::Relaxed);
    }

    fn add_wall(&self, since: Instant) {
        self.wall_nanos.fetch_add(since.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> QueryStats {
        QueryStats {
            queries: self.queries.load(Ordering::Relaxed),
            plans_hour: self.plans_hour.load(Ordering::Relaxed),
            plans_minute: self.plans_minute.load(Ordering::Relaxed),
            plans_raw: self.plans_raw.load(Ordering::Relaxed),
            chunks_decoded: self.chunks_decoded.load(Ordering::Relaxed),
            chunk_cache_hits: self.chunk_cache_hits.load(Ordering::Relaxed),
            samples_scanned: self.samples_scanned.load(Ordering::Relaxed),
            blocks_pruned: self.blocks_pruned.load(Ordering::Relaxed),
            chunks_compacted: self.chunks_compacted.load(Ordering::Relaxed),
            wall_nanos: self.wall_nanos.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn reset(&self) {
        self.queries.store(0, Ordering::Relaxed);
        self.plans_hour.store(0, Ordering::Relaxed);
        self.plans_minute.store(0, Ordering::Relaxed);
        self.plans_raw.store(0, Ordering::Relaxed);
        self.chunks_decoded.store(0, Ordering::Relaxed);
        self.chunk_cache_hits.store(0, Ordering::Relaxed);
        self.samples_scanned.store(0, Ordering::Relaxed);
        self.blocks_pruned.store(0, Ordering::Relaxed);
        self.chunks_compacted.store(0, Ordering::Relaxed);
        self.wall_nanos.store(0, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Store-level cached queries (snapshot under lock, decode outside)
// ---------------------------------------------------------------------------

/// Raw-scan inputs captured under the shard read lock: cheap clones of the
/// overlapping sealed chunks (`Bytes` refcount bumps) plus the decoded
/// active-chunk samples. Everything here is immutable once captured, so
/// decode can proceed without the lock.
struct RawSnapshot {
    chunks: Vec<Chunk>,
    active: Vec<(i64, f64)>,
}

fn raw_snapshot(series: &Series, from: i64, to: i64) -> RawSnapshot {
    let chunks = series.chunks().iter().filter(|c| c.overlaps(from, to)).cloned().collect();
    RawSnapshot { chunks, active: series.active_samples_in(from, to) }
}

/// Full-moment aggregate of a snapshot restricted to `[from, to)`. The
/// zone-aware fold prunes blocks whose aggregate answers for them; the
/// remainder decodes to columnar blocks through the store's chunk cache
/// and aggregates as tight loops over binary-searched value slices.
fn snapshot_aggregate(
    store: &TsdbStore,
    snap: &RawSnapshot,
    from: i64,
    to: i64,
) -> Aggregate {
    let counters = store.query_counters();
    let cache = store.chunk_cache();
    let mut agg = Aggregate::new();
    let mut fetch = |chunk: &Chunk| {
        let (block, hit) = cache.get_or_decode(chunk);
        counters.record_chunk(hit);
        counters.add_samples(block.len() as u64);
        block
    };
    let mut pruned = 0u64;
    for chunk in &snap.chunks {
        if !chunk.overlaps(from, to) {
            continue;
        }
        pruned += fold_chunk_aggregate(chunk, from, to, &mut fetch, &mut agg);
    }
    counters.add_blocks_pruned(pruned);
    for &(t, v) in &snap.active {
        if t >= from && t < to {
            agg.push(v);
            counters.add_samples(1);
        }
    }
    agg
}

/// Raw values of a snapshot restricted to `[from, to)`, in time order,
/// going through the decoded-chunk cache (for percentiles — these need
/// the full distribution, so zone maps cannot prune anything here).
fn snapshot_values(store: &TsdbStore, snap: &RawSnapshot, from: i64, to: i64) -> Vec<f64> {
    let counters = store.query_counters();
    let cache = store.chunk_cache();
    let mut out = Vec::new();
    for chunk in &snap.chunks {
        if !chunk.overlaps(from, to) {
            continue;
        }
        let (block, hit) = cache.get_or_decode(chunk);
        counters.record_chunk(hit);
        counters.add_samples(block.len() as u64);
        out.extend_from_slice(&block.values()[block.range(from, to)]);
    }
    for &(t, v) in &snap.active {
        if t >= from && t < to {
            out.push(v);
            counters.add_samples(1);
        }
    }
    out
}

/// What a store-level query captured under the shard read lock: either a
/// finished rollup composition, or the raw materials for a lock-free scan.
enum Prep {
    Rollup(Aggregate, Plan),
    Raw(RawSnapshot),
}

fn prepare_aggregate(series: &Series, from: i64, to: i64, op: AggOp) -> Prep {
    match plan_aggregate(series, from, to, op) {
        Plan::RawScan => Prep::Raw(raw_snapshot(series, from, to)),
        plan => Prep::Rollup(rollup_window(series, from, to, plan), plan),
    }
}

fn window_aggregate_inner(
    store: &TsdbStore,
    id: SeriesId,
    from: i64,
    to: i64,
) -> Option<(Aggregate, Plan)> {
    let counters = store.query_counters();
    counters.record_query();
    let prep = store.with_series_read(id, |s| prepare_aggregate(s, from, to, AggOp::Mean))?;
    Some(match prep {
        Prep::Rollup(agg, plan) => {
            counters.record_plan(plan);
            (agg, plan)
        }
        Prep::Raw(snap) => {
            counters.record_plan(Plan::RawScan);
            (snapshot_aggregate(store, &snap, from, to), Plan::RawScan)
        }
    })
}

fn aggregate_inner(
    store: &TsdbStore,
    id: SeriesId,
    from: i64,
    to: i64,
    op: AggOp,
) -> Option<(f64, Plan)> {
    if op == AggOp::P95 {
        let counters = store.query_counters();
        counters.record_query();
        let snap = store.with_series_read(id, |s| raw_snapshot(s, from, to))?;
        counters.record_plan(Plan::RawScan);
        let vals = snapshot_values(store, &snap, from, to);
        return Some((percentile(vals, 95.0), Plan::RawScan));
    }
    let (agg, plan) = window_aggregate_inner(store, id, from, to)?;
    Some((finish(op, &agg), plan))
}

fn windows_inner(
    store: &TsdbStore,
    id: SeriesId,
    from: i64,
    to: i64,
    step: i64,
    op: AggOp,
) -> Option<Vec<WindowValue>> {
    assert!(step > 0, "window step must be positive");
    assert!(from <= to, "window range reversed");
    let counters = store.query_counters();
    counters.record_query();
    // Under the lock: plan every window, finish the rollup-served ones, and
    // take one snapshot covering the whole range if any window needs raw.
    struct WindowPrep {
        start: i64,
        end: i64,
        rollup: Option<(Aggregate, Plan)>,
    }
    let (windows, snap) = store.with_series_read(id, |s| {
        let mut windows = Vec::new();
        let mut need_raw = false;
        let mut start = from;
        while start < to {
            let end = (start + step).min(to);
            let rollup = match plan_aggregate(s, start, end, op) {
                Plan::RawScan => {
                    need_raw = true;
                    None
                }
                plan => Some((rollup_window(s, start, end, plan), plan)),
            };
            windows.push(WindowPrep { start, end, rollup });
            start = end;
        }
        let snap = need_raw.then(|| raw_snapshot(s, from, to));
        (windows, snap)
    })?;
    let mut out = Vec::with_capacity(windows.len());
    for w in windows {
        let (value, count) = match w.rollup {
            Some((agg, plan)) => {
                counters.record_plan(plan);
                (finish(op, &agg), agg.count)
            }
            None => {
                counters.record_plan(Plan::RawScan);
                let snap = snap.as_ref().expect("raw window implies snapshot");
                if op == AggOp::P95 {
                    let vals = snapshot_values(store, snap, w.start, w.end);
                    let count = vals.len() as u64;
                    (percentile(vals, 95.0), count)
                } else {
                    let agg = snapshot_aggregate(store, snap, w.start, w.end);
                    (finish(op, &agg), agg.count)
                }
            }
        };
        out.push(WindowValue { start: w.start, value, count });
    }
    Some(out)
}

/// Store-level aggregate of one series by id, with rollup-aware planning,
/// the decoded-chunk cache and query instrumentation. The shard read lock
/// is held only while planning and snapshotting, never across a decode.
/// Returns `None` for an unknown series.
pub fn store_aggregate(
    store: &TsdbStore,
    id: SeriesId,
    from: i64,
    to: i64,
    op: AggOp,
) -> Option<(f64, Plan)> {
    let t = Instant::now();
    let out = aggregate_inner(store, id, from, to, op);
    store.query_counters().add_wall(t);
    out
}

/// Store-level [`aligned_windows`]: split `[from, to)` into `step`-second
/// windows and aggregate each, planning per window and serving raw windows
/// from one shared snapshot through the chunk cache.
///
/// # Panics
/// Panics if `step <= 0` or `from > to`.
pub fn store_windows(
    store: &TsdbStore,
    id: SeriesId,
    from: i64,
    to: i64,
    step: i64,
    op: AggOp,
) -> Option<Vec<WindowValue>> {
    let t = Instant::now();
    let out = windows_inner(store, id, from, to, step, op);
    store.query_counters().add_wall(t);
    out
}

/// Store-level [`segment_means`]: mean of each `[bᵢ, bᵢ₊₁)` segment.
///
/// # Panics
/// Panics if fewer than two boundaries are given or they are not sorted.
pub fn store_segment_means(
    store: &TsdbStore,
    id: SeriesId,
    boundaries: &[i64],
) -> Option<Vec<f64>> {
    assert!(boundaries.len() >= 2, "need at least two boundaries");
    let t = Instant::now();
    let mut out = Vec::with_capacity(boundaries.len() - 1);
    for w in boundaries.windows(2) {
        assert!(w[0] <= w[1], "boundaries must be sorted");
        match aggregate_inner(store, id, w[0], w[1], AggOp::Mean) {
            Some((mean, _)) => out.push(mean),
            None => {
                store.query_counters().add_wall(t);
                return None;
            }
        }
    }
    store.query_counters().add_wall(t);
    Some(out)
}

// ---------------------------------------------------------------------------
// Multi-series fan-out
// ---------------------------------------------------------------------------

/// Number of worker threads the fan-out entry points will actually use
/// for a fan-out over `n` series: the rayon pool size clamped to the
/// fan-out width. Benchmarks comparing sequential vs fan-out should
/// record *this*, not the raw pool size — a 4-series fan-out on a
/// 64-thread pool runs 4 workers, and any fan-out on a single-core host
/// runs 1 (sequentially), which makes a speedup comparison meaningless.
pub fn fanout_workers(n: usize) -> usize {
    if n == 0 {
        0
    } else {
        rayon::current_num_threads().clamp(1, n)
    }
}

/// Evaluate `f` for every id, in parallel across rayon worker threads, and
/// return results in input order. Ids are distributed in contiguous blocks
/// so adjacent series (which usually live on the same store shard and share
/// cache locality) stay on one worker.
fn fanout_map<R, F>(ids: &[SeriesId], f: F) -> Vec<Option<R>>
where
    R: Send,
    F: Fn(SeriesId) -> Option<R> + Sync,
{
    let n = ids.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = fanout_workers(n);
    let mut out: Vec<Option<R>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    if workers == 1 {
        for (slot, &id) in out.iter_mut().zip(ids) {
            *slot = f(id);
        }
        return out;
    }
    let block = n.div_ceil(workers);
    let f = &f;
    rayon::scope(|s| {
        for (id_block, out_block) in ids.chunks(block).zip(out.chunks_mut(block)) {
            s.spawn(move |_| {
                for (slot, &id) in out_block.iter_mut().zip(id_block) {
                    *slot = f(id);
                }
            });
        }
    });
    out
}

/// Aggregate many series over the same `[from, to)` window concurrently.
/// Results are in input order; `None` marks an unknown id. Numerically
/// identical to calling [`store_aggregate`] per id in a loop.
pub fn fanout_aggregate(
    store: &TsdbStore,
    ids: &[SeriesId],
    from: i64,
    to: i64,
    op: AggOp,
) -> Vec<Option<(f64, Plan)>> {
    let t = Instant::now();
    let out = fanout_map(ids, |id| aggregate_inner(store, id, from, to, op));
    store.query_counters().add_wall(t);
    out
}

/// Windowed aggregation of many series concurrently (the fan-out form of
/// [`store_windows`]). Results are in input order; `None` marks an unknown
/// id.
///
/// # Panics
/// Panics if `step <= 0` or `from > to`.
pub fn fanout_windows(
    store: &TsdbStore,
    ids: &[SeriesId],
    from: i64,
    to: i64,
    step: i64,
    op: AggOp,
) -> Vec<Option<Vec<WindowValue>>> {
    assert!(step > 0, "window step must be positive");
    assert!(from <= to, "window range reversed");
    let t = Instant::now();
    let out = fanout_map(ids, |id| windows_inner(store, id, from, to, step, op));
    store.query_counters().add_wall(t);
    out
}

/// Group aggregate across many series over one window — the "all cabinets
/// → facility" reduction.
#[derive(Debug, Clone)]
pub struct GroupValue {
    /// Series that resolved and contributed.
    pub series: usize,
    /// Ids that did not resolve to a registered series.
    pub missing: usize,
    /// Sum of the per-series window means, skipping empty series. For
    /// cabinet power this is the facility draw in the window.
    pub sum_of_means: f64,
    /// Full-moment aggregate over every sample of every resolved series.
    pub total: Aggregate,
}

impl GroupValue {
    /// Mean of the per-series means (`sum_of_means / series`), NaN when no
    /// series resolved.
    pub fn mean_of_means(&self) -> f64 {
        if self.series == 0 {
            f64::NAN
        } else {
            self.sum_of_means / self.series as f64
        }
    }
}

/// Reduce many series over one `[from, to)` window into a [`GroupValue`]:
/// per-series aggregation runs concurrently, the reduction is sequential
/// and deterministic (input order), so repeated calls are bit-identical.
pub fn fanout_group(store: &TsdbStore, ids: &[SeriesId], from: i64, to: i64) -> GroupValue {
    let t = Instant::now();
    let per_series = fanout_map(ids, |id| window_aggregate_inner(store, id, from, to));
    let mut group =
        GroupValue { series: 0, missing: 0, sum_of_means: 0.0, total: Aggregate::new() };
    for entry in per_series {
        match entry {
            None => group.missing += 1,
            Some((agg, _)) => {
                group.series += 1;
                if agg.count > 0 {
                    group.sum_of_means += agg.mean();
                }
                group.total.merge(&agg);
            }
        }
    }
    store.query_counters().add_wall(t);
    group
}

// ---------------------------------------------------------------------------
// Scan cost estimation
// ---------------------------------------------------------------------------

/// Estimate how many stored samples answering `op` over `[from, to)` will
/// touch, **without decoding anything** — the admission-control cost model
/// a serving tier checks against per-query budgets before running the
/// query.
///
/// The estimate mirrors the planner: a rollup-served window costs its
/// bucket count (when `allow_rollup`; pass `false` for paths that always
/// raw-scan, like gap/coverage queries); `P95` pays full decode of every
/// overlapping chunk; any other raw-planned aggregate pays only for the
/// chunks the zone-aware fold will actually decode — fully-covered
/// chunks and fully-covered/outside zones are free, so a zone-map-pruned
/// query is no longer costed as a full raw scan. Estimates use chunk
/// headers and zone bounds only; they are upper bounds on
/// `samples_scanned`, not exact predictions.
pub fn estimate_scan(series: &Series, from: i64, to: i64, op: AggOp, allow_rollup: bool) -> u64 {
    if from >= to || series.is_empty() {
        return 0;
    }
    let plan =
        if allow_rollup { plan_aggregate(series, from, to, op) } else { Plan::RawScan };
    match plan {
        Plan::HourRollup => {
            let buckets = series.hours().buckets_in(from, to).count() as u64;
            // The open-minute patch-up adds at most one more bucket.
            buckets.saturating_add(1)
        }
        Plan::MinuteRollup => series.minutes().buckets_in(from, to).count() as u64,
        Plan::RawScan => {
            let mut cost = 0u64;
            for chunk in series.chunks() {
                if !chunk.overlaps(from, to) {
                    continue;
                }
                let decodes = if op == AggOp::P95 {
                    // Percentiles need every in-window value.
                    true
                } else {
                    match chunk.zones() {
                        None => !chunk.contained_in(from, to),
                        Some(zones) => zones
                            .iter()
                            .any(|z| z.overlaps(from, to) && !z.contained_in(from, to)),
                    }
                };
                if decodes {
                    cost = cost.saturating_add(u64::from(chunk.len()));
                }
            }
            if let Some((first, last)) = series.active_bounds() {
                if first < to && last >= from {
                    cost = cost.saturating_add(u64::from(series.active_len()));
                }
            }
            cost
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::SeriesMeta;

    fn series_with(n: u32, f: impl Fn(u32) -> f64) -> Series {
        let mut s = Series::new(SeriesMeta {
            name: "q".into(),
            unit: "kW".into(),
            interval_hint: 60,
        });
        for i in 0..n {
            s.append(i64::from(i) * 60, f(i));
        }
        s
    }

    #[test]
    fn planner_picks_coarsest_aligned_level() {
        let s = series_with(3 * 24 * 60, |i| f64::from(i % 10)); // 3 days minutely
        assert_eq!(plan_aggregate(&s, 0, 86_400, AggOp::Mean), Plan::HourRollup);
        assert_eq!(plan_aggregate(&s, 3600, 7200, AggOp::Sum), Plan::HourRollup);
        assert_eq!(plan_aggregate(&s, 60, 3660, AggOp::Mean), Plan::MinuteRollup);
        assert_eq!(plan_aggregate(&s, 30, 3630, AggOp::Mean), Plan::RawScan);
        // Percentiles always need raw values.
        assert_eq!(plan_aggregate(&s, 0, 86_400, AggOp::P95), Plan::RawScan);
    }

    #[test]
    fn all_plans_agree_on_the_same_window() {
        let s = series_with(2 * 24 * 60, |i| (f64::from(i) * 0.11).sin() * 300.0 + 2800.0);
        let from = 6 * 3600;
        let to = 18 * 3600;
        let (hourly, plan) = aggregate(&s, from, to, AggOp::Mean);
        assert_eq!(plan, Plan::HourRollup);
        let raw = s.scan_aggregate(from, to);
        assert!((hourly - raw.mean()).abs() < 1e-9, "rollup {hourly} vs raw {}", raw.mean());
        let mut minutes = Aggregate::new();
        for b in s.minutes().buckets_in(from, to) {
            minutes.merge(&b.agg);
        }
        assert!((minutes.mean() - raw.mean()).abs() < 1e-9);
        // Min/max/sum/count too.
        assert_eq!(aggregate(&s, from, to, AggOp::Min).0, raw.min);
        assert_eq!(aggregate(&s, from, to, AggOp::Max).0, raw.max);
        assert!((aggregate(&s, from, to, AggOp::Sum).0 - raw.sum).abs() < 1e-6);
        assert_eq!(aggregate(&s, from, to, AggOp::Count).0, raw.count as f64);
    }

    #[test]
    fn p95_nearest_rank() {
        let s = series_with(100, f64::from); // 0..99
        let (p, plan) = aggregate(&s, 0, 100 * 60, AggOp::P95);
        assert_eq!(plan, Plan::RawScan);
        assert_eq!(p, 94.0); // ceil(0.95 * 100) = 95th of 1-indexed sorted
        let exact = percentile((0..5).map(f64::from).collect(), 95.0);
        assert_eq!(exact, 4.0);
        assert!(percentile(Vec::new(), 95.0).is_nan());
    }

    #[test]
    fn aligned_windows_cover_range() {
        let s = series_with(24 * 60, |i| f64::from(i / 60)); // value = hour index
        let windows = aligned_windows(&s, 0, 86_400, 3600, AggOp::Mean);
        assert_eq!(windows.len(), 24);
        for (h, w) in windows.iter().enumerate() {
            assert_eq!(w.start, h as i64 * 3600);
            assert_eq!(w.count, 60);
            assert!((w.value - h as f64).abs() < 1e-12, "hour {h} mean {}", w.value);
        }
    }

    #[test]
    fn segment_means_between_change_points() {
        // Step function: 3220 then 3010 then 2530 (the paper's campaign
        // shape), 1000 minutes each.
        let s = series_with(3000, |i| match i / 1000 {
            0 => 3220.0,
            1 => 3010.0,
            _ => 2530.0,
        });
        let b = [0i64, 1000 * 60, 2000 * 60, 3000 * 60];
        let means = segment_means(&s, &b);
        assert_eq!(means.len(), 3);
        assert!((means[0] - 3220.0).abs() < 1e-9);
        assert!((means[1] - 3010.0).abs() < 1e-9);
        assert!((means[2] - 2530.0).abs() < 1e-9);
    }

    #[test]
    fn store_level_query() {
        let store = TsdbStore::default();
        let id = store.register(SeriesMeta {
            name: "fac".into(),
            unit: "kW".into(),
            interval_hint: 60,
        });
        for i in 0..120 {
            store.append(id, i64::from(i) * 60, 100.0);
        }
        let (mean, _) = store_aggregate(&store, id, 0, 7200, AggOp::Mean).unwrap();
        assert!((mean - 100.0).abs() < 1e-12);
        assert!(store_aggregate(&store, SeriesId(999), 0, 1, AggOp::Mean).is_none());
    }

    fn populated_store(n_series: u32, n_samples: u32) -> (TsdbStore, Vec<SeriesId>) {
        let store = TsdbStore::default();
        let ids: Vec<SeriesId> = (0..n_series)
            .map(|s| {
                store.register(SeriesMeta {
                    name: format!("cab.{s}"),
                    unit: "kW".into(),
                    interval_hint: 60,
                })
            })
            .collect();
        for (s, &id) in ids.iter().enumerate() {
            for i in 0..n_samples {
                let v = (f64::from(i) * 0.13 + s as f64).sin() * 40.0 + 70.0 + s as f64;
                store.append(id, i64::from(i) * 60, v);
            }
        }
        (store, ids)
    }

    #[test]
    fn fanout_matches_sequential_bit_for_bit() {
        let (store, ids) = populated_store(9, CHUNK_TEST_LEN);
        let from = 30; // deliberately unaligned → raw plans
        let to = i64::from(CHUNK_TEST_LEN) * 60 - 30;
        for op in [AggOp::Mean, AggOp::Sum, AggOp::Min, AggOp::Max, AggOp::Count, AggOp::P95] {
            let seq: Vec<_> =
                ids.iter().map(|&id| store_aggregate(&store, id, from, to, op)).collect();
            let fan = fanout_aggregate(&store, &ids, from, to, op);
            assert_eq!(seq.len(), fan.len());
            for (s, f) in seq.iter().zip(&fan) {
                let (sv, sp) = s.unwrap();
                let (fv, fp) = f.unwrap();
                assert_eq!(sp, fp);
                assert!(
                    sv == fv || (sv.is_nan() && fv.is_nan()),
                    "fan-out {fv} != sequential {sv} for {op:?}"
                );
            }
        }
        // Windowed form, with a step that straddles chunk boundaries.
        let seq: Vec<_> =
            ids.iter().map(|&id| store_windows(&store, id, from, to, 7 * 60, AggOp::P95)).collect();
        let fan = fanout_windows(&store, &ids, from, to, 7 * 60, AggOp::P95);
        for (s, f) in seq.iter().zip(&fan) {
            let (s, f) = (s.as_ref().unwrap(), f.as_ref().unwrap());
            assert_eq!(s.len(), f.len());
            for (a, b) in s.iter().zip(f) {
                assert_eq!(a.start, b.start);
                assert_eq!(a.count, b.count);
                assert!(a.value == b.value || (a.value.is_nan() && b.value.is_nan()));
            }
        }
    }

    const CHUNK_TEST_LEN: u32 = crate::series::CHUNK_SAMPLES * 2 + 176;

    #[test]
    fn fanout_group_sums_cabinet_means() {
        let (store, mut ids) = populated_store(6, 600);
        ids.push(SeriesId(4242)); // unknown id is reported, not fatal
        let group = fanout_group(&store, &ids, 0, 600 * 60);
        assert_eq!(group.series, 6);
        assert_eq!(group.missing, 1);
        let mut expect = 0.0;
        for &id in &ids[..6] {
            expect += store_aggregate(&store, id, 0, 600 * 60, AggOp::Mean).unwrap().0;
        }
        assert!((group.sum_of_means - expect).abs() < 1e-9);
        assert_eq!(group.total.count, 6 * 600);
        assert!((group.mean_of_means() - expect / 6.0).abs() < 1e-9);
    }

    #[test]
    fn query_stats_track_plans_and_cache() {
        let (store, ids) = populated_store(3, CHUNK_TEST_LEN);
        store.reset_query_stats();
        // Hour-aligned mean → rollup plan, no decode.
        let hours = i64::from(CHUNK_TEST_LEN) * 60 / 3600;
        store_aggregate(&store, ids[0], 0, hours * 3600, AggOp::Mean).unwrap();
        let s = store.query_stats();
        assert_eq!(s.queries, 1);
        assert_eq!(s.plans_hour, 1);
        assert_eq!(s.chunks_decoded, 0);
        // P95 over everything → raw scan, all sealed chunks decoded cold...
        store_aggregate(&store, ids[0], i64::MIN, i64::MAX, AggOp::P95).unwrap();
        let cold = store.query_stats();
        assert_eq!(cold.plans_raw, 1);
        assert_eq!(cold.chunks_decoded, 2);
        assert_eq!(cold.chunk_cache_hits, 0);
        // ...and warm on repeat.
        store_aggregate(&store, ids[0], i64::MIN, i64::MAX, AggOp::P95).unwrap();
        let warm = store.query_stats();
        assert_eq!(warm.chunks_decoded, 2, "no new decodes when warm");
        assert_eq!(warm.chunk_cache_hits, 2);
        assert!(warm.cache_hit_rate() > 0.49);
        assert!(warm.samples_scanned > 0);
        store.reset_query_stats();
        assert_eq!(store.query_stats(), QueryStats::default());
    }

    #[test]
    fn p95_windows_scan_each_chunk_once_per_window() {
        // Regression for the P95 double-scan: with the cache disabled every
        // chunk read is a decode, so the decode count must equal the number
        // of (window, overlapping-chunk) pairs — not twice that.
        let store = TsdbStore::new(crate::store::StoreConfig {
            chunk_cache_capacity: 0,
            ..crate::store::StoreConfig::default()
        });
        let id = store.register(SeriesMeta {
            name: "p95".into(),
            unit: "kW".into(),
            interval_hint: 60,
        });
        for i in 0..CHUNK_TEST_LEN {
            store.append(id, i64::from(i) * 60, f64::from(i % 37));
        }
        let to = i64::from(CHUNK_TEST_LEN) * 60;
        let step = 7 * 60;
        let expected: u64 = store
            .with_series(id, |s| {
                let mut pairs = 0u64;
                let mut start = 0i64;
                while start < to {
                    let end = (start + step).min(to);
                    pairs +=
                        s.chunks().iter().filter(|c| c.overlaps(start, end)).count() as u64;
                    start = end;
                }
                pairs
            })
            .unwrap();
        store.reset_query_stats();
        let windows = store_windows(&store, id, 0, to, step, AggOp::P95).unwrap();
        assert_eq!(windows.len(), ((to + step - 1) / step) as usize);
        let stats = store.query_stats();
        assert_eq!(stats.chunks_decoded, expected, "each window scans each chunk exactly once");
        assert_eq!(stats.chunk_cache_hits, 0);
    }

    #[test]
    fn stats_delta_saturates_and_merges() {
        let a = QueryStats { queries: 10, samples_scanned: 500, wall_nanos: 900, ..QueryStats::default() };
        let b = QueryStats { queries: 7, samples_scanned: 800, wall_nanos: 400, ..QueryStats::default() };
        // An inconsistent cut: `b` is "later" on some fields, "earlier" on
        // others. The delta must clamp the backwards fields to 0 instead of
        // wrapping to ~u64::MAX.
        let d = b.delta_since(&a);
        assert_eq!(d.queries, 0);
        assert_eq!(d.samples_scanned, 300);
        assert_eq!(d.wall_nanos, 0);
        let mut agg = a;
        agg.merge(&d);
        assert_eq!(agg.queries, 10);
        assert_eq!(agg.samples_scanned, 800);
        // Merging near-overflow values saturates instead of wrapping.
        let mut big = QueryStats { queries: u64::MAX - 1, ..QueryStats::default() };
        big.merge(&QueryStats { queries: 5, ..QueryStats::default() });
        assert_eq!(big.queries, u64::MAX);
    }

    #[test]
    fn empty_window_contract_for_every_op() {
        // Regression: Sum answered 0.0 on an empty window, making "no
        // samples" indistinguishable from "all zeros". The contract is
        // now NaN for every value-typed operator and 0 for Count — at
        // series level, store level, and in windowed form.
        let s = series_with(100, |_| 0.0); // all-zero values, ts 0..6000
        let empty = (50_000i64, 60_000i64); // far past the data
        for op in [AggOp::Mean, AggOp::Min, AggOp::Max, AggOp::Sum, AggOp::P95] {
            let (v, _) = aggregate(&s, empty.0, empty.1, op);
            assert!(v.is_nan(), "{op:?} on empty window answered {v}");
        }
        let (c, _) = aggregate(&s, empty.0, empty.1, AggOp::Count);
        assert_eq!(c, 0.0, "Count on empty window is genuinely zero");
        // An all-zero window must stay distinguishable: Sum answers 0.0
        // with a non-zero count.
        let (zero_sum, _) = aggregate(&s, 0, 6000, AggOp::Sum);
        assert_eq!(zero_sum, 0.0);

        let store = TsdbStore::default();
        let id = store.register(SeriesMeta {
            name: "e".into(),
            unit: "kW".into(),
            interval_hint: 60,
        });
        for i in 0..100 {
            store.append(id, i64::from(i) * 60, 0.0);
        }
        for op in [AggOp::Mean, AggOp::Min, AggOp::Max, AggOp::Sum, AggOp::P95] {
            let (v, _) = store_aggregate(&store, id, empty.0, empty.1, op).unwrap();
            assert!(v.is_nan(), "store-level {op:?} on empty window answered {v}");
        }
        let (c, _) = store_aggregate(&store, id, empty.0, empty.1, AggOp::Count).unwrap();
        assert_eq!(c, 0.0);
        // Windowed form: the windows past the data are empty.
        for op in [AggOp::Mean, AggOp::Min, AggOp::Max, AggOp::Sum, AggOp::P95, AggOp::Count] {
            let ws = store_windows(&store, id, 0, 12_000, 6000, op).unwrap();
            assert_eq!(ws.len(), 2);
            assert_eq!(ws[1].count, 0);
            if op == AggOp::Count {
                assert_eq!(ws[1].value, 0.0);
            } else {
                assert!(ws[1].value.is_nan(), "windowed {op:?} on empty window");
            }
        }
    }

    #[test]
    fn compacted_store_queries_prune_blocks_and_skip_decode() {
        let (store, ids) = populated_store(2, CHUNK_TEST_LEN);
        let mirror_ids = ids.clone();
        let stats = store.compact();
        assert_eq!(stats.series, 2);
        assert_eq!(stats.chunks_compacted, 4, "two 2-chunk runs rewritten");
        assert_eq!(stats.chunks_before, 4);
        assert_eq!(stats.chunks_after, 2);
        assert_eq!(store.query_stats().chunks_compacted, 4);
        store.reset_query_stats();
        // A window aligned to the zoned chunk's zone boundaries but NOT
        // rollup-aligned: force the raw plan by an unaligned end inside
        // the active tail. Zones cover the sealed samples → only the
        // active tail is touched, zero chunk decodes.
        let zone_end = store
            .with_series(mirror_ids[0], |s| {
                let z = s.chunks()[0].zones().unwrap();
                z[z.len() - 1].last_ts + 1
            })
            .unwrap();
        let (v, plan) =
            store_aggregate(&store, ids[0], 0, zone_end, AggOp::Sum).unwrap();
        assert!(v.is_finite());
        assert_eq!(plan, Plan::RawScan, "zone-boundary window is rollup-unaligned");
        let s = store.query_stats();
        assert_eq!(s.chunks_decoded, 0, "zone-covered window must not decode");
        assert!(s.blocks_pruned >= 2, "both zones served from aggregates");
        // A ragged window forces a partial zone: exactly one decode, and
        // the untouched zone is still pruned.
        store.reset_query_stats();
        store_aggregate(&store, ids[0], 30, zone_end, AggOp::Sum).unwrap();
        let s = store.query_stats();
        assert_eq!(s.plans_raw, 1);
        assert_eq!(s.chunks_decoded, 1, "one compacted chunk decodes once");
        assert!(s.blocks_pruned >= 1, "the fully-covered zone is still pruned");
    }

    #[test]
    fn estimate_scan_mirrors_the_planner() {
        let (store, ids) = populated_store(1, CHUNK_TEST_LEN);
        let id = ids[0];
        let span = i64::from(CHUNK_TEST_LEN) * 60;
        store
            .with_series(id, |s| {
                // Hour-aligned → bucket-count estimate, tiny.
                let hours_est = estimate_scan(s, 0, 3600 * 4, AggOp::Mean, true);
                assert!(hours_est <= 5, "rollup estimate {hours_est}");
                // Same window with rollups forbidden → chunk-scale cost.
                let raw_est = estimate_scan(s, 0, 3600 * 4, AggOp::Mean, false);
                assert!(raw_est >= u64::from(crate::series::CHUNK_SAMPLES) / 2);
                // P95 pays full decode of everything it overlaps.
                let p95_est = estimate_scan(s, 0, span, AggOp::P95, true);
                assert_eq!(p95_est, u64::from(CHUNK_TEST_LEN));
                // Empty and reversed windows cost nothing.
                assert_eq!(estimate_scan(s, 10, 10, AggOp::Mean, true), 0);
                assert_eq!(estimate_scan(s, span * 2, span * 3, AggOp::P95, true), 0);
            })
            .unwrap();
        // After compaction, a zone-covered aggregate estimates (near) zero
        // while P95 still pays in full.
        store.compact();
        store
            .with_series(id, |s| {
                let z = s.chunks()[0].zones().unwrap();
                let zone_end = z[z.len() - 1].last_ts + 1;
                let agg_est = estimate_scan(s, 0, zone_end, AggOp::Sum, false);
                assert_eq!(agg_est, 0, "zone-covered sealed samples cost nothing");
                let p95_est = estimate_scan(s, 0, zone_end, AggOp::P95, false);
                assert!(p95_est >= u64::from(crate::series::CHUNK_SAMPLES) * 2);
                // A ragged start forces one compacted-chunk decode.
                let ragged = estimate_scan(s, 30, zone_end, AggOp::Sum, false);
                assert_eq!(ragged, u64::from(s.chunks()[0].len()));
            })
            .unwrap();
    }

    #[test]
    fn store_segment_means_match_series_level() {
        let (store, ids) = populated_store(1, 3000);
        let b = [0i64, 1000 * 60, 2000 * 60, 3000 * 60];
        let cached = store_segment_means(&store, ids[0], &b).unwrap();
        let direct = store.with_series(ids[0], |s| segment_means(s, &b)).unwrap();
        assert_eq!(cached.len(), direct.len());
        for (c, d) in cached.iter().zip(&direct) {
            assert!((c - d).abs() <= 1e-9 * d.abs().max(1.0));
        }
        assert!(store_segment_means(&store, SeriesId(777), &b).is_none());
    }
}
