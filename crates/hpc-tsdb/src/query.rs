//! Query engine: time-range scans, aligned window aggregations and
//! change-point segment means, with rollup-aware planning.
//!
//! Planning rule: an aggregation whose window is aligned to a rollup
//! level's grid is served from that level's buckets — coarsest level
//! first — because bucket aggregates compose exactly (they carry
//! count/sum/min/max/m2, not means). Percentiles need the raw
//! distribution, so `P95` always plans a raw scan.

use crate::rollup::Aggregate;
use crate::series::Series;
use crate::store::{SeriesId, TsdbStore};

/// Aggregation operators over a time window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggOp {
    /// Arithmetic mean.
    Mean,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Sum.
    Sum,
    /// Sample count.
    Count,
    /// 95th percentile (nearest-rank); forces a raw scan.
    P95,
}

/// Where the planner sourced an answer from (exposed for tests and
/// instrumentation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Plan {
    /// Served by composing 1-hour buckets.
    HourRollup,
    /// Served by composing 1-minute buckets.
    MinuteRollup,
    /// Served by decoding chunks (with whole-chunk aggregate shortcuts).
    RawScan,
}

/// One aligned aggregation window result.
#[derive(Debug, Clone, Copy)]
pub struct WindowValue {
    /// Window start (inclusive).
    pub start: i64,
    /// Aggregated value (NaN for an empty window).
    pub value: f64,
    /// Samples inside the window.
    pub count: u64,
}

/// Pick the cheapest correct source for an aggregate over `[from, to)`.
pub fn plan_aggregate(series: &Series, from: i64, to: i64, op: AggOp) -> Plan {
    if op == AggOp::P95 {
        return Plan::RawScan;
    }
    if series.hours().covers_aligned(from, to) {
        Plan::HourRollup
    } else if series.minutes().covers_aligned(from, to) {
        Plan::MinuteRollup
    } else {
        Plan::RawScan
    }
}

fn rollup_window(series: &Series, from: i64, to: i64, plan: Plan) -> Aggregate {
    let level = match plan {
        Plan::HourRollup => series.hours(),
        Plan::MinuteRollup => series.minutes(),
        Plan::RawScan => unreachable!("rollup_window called with a raw plan"),
    };
    let mut agg = Aggregate::new();
    for b in level.buckets_in(from, to) {
        agg.merge(&b.agg);
    }
    // The hour level receives minute buckets only when they seal, so the
    // minute bucket still filling has not cascaded yet — complete the tail
    // from it. (The minute level itself is fed per raw sample, so it is
    // always complete.)
    if plan == Plan::HourRollup {
        if let Some(open) = series.minutes().open() {
            if open.start < to && open.start + series.minutes().resolution() > from {
                agg.merge(&open.agg);
            }
        }
    }
    agg
}

fn finish(op: AggOp, agg: &Aggregate) -> f64 {
    match op {
        AggOp::Mean => agg.mean(),
        AggOp::Min => {
            if agg.count == 0 {
                f64::NAN
            } else {
                agg.min
            }
        }
        AggOp::Max => {
            if agg.count == 0 {
                f64::NAN
            } else {
                agg.max
            }
        }
        AggOp::Sum => agg.sum,
        AggOp::Count => agg.count as f64,
        AggOp::P95 => unreachable!("P95 is not an Aggregate-backed op"),
    }
}

/// Nearest-rank p-th percentile of a sample set (p in [0, 100]).
fn percentile(mut values: Vec<f64>, p: f64) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    values.sort_by(f64::total_cmp);
    let rank = ((p / 100.0) * values.len() as f64).ceil() as usize;
    values[rank.clamp(1, values.len()) - 1]
}

/// Full-moment aggregate over `[from, to)` with rollup-aware planning:
/// served from the coarsest aligned rollup level, falling back to a raw
/// scan. This is the primitive `aggregate` and `aligned_windows` build on,
/// and what `hpc-telemetry` windows map to.
pub fn window_aggregate(series: &Series, from: i64, to: i64) -> Aggregate {
    match plan_aggregate(series, from, to, AggOp::Mean) {
        Plan::RawScan => series.scan_aggregate(from, to),
        rollup => rollup_window(series, from, to, rollup),
    }
}

/// Aggregate one series over `[from, to)` with rollup-aware planning.
/// Returns the value and the plan that produced it.
pub fn aggregate(series: &Series, from: i64, to: i64, op: AggOp) -> (f64, Plan) {
    let plan = plan_aggregate(series, from, to, op);
    let value = if op == AggOp::P95 {
        let vals: Vec<f64> = series.scan(from, to).into_iter().map(|(_, v)| v).collect();
        percentile(vals, 95.0)
    } else {
        let agg = match plan {
            Plan::RawScan => series.scan_aggregate(from, to),
            rollup => rollup_window(series, from, to, rollup),
        };
        finish(op, &agg)
    };
    (value, plan)
}

/// Split `[from, to)` into consecutive `step`-second windows and aggregate
/// each (windows aligned to `from`).
///
/// # Panics
/// Panics if `step <= 0` or `from > to`.
pub fn aligned_windows(
    series: &Series,
    from: i64,
    to: i64,
    step: i64,
    op: AggOp,
) -> Vec<WindowValue> {
    assert!(step > 0, "window step must be positive");
    assert!(from <= to, "window range reversed");
    let mut out = Vec::new();
    let mut start = from;
    while start < to {
        let end = (start + step).min(to);
        let agg = window_aggregate(series, start, end);
        let value = if op == AggOp::P95 {
            aggregate(series, start, end, op).0
        } else {
            finish(op, &agg)
        };
        out.push(WindowValue { start, value, count: agg.count });
        start = end;
    }
    out
}

/// Mean of each segment between consecutive change points: boundaries
/// `[b₀, b₁, …, bₙ]` produce n segment means over `[bᵢ, bᵢ₊₁)`.
///
/// # Panics
/// Panics if fewer than two boundaries are given or they are not sorted.
pub fn segment_means(series: &Series, boundaries: &[i64]) -> Vec<f64> {
    assert!(boundaries.len() >= 2, "need at least two boundaries");
    boundaries
        .windows(2)
        .map(|w| {
            assert!(w[0] <= w[1], "boundaries must be sorted");
            aggregate(series, w[0], w[1], AggOp::Mean).0
        })
        .collect()
}

/// Store-level convenience: aggregate a series by id.
pub fn store_aggregate(
    store: &TsdbStore,
    id: SeriesId,
    from: i64,
    to: i64,
    op: AggOp,
) -> Option<(f64, Plan)> {
    store.with_series(id, |s| aggregate(s, from, to, op))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::SeriesMeta;

    fn series_with(n: u32, f: impl Fn(u32) -> f64) -> Series {
        let mut s = Series::new(SeriesMeta {
            name: "q".into(),
            unit: "kW".into(),
            interval_hint: 60,
        });
        for i in 0..n {
            s.append(i64::from(i) * 60, f(i));
        }
        s
    }

    #[test]
    fn planner_picks_coarsest_aligned_level() {
        let s = series_with(3 * 24 * 60, |i| f64::from(i % 10)); // 3 days minutely
        assert_eq!(plan_aggregate(&s, 0, 86_400, AggOp::Mean), Plan::HourRollup);
        assert_eq!(plan_aggregate(&s, 3600, 7200, AggOp::Sum), Plan::HourRollup);
        assert_eq!(plan_aggregate(&s, 60, 3660, AggOp::Mean), Plan::MinuteRollup);
        assert_eq!(plan_aggregate(&s, 30, 3630, AggOp::Mean), Plan::RawScan);
        // Percentiles always need raw values.
        assert_eq!(plan_aggregate(&s, 0, 86_400, AggOp::P95), Plan::RawScan);
    }

    #[test]
    fn all_plans_agree_on_the_same_window() {
        let s = series_with(2 * 24 * 60, |i| (f64::from(i) * 0.11).sin() * 300.0 + 2800.0);
        let from = 6 * 3600;
        let to = 18 * 3600;
        let (hourly, plan) = aggregate(&s, from, to, AggOp::Mean);
        assert_eq!(plan, Plan::HourRollup);
        let raw = s.scan_aggregate(from, to);
        assert!((hourly - raw.mean()).abs() < 1e-9, "rollup {hourly} vs raw {}", raw.mean());
        let mut minutes = Aggregate::new();
        for b in s.minutes().buckets_in(from, to) {
            minutes.merge(&b.agg);
        }
        assert!((minutes.mean() - raw.mean()).abs() < 1e-9);
        // Min/max/sum/count too.
        assert_eq!(aggregate(&s, from, to, AggOp::Min).0, raw.min);
        assert_eq!(aggregate(&s, from, to, AggOp::Max).0, raw.max);
        assert!((aggregate(&s, from, to, AggOp::Sum).0 - raw.sum).abs() < 1e-6);
        assert_eq!(aggregate(&s, from, to, AggOp::Count).0, raw.count as f64);
    }

    #[test]
    fn p95_nearest_rank() {
        let s = series_with(100, f64::from); // 0..99
        let (p, plan) = aggregate(&s, 0, 100 * 60, AggOp::P95);
        assert_eq!(plan, Plan::RawScan);
        assert_eq!(p, 94.0); // ceil(0.95 * 100) = 95th of 1-indexed sorted
        let exact = percentile((0..5).map(f64::from).collect(), 95.0);
        assert_eq!(exact, 4.0);
        assert!(percentile(Vec::new(), 95.0).is_nan());
    }

    #[test]
    fn aligned_windows_cover_range() {
        let s = series_with(24 * 60, |i| f64::from(i / 60)); // value = hour index
        let windows = aligned_windows(&s, 0, 86_400, 3600, AggOp::Mean);
        assert_eq!(windows.len(), 24);
        for (h, w) in windows.iter().enumerate() {
            assert_eq!(w.start, h as i64 * 3600);
            assert_eq!(w.count, 60);
            assert!((w.value - h as f64).abs() < 1e-12, "hour {h} mean {}", w.value);
        }
    }

    #[test]
    fn segment_means_between_change_points() {
        // Step function: 3220 then 3010 then 2530 (the paper's campaign
        // shape), 1000 minutes each.
        let s = series_with(3000, |i| match i / 1000 {
            0 => 3220.0,
            1 => 3010.0,
            _ => 2530.0,
        });
        let b = [0i64, 1000 * 60, 2000 * 60, 3000 * 60];
        let means = segment_means(&s, &b);
        assert_eq!(means.len(), 3);
        assert!((means[0] - 3220.0).abs() < 1e-9);
        assert!((means[1] - 3010.0).abs() < 1e-9);
        assert!((means[2] - 2530.0).abs() < 1e-9);
    }

    #[test]
    fn store_level_query() {
        let store = TsdbStore::default();
        let id = store.register(SeriesMeta {
            name: "fac".into(),
            unit: "kW".into(),
            interval_hint: 60,
        });
        for i in 0..120 {
            store.append(id, i64::from(i) * 60, 100.0);
        }
        let (mean, _) = store_aggregate(&store, id, 0, 7200, AggOp::Mean).unwrap();
        assert!((mean - 100.0).abs() < 1e-12);
        assert!(store_aggregate(&store, SeriesId(999), 0, 1, AggOp::Mean).is_none());
    }
}
